#include "workload/cyclic_gen.h"

#include <algorithm>
#include <random>
#include <vector>

namespace datalog {
namespace {

void AddEdge(Database* db, PredicateId pred, std::size_t a, std::size_t b) {
  db->AddFact(pred, {Value::Int(static_cast<std::int64_t>(a)),
                     Value::Int(static_cast<std::int64_t>(b))});
}

std::size_t EdgesOrDefault(const CyclicOptions& o) {
  return o.num_edges != 0 ? o.num_edges : 4 * o.num_nodes;
}

std::size_t HubsOrDefault(const CyclicOptions& o) {
  return o.num_hubs != 0 ? o.num_hubs
                         : std::max<std::size_t>(1, o.num_nodes / 32);
}

std::size_t PlantedOrDefault(const CyclicOptions& o) {
  return o.num_planted != 0 ? o.num_planted
                            : std::max<std::size_t>(1, o.num_nodes / 8);
}

/// Hubs connected to every node in both directions. Left-deep plans pay
/// for every wedge through a hub (degree ~2n); the multiway intersection
/// touches only the smaller adjacency list of each pair.
void AddHubEdges(const CyclicOptions& o, PredicateId e, Database* db) {
  const std::size_t hubs = std::min(HubsOrDefault(o), o.num_nodes);
  for (std::size_t h = 0; h < hubs; ++h) {
    for (std::size_t i = 0; i < o.num_nodes; ++i) {
      if (i == h) continue;
      AddEdge(db, e, h, i);
      AddEdge(db, e, i, h);
    }
  }
}

void AddRandomEdges(const CyclicOptions& o, PredicateId e, std::mt19937_64& rng,
                    Database* db) {
  if (o.num_nodes == 0) return;
  std::uniform_int_distribution<std::size_t> node(0, o.num_nodes - 1);
  for (std::size_t k = 0; k < EdgesOrDefault(o); ++k) {
    AddEdge(db, e, node(rng), node(rng));
  }
}

/// Picks `count` distinct nodes (resampling; callers keep count tiny
/// relative to num_nodes).
std::vector<std::size_t> PickDistinct(std::size_t count, std::size_t num_nodes,
                                      std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> node(0, num_nodes - 1);
  std::vector<std::size_t> picked;
  while (picked.size() < count) {
    const std::size_t n = node(rng);
    if (std::find(picked.begin(), picked.end(), n) == picked.end()) {
      picked.push_back(n);
    }
  }
  return picked;
}

}  // namespace

std::string CyclicProgramText(const CyclicOptions& options) {
  switch (options.shape) {
    case CyclicShape::kTriangle:
      return "tri(x, y, z) :- e(x, y), e(y, z), e(z, x).\n";
    case CyclicShape::kKCycle: {
      const std::size_t k = std::max<std::size_t>(3, options.cycle_length);
      std::string text = "cyc(v0) :- ";
      for (std::size_t i = 0; i < k; ++i) {
        if (i > 0) text += ", ";
        text += "e(v" + std::to_string(i) + ", v" +
                std::to_string((i + 1) % k) + ")";
      }
      return text + ".\n";
    }
    case CyclicShape::kClique:
      return "clq(x, w) :- e(x, y), e(x, z), e(x, w), e(y, z), e(y, w), "
             "e(z, w).\n";
    case CyclicShape::kDenseSameGen:
      return "sg(x, y) :- flat(x, y).\n"
             "sg(x, y) :- up(x, u), sg(u, v), down(v, y), flat(x, y).\n";
  }
  return "";
}

std::string CyclicHeadName(CyclicShape shape) {
  switch (shape) {
    case CyclicShape::kTriangle:
      return "tri";
    case CyclicShape::kKCycle:
      return "cyc";
    case CyclicShape::kClique:
      return "clq";
    case CyclicShape::kDenseSameGen:
      return "sg";
  }
  return "";
}

void AddCyclicFacts(const CyclicOptions& options, PredicateId edge_pred,
                    Database* db) {
  if (options.num_nodes == 0) return;
  std::mt19937_64 rng(options.seed);
  switch (options.shape) {
    case CyclicShape::kTriangle: {
      AddHubEdges(options, edge_pred, db);
      AddRandomEdges(options, edge_pred, rng, db);
      if (options.num_nodes < 3) break;
      for (std::size_t t = 0; t < PlantedOrDefault(options); ++t) {
        const std::vector<std::size_t> n =
            PickDistinct(3, options.num_nodes, rng);
        AddEdge(db, edge_pred, n[0], n[1]);
        AddEdge(db, edge_pred, n[1], n[2]);
        AddEdge(db, edge_pred, n[2], n[0]);
      }
      break;
    }
    case CyclicShape::kKCycle: {
      AddRandomEdges(options, edge_pred, rng, db);
      const std::size_t k = std::max<std::size_t>(3, options.cycle_length);
      if (options.num_nodes < k) break;
      for (std::size_t t = 0; t < PlantedOrDefault(options); ++t) {
        const std::vector<std::size_t> n =
            PickDistinct(k, options.num_nodes, rng);
        for (std::size_t i = 0; i < k; ++i) {
          AddEdge(db, edge_pred, n[i], n[(i + 1) % k]);
        }
      }
      break;
    }
    case CyclicShape::kClique: {
      AddHubEdges(options, edge_pred, db);
      AddRandomEdges(options, edge_pred, rng, db);
      if (options.num_nodes < 4) break;
      for (std::size_t t = 0; t < PlantedOrDefault(options); ++t) {
        std::vector<std::size_t> n = PickDistinct(4, options.num_nodes, rng);
        // All six forward edges of the ordered 4-clique (the rule binds
        // x, y, z, w in that orientation).
        for (std::size_t i = 0; i < 4; ++i) {
          for (std::size_t j = i + 1; j < 4; ++j) {
            AddEdge(db, edge_pred, n[i], n[j]);
          }
        }
      }
      break;
    }
    case CyclicShape::kDenseSameGen:
      // Needs three predicates; use AddDenseSameGenFacts.
      break;
  }
}

void AddDenseSameGenFacts(const CyclicOptions& options, PredicateId up,
                          PredicateId down, PredicateId flat, Database* db) {
  // A complete fanout-ary tree, levels numbered from the root. Unlike the
  // sparse same-generation workload, `flat` densely connects every
  // ordered pair of siblings (same parent), which makes the recursive
  // body's 4-cycle hypergraph pay off for multiway intersection.
  std::size_t level_start = 0;
  std::size_t level_size = 1;
  for (std::size_t level = 0; level + 1 < options.depth; ++level) {
    const std::size_t next_start = level_start + level_size;
    for (std::size_t i = 0; i < level_size; ++i) {
      const std::size_t parent = level_start + i;
      const std::size_t child0 = next_start + i * options.fanout;
      for (std::size_t f = 0; f < options.fanout; ++f) {
        AddEdge(db, up, child0 + f, parent);
        AddEdge(db, down, parent, child0 + f);
      }
      for (std::size_t a = 0; a < options.fanout; ++a) {
        for (std::size_t b = 0; b < options.fanout; ++b) {
          if (a != b) AddEdge(db, flat, child0 + a, child0 + b);
        }
      }
    }
    level_start = next_start;
    level_size *= options.fanout;
  }
}

}  // namespace datalog
