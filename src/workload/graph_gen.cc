#include "workload/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

namespace datalog {
namespace {

void AddEdge(Database* db, PredicateId pred, std::size_t a, std::size_t b) {
  db->AddFact(pred, {Value::Int(static_cast<std::int64_t>(a)),
                     Value::Int(static_cast<std::int64_t>(b))});
}

}  // namespace

void AddGraphFacts(const GraphOptions& options, PredicateId edge_pred,
                   Database* db) {
  const std::size_t n = options.num_nodes;
  switch (options.shape) {
    case GraphShape::kChain:
      for (std::size_t i = 0; i + 1 < n; ++i) AddEdge(db, edge_pred, i, i + 1);
      break;
    case GraphShape::kCycle:
      for (std::size_t i = 0; i + 1 < n; ++i) AddEdge(db, edge_pred, i, i + 1);
      if (n > 1) AddEdge(db, edge_pred, n - 1, 0);
      break;
    case GraphShape::kBinaryTree:
      for (std::size_t i = 0; i < n; ++i) {
        if (2 * i + 1 < n) AddEdge(db, edge_pred, i, 2 * i + 1);
        if (2 * i + 2 < n) AddEdge(db, edge_pred, i, 2 * i + 2);
      }
      break;
    case GraphShape::kGrid: {
      std::size_t side = static_cast<std::size_t>(
          std::max(1.0, std::floor(std::sqrt(static_cast<double>(n)))));
      for (std::size_t r = 0; r < side; ++r) {
        for (std::size_t c = 0; c < side; ++c) {
          std::size_t id = r * side + c;
          if (c + 1 < side) AddEdge(db, edge_pred, id, id + 1);
          if (r + 1 < side) AddEdge(db, edge_pred, id, id + side);
        }
      }
      break;
    }
    case GraphShape::kRandom: {
      std::mt19937_64 rng(options.seed);
      std::uniform_int_distribution<std::size_t> node(0, n > 0 ? n - 1 : 0);
      for (std::size_t e = 0; e < options.num_edges; ++e) {
        AddEdge(db, edge_pred, node(rng), node(rng));
      }
      break;
    }
  }
}

std::size_t AddSameGenerationFacts(const SameGenerationOptions& options,
                                   PredicateId up, PredicateId flat,
                                   PredicateId down, Database* db) {
  // Nodes are numbered level by level: level L holds fanout^L nodes.
  std::size_t level_start = 0;
  std::size_t level_size = 1;
  std::size_t total = 1;
  for (std::size_t level = 0; level + 1 < options.depth; ++level) {
    std::size_t next_start = level_start + level_size;
    std::size_t next_size = level_size * options.fanout;
    for (std::size_t i = 0; i < level_size; ++i) {
      std::size_t parent = level_start + i;
      for (std::size_t f = 0; f < options.fanout; ++f) {
        std::size_t child = next_start + i * options.fanout + f;
        AddEdge(db, up, child, parent);
        AddEdge(db, down, parent, child);
      }
    }
    // flat: consecutive siblings within the next level.
    for (std::size_t i = 0; i + 1 < next_size; ++i) {
      AddEdge(db, flat, next_start + i, next_start + i + 1);
    }
    level_start = next_start;
    level_size = next_size;
    total += next_size;
  }
  return total;
}

void AddUnaryFacts(std::size_t num_nodes, std::size_t count,
                   std::uint64_t seed, PredicateId pred, Database* db) {
  std::vector<std::size_t> nodes(num_nodes);
  std::iota(nodes.begin(), nodes.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(nodes.begin(), nodes.end(), rng);
  for (std::size_t i = 0; i < std::min(count, num_nodes); ++i) {
    db->AddFact(pred, {Value::Int(static_cast<std::int64_t>(nodes[i]))});
  }
}

}  // namespace datalog
