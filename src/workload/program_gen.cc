#include "workload/program_gen.h"

#include <random>
#include <string>
#include <vector>

#include "ast/unify.h"

namespace datalog {
namespace {

/// A fresh chain variable v<k> (shared names across rules are harmless:
/// variable scope is per rule).
Term ChainVar(SymbolTable* symbols, std::size_t k) {
  return Term::Variable(symbols->InternVariable("v" + std::to_string(k)));
}

}  // namespace

Result<PlantedProgram> MakePlantedProgram(
    std::shared_ptr<SymbolTable> symbols,
    const PlantedProgramOptions& options) {
  std::mt19937_64 rng(options.seed);
  SymbolTable* table = symbols.get();

  std::vector<PredicateId> edb;
  for (std::size_t i = 0; i < options.num_extensional; ++i) {
    DATALOG_ASSIGN_OR_RETURN(
        PredicateId pred,
        table->InternPredicate("e" + std::to_string(i), 2));
    edb.push_back(pred);
  }
  std::vector<PredicateId> idb;
  for (std::size_t i = 0; i < options.num_intentional; ++i) {
    DATALOG_ASSIGN_OR_RETURN(
        PredicateId pred,
        table->InternPredicate("i" + std::to_string(i), 2));
    idb.push_back(pred);
  }

  Program program(symbols);
  auto pick = [&rng](const std::vector<PredicateId>& preds) {
    std::uniform_int_distribution<std::size_t> dist(0, preds.size() - 1);
    return preds[dist(rng)];
  };

  for (std::size_t k = 0; k < idb.size(); ++k) {
    // Base rule: i_k(x, z) :- e_j(x, z).
    Term x = ChainVar(table, 0);
    Term z = ChainVar(table, 1);
    program.AddRule(Rule::Positive(Atom(idb[k], {x, z}),
                                   {Atom(pick(edb), {x, z})}));

    for (std::size_t r = 0; r < options.chain_rules; ++r) {
      // Chain rule: i_k(v0, vn) :- p1(v0, v1), ..., pn(v(n-1), vn).
      std::vector<Atom> body;
      std::uniform_int_distribution<int> percent(0, 99);
      for (std::size_t a = 0; a < options.chain_length; ++a) {
        bool recurse = percent(rng) < options.recursion_percent;
        // Recursion only into predicates up to i_k keeps the dependency
        // structure varied without every predicate depending on every
        // other.
        PredicateId pred =
            recurse ? idb[std::uniform_int_distribution<std::size_t>(
                          0, k)(rng)]
                    : pick(edb);
        body.push_back(
            Atom(pred, {ChainVar(table, a), ChainVar(table, a + 1)}));
      }
      program.AddRule(Rule::Positive(
          Atom(idb[k],
               {ChainVar(table, 0), ChainVar(table, options.chain_length)}),
          std::move(body)));
    }
  }

  // Plant redundant atoms: a copy of an existing body atom with one
  // variable replaced by a fresh one. Deleting the copy is sound under
  // uniform equivalence (the frozen body of the smaller rule matches the
  // copy by instantiating the fresh variable to the original's constant).
  std::size_t planted_atoms = 0;
  for (std::size_t p = 0; p < options.planted_atoms; ++p) {
    std::uniform_int_distribution<std::size_t> rule_dist(
        0, program.NumRules() - 1);
    Rule& rule = program.mutable_rules()[rule_dist(rng)];
    if (rule.body().empty()) continue;
    std::uniform_int_distribution<std::size_t> atom_dist(
        0, rule.body().size() - 1);
    Atom copy = rule.body()[atom_dist(rng)].atom;
    std::vector<VariableId> vars;
    copy.AppendVariables(&vars);
    if (vars.empty()) continue;
    std::uniform_int_distribution<std::size_t> var_dist(0, vars.size() - 1);
    VariableId victim = vars[var_dist(rng)];
    VariableId fresh = table->FreshVariable("w");
    for (Term& t : copy.mutable_args()) {
      if (t.is_variable() && t.var() == victim) t = Term::Variable(fresh);
    }
    rule.mutable_body().push_back(Literal{std::move(copy), false});
    ++planted_atoms;
  }

  // Plant redundant rules: renamed duplicates and specializations.
  std::size_t planted_rules = 0;
  for (std::size_t p = 0; p < options.planted_rules; ++p) {
    std::uniform_int_distribution<std::size_t> rule_dist(
        0, program.NumRules() - 1);
    const Rule& original = program.rules()[rule_dist(rng)];
    if (original.IsFact()) continue;
    Rule clone = RenameApart(original, table);
    if (p % 2 == 1) {
      // Specialization: one extra (satisfiable) atom makes the rule
      // strictly weaker, hence redundant next to the original.
      std::uniform_int_distribution<std::size_t> atom_dist(
          0, clone.body().size() - 1);
      clone.mutable_body().push_back(clone.body()[atom_dist(rng)]);
    }
    program.AddRule(std::move(clone));
    ++planted_rules;
  }

  PlantedProgram result{std::move(program), planted_atoms, planted_rules};
  return result;
}

}  // namespace datalog
