#ifndef DATALOG_WORKLOAD_PROGRAM_GEN_H_
#define DATALOG_WORKLOAD_PROGRAM_GEN_H_

#include <cstdint>
#include <memory>

#include "ast/program.h"
#include "util/result.h"

namespace datalog {

/// Options for the planted-redundancy program generator used by the
/// minimization tests and benchmarks.
struct PlantedProgramOptions {
  std::size_t num_extensional = 2;   // binary predicates e0, e1, ...
  std::size_t num_intentional = 2;   // binary predicates i0, i1, ...
  std::size_t chain_rules = 3;       // random chain rules per intentional pred
  std::size_t chain_length = 3;      // body atoms per chain rule
  /// Probability (percent) that a chain atom recurses into an intentional
  /// predicate rather than an extensional one.
  int recursion_percent = 40;
  /// Redundant atoms planted across rules. Each is a copy of an existing
  /// body atom with one variable renamed fresh, which is provably
  /// redundant under uniform equivalence.
  std::size_t planted_atoms = 2;
  /// Redundant rules planted: variable-renamed duplicates and
  /// specializations (an existing rule with one extra atom), both provably
  /// redundant under uniform equivalence.
  std::size_t planted_rules = 1;
  std::uint64_t seed = 1;
};

struct PlantedProgram {
  Program program;
  /// Lower bounds on what MinimizeProgram must remove (it may remove more:
  /// random chain rules occasionally subsume each other).
  std::size_t planted_atoms = 0;
  std::size_t planted_rules = 0;
};

/// Generates a safe positive program with known-redundant parts. Every
/// intentional predicate gets a base rule i_k(x,z) :- e_j(x,z), then
/// `chain_rules` random chain rules; redundancy is planted on top.
Result<PlantedProgram> MakePlantedProgram(
    std::shared_ptr<SymbolTable> symbols, const PlantedProgramOptions& options);

}  // namespace datalog

#endif  // DATALOG_WORKLOAD_PROGRAM_GEN_H_
