#ifndef DATALOG_WORKLOAD_GRAPH_GEN_H_
#define DATALOG_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <memory>

#include "eval/database.h"

namespace datalog {

/// Shapes of synthetic binary-relation EDBs used by the benchmarks. Nodes
/// are the integers 0..num_nodes-1.
enum class GraphShape {
  kChain,       // i -> i+1
  kCycle,       // chain plus closing edge
  kBinaryTree,  // i -> 2i+1, i -> 2i+2
  kGrid,        // sqrt(n) x sqrt(n) grid, right and down edges
  kRandom,      // num_edges uniform random pairs (with replacement)
};

struct GraphOptions {
  GraphShape shape = GraphShape::kChain;
  std::size_t num_nodes = 64;
  /// Only used by kRandom.
  std::size_t num_edges = 128;
  std::uint64_t seed = 42;
};

/// Adds the edge facts of the generated graph to `db` under the binary
/// predicate `edge_pred`.
void AddGraphFacts(const GraphOptions& options, PredicateId edge_pred,
                   Database* db);

/// Adds `count` unary facts `pred(i)` for nodes sampled without
/// replacement from 0..num_nodes-1 (used for guard predicates like C in
/// Example 19).
void AddUnaryFacts(std::size_t num_nodes, std::size_t count,
                   std::uint64_t seed, PredicateId pred, Database* db);

/// Parameters of the same-generation EDB: a complete `fanout`-ary tree of
/// `depth` levels. up(child, parent) edges go toward the root,
/// down(parent, child) away from it, and flat connects each node to its
/// next sibling. The classic bound-query benchmark for magic sets.
struct SameGenerationOptions {
  std::size_t depth = 4;
  std::size_t fanout = 2;
};

/// Adds the up/flat/down facts; returns the number of nodes.
std::size_t AddSameGenerationFacts(const SameGenerationOptions& options,
                                   PredicateId up, PredicateId flat,
                                   PredicateId down, Database* db);

}  // namespace datalog

#endif  // DATALOG_WORKLOAD_GRAPH_GEN_H_
