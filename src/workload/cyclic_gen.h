#ifndef DATALOG_WORKLOAD_CYCLIC_GEN_H_
#define DATALOG_WORKLOAD_CYCLIC_GEN_H_

#include <cstdint>
#include <string>

#include "eval/database.h"

namespace datalog {

/// Cyclic-query workload family: rule bodies whose join hypergraphs are
/// cyclic (triangle, k-cycle, clique, dense same-generation), the shapes
/// where worst-case-optimal multiway joins beat any left-deep plan.
/// Nodes are the integers 0..num_nodes-1.
enum class CyclicShape {
  kTriangle,      // tri(x,y,z) :- e(x,y), e(y,z), e(z,x).
  kKCycle,        // cyc(x1) :- e(x1,x2), ..., e(xk,x1).
  kClique,        // clq(x,w) :- the six edges of a 4-clique.
  kDenseSameGen,  // sg over up/down/flat with a flat guard (4-cycle body).
};

struct CyclicOptions {
  CyclicShape shape = CyclicShape::kTriangle;
  std::size_t num_nodes = 64;
  /// Random background edges (kTriangle, kKCycle, kClique). 0 means
  /// 4 * num_nodes.
  std::size_t num_edges = 0;
  /// Hub nodes connected to every node in both directions (kTriangle,
  /// kClique): the skew that blows up left-deep wedge enumeration. 0
  /// means max(1, num_nodes / 32).
  std::size_t num_hubs = 0;
  /// Planted closed structures guaranteeing non-empty output. 0 means
  /// num_nodes / 8 (at least one).
  std::size_t num_planted = 0;
  /// Cycle length k for kKCycle (clamped to >= 3).
  std::size_t cycle_length = 4;
  /// Tree depth/fanout for kDenseSameGen.
  std::size_t depth = 4;
  std::size_t fanout = 3;
  std::uint64_t seed = 42;
};

/// The rule(s) of the shape as parseable program text. EDB predicates are
/// named `e` (graph shapes) or `up`/`down`/`flat` (kDenseSameGen); the IDB
/// head is `tri`/`cyc`/`clq`/`sg` respectively.
std::string CyclicProgramText(const CyclicOptions& options);

/// The head predicate name of the shape's program ("tri", "cyc", "clq",
/// "sg").
std::string CyclicHeadName(CyclicShape shape);

/// Adds the EDB facts for the shape. Graph shapes take the binary edge
/// predicate; kDenseSameGen ignores `edge_pred` and uses the three tree
/// predicates (pass the ids interned for "up"/"down"/"flat").
void AddCyclicFacts(const CyclicOptions& options, PredicateId edge_pred,
                    Database* db);
void AddDenseSameGenFacts(const CyclicOptions& options, PredicateId up,
                          PredicateId down, PredicateId flat, Database* db);

}  // namespace datalog

#endif  // DATALOG_WORKLOAD_CYCLIC_GEN_H_
