#ifndef DATALOG_VERSION_H_
#define DATALOG_VERSION_H_

/// Library version, kept in sync with the CMake project() declaration.
#define DATALOG_OPT_VERSION_MAJOR 1
#define DATALOG_OPT_VERSION_MINOR 0
#define DATALOG_OPT_VERSION_PATCH 0
#define DATALOG_OPT_VERSION "1.0.0"

namespace datalog {

/// Returns the library version string ("1.0.0").
inline const char* Version() { return DATALOG_OPT_VERSION; }

}  // namespace datalog

#endif  // DATALOG_VERSION_H_
