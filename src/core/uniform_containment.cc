#include "core/uniform_containment.h"

#include "ast/validate.h"
#include "core/freeze.h"
#include "eval/seminaive.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {

Result<bool> UniformlyContainsRule(const Program& p, const Rule& r) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p));
  DATALOG_RETURN_IF_ERROR(ValidateRule(r, *p.symbols()));
  if (!r.IsPositive()) {
    return Status::InvalidArgument(
        "uniform containment requires positive rules");
  }

  TraceSpan span("containment/check");
  MetricsRegistry& metrics = MetricsRegistry::Get();
  if (metrics.enabled()) metrics.Add("containment.checks", {}, 1);
  DATALOG_ASSIGN_OR_RETURN(FrozenRule frozen, FreezeRule(r, p.symbols()));
  // Compute P(b theta). The fixpoint is finite: rule application introduces
  // no constants beyond those of b theta and of P's rules.
  DATALOG_ASSIGN_OR_RETURN(EvalStats stats,
                           EvaluateSemiNaive(p, &frozen.body));
  bool contained = frozen.body.Contains(frozen.head_pred, frozen.head_tuple);
  if (span.active()) {
    span.Note("iterations", static_cast<std::uint64_t>(stats.iterations));
    span.Note("facts", stats.facts_derived);
    span.Note("contained", contained ? 1 : 0);
  }
  if (metrics.enabled() && contained) {
    metrics.Add("containment.holds", {}, 1);
  }
  return contained;
}

Result<std::optional<UniformContainmentWitness>>
RefuteUniformContainment(const Program& p, const Rule& r) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p));
  DATALOG_RETURN_IF_ERROR(ValidateRule(r, *p.symbols()));
  if (!r.IsPositive()) {
    return Status::InvalidArgument(
        "uniform containment requires positive rules");
  }
  TraceSpan span("containment/refute");
  MetricsRegistry& metrics = MetricsRegistry::Get();
  if (metrics.enabled()) metrics.Add("containment.checks", {}, 1);
  DATALOG_ASSIGN_OR_RETURN(FrozenRule frozen, FreezeRule(r, p.symbols()));
  Database input(p.symbols());
  input.UnionWith(frozen.body);
  DATALOG_RETURN_IF_ERROR(EvaluateSemiNaive(p, &frozen.body).status());
  if (frozen.body.Contains(frozen.head_pred, frozen.head_tuple)) {
    return std::optional<UniformContainmentWitness>();  // containment holds
  }
  return std::optional<UniformContainmentWitness>(UniformContainmentWitness{
      std::move(input), frozen.head_pred, frozen.head_tuple});
}

Result<bool> UniformlyContains(const Program& p1, const Program& p2) {
  for (const Rule& rule : p2.rules()) {
    DATALOG_ASSIGN_OR_RETURN(bool contained, UniformlyContainsRule(p1, rule));
    if (!contained) return false;
  }
  return true;
}

Result<bool> UniformlyEquivalent(const Program& p1, const Program& p2) {
  DATALOG_ASSIGN_OR_RETURN(bool forward, UniformlyContains(p1, p2));
  if (!forward) return false;
  return UniformlyContains(p2, p1);
}

}  // namespace datalog
