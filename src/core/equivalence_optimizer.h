#ifndef DATALOG_CORE_EQUIVALENCE_OPTIMIZER_H_
#define DATALOG_CORE_EQUIVALENCE_OPTIMIZER_H_

#include <vector>

#include "ast/program.h"
#include "ast/tgd.h"
#include "core/chase.h"
#include "util/result.h"

namespace datalog {

/// Tuning knobs for the Section XI heuristic. The search is a heuristic by
/// necessity: equivalence is undecidable, so "it cannot always remove all
/// atoms that are redundant under equivalence" (Section V), and the paper
/// recommends bounding the time spent.
struct EquivalenceOptimizerOptions {
  ChaseBudget budget;
  /// Largest set of body atoms a single candidate tgd tries to remove.
  std::size_t max_rhs_atoms = 3;
  /// Largest tgd left-hand side drawn from the rule body.
  std::size_t max_lhs_atoms = 2;
  /// Cap on candidate tgds examined per rule.
  std::size_t max_candidates_per_rule = 512;
};

/// One successful removal.
struct EquivalenceRemoval {
  std::size_t rule_index;        // index in the ORIGINAL program
  std::vector<Atom> removed;     // atoms deleted from that rule's body
  Tgd witness;                   // the tgd whose proof justified it
};

struct EquivalenceOptimizeResult {
  Program program;
  std::vector<EquivalenceRemoval> removals;
  std::size_t candidates_tried = 0;
};

/// Enumerates the candidate tgds the Section XI syntactic properties allow
/// for `rule`: the left-hand side is a set of body atoms whose predicate
/// equals the rule's head predicate (property 1); every variable appearing
/// only in the right-hand side has all its body atoms inside the
/// right-hand side (property 2) and does not appear in the rule head
/// (property 3). The right-hand side is the atom set whose redundancy the
/// tgd would witness.
std::vector<Tgd> CandidateTgds(const Rule& rule,
                               const EquivalenceOptimizerOptions& options);

/// Optimization under equivalence (Section XI): for each rule, tries the
/// candidate tgds in order; when the Section X recipe proves that deleting
/// a candidate's right-hand-side atoms preserves equivalence, commits the
/// deletion and continues. Removes atoms that are redundant under
/// equivalence but NOT under uniform equivalence (e.g. A(y,w) in
/// Example 18); run MinimizeProgram first for the uniform-equivalence
/// redundancies.
Result<EquivalenceOptimizeResult> OptimizeUnderEquivalence(
    const Program& program, const EquivalenceOptimizerOptions& options = {});

}  // namespace datalog

#endif  // DATALOG_CORE_EQUIVALENCE_OPTIMIZER_H_
