#include "core/unfold.h"

#include <map>
#include <set>
#include <string>

#include "ast/unify.h"

namespace datalog {
namespace {

/// A renaming-invariant key: variables are numbered by first occurrence,
/// so alpha-equivalent expansions deduplicate.
std::string RuleKey(const Rule& rule) {
  std::map<VariableId, int> numbering;
  std::string key;
  auto append_atom = [&](const Atom& atom) {
    key += std::to_string(atom.predicate());
    key += '(';
    for (const Term& t : atom.args()) {
      if (t.is_variable()) {
        auto [it, inserted] =
            numbering.emplace(t.var(), static_cast<int>(numbering.size()));
        key += 'v';
        key += std::to_string(it->second);
      } else {
        key += 'c';
        key += std::to_string(static_cast<int>(t.value().kind()));
        key += ':';
        key += std::to_string(t.value().payload());
      }
      key += ',';
    }
    key += ')';
  };
  append_atom(rule.head());
  key += ":-";
  for (const Literal& lit : rule.body()) {
    if (lit.negated) key += '!';
    append_atom(lit.atom);
    key += ';';
  }
  return key;
}

}  // namespace

Result<Rule> UnfoldAtom(const Rule& rule, std::size_t position,
                        const Rule& definition, SymbolTable* symbols) {
  if (position >= rule.body().size()) {
    return Status::InvalidArgument("unfold position out of range");
  }
  const Literal& target = rule.body()[position];
  if (target.negated) {
    return Status::InvalidArgument("cannot unfold a negated literal");
  }
  Rule renamed = RenameApart(definition, symbols);
  Substitution subst;
  if (!UnifyAtoms(target.atom, renamed.head(), &subst)) {
    return Status::NotFound("body atom does not unify with definition head");
  }
  std::vector<Literal> body;
  body.reserve(rule.body().size() - 1 + renamed.body().size());
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    if (i == position) {
      for (const Literal& lit : renamed.body()) {
        body.push_back(Literal{subst.Apply(lit.atom), lit.negated});
      }
    } else {
      body.push_back(
          Literal{subst.Apply(rule.body()[i].atom), rule.body()[i].negated});
    }
  }
  return Rule(subst.Apply(rule.head()), std::move(body));
}

std::vector<Rule> ExpandRules(const Program& program,
                              const ExpandLimits& limits, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::set<PredicateId> intentional = program.IntentionalPredicates();
  SymbolTable* symbols = program.symbols().get();

  auto is_flat = [&intentional](const Rule& rule) {
    for (const Literal& lit : rule.body()) {
      if (intentional.contains(lit.atom.predicate())) return false;
    }
    return true;
  };

  // Depth 1: rules whose bodies are already all-extensional.
  std::vector<Rule> flat;
  std::set<std::string> seen;
  auto add_flat = [&flat, &seen](Rule rule) {
    if (seen.insert(RuleKey(rule)).second) {
      flat.push_back(std::move(rule));
      return true;
    }
    return false;
  };
  for (const Rule& rule : program.rules()) {
    if (is_flat(rule)) add_flat(rule);
  }

  std::vector<Rule> frontier = flat;  // expansions usable as definitions
  for (std::size_t depth = 1; depth < limits.max_depth; ++depth) {
    std::vector<Rule> next;
    for (const Rule& rule : program.rules()) {
      if (is_flat(rule)) continue;
      // Resolve every intentional body atom against a previously produced
      // flat expansion; enumerate all combinations, depth-first,
      // right-to-left so positions of pending atoms stay stable.
      std::vector<Rule> partial{rule};
      bool done = false;
      while (!done) {
        std::vector<Rule> progressed;
        done = true;
        for (const Rule& current : partial) {
          // Find the rightmost intentional atom still present.
          std::ptrdiff_t pos = -1;
          for (std::ptrdiff_t i =
                   static_cast<std::ptrdiff_t>(current.body().size()) - 1;
               i >= 0; --i) {
            if (intentional.contains(
                    current.body()[static_cast<std::size_t>(i)]
                        .atom.predicate())) {
              pos = i;
              break;
            }
          }
          if (pos < 0) {
            progressed.push_back(current);
            continue;
          }
          done = false;
          for (const Rule& definition : frontier) {
            if (definition.head().predicate() !=
                current.body()[static_cast<std::size_t>(pos)]
                    .atom.predicate()) {
              continue;
            }
            Result<Rule> unfolded = UnfoldAtom(
                current, static_cast<std::size_t>(pos), definition, symbols);
            if (unfolded.ok()) {
              progressed.push_back(std::move(unfolded).value());
            }
            if (progressed.size() + flat.size() > limits.max_rules) break;
          }
          if (progressed.size() + flat.size() > limits.max_rules) {
            if (truncated != nullptr) *truncated = true;
            break;
          }
        }
        partial = std::move(progressed);
        if (partial.size() + flat.size() > limits.max_rules) {
          if (truncated != nullptr) *truncated = true;
          partial.resize(limits.max_rules > flat.size()
                             ? limits.max_rules - flat.size()
                             : 0);
        }
      }
      for (Rule& r : partial) next.push_back(std::move(r));
    }
    // The new expansions join the pool of usable definitions; frontier
    // for the next depth is everything flat produced so far.
    for (Rule& r : next) {
      if (flat.size() >= limits.max_rules) {
        if (truncated != nullptr) *truncated = true;
        break;
      }
      add_flat(std::move(r));
    }
    frontier = flat;
  }
  return flat;
}

}  // namespace datalog
