#ifndef DATALOG_CORE_PROOF_OUTCOME_H_
#define DATALOG_CORE_PROOF_OUTCOME_H_

#include <string_view>

namespace datalog {

/// Three-valued outcome of the semi-decidable procedures (Sections
/// VIII-X): with embedded tgds the chase may run forever, so a bounded run
/// can end without a verdict. kUnknown is always safe to report; an
/// optimizer simply keeps the program unchanged.
enum class ProofOutcome {
  kProved,
  kDisproved,
  /// The step/null budget ran out before a verdict was reached.
  kUnknown,
};

inline std::string_view ToString(ProofOutcome outcome) {
  switch (outcome) {
    case ProofOutcome::kProved:
      return "proved";
    case ProofOutcome::kDisproved:
      return "disproved";
    case ProofOutcome::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace datalog

#endif  // DATALOG_CORE_PROOF_OUTCOME_H_
