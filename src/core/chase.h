#ifndef DATALOG_CORE_CHASE_H_
#define DATALOG_CORE_CHASE_H_

#include <optional>
#include <vector>

#include "ast/program.h"
#include "core/tgd.h"
#include "eval/database.h"
#include "util/result.h"

namespace datalog {

/// Resource limits for chases involving embedded tgds, which may not
/// terminate (Section VIII: "some sets of tgds can be applied to an
/// initial DB forever"). The defaults are generous for program-sized
/// canonical databases.
struct ChaseBudget {
  std::size_t max_rounds = 256;   // fair rounds of rules-then-tgds
  std::size_t max_nulls = 4096;   // labeled nulls introduced
  std::size_t max_facts = 1u << 20;  // total database size
};

/// How a bounded chase ended.
enum class ChaseStatus {
  /// No rule and no tgd can add a fact; `db` is a model of P in SAT(T).
  kFixpoint,
  /// The goal fact appeared (only when a goal was supplied).
  kGoalReached,
  /// Budget exhausted without fixpoint or goal.
  kBudgetExhausted,
};

struct ChaseResult {
  ChaseStatus status = ChaseStatus::kFixpoint;
  std::size_t rounds = 0;
  std::size_t facts_added = 0;
  std::int32_t nulls_introduced = 0;
};

/// A goal fact for early exit.
struct ChaseGoal {
  PredicateId predicate;
  Tuple tuple;
};

/// One step of a chase transcript: either "the program's rules ran to
/// fixpoint" or "tgd #tgd_index ran one round", with the facts that step
/// added. Steps that add nothing are not recorded.
struct ChaseStep {
  enum class Kind { kRules, kTgd };
  Kind kind = Kind::kRules;
  std::size_t tgd_index = 0;  // meaningful for kTgd
  std::vector<std::pair<PredicateId, Tuple>> added;
};

/// A human-readable record of a chase run, in the style of the paper's
/// worked examples (Examples 6 and 11). Collected when a transcript
/// pointer is passed to Chase.
struct ChaseTranscript {
  std::vector<ChaseStep> steps;

  /// Renders e.g.:
  ///   rules derived: g($c0, $c1)
  ///   tgd 0 added: a($c0, ~n0)
  std::string ToString(const SymbolTable& symbols,
                       const std::vector<Tgd>& tgds) const;
};

/// The combined application [P, T] of a program and a set of tgds
/// (Section VIII): alternates running P's rules to their (always finite)
/// fixpoint with one fair round of every tgd, until nothing changes, the
/// optional goal fact appears, or the budget runs out. Applications are
/// fair, so if the goal is derivable at all it is found given enough
/// budget (Theorem 1's positive direction).
///
/// `program` may be empty (chasing with tgds only) and `tgds` may be empty
/// (plain bottom-up evaluation).
Result<ChaseResult> Chase(const Program& program, const std::vector<Tgd>& tgds,
                          Database* db, const ChaseBudget& budget = {},
                          const std::optional<ChaseGoal>& goal = std::nullopt,
                          ChaseTranscript* transcript = nullptr);

}  // namespace datalog

#endif  // DATALOG_CORE_CHASE_H_
