#include "core/constrained.h"

#include "ast/validate.h"
#include "core/model_containment.h"
#include "core/preservation.h"

namespace datalog {
namespace {

/// One deletion candidate's test: SAT(T) ∩ M(program) ⊆ M(candidate_rule),
/// assuming the caller already established that `program` preserves T.
Result<ProofOutcome> CandidateContained(const Program& program,
                                        const Rule& candidate,
                                        const std::vector<Tgd>& tgds,
                                        const ChaseBudget& budget) {
  return ModelContainmentForRule(program, tgds, candidate, budget);
}

}  // namespace

Result<ProofOutcome> UniformContainmentUnderConstraints(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p1));
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p2));

  // (a) p1 preserves T, so p1(SAT(T)) ⊆ SAT(T) and Corollary 1 applies.
  DATALOG_ASSIGN_OR_RETURN(ProofOutcome preserves,
                           PreservesNonRecursively(p1, tgds, budget));
  // (b) SAT(T) ∩ M(p1) ⊆ M(p2).
  DATALOG_ASSIGN_OR_RETURN(ProofOutcome models,
                           ModelContainment(p1, tgds, p2, budget));

  if (preserves == ProofOutcome::kProved && models == ProofOutcome::kProved) {
    return ProofOutcome::kProved;
  }
  if (preserves == ProofOutcome::kProved &&
      models == ProofOutcome::kDisproved) {
    // Corollary 1 is two-directional once p1(SAT(T)) ⊆ SAT(T) holds: a
    // model counterexample refutes the containment itself.
    return ProofOutcome::kDisproved;
  }
  return ProofOutcome::kUnknown;
}

Result<ProofOutcome> UniformEquivalenceUnderConstraints(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget) {
  DATALOG_ASSIGN_OR_RETURN(
      ProofOutcome forward,
      UniformContainmentUnderConstraints(p1, p2, tgds, budget));
  if (forward != ProofOutcome::kProved) return forward;
  return UniformContainmentUnderConstraints(p2, p1, tgds, budget);
}

Result<Program> MinimizeProgramUnderConstraints(
    const Program& program, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget, MinimizeReport* report) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  Program current = program;
  MinimizeReport total;

  // Preservation of the *current* program must hold for every committed
  // deletion (Corollary 1's precondition); recheck after each change.
  DATALOG_ASSIGN_OR_RETURN(ProofOutcome preserves,
                           PreservesNonRecursively(current, tgds, budget));

  // Phase 1: atoms (as in Fig. 2, but with the SAT(T)-relative test).
  for (std::size_t i = 0; i < current.NumRules(); ++i) {
    std::size_t pos = 0;
    while (pos < current.rules()[i].body().size()) {
      if (preserves != ProofOutcome::kProved) break;
      Rule candidate = current.rules()[i].WithoutBodyLiteral(pos);
      if (!candidate.IsSafe()) {
        ++pos;
        continue;
      }
      ++total.containment_tests;
      DATALOG_ASSIGN_OR_RETURN(
          ProofOutcome outcome,
          CandidateContained(current, candidate, tgds, budget));
      if (outcome != ProofOutcome::kProved) {
        ++pos;
        continue;
      }
      Program next = current.WithRuleReplaced(i, candidate);
      DATALOG_ASSIGN_OR_RETURN(ProofOutcome next_preserves,
                               PreservesNonRecursively(next, tgds, budget));
      if (next_preserves != ProofOutcome::kProved && !tgds.empty()) {
        // Committing would lose the precondition for future deletions;
        // keep the atom (a conservative choice; the deletion itself was
        // sound, but soundness of the *next* one could not be
        // re-established).
        ++pos;
        continue;
      }
      current = std::move(next);
      preserves = next_preserves;
      ++total.atoms_removed;
      // pos now points at the next atom.
    }
  }

  // Phase 2: rules.
  std::size_t i = 0;
  while (i < current.NumRules() && preserves == ProofOutcome::kProved) {
    Program without = current.WithoutRule(i);
    ++total.containment_tests;
    DATALOG_ASSIGN_OR_RETURN(
        ProofOutcome outcome,
        CandidateContained(without, current.rules()[i], tgds, budget));
    if (outcome != ProofOutcome::kProved) {
      ++i;
      continue;
    }
    // `without` must itself preserve T for subsequent deletions and for
    // the direction current ⊆_SAT(T) without... the trivial direction
    // needs nothing; checking `without` keeps the loop invariant.
    DATALOG_ASSIGN_OR_RETURN(ProofOutcome next_preserves,
                             PreservesNonRecursively(without, tgds, budget));
    if (next_preserves != ProofOutcome::kProved && !tgds.empty()) {
      ++i;
      continue;
    }
    current = std::move(without);
    preserves = next_preserves;
    ++total.rules_removed;
  }

  if (report != nullptr) report->Add(total);
  return current;
}

}  // namespace datalog
