#include "core/preservation.h"

#include <optional>

#include "ast/unify.h"
#include "ast/validate.h"
#include "core/freeze.h"
#include "core/tgd.h"
#include "eval/naive.h"

namespace datalog {
namespace {

/// Whether the procedure runs in full Fig. 3 mode or in the Section X
/// variant for preliminary databases.
enum class Mode {
  kPreservation,   // d is assumed to satisfy T; trivial rules available
  kPreliminary,    // d is a plain EDB; initialization rules only; no chase
};

/// The choice for one left-hand-side atom: a rule index into the candidate
/// rule list, or kInD meaning the atom is assumed to be in d directly
/// (the trivial rule Q(x..) :- Q(x..) of Section IX).
constexpr int kInD = -1;

/// A canonical database together with the (now ground) instantiation of
/// the tgd's universally quantified variables.
struct CanonicalCase {
  Database d;
  Binding lhs_binding;
};

/// Grounds `atom` by resolving through `subst` and freezing any remaining
/// variables ("the rest of the variables are instantiated to new distinct
/// constants", Section IX).
Tuple GroundAtom(const Atom& atom, const Substitution& subst,
                 FrozenConstantPool* pool) {
  Tuple tuple;
  tuple.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    Term resolved = subst.Resolve(t);
    tuple.push_back(resolved.is_constant() ? resolved.value()
                                           : pool->For(resolved.var()));
  }
  return tuple;
}

/// Builds the canonical database for one combination: each left-hand-side
/// atom of `tgd` is either assumed in d (choice kInD) or unified with the
/// head of its chosen candidate rule, whose body then goes into d.
/// Returns nullopt when some unification fails, in which case the
/// combination cannot produce the left-hand side and is vacuously safe.
std::optional<CanonicalCase> BuildCase(
    const Tgd& tgd, const std::vector<int>& combination,
    const std::vector<std::vector<const Rule*>>& candidates,
    const std::shared_ptr<SymbolTable>& symbols) {
  Substitution subst;
  std::vector<Atom> d_atoms;
  for (std::size_t i = 0; i < tgd.lhs().size(); ++i) {
    const Atom& lhs_atom = tgd.lhs()[i];
    int choice = combination[i];
    if (choice == kInD) {
      d_atoms.push_back(lhs_atom);
      continue;
    }
    Rule renamed = RenameApart(*candidates[i][static_cast<std::size_t>(choice)],
                               symbols.get());
    if (!UnifyAtoms(lhs_atom, renamed.head(), &subst)) {
      return std::nullopt;
    }
    for (const Literal& lit : renamed.body()) {
      d_atoms.push_back(lit.atom);
    }
  }

  FrozenConstantPool pool;
  CanonicalCase result{Database(symbols), {}};
  for (const Atom& atom : d_atoms) {
    result.d.AddFact(atom.predicate(), GroundAtom(atom, subst, &pool));
  }
  for (VariableId v : tgd.UniversalVariables()) {
    Term resolved = subst.Resolve(Term::Variable(v));
    result.lhs_binding.emplace(
        v, resolved.is_constant() ? resolved.value() : pool.For(resolved.var()));
  }
  return result;
}

/// Checks one canonical case: interleaves chasing d with T (preservation
/// mode only) with recomputing <d, P^n(d)> and testing whether the
/// instantiated left-hand side still exhibits a violation (the interleaved
/// loop described after Fig. 3).
Result<ProofOutcome> CheckCase(CanonicalCase kase, const Program& pn_program,
                               const Tgd& tau, const std::vector<Tgd>& all_tgds,
                               Mode mode, const ChaseBudget& budget) {
  NullPool nulls;
  for (std::size_t round = 0;; ++round) {
    // <d, P^n(d)>.
    Database with_pn(kase.d.symbols());
    with_pn.UnionWith(kase.d);
    DATALOG_RETURN_IF_ERROR(
        ApplyOnce(pn_program, kase.d, &with_pn, /*stats=*/nullptr).status());

    if (LhsInstantiationSatisfied(with_pn, tau, kase.lhs_binding)) {
      return ProofOutcome::kProved;  // no violation exhibited for this case
    }
    if (mode == Mode::kPreliminary) {
      // Nothing is ever added to d in this mode: the violation is real,
      // and d (all-extensional) is a genuine counterexample EDB.
      return ProofOutcome::kDisproved;
    }
    if (round >= budget.max_rounds ||
        static_cast<std::size_t>(nulls.allocated()) > budget.max_nulls ||
        kase.d.NumFacts() > budget.max_facts) {
      return ProofOutcome::kUnknown;
    }
    // d must satisfy T: apply one fair round of every tgd to d.
    std::size_t added = 0;
    for (const Tgd& tgd : all_tgds) {
      added += ApplyTgdRound(tgd, &kase.d, &nulls);
    }
    if (added == 0) {
      // d satisfies T, and <d, P^n(d)> violates tau: counterexample.
      return ProofOutcome::kDisproved;
    }
  }
}

/// `rule_pool` is the set of rules a left-hand-side atom may be unified
/// with, and the rules P^n applies: the whole program in preservation
/// mode, the initialization rules (or a bounded unfolding) in
/// preliminary-DB mode.
Result<ProofOutcome> RunProcedure(const Program& program,
                                  std::vector<Rule> rule_pool,
                                  const std::vector<Tgd>& tgds, Mode mode,
                                  const ChaseBudget& budget) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  const std::shared_ptr<SymbolTable>& symbols = program.symbols();
  std::set<PredicateId> intentional = program.IntentionalPredicates();

  Program pn_program(symbols);
  for (const Rule& rule : rule_pool) pn_program.AddRule(rule);

  bool any_unknown = false;
  for (const Tgd& tau : tgds) {
    // Candidate productions per left-hand-side atom.
    std::vector<std::vector<const Rule*>> candidates(tau.lhs().size());
    std::vector<bool> allow_in_d(tau.lhs().size(), false);
    for (std::size_t i = 0; i < tau.lhs().size(); ++i) {
      PredicateId pred = tau.lhs()[i].predicate();
      if (intentional.contains(pred)) {
        for (const Rule& rule : rule_pool) {
          if (rule.head().predicate() == pred) {
            candidates[i].push_back(&rule);
          }
        }
        // The trivial rule Q(x..) :- Q(x..) puts the atom in d; it exists
        // only in preservation mode (an input EDB has no intentional
        // facts, Section X).
        allow_in_d[i] = (mode == Mode::kPreservation);
      } else {
        allow_in_d[i] = true;  // extensional atoms are assumed in d
      }
    }

    // Odometer over the combinations. A position with no candidate rule
    // and no in-d option makes the left-hand side unproducible: vacuously
    // no violation from this tgd.
    std::vector<int> combo(tau.lhs().size());
    bool impossible = false;
    for (std::size_t i = 0; i < combo.size(); ++i) {
      combo[i] = allow_in_d[i] ? kInD : 0;
      if (!allow_in_d[i] && candidates[i].empty()) impossible = true;
    }
    if (impossible) continue;

    while (true) {
      std::optional<CanonicalCase> kase =
          BuildCase(tau, combo, candidates, symbols);
      if (kase.has_value()) {
        DATALOG_ASSIGN_OR_RETURN(
            ProofOutcome outcome,
            CheckCase(std::move(*kase), pn_program, tau, tgds, mode, budget));
        if (outcome == ProofOutcome::kDisproved) return outcome;
        if (outcome == ProofOutcome::kUnknown) any_unknown = true;
      }
      // Advance the odometer.
      std::size_t pos = 0;
      for (; pos < combo.size(); ++pos) {
        int next = combo[pos] + 1;
        int limit = static_cast<int>(candidates[pos].size());
        if (next < limit) {
          combo[pos] = next;
          break;
        }
        combo[pos] = allow_in_d[pos] ? kInD : 0;
      }
      if (pos == combo.size()) break;  // odometer wrapped: done
    }
  }
  return any_unknown ? ProofOutcome::kUnknown : ProofOutcome::kProved;
}

}  // namespace

std::vector<Rule> InitializationRules(const Program& program) {
  std::set<PredicateId> intentional = program.IntentionalPredicates();
  std::vector<Rule> init;
  for (const Rule& rule : program.rules()) {
    bool all_extensional = true;
    for (const Literal& lit : rule.body()) {
      if (intentional.contains(lit.atom.predicate())) {
        all_extensional = false;
        break;
      }
    }
    if (all_extensional) init.push_back(rule);
  }
  return init;
}

Result<ProofOutcome> PreservesNonRecursively(const Program& program,
                                             const std::vector<Tgd>& tgds,
                                             const ChaseBudget& budget) {
  return RunProcedure(program, program.rules(), tgds, Mode::kPreservation,
                      budget);
}

Result<ProofOutcome> PreliminaryDbSatisfies(const Program& program,
                                            const std::vector<Tgd>& tgds,
                                            const ChaseBudget& budget) {
  return RunProcedure(program, InitializationRules(program), tgds,
                      Mode::kPreliminary, budget);
}

Result<ProofOutcome> PreliminaryDbSatisfiesUnfolded(
    const Program& program, const std::vector<Tgd>& tgds,
    const ExpandLimits& limits, const ChaseBudget& budget) {
  return RunProcedure(program, ExpandRules(program, limits), tgds,
                      Mode::kPreliminary, budget);
}

}  // namespace datalog
