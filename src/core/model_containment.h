#ifndef DATALOG_CORE_MODEL_CONTAINMENT_H_
#define DATALOG_CORE_MODEL_CONTAINMENT_H_

#include <vector>

#include "ast/program.h"
#include "ast/rule.h"
#include "core/chase.h"
#include "core/proof_outcome.h"
#include "util/result.h"

namespace datalog {

/// Tests SAT(T) ∩ M(P) ⊆ M(r) for a single rule r by the chase of
/// Theorem 1: freeze r's body, chase it with [P, T], and look for the
/// frozen head. kProved when the head appears; kDisproved when the chase
/// reaches a fixpoint without it (the fixpoint is a counterexample model);
/// kUnknown when the budget runs out first (possible only with embedded
/// tgds).
/// `transcript`, when non-null, records the chase steps (the paper's
/// Example 6/11-style narration of how the frozen head was derived, or of
/// the counterexample fixpoint).
Result<ProofOutcome> ModelContainmentForRule(const Program& p,
                                             const std::vector<Tgd>& tgds,
                                             const Rule& r,
                                             const ChaseBudget& budget = {},
                                             ChaseTranscript* transcript =
                                                 nullptr);

/// Tests SAT(T) ∩ M(P1) ⊆ M(P2): the conjunction of the per-rule tests
/// over the rules of P2 (Section VIII). With empty `tgds` this decides
/// uniform containment P2 ⊆ᵘ P1 (Proposition 2 / Corollary 2) and never
/// returns kUnknown.
Result<ProofOutcome> ModelContainment(const Program& p1,
                                      const std::vector<Tgd>& tgds,
                                      const Program& p2,
                                      const ChaseBudget& budget = {});

}  // namespace datalog

#endif  // DATALOG_CORE_MODEL_CONTAINMENT_H_
