#include "core/minimize.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "ast/validate.h"
#include "core/uniform_containment.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// The order in which n items are considered: textual, or shuffled when a
/// seed is supplied.
std::vector<std::size_t> ConsiderationOrder(std::size_t n,
                                            const MinimizeOptions& options,
                                            std::uint64_t salt) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.shuffle_seed.has_value()) {
    std::mt19937_64 rng(*options.shuffle_seed + salt);
    std::shuffle(order.begin(), order.end(), rng);
  }
  return order;
}

/// Minimizes the atoms of the rule at `rule_index` of `program`, testing
/// each candidate deletion against the whole current program (the Fig. 2
/// refinement of Fig. 1: the test is r-hat subseteq^u P, not
/// r-hat subseteq^u r). Mutates the rule in place.
Result<MinimizeReport> MinimizeRuleAtoms(Program* program,
                                         std::size_t rule_index,
                                         const MinimizeOptions& options,
                                         std::size_t* remaining_tests) {
  MinimizeReport report;
  TraceSpan span("minimize/rule_atoms");
  span.Note("rule", rule_index);
  const std::size_t original_size =
      program->rules()[rule_index].body().size();
  // `pending[i]` is the ORIGINAL position of the i-th body atom of the
  // current rule; atoms are considered once each, in order of original
  // position (or shuffled).
  std::vector<std::size_t> pending(original_size);
  std::iota(pending.begin(), pending.end(), 0);

  for (std::size_t original_pos :
       ConsiderationOrder(original_size, options, rule_index * 7919)) {
    // Locate the atom's current position; it may have shifted left after
    // earlier deletions, or be gone (it cannot be gone: we delete only the
    // atom under consideration, and each atom is considered once).
    auto it = std::find(pending.begin(), pending.end(), original_pos);
    if (it == pending.end()) continue;
    std::size_t current_pos = static_cast<std::size_t>(it - pending.begin());

    const Rule& rule = program->rules()[rule_index];
    Rule candidate = rule.WithoutBodyLiteral(current_pos);
    if (!candidate.IsSafe()) continue;  // deletion would orphan a head variable

    if (remaining_tests != nullptr) {
      if (*remaining_tests == 0) {
        report.budget_exhausted = true;
        break;
      }
      --*remaining_tests;
    }
    ++report.containment_tests;
    DATALOG_ASSIGN_OR_RETURN(bool redundant,
                             UniformlyContainsRule(*program, candidate));
    if (redundant) {
      report.removed_atoms.push_back(MinimizeReport::RemovedAtom{
          rule_index, rule.body()[current_pos].atom});
      program->mutable_rules()[rule_index] = std::move(candidate);
      pending.erase(it);
      ++report.atoms_removed;
    }
  }
  if (span.active()) {
    span.Note("containment_tests",
              static_cast<std::uint64_t>(report.containment_tests));
    span.Note("atoms_removed",
              static_cast<std::uint64_t>(report.atoms_removed));
  }
  return report;
}

}  // namespace

Result<Rule> MinimizeRule(const Rule& rule,
                          std::shared_ptr<SymbolTable> symbols,
                          MinimizeReport* report,
                          const MinimizeOptions& options) {
  Program single(std::move(symbols));
  single.AddRule(rule);
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(single));
  std::size_t remaining = options.max_containment_tests;
  std::size_t* budget = options.max_containment_tests == 0 ? nullptr
                                                           : &remaining;
  DATALOG_ASSIGN_OR_RETURN(MinimizeReport r,
                           MinimizeRuleAtoms(&single, 0, options, budget));
  if (report != nullptr) report->Add(r);
  return single.rules()[0];
}

Result<Program> MinimizeStratifiedProgram(const Program& program,
                                          MinimizeReport* report,
                                          const MinimizeOptions& options) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  // Split: positive rules are candidates; rules with negated literals are
  // kept verbatim (their minimization needs the forthcoming-paper theory).
  Program positive(program.symbols());
  for (const Rule& rule : program.rules()) {
    if (rule.IsPositive()) positive.AddRule(rule);
  }
  DATALOG_ASSIGN_OR_RETURN(Program minimized_positive,
                           MinimizeProgram(positive, report, options));

  // Reassemble: minimized positive rules first (their relative order is
  // preserved by Fig. 2), then the untouched negation rules. Rule order
  // has no semantic weight; only the relative order within each group is
  // kept for readability.
  Program out(program.symbols());
  for (const Rule& rule : minimized_positive.rules()) {
    out.AddRule(rule);
  }
  for (const Rule& rule : program.rules()) {
    if (!rule.IsPositive()) out.AddRule(rule);
  }
  return out;
}

Result<bool> AtomAdditionIsSound(const Program& program,
                                 std::size_t rule_index, const Atom& atom) {
  if (rule_index >= program.NumRules()) {
    return Status::InvalidArgument("rule index out of range");
  }
  Rule strengthened = program.rules()[rule_index];
  strengthened.mutable_body().push_back(Literal{atom, /*negated=*/false});
  Program candidate = program.WithRuleReplaced(rule_index, strengthened);
  // The strengthened program is trivially contained in the original (its
  // rule derives less); the replacement is an equivalence iff the
  // original rule is still uniformly derivable.
  return UniformlyContainsRule(candidate, program.rules()[rule_index]);
}

Result<Program> MinimizeProgram(const Program& program,
                                MinimizeReport* report,
                                const MinimizeOptions& options) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("minimize/program");
  span.Note("rules", program.NumRules());
  Program current = program;
  MinimizeReport total;
  std::size_t remaining = options.max_containment_tests;
  std::size_t* budget = options.max_containment_tests == 0 ? nullptr
                                                           : &remaining;

  // Phase 1 (Fig. 2, first loop): remove redundant atoms from every rule.
  // This must complete before any rule is deleted; Theorem 2's proof
  // depends on rules keeping their bodies intact until phase 2.
  for (std::size_t i = 0; i < current.NumRules(); ++i) {
    DATALOG_ASSIGN_OR_RETURN(MinimizeReport r,
                             MinimizeRuleAtoms(&current, i, options, budget));
    total.Add(r);
    if (total.budget_exhausted) break;
  }

  // Phase 2 (Fig. 2, second loop): remove redundant rules, each considered
  // once.
  std::vector<bool> alive(current.NumRules(), true);
  for (std::size_t original_index :
       ConsiderationOrder(current.NumRules(), options, /*salt=*/104729)) {
    if (total.budget_exhausted) break;
    if (budget != nullptr) {
      if (*budget == 0) {
        total.budget_exhausted = true;
        break;
      }
      --*budget;
    }
    // Current index of this rule = count of alive rules before it.
    std::size_t current_index = 0;
    for (std::size_t j = 0; j < original_index; ++j) {
      if (alive[j]) ++current_index;
    }
    const Rule rule = current.rules()[current_index];
    Program without = current.WithoutRule(current_index);
    ++total.containment_tests;
    TraceSpan candidate_span("minimize/rule_candidate");
    candidate_span.Note("rule", original_index);
    DATALOG_ASSIGN_OR_RETURN(bool redundant,
                             UniformlyContainsRule(without, rule));
    candidate_span.Note("redundant", redundant ? 1 : 0);
    candidate_span.End();
    if (redundant) {
      total.removed_rules.push_back(rule);
      total.removed_rule_indices.push_back(original_index);
      current = std::move(without);
      alive[original_index] = false;
      ++total.rules_removed;
    }
  }

  if (span.active()) {
    span.Note("containment_tests",
              static_cast<std::uint64_t>(total.containment_tests));
    span.Note("atoms_removed",
              static_cast<std::uint64_t>(total.atoms_removed));
    span.Note("rules_removed",
              static_cast<std::uint64_t>(total.rules_removed));
  }
  MetricsRegistry& metrics = MetricsRegistry::Get();
  if (metrics.enabled()) {
    metrics.Add("minimize.runs", {}, 1);
    metrics.Add("minimize.containment_tests", {},
                static_cast<std::uint64_t>(total.containment_tests));
    metrics.Add("minimize.atoms_removed", {},
                static_cast<std::uint64_t>(total.atoms_removed));
    metrics.Add("minimize.rules_removed", {},
                static_cast<std::uint64_t>(total.rules_removed));
  }
  if (report != nullptr) report->Add(total);
  return current;
}

}  // namespace datalog
