#include "core/pipeline.h"

#include "core/equivalence_optimizer.h"
#include "core/relevance.h"

namespace datalog {

Result<QueryPlan> PlanQuery(const Program& program, const Atom& query,
                            const PlanOptions& options) {
  QueryPlan plan;
  DATALOG_ASSIGN_OR_RETURN(plan.restricted,
                           RestrictToQuery(program, query.predicate()));
  DATALOG_ASSIGN_OR_RETURN(plan.optimized,
                           MinimizeProgram(plan.restricted, &plan.report));
  if (options.equivalence_pass) {
    EquivalenceOptimizerOptions eq_options;
    eq_options.budget = options.budget;
    DATALOG_ASSIGN_OR_RETURN(EquivalenceOptimizeResult result,
                             OptimizeUnderEquivalence(plan.optimized,
                                                      eq_options));
    for (const EquivalenceRemoval& removal : result.removals) {
      plan.report.atoms_removed += removal.removed.size();
    }
    plan.optimized = std::move(result.program);
  }
  DATALOG_ASSIGN_OR_RETURN(
      plan.magic, MagicSetsTransform(plan.optimized, query, options.magic));
  return plan;
}

}  // namespace datalog
