#include "core/pipeline.h"

#include "core/equivalence_optimizer.h"
#include "core/relevance.h"
#include "obs/trace.h"

namespace datalog {

Result<QueryPlan> PlanQuery(const Program& program, const Atom& query,
                            const PlanOptions& options) {
  TraceSpan span("pipeline/plan");
  span.Note("rules", program.NumRules());
  QueryPlan plan;
  {
    TraceSpan restrict_span("pipeline/restrict");
    DATALOG_ASSIGN_OR_RETURN(plan.restricted,
                             RestrictToQuery(program, query.predicate()));
    restrict_span.Note("rules", plan.restricted.NumRules());
  }
  {
    TraceSpan minimize_span("pipeline/minimize");
    DATALOG_ASSIGN_OR_RETURN(plan.optimized,
                             MinimizeProgram(plan.restricted, &plan.report));
    minimize_span.Note("rules", plan.optimized.NumRules());
  }
  if (options.equivalence_pass) {
    TraceSpan eq_span("pipeline/equivalence");
    EquivalenceOptimizerOptions eq_options;
    eq_options.budget = options.budget;
    DATALOG_ASSIGN_OR_RETURN(EquivalenceOptimizeResult result,
                             OptimizeUnderEquivalence(plan.optimized,
                                                      eq_options));
    for (const EquivalenceRemoval& removal : result.removals) {
      plan.report.atoms_removed += removal.removed.size();
    }
    eq_span.Note("removals", result.removals.size());
    plan.optimized = std::move(result.program);
  }
  {
    TraceSpan magic_span("pipeline/magic");
    DATALOG_ASSIGN_OR_RETURN(
        plan.magic, MagicSetsTransform(plan.optimized, query, options.magic));
    magic_span.Note("rules", plan.magic.program.NumRules());
  }
  span.Note("optimized_rules", plan.optimized.NumRules());
  return plan;
}

}  // namespace datalog
