#ifndef DATALOG_CORE_UNIFORM_CONTAINMENT_H_
#define DATALOG_CORE_UNIFORM_CONTAINMENT_H_

#include <optional>

#include "ast/program.h"
#include "ast/rule.h"
#include "eval/database.h"
#include "util/result.h"

namespace datalog {

/// Tests whether the single-rule program `r` is uniformly contained in `p`
/// (r subseteq^u p, Section VI / Corollary 2): the variables of `r` are
/// frozen to distinct constants, `p` is computed bottom-up over the frozen
/// body, and the containment holds iff the frozen head is derived. Always
/// terminates (no new constants are ever introduced).
///
/// Both programs must be positive and safe; the rule's head predicate need
/// not be intentional in `p` (Section IV allows mixed vocabularies).
Result<bool> UniformlyContainsRule(const Program& p, const Rule& r);

/// Tests p2 subseteq^u p1: every rule of p2 must be uniformly contained in
/// p1 (Section VI: M(P1) subseteq M(P2) iff M(P1) subseteq M(r) for every
/// rule r of P2).
Result<bool> UniformlyContains(const Program& p1, const Program& p2);

/// Tests p1 ==^u p2 (uniform equivalence, Section IV).
Result<bool> UniformlyEquivalent(const Program& p1, const Program& p2);

/// A refutation of r subseteq^u p: a concrete input database (the frozen
/// body of r) on which {r} derives `missing_fact` but p does not. Running
/// p over `input` yields a model of p that is not a model of r -- the
/// counterexample Corollary 2 guarantees.
struct UniformContainmentWitness {
  Database input;
  PredicateId missing_pred;
  Tuple missing_fact;
};

/// Like UniformlyContainsRule, but on failure also produces the
/// counterexample input (useful for error messages and the CLI's
/// explain mode). Returns nullopt when the containment HOLDS.
Result<std::optional<UniformContainmentWitness>>
RefuteUniformContainment(const Program& p, const Rule& r);

}  // namespace datalog

#endif  // DATALOG_CORE_UNIFORM_CONTAINMENT_H_
