#ifndef DATALOG_CORE_EQUIVALENCE_H_
#define DATALOG_CORE_EQUIVALENCE_H_

#include <vector>

#include "ast/program.h"
#include "core/chase.h"
#include "core/proof_outcome.h"
#include "util/result.h"

namespace datalog {

/// The three sub-proofs of the Section X recipe for showing P2 ⊆ P1 (with
/// condition (3') replacing (3) and (4), as the paper's final remark
/// allows), plus the combined verdict.
struct ContainmentProof {
  /// (1) SAT(T) ∩ M(P1) ⊆ M(P2), by the chase of Section VIII.
  ProofOutcome model_containment = ProofOutcome::kUnknown;
  /// (2) P1 preserves T, shown non-recursively by the Fig. 3 procedure.
  ProofOutcome preservation = ProofOutcome::kUnknown;
  /// (3') the preliminary DB of P1 satisfies T.
  ProofOutcome preliminary_db = ProofOutcome::kUnknown;
  /// kProved when all three are proved; otherwise kUnknown. The recipe is
  /// sufficient but not necessary, so a failed sub-proof never disproves
  /// the containment itself.
  ProofOutcome overall = ProofOutcome::kUnknown;
};

/// Attempts to prove P2 ⊆ P1 (containment under ordinary equivalence,
/// which is undecidable in general) using the tgds `tgds`, by the monotone
/// argument at the end of Section X: P2 ⊆_SAT(T) P1 plus a preliminary DB
/// of P1 that satisfies T imply P2 ⊆ P1.
Result<ContainmentProof> ProveContainmentWithTgds(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget = {});

/// The result of an equivalence attempt.
struct EquivalenceProof {
  /// P1 ⊆ᵘ P2 (decidable; establishes P1 ⊆ P2).
  bool uniform_forward = false;
  /// The tgd-based proof of P2 ⊆ P1.
  ContainmentProof backward;
  ProofOutcome overall = ProofOutcome::kUnknown;
};

/// Attempts to prove P1 ≡ P2 where P2 is a weakening of P1 (e.g. P1 with
/// atoms deleted, so that P1 ⊆ᵘ P2 is expected): checks P1 ⊆ᵘ P2 exactly
/// and P2 ⊆ P1 by the tgd recipe. Overall kProved iff both succeed;
/// kDisproved iff P1 ⊄ᵘ P2... note that even then the programs might be
/// equivalent, so kUnknown is reported instead; the verdict is never a
/// definite "not equivalent".
Result<EquivalenceProof> ProveEquivalentWithTgds(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget = {});

}  // namespace datalog

#endif  // DATALOG_CORE_EQUIVALENCE_H_
