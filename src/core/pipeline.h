#ifndef DATALOG_CORE_PIPELINE_H_
#define DATALOG_CORE_PIPELINE_H_

#include "ast/atom.h"
#include "ast/program.h"
#include "core/chase.h"
#include "core/minimize.h"
#include "eval/magic_sets.h"
#include "util/result.h"

namespace datalog {

/// Options for the end-to-end query-optimization pipeline.
struct PlanOptions {
  /// Run the Section XI equivalence optimizer after Fig. 2. Off by
  /// default: it is a heuristic search and costs more than the rest of
  /// the pipeline combined.
  bool equivalence_pass = false;
  ChaseBudget budget;
  MagicOptions magic;
};

/// The artifacts of planning one query, in pipeline order.
struct QueryPlan {
  /// Rules irrelevant to the query predicate removed (graph-based).
  Program restricted;
  /// ... then minimized under uniform equivalence (Fig. 2), optionally
  /// followed by the Section XI equivalence pass.
  Program optimized;
  /// ... then rewritten with magic sets for the query's binding pattern.
  MagicProgram magic;
  MinimizeReport report;
};

/// The full optimization pipeline the paper's introduction sketches:
/// remove redundant parts first (they "can only speed up" the magic-set
/// computation), then rewrite for the query. Compose as
///   relevance -> Fig. 2 [-> Section XI] -> magic sets.
Result<QueryPlan> PlanQuery(const Program& program, const Atom& query,
                            const PlanOptions& options = {});

}  // namespace datalog

#endif  // DATALOG_CORE_PIPELINE_H_
