#ifndef DATALOG_CORE_RELEVANCE_H_
#define DATALOG_CORE_RELEVANCE_H_

#include <set>

#include "ast/program.h"
#include "util/result.h"

namespace datalog {

/// Removes rules that cannot contribute to `query_pred`: a rule is kept
/// iff its head predicate is `query_pred` or reaches it in the dependence
/// graph. This is the classic relevance (dead-code) pass run before the
/// magic-sets rewrite; unlike the minimization of Section VII it uses only
/// the graph, so it is linear-time and complements (never subsumes) the
/// semantic minimizer.
///
/// The returned program is equivalent to the input *with respect to the
/// query predicate*: for every EDB, both compute the same relation for
/// `query_pred` (they may differ on other intentional predicates).
Result<Program> RestrictToQuery(const Program& program,
                                PredicateId query_pred);

/// The predicates on which `query_pred` (transitively) depends, including
/// itself.
std::set<PredicateId> RelevantPredicates(const Program& program,
                                         PredicateId query_pred);

}  // namespace datalog

#endif  // DATALOG_CORE_RELEVANCE_H_
