#include "core/tgd.h"

namespace datalog {
namespace {

/// Replaces bound variables by their constants; unbound (existential)
/// variables stay variables.
Atom BindAtom(const Atom& atom, const Binding& binding) {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    if (t.is_variable()) {
      auto it = binding.find(t.var());
      args.push_back(it == binding.end() ? t : Term::Constant(it->second));
    } else {
      args.push_back(t);
    }
  }
  return Atom(atom.predicate(), std::move(args));
}

std::vector<PlannedAtom> AsPlanned(const std::vector<Atom>& atoms,
                                   const Binding& binding) {
  std::vector<PlannedAtom> planned;
  planned.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    planned.push_back(PlannedAtom{BindAtom(atom, binding), AtomSource::kFull});
  }
  return planned;
}

}  // namespace

bool LhsInstantiationSatisfied(const Database& db, const Tgd& tgd,
                               const Binding& lhs_binding) {
  bool found = false;
  MatchAtoms(db, /*delta=*/nullptr, AsPlanned(tgd.rhs(), lhs_binding),
             [&found](const Binding&) {
               found = true;
               return false;  // stop at the first witness
             },
             /*stats=*/nullptr);
  return found;
}

bool SatisfiesTgd(const Database& db, const Tgd& tgd) {
  bool satisfied = true;
  MatchAtoms(db, /*delta=*/nullptr, AsPlanned(tgd.lhs(), /*binding=*/{}),
             [&](const Binding& binding) {
               if (!LhsInstantiationSatisfied(db, tgd, binding)) {
                 satisfied = false;
                 return false;  // found a violation; stop
               }
               return true;
             },
             /*stats=*/nullptr);
  return satisfied;
}

bool SatisfiesAll(const Database& db, const std::vector<Tgd>& tgds) {
  for (const Tgd& tgd : tgds) {
    if (!SatisfiesTgd(db, tgd)) return false;
  }
  return true;
}

std::size_t ApplyTgdRound(const Tgd& tgd, Database* db, NullPool* pool) {
  // Collect the violating instantiations first: the database must not be
  // mutated while the matcher iterates it.
  std::vector<Binding> violations;
  MatchAtoms(*db, /*delta=*/nullptr, AsPlanned(tgd.lhs(), /*binding=*/{}),
             [&](const Binding& binding) {
               if (!LhsInstantiationSatisfied(*db, tgd, binding)) {
                 violations.push_back(binding);
               }
               return true;
             },
             /*stats=*/nullptr);

  std::size_t added = 0;
  for (const Binding& binding : violations) {
    // An atom added for an earlier violation in this round may have
    // repaired this one; the paper's chase only fires when no extension
    // exists ("provided the DB contains neither ... nor a pair of atoms of
    // the form ...", Section VIII).
    if (LhsInstantiationSatisfied(*db, tgd, binding)) continue;
    Binding extended = binding;
    for (VariableId v : tgd.ExistentialVariables()) {
      extended.emplace(v, pool->Fresh());
    }
    for (const Atom& atom : tgd.rhs()) {
      Tuple tuple = InstantiateHead(atom, extended);
      if (db->AddFact(atom.predicate(), std::move(tuple))) ++added;
    }
  }
  return added;
}

}  // namespace datalog
