#include "core/model_containment.h"

#include "core/freeze.h"

namespace datalog {

Result<ProofOutcome> ModelContainmentForRule(const Program& p,
                                             const std::vector<Tgd>& tgds,
                                             const Rule& r,
                                             const ChaseBudget& budget,
                                             ChaseTranscript* transcript) {
  DATALOG_ASSIGN_OR_RETURN(FrozenRule frozen, FreezeRule(r, p.symbols()));
  ChaseGoal goal{frozen.head_pred, frozen.head_tuple};
  DATALOG_ASSIGN_OR_RETURN(
      ChaseResult chase,
      Chase(p, tgds, &frozen.body, budget, goal, transcript));
  switch (chase.status) {
    case ChaseStatus::kGoalReached:
      return ProofOutcome::kProved;
    case ChaseStatus::kFixpoint:
      // frozen.body is now a DB in SAT(T) ∩ M(P) that is not a model of
      // r: a genuine counterexample (nulls are ordinary constants).
      return ProofOutcome::kDisproved;
    case ChaseStatus::kBudgetExhausted:
      return ProofOutcome::kUnknown;
  }
  return Status::Internal("unreachable chase status");
}

Result<ProofOutcome> ModelContainment(const Program& p1,
                                      const std::vector<Tgd>& tgds,
                                      const Program& p2,
                                      const ChaseBudget& budget) {
  bool any_unknown = false;
  for (const Rule& rule : p2.rules()) {
    DATALOG_ASSIGN_OR_RETURN(ProofOutcome outcome,
                             ModelContainmentForRule(p1, tgds, rule, budget));
    if (outcome == ProofOutcome::kDisproved) return ProofOutcome::kDisproved;
    if (outcome == ProofOutcome::kUnknown) any_unknown = true;
  }
  return any_unknown ? ProofOutcome::kUnknown : ProofOutcome::kProved;
}

}  // namespace datalog
