#ifndef DATALOG_CORE_FREEZE_H_
#define DATALOG_CORE_FREEZE_H_

#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ast/rule.h"
#include "eval/database.h"
#include "util/result.h"

namespace datalog {

/// Allocates frozen constants — the "distinct constants that are not
/// already in r" of Section VI. Each FrozenConstantPool hands out globally
/// unique frozen values within one operation; frozen values can never
/// collide with program constants because they have their own ValueKind.
class FrozenConstantPool {
 public:
  FrozenConstantPool() = default;

  /// The frozen constant for variable `v` (allocated on first request).
  Value For(VariableId v);

  /// A fresh frozen constant not tied to any variable.
  Value Fresh() { return Value::Frozen(next_++); }

 private:
  std::unordered_map<VariableId, Value> assigned_;
  std::int32_t next_ = 0;
};

/// The result of freezing a rule: its body as a canonical database and its
/// head as a ground fact, under the same one-to-one substitution theta.
struct FrozenRule {
  Database body;         // b theta (Section VI)
  PredicateId head_pred;
  Tuple head_tuple;      // h theta
};

/// Applies a one-to-one substitution of fresh frozen constants for the
/// variables of `rule` and returns the instantiated body and head
/// (Section VI). The rule must be positive; negated literals cannot occur
/// in the uniform-containment machinery.
Result<FrozenRule> FreezeRule(const Rule& rule,
                              std::shared_ptr<SymbolTable> symbols);

/// Freezes a conjunction of atoms (used for tgd left-hand sides in Fig. 3),
/// sharing one pool so that shared variables freeze consistently.
Result<Database> FreezeAtoms(const std::vector<Atom>& atoms,
                             std::shared_ptr<SymbolTable> symbols,
                             FrozenConstantPool* pool);

/// Instantiates a single atom under `pool` (every variable becomes its
/// frozen constant). Requires the atom's variables to be registered or
/// registers them on the fly.
Tuple FreezeAtom(const Atom& atom, FrozenConstantPool* pool);

}  // namespace datalog

#endif  // DATALOG_CORE_FREEZE_H_
