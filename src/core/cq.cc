#include "core/cq.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ast/dependence_graph.h"
#include "ast/validate.h"
#include "core/unfold.h"

namespace datalog {
namespace {

/// A candidate homomorphism: q1 variables to q2 terms (constants are fixed
/// points by definition).
using Mapping = std::unordered_map<VariableId, Term>;

/// Extends `mapping` so that hom(from) == to, argument-wise. Returns false
/// on conflict; on false, `mapping` may contain partial additions, so
/// callers backtrack on a copy.
bool MapAtom(const Atom& from, const Atom& to, Mapping* mapping) {
  if (from.predicate() != to.predicate()) return false;
  if (from.args().size() != to.args().size()) return false;
  for (std::size_t i = 0; i < from.args().size(); ++i) {
    const Term& s = from.args()[i];
    const Term& t = to.args()[i];
    if (s.is_constant()) {
      if (!(t.is_constant() && t.value() == s.value())) return false;
      continue;
    }
    auto [it, inserted] = mapping->emplace(s.var(), t);
    if (!inserted && it->second != t) return false;
  }
  return true;
}

bool SearchHom(const std::vector<Atom>& from_body,
               const std::vector<Atom>& to_body, std::size_t depth,
               const Mapping& mapping) {
  if (depth == from_body.size()) return true;
  for (const Atom& target : to_body) {
    Mapping extended = mapping;
    if (MapAtom(from_body[depth], target, &extended) &&
        SearchHom(from_body, to_body, depth + 1, extended)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<bool> HasContainmentMapping(const Rule& q1, const Rule& q2) {
  if (!q1.IsPositive() || !q2.IsPositive()) {
    return Status::InvalidArgument(
        "containment mappings are defined for positive rules");
  }
  if (q1.head().predicate() != q2.head().predicate()) {
    return Status::InvalidArgument(
        "containment mapping requires identical head predicates");
  }
  Mapping mapping;
  if (!MapAtom(q1.head(), q2.head(), &mapping)) return false;
  return SearchHom(q1.PositiveBodyAtoms(), q2.PositiveBodyAtoms(), 0, mapping);
}

Result<Rule> MinimizeCq(const Rule& q, std::shared_ptr<SymbolTable> symbols) {
  DATALOG_RETURN_IF_ERROR(ValidateRule(q, *symbols));
  if (!q.IsPositive()) {
    return Status::InvalidArgument("MinimizeCq requires a positive rule");
  }
  Rule current = q;
  // Consider each atom once (as in Fig. 1; the same once-suffices argument
  // applies to cores of conjunctive queries).
  std::size_t pos = 0;
  while (pos < current.body().size()) {
    Rule candidate = current.WithoutBodyLiteral(pos);
    if (!candidate.IsSafe()) {
      ++pos;
      continue;
    }
    // current ⊆ candidate holds trivially (fewer atoms restrict less);
    // the deletion is sound iff also candidate ⊆ current, witnessed by a
    // containment mapping from current to candidate.
    DATALOG_ASSIGN_OR_RETURN(bool hom,
                             HasContainmentMapping(current, candidate));
    if (hom) {
      current = std::move(candidate);  // pos now points at the next atom
    } else {
      ++pos;
    }
  }
  return current;
}

Result<bool> CqUnionContains(const std::vector<Rule>& q1,
                             const std::vector<Rule>& q2) {
  for (const Rule& member : q2) {
    bool covered = false;
    for (const Rule& candidate : q1) {
      if (candidate.head().predicate() != member.head().predicate()) {
        return Status::InvalidArgument(
            "union containment requires a single head predicate");
      }
      DATALOG_ASSIGN_OR_RETURN(bool hom,
                               HasContainmentMapping(candidate, member));
      if (hom) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

Result<std::vector<Rule>> MinimizeCqUnion(
    const std::vector<Rule>& queries, std::shared_ptr<SymbolTable> symbols) {
  // Drop members subsumed by another member (each considered once; a
  // member may be subsumed by one that is itself dropped later only if a
  // survivor also subsumes it -- subsumption is transitive through the
  // homomorphism composition, so checking against the CURRENT union is
  // sound and complete).
  std::vector<Rule> survivors = queries;
  std::size_t pos = 0;
  while (pos < survivors.size()) {
    bool subsumed = false;
    for (std::size_t j = 0; j < survivors.size() && !subsumed; ++j) {
      if (j == pos) continue;
      DATALOG_ASSIGN_OR_RETURN(
          bool hom, HasContainmentMapping(survivors[j], survivors[pos]));
      if (hom) subsumed = true;
    }
    if (subsumed) {
      survivors.erase(survivors.begin() + static_cast<std::ptrdiff_t>(pos));
    } else {
      ++pos;
    }
  }
  for (Rule& rule : survivors) {
    DATALOG_ASSIGN_OR_RETURN(rule, MinimizeCq(rule, symbols));
  }
  return survivors;
}

Result<bool> InitializationProgramsEquivalent(const Program& p1,
                                              const Program& p2) {
  auto init_by_head = [](const Program& p) {
    std::set<PredicateId> intentional = p.IntentionalPredicates();
    std::map<PredicateId, std::vector<Rule>> groups;
    for (const Rule& rule : p.rules()) {
      bool all_extensional = true;
      for (const Literal& lit : rule.body()) {
        if (intentional.contains(lit.atom.predicate())) {
          all_extensional = false;
          break;
        }
      }
      if (all_extensional) groups[rule.head().predicate()].push_back(rule);
    }
    return groups;
  };

  std::map<PredicateId, std::vector<Rule>> g1 = init_by_head(p1);
  std::map<PredicateId, std::vector<Rule>> g2 = init_by_head(p2);
  std::set<PredicateId> heads;
  for (const auto& [pred, rules] : g1) heads.insert(pred);
  for (const auto& [pred, rules] : g2) heads.insert(pred);

  for (PredicateId pred : heads) {
    const std::vector<Rule>& u1 = g1[pred];
    const std::vector<Rule>& u2 = g2[pred];
    if (u1.empty() != u2.empty()) return false;
    DATALOG_ASSIGN_OR_RETURN(bool forward, CqUnionContains(u1, u2));
    if (!forward) return false;
    DATALOG_ASSIGN_OR_RETURN(bool backward, CqUnionContains(u2, u1));
    if (!backward) return false;
  }
  return true;
}

Result<bool> NonRecursiveProgramsEquivalent(const Program& p1,
                                            const Program& p2) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p1));
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(p2));
  DependenceGraph g1(p1), g2(p2);
  if (g1.IsRecursive() || g2.IsRecursive()) {
    return Status::InvalidArgument(
        "NonRecursiveProgramsEquivalent requires non-recursive programs");
  }

  // Completely unfold both programs: a non-recursive program with k
  // intentional predicates flattens within k rounds.
  auto flatten = [](const Program& p) -> Result<std::vector<Rule>> {
    ExpandLimits limits;
    limits.max_depth = p.IntentionalPredicates().size() + 1;
    limits.max_rules = 4096;
    bool truncated = false;
    std::vector<Rule> flat = ExpandRules(p, limits, &truncated);
    if (truncated) {
      return Status::ResourceExhausted(
          "non-recursive unfolding exceeded the expansion cap");
    }
    return flat;
  };
  DATALOG_ASSIGN_OR_RETURN(std::vector<Rule> flat1, flatten(p1));
  DATALOG_ASSIGN_OR_RETURN(std::vector<Rule> flat2, flatten(p2));

  auto group = [](const std::vector<Rule>& rules) {
    std::map<PredicateId, std::vector<Rule>> groups;
    for (const Rule& rule : rules) {
      groups[rule.head().predicate()].push_back(rule);
    }
    return groups;
  };
  std::map<PredicateId, std::vector<Rule>> u1 = group(flat1);
  std::map<PredicateId, std::vector<Rule>> u2 = group(flat2);

  std::set<PredicateId> heads;
  for (const auto& [pred, rules] : u1) heads.insert(pred);
  for (const auto& [pred, rules] : u2) heads.insert(pred);
  // Every intentional predicate of either program must be compared, even
  // one with no flattened definition (it computes the empty relation).
  for (PredicateId pred : p1.IntentionalPredicates()) heads.insert(pred);
  for (PredicateId pred : p2.IntentionalPredicates()) heads.insert(pred);

  for (PredicateId pred : heads) {
    const std::vector<Rule>& q1 = u1[pred];
    const std::vector<Rule>& q2 = u2[pred];
    if (q1.empty() != q2.empty()) return false;
    DATALOG_ASSIGN_OR_RETURN(bool forward, CqUnionContains(q1, q2));
    if (!forward) return false;
    DATALOG_ASSIGN_OR_RETURN(bool backward, CqUnionContains(q2, q1));
    if (!backward) return false;
  }
  return true;
}

}  // namespace datalog
