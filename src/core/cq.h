#ifndef DATALOG_CORE_CQ_H_
#define DATALOG_CORE_CQ_H_

#include <memory>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "util/result.h"

namespace datalog {

/// Conjunctive-query machinery: the solved non-recursive case the paper
/// builds on (Section V, citing Chandra and Merlin [1976] and Aho, Sagiv
/// and Ullman [1979]). A single positive rule is read as a conjunctive
/// query; containment is a containment mapping (homomorphism), and
/// minimization computes the core.
///
/// For non-recursive rules these agree with the chase-based uniform
/// containment test; for recursive rules the homomorphism test is strictly
/// weaker (it corresponds to a single rule application, whereas the chase
/// may apply the rule repeatedly, as in Example 7). Tests and benchmarks
/// exploit both facts.

/// True if there is a containment mapping from `q1` to `q2`: a mapping of
/// q1's variables to q2's terms that sends q1's head to q2's head and each
/// body atom of q1 to a body atom of q2. This witnesses Q2 ⊆ Q1 as
/// conjunctive queries. Both rules must be positive with the same head
/// predicate.
Result<bool> HasContainmentMapping(const Rule& q1, const Rule& q2);

/// Minimizes `q` as a conjunctive query (computes its core): body atoms
/// are considered once each and dropped when a containment mapping from
/// the original to the smaller query exists. The result is the unique
/// minimal equivalent conjunctive query, up to renaming (Chandra-Merlin).
Result<Rule> MinimizeCq(const Rule& q, std::shared_ptr<SymbolTable> symbols);

/// Containment of unions of conjunctive queries (Sagiv and Yannakakis
/// [1980], cited in Sections V and X): union(q2) ⊆ union(q1) iff every
/// member of q2 has a containment mapping from some member of q1. All
/// rules must be positive and share one head predicate; `q1` must be
/// non-empty unless `q2` is.
Result<bool> CqUnionContains(const std::vector<Rule>& q1,
                             const std::vector<Rule>& q2);

/// Minimizes a union of conjunctive queries: members subsumed by another
/// member are dropped (each considered once), and every survivor is
/// replaced by its core. The result is the unique minimal equivalent
/// union, up to renaming and order.
Result<std::vector<Rule>> MinimizeCqUnion(
    const std::vector<Rule>& queries, std::shared_ptr<SymbolTable> symbols);

/// Decides condition (3) of Section X directly: the initialization
/// programs P1^i and P2^i are equivalent, checked per head predicate as
/// equivalence of unions of conjunctive queries (the paper: "equivalence
/// of non-recursive programs is the same as ... equivalence of unions of
/// tableaux"). Only initialization rules (all-extensional bodies)
/// participate.
Result<bool> InitializationProgramsEquivalent(const Program& p1,
                                              const Program& p2);

/// Decides ordinary equivalence of two NON-RECURSIVE programs — the case
/// Section V calls solved (Sagiv and Yannakakis [1980]): each program is
/// completely unfolded into unions of conjunctive queries over the
/// extensional vocabulary (terminates because nothing is recursive), and
/// the unions are compared per intentional predicate. Note that this is
/// genuinely ordinary equivalence, which on multi-layer non-recursive
/// programs is strictly weaker than uniform equivalence: the gap shows on
/// databases that assign initial relations to intentional predicates,
/// which ordinary equivalence ignores (see the
/// NonRecursiveEquivalenceBeyondUniform test). Fails with InvalidArgument
/// when a program is recursive.
Result<bool> NonRecursiveProgramsEquivalent(const Program& p1,
                                            const Program& p2);

}  // namespace datalog

#endif  // DATALOG_CORE_CQ_H_
