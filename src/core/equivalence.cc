#include "core/equivalence.h"

#include "core/model_containment.h"
#include "core/preservation.h"
#include "core/uniform_containment.h"

namespace datalog {

Result<ContainmentProof> ProveContainmentWithTgds(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget) {
  ContainmentProof proof;

  // (1) SAT(T) ∩ M(P1) ⊆ M(P2).
  DATALOG_ASSIGN_OR_RETURN(proof.model_containment,
                           ModelContainment(p1, tgds, p2, budget));

  // (2) P1 preserves T (shown non-recursively; non-recursive preservation
  // implies preservation, Section IX).
  DATALOG_ASSIGN_OR_RETURN(proof.preservation,
                           PreservesNonRecursively(p1, tgds, budget));

  // (3') The preliminary DB of P1 satisfies T. Only P1's preliminary DB
  // matters (the monotonicity argument closing Section X).
  DATALOG_ASSIGN_OR_RETURN(proof.preliminary_db,
                           PreliminaryDbSatisfies(p1, tgds, budget));

  proof.overall = (proof.model_containment == ProofOutcome::kProved &&
                   proof.preservation == ProofOutcome::kProved &&
                   proof.preliminary_db == ProofOutcome::kProved)
                      ? ProofOutcome::kProved
                      : ProofOutcome::kUnknown;
  return proof;
}

Result<EquivalenceProof> ProveEquivalentWithTgds(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget) {
  EquivalenceProof proof;
  // P1 ⊆ᵘ P2 implies P1 ⊆ P2 (Proposition 1). For the optimization
  // use-case P2's rule bodies are subsets of P1's, so this holds
  // trivially; it is checked rather than assumed.
  DATALOG_ASSIGN_OR_RETURN(proof.uniform_forward, UniformlyContains(p2, p1));
  DATALOG_ASSIGN_OR_RETURN(proof.backward,
                           ProveContainmentWithTgds(p1, p2, tgds, budget));
  proof.overall = (proof.uniform_forward &&
                   proof.backward.overall == ProofOutcome::kProved)
                      ? ProofOutcome::kProved
                      : ProofOutcome::kUnknown;
  return proof;
}

}  // namespace datalog
