#include "core/equivalence_optimizer.h"

#include <algorithm>
#include <set>

#include "ast/validate.h"
#include "core/equivalence.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// All subsets of {0..n-1} with 1 <= size <= max_size, smallest first.
std::vector<std::vector<std::size_t>> Subsets(std::size_t n,
                                              std::size_t max_size,
                                              std::size_t cap) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> current;
  auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (out.size() >= cap) return;
    if (!current.empty()) out.push_back(current);
    if (current.size() >= max_size) return;
    for (std::size_t i = start; i < n; ++i) {
      current.push_back(i);
      self(self, i + 1);
      current.pop_back();
    }
  };
  recurse(recurse, 0);
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return out;
}

}  // namespace

std::vector<Tgd> CandidateTgds(const Rule& rule,
                               const EquivalenceOptimizerOptions& options) {
  std::vector<Tgd> candidates;
  if (!rule.IsPositive() || rule.IsFact()) return candidates;
  const std::vector<Atom> body = rule.PositiveBodyAtoms();
  const std::set<VariableId> head_vars = rule.head().Variables();

  // Positions usable in the left-hand side: body atoms with the head's
  // predicate (property 1).
  std::vector<std::size_t> lhs_pool;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i].predicate() == rule.head().predicate()) lhs_pool.push_back(i);
  }
  if (lhs_pool.empty()) return candidates;

  // Enumerate right-hand sides (the atoms to prove redundant), larger ones
  // later; for each, the compatible left-hand sides.
  std::vector<std::vector<std::size_t>> rhs_sets =
      Subsets(body.size(), options.max_rhs_atoms,
              options.max_candidates_per_rule);
  std::vector<std::vector<std::size_t>> lhs_sets =
      Subsets(lhs_pool.size(), options.max_lhs_atoms,
              options.max_candidates_per_rule);

  for (const std::vector<std::size_t>& rhs_idx : rhs_sets) {
    if (candidates.size() >= options.max_candidates_per_rule) break;
    std::set<std::size_t> rhs_positions(rhs_idx.begin(), rhs_idx.end());

    // Variables of the right-hand-side atoms.
    std::set<VariableId> rhs_vars;
    for (std::size_t i : rhs_idx) {
      std::set<VariableId> vars = body[i].Variables();
      rhs_vars.insert(vars.begin(), vars.end());
    }

    for (const std::vector<std::size_t>& lhs_pick : lhs_sets) {
      if (candidates.size() >= options.max_candidates_per_rule) break;
      // Translate picks through the pool; skip overlaps with the RHS.
      std::vector<Atom> lhs;
      bool overlap = false;
      std::set<VariableId> lhs_vars;
      for (std::size_t pick : lhs_pick) {
        std::size_t pos = lhs_pool[pick];
        if (rhs_positions.contains(pos)) {
          overlap = true;
          break;
        }
        lhs.push_back(body[pos]);
        std::set<VariableId> vars = body[pos].Variables();
        lhs_vars.insert(vars.begin(), vars.end());
      }
      if (overlap || lhs.empty()) continue;

      // Variables appearing only in the tgd's right-hand side.
      bool ok = true;
      for (VariableId w : rhs_vars) {
        if (lhs_vars.contains(w)) continue;
        // Property 3: not in the rule's head.
        if (head_vars.contains(w)) {
          ok = false;
          break;
        }
        // Property 2: every body atom containing w is in the RHS.
        for (std::size_t i = 0; i < body.size() && ok; ++i) {
          if (!rhs_positions.contains(i) && body[i].ContainsVariable(w)) {
            ok = false;
          }
        }
        if (!ok) break;
      }
      if (!ok) continue;

      std::vector<Atom> rhs;
      for (std::size_t i : rhs_idx) rhs.push_back(body[i]);
      candidates.emplace_back(std::move(lhs), std::move(rhs));
    }
  }
  return candidates;
}

Result<EquivalenceOptimizeResult> OptimizeUnderEquivalence(
    const Program& program, const EquivalenceOptimizerOptions& options) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("equivalence/optimize");
  span.Note("rules", program.NumRules());
  EquivalenceOptimizeResult result{program, {}, 0};

  for (std::size_t rule_index = 0; rule_index < result.program.NumRules();
       ++rule_index) {
    // Re-generate candidates after each committed removal: the rule body
    // changed, so positions and properties must be recomputed.
    bool changed = true;
    while (changed) {
      changed = false;
      const Rule rule = result.program.rules()[rule_index];
      std::vector<Tgd> candidates = CandidateTgds(rule, options);
      for (const Tgd& tgd : candidates) {
        ++result.candidates_tried;
        TraceSpan candidate_span("equivalence/candidate");
        candidate_span.Note("rule", rule_index);
        // Build the weakened rule: remove the tgd's RHS atoms (by value;
        // duplicates are removed once per occurrence in the RHS).
        Rule weakened = rule;
        bool all_found = true;
        for (const Atom& atom : tgd.rhs()) {
          auto& body = weakened.mutable_body();
          auto it = std::find_if(body.begin(), body.end(),
                                 [&atom](const Literal& lit) {
                                   return !lit.negated && lit.atom == atom;
                                 });
          if (it == body.end()) {
            all_found = false;
            break;
          }
          body.erase(it);
        }
        if (!all_found || weakened.body().empty() || !weakened.IsSafe()) {
          continue;
        }

        Program candidate_program =
            result.program.WithRuleReplaced(rule_index, weakened);
        DATALOG_ASSIGN_OR_RETURN(
            EquivalenceProof proof,
            ProveEquivalentWithTgds(result.program, candidate_program, {tgd},
                                    options.budget));
        if (proof.overall == ProofOutcome::kProved) {
          candidate_span.Note("proved", 1);
          result.program = std::move(candidate_program);
          result.removals.push_back(
              EquivalenceRemoval{rule_index, tgd.rhs(), tgd});
          changed = true;
          break;  // rule changed: regenerate candidates
        }
      }
    }
  }
  if (span.active()) {
    span.Note("candidates_tried",
              static_cast<std::uint64_t>(result.candidates_tried));
    span.Note("removals", result.removals.size());
  }
  MetricsRegistry& metrics = MetricsRegistry::Get();
  if (metrics.enabled()) {
    metrics.Add("equivalence.runs", {}, 1);
    metrics.Add("equivalence.candidates_tried", {},
                static_cast<std::uint64_t>(result.candidates_tried));
    metrics.Add("equivalence.removals", {}, result.removals.size());
  }
  return result;
}

}  // namespace datalog
