#ifndef DATALOG_CORE_PRESERVATION_H_
#define DATALOG_CORE_PRESERVATION_H_

#include <vector>

#include "ast/program.h"
#include "core/chase.h"
#include "core/proof_outcome.h"
#include "core/unfold.h"
#include "util/result.h"

namespace datalog {

/// Tests whether `program` preserves the tgds `tgds` non-recursively
/// (Section IX, Fig. 3): for every DB d in SAT(T), the DB <d, P^n(d)> also
/// satisfies T, where P^n applies the rules once, non-recursively.
/// Non-recursive preservation implies preservation (P(d) in SAT(T) for all
/// d in SAT(T)), which is condition (2) of the Section X equivalence
/// recipe.
///
/// For each tgd tau and each way of producing the atoms of tau's left-hand
/// side (each intentional atom is unified with the head of a program rule
/// or of the implicit trivial rule Q(x..) :- Q(x..); extensional atoms are
/// assumed in d), the procedure builds the canonical database, chases it
/// with T (interleaved with the violation check, since the chase may not
/// terminate), and checks that the instantiated left-hand side does not
/// exhibit a violation in <d, P^n(d)>. Unification is performed before
/// freezing, so rule heads with constants or repeated variables are
/// handled by the most general unifier (the canonical-DB construction of
/// Appendix II).
///
/// Returns kProved / kDisproved / kUnknown (budget exhausted; possible
/// only with embedded tgds, whose chase "may loop forever" per the paper).
Result<ProofOutcome> PreservesNonRecursively(const Program& program,
                                             const std::vector<Tgd>& tgds,
                                             const ChaseBudget& budget = {});

/// Tests condition (3') of Section X: for every EDB d, the preliminary DB
/// <d, P^i(d)> of `program` satisfies `tgds`, where P^i consists of the
/// initialization rules (rules whose bodies have only extensional
/// predicates). Per the paper's modified procedure: d is NOT assumed to
/// satisfy T (no tgds are applied to it), and no trivial rules are added
/// (an input EDB has no intentional facts).
Result<ProofOutcome> PreliminaryDbSatisfies(const Program& program,
                                            const std::vector<Tgd>& tgds,
                                            const ChaseBudget& budget = {});

/// The generalization in Section X's final paragraph: the preliminary DB
/// may be produced by applying any set of rules a fixed number of times,
/// expressed as non-recursive rules. This variant uses the bounded
/// unfolding ExpandRules(program, limits) as the preliminary operator;
/// with limits.max_depth == 1 it coincides with PreliminaryDbSatisfies.
/// Deeper expansions prove strictly more (e.g. a tgd whose witness only
/// appears after two derivation rounds).
Result<ProofOutcome> PreliminaryDbSatisfiesUnfolded(
    const Program& program, const std::vector<Tgd>& tgds,
    const ExpandLimits& limits, const ChaseBudget& budget = {});

/// The initialization rules P^i of a program: those whose body predicates
/// are all extensional (facts included), Section X.
std::vector<Rule> InitializationRules(const Program& program);

}  // namespace datalog

#endif  // DATALOG_CORE_PRESERVATION_H_
