#ifndef DATALOG_CORE_MINIMIZE_H_
#define DATALOG_CORE_MINIMIZE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"
#include "util/result.h"

namespace datalog {

/// Options for the minimization algorithms.
struct MinimizeOptions {
  /// When set, atoms (and, for programs, rules) are considered for
  /// deletion in a pseudo-random order seeded here instead of textual
  /// order. The paper notes the final result may depend on this order
  /// (Section VII); the option exists to demonstrate that.
  std::optional<std::uint64_t> shuffle_seed;

  /// Upper bound on uniform-containment tests for one minimization run
  /// (0 = unlimited). Each test is a chase to fixpoint, so this is the
  /// budget that keeps the analyzer's report-only minimization pass from
  /// dominating `datalog check` on large recursive programs. When the
  /// budget runs out the minimization stops early and reports
  /// `budget_exhausted`; the partial result is still sound (every
  /// committed deletion was proved redundant).
  std::size_t max_containment_tests = 0;
};

/// What the minimizer removed. `removed_atoms`/`removed_rules` record the
/// deletions in the order they were committed; `rule_index` refers to the
/// rule's position in the program at the moment of deletion (phase 1
/// never reorders rules; phase 2 shifts later indices down as rules go).
struct MinimizeReport {
  struct RemovedAtom {
    std::size_t rule_index;
    Atom atom;
  };

  std::size_t atoms_removed = 0;
  std::size_t rules_removed = 0;
  std::size_t containment_tests = 0;
  std::vector<RemovedAtom> removed_atoms;
  std::vector<Rule> removed_rules;
  /// Original program indices of `removed_rules` (parallel vector), which
  /// the analyzer needs to anchor its redundant-rule diagnostics to source
  /// spans. Unlike the at-deletion-time indices of `removed_atoms`, these
  /// always refer to positions in the INPUT program.
  std::vector<std::size_t> removed_rule_indices;
  /// True when MinimizeOptions::max_containment_tests stopped the run
  /// before every candidate deletion was considered.
  bool budget_exhausted = false;

  void Add(const MinimizeReport& other) {
    atoms_removed += other.atoms_removed;
    rules_removed += other.rules_removed;
    containment_tests += other.containment_tests;
    removed_atoms.insert(removed_atoms.end(), other.removed_atoms.begin(),
                         other.removed_atoms.end());
    removed_rules.insert(removed_rules.end(), other.removed_rules.begin(),
                         other.removed_rules.end());
    removed_rule_indices.insert(removed_rule_indices.end(),
                                other.removed_rule_indices.begin(),
                                other.removed_rule_indices.end());
    budget_exhausted = budget_exhausted || other.budget_exhausted;
  }
};

/// The algorithm of Fig. 1: repeatedly deletes a body atom from `rule` and
/// keeps the deletion when the smaller rule is uniformly contained in the
/// current one. Each atom is considered exactly once (Theorem 2 shows more
/// passes cannot help). Returns a rule uniformly equivalent to `rule` with
/// no atom deletable under uniform equivalence.
Result<Rule> MinimizeRule(const Rule& rule,
                          std::shared_ptr<SymbolTable> symbols,
                          MinimizeReport* report = nullptr,
                          const MinimizeOptions& options = {});

/// The algorithm of Fig. 2: first minimizes every rule against the whole
/// program (an atom may be redundant w.r.t. P without being redundant
/// w.r.t. its own rule alone), then deletes redundant rules. The result
/// has neither a redundant atom nor a redundant rule under uniform
/// equivalence; it is uniformly equivalent to the input but not
/// necessarily unique.
Result<Program> MinimizeProgram(const Program& program,
                                MinimizeReport* report = nullptr,
                                const MinimizeOptions& options = {});

/// Minimization for programs WITH stratified negation: the positive rules
/// are minimized (Fig. 2) against the set of all positive rules; rules
/// containing negated literals are left untouched. Sound for the
/// stratified (perfect-model) semantics: a deleted atom/rule was
/// uniformly redundant w.r.t. the positive subset, and a minimal
/// re-derivation only routes through predicates at or below the deleted
/// rule's stratum (every premise of an intermediate rule lies strictly
/// lower), so it replays inside the stratum-by-stratum evaluation. The
/// result preserves EvaluateStratified's output on every input; the
/// output lists the minimized positive rules first, then the untouched
/// negation rules. This is a first step in the §XII extension direction
/// ("the results on uniform containment and minimization can be extended
/// to Datalog programs with stratified negation"); minimizing the
/// negation rules themselves needs the forthcoming-paper theory.
Result<Program> MinimizeStratifiedProgram(const Program& program,
                                          MinimizeReport* report = nullptr,
                                          const MinimizeOptions& options = {});

/// The opposite optimization direction sketched in Section I: some
/// optimizers ADD conjuncts (e.g. a third relation known to contain an
/// intersection) to give the planner more choices. Adding `atom` to the
/// body of rule `rule_index` is sound under uniform equivalence iff the
/// original rule is uniformly contained in the program with the
/// strengthened rule (the added atom can then always be satisfied).
/// Decidable, like atom removal.
Result<bool> AtomAdditionIsSound(const Program& program,
                                 std::size_t rule_index, const Atom& atom);

}  // namespace datalog

#endif  // DATALOG_CORE_MINIMIZE_H_
