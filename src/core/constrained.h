#ifndef DATALOG_CORE_CONSTRAINED_H_
#define DATALOG_CORE_CONSTRAINED_H_

#include <vector>

#include "ast/program.h"
#include "core/chase.h"
#include "core/minimize.h"
#include "core/proof_outcome.h"
#include "util/result.h"

namespace datalog {

/// Uniform containment and minimization relative to a set of constraints
/// (the abstract's "procedure for testing uniform equivalence ... for the
/// case in which the database satisfies some constraints", Section VIII).
/// All containments below quantify over databases in SAT(T) only.

/// Attempts to prove p2 ⊆ᵘ_SAT(T) p1 via Corollary 1: it suffices that
/// (a) p1 preserves T (shown non-recursively by the Fig. 3 procedure) and
/// (b) SAT(T) ∩ M(p1) ⊆ M(p2) (shown by the [p1, T] chase).
/// Returns kProved when both succeed; kDisproved when (b) is refuted
/// while (a) is proved (Corollary 1 is an equivalence in that case);
/// otherwise kUnknown. With empty `tgds` this coincides with the
/// decidable UniformlyContains.
Result<ProofOutcome> UniformContainmentUnderConstraints(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget = {});

/// Both directions of the above.
Result<ProofOutcome> UniformEquivalenceUnderConstraints(
    const Program& p1, const Program& p2, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget = {});

/// Fig. 2 relativized to SAT(T): an atom or rule is deleted when the
/// smaller program is provably SAT(T)-uniformly equivalent to the current
/// one. Each candidate deletion requires (re-)proving that the *current*
/// program preserves T, since deletions can break preservation; a
/// deletion is committed only on kProved, so the result is always
/// SAT(T)-uniformly equivalent to the input. Removes at least everything
/// MinimizeProgram removes (T = {} reduces to it) and possibly more
/// (constraints make more atoms redundant, the Chakravarthy-et-al. use
/// case cited in Section VIII).
Result<Program> MinimizeProgramUnderConstraints(
    const Program& program, const std::vector<Tgd>& tgds,
    const ChaseBudget& budget = {}, MinimizeReport* report = nullptr);

}  // namespace datalog

#endif  // DATALOG_CORE_CONSTRAINED_H_
