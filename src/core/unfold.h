#ifndef DATALOG_CORE_UNFOLD_H_
#define DATALOG_CORE_UNFOLD_H_

#include <cstddef>
#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace datalog {

/// Resolves the body atom of `rule` at `position` (which must be positive)
/// against the head of `definition`: the definition is renamed apart, its
/// head unified with the atom, and the atom replaced by the instantiated
/// definition body. Returns NotFound when the two do not unify. This is
/// standard unfolding (partial evaluation) of Datalog rules.
Result<Rule> UnfoldAtom(const Rule& rule, std::size_t position,
                        const Rule& definition, SymbolTable* symbols);

/// Limits for ExpandRules: the expansion can be exponential in depth.
struct ExpandLimits {
  std::size_t max_depth = 2;
  std::size_t max_rules = 256;
};

/// Expresses "apply the rules of `program` at most `limits.max_depth`
/// times, starting from an EDB" as a set of NON-recursive rules whose
/// bodies contain only extensional predicates: depth-1 expansions are the
/// rules with all-extensional bodies; deeper ones resolve each intentional
/// body atom against a shallower expansion. This is the construction the
/// final paragraph of Section X appeals to ("applying a given set of
/// rules a fixed number of times, even if the rules are recursive, can be
/// expressed in terms of non-recursive rules").
///
/// The result may be truncated at `limits.max_rules`; `truncated` (when
/// non-null) reports whether it was. A truncated expansion is still sound
/// for the preliminary-DB use (a smaller rule set describes a smaller
/// preliminary DB, and any preliminary DB works for the Section X
/// argument) but proves less.
std::vector<Rule> ExpandRules(const Program& program,
                              const ExpandLimits& limits,
                              bool* truncated = nullptr);

}  // namespace datalog

#endif  // DATALOG_CORE_UNFOLD_H_
