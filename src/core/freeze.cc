#include "core/freeze.h"

namespace datalog {

Value FrozenConstantPool::For(VariableId v) {
  auto it = assigned_.find(v);
  if (it != assigned_.end()) return it->second;
  Value value = Value::Frozen(next_++);
  assigned_.emplace(v, value);
  return value;
}

Tuple FreezeAtom(const Atom& atom, FrozenConstantPool* pool) {
  Tuple tuple;
  tuple.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    tuple.push_back(t.is_constant() ? t.value() : pool->For(t.var()));
  }
  return tuple;
}

Result<Database> FreezeAtoms(const std::vector<Atom>& atoms,
                             std::shared_ptr<SymbolTable> symbols,
                             FrozenConstantPool* pool) {
  Database db(std::move(symbols));
  for (const Atom& atom : atoms) {
    db.AddFact(atom.predicate(), FreezeAtom(atom, pool));
  }
  return db;
}

Result<FrozenRule> FreezeRule(const Rule& rule,
                              std::shared_ptr<SymbolTable> symbols) {
  if (!rule.IsPositive()) {
    return Status::InvalidArgument(
        "cannot freeze a rule with negated literals");
  }
  FrozenConstantPool pool;
  DATALOG_ASSIGN_OR_RETURN(
      Database body, FreezeAtoms(rule.PositiveBodyAtoms(), symbols, &pool));
  FrozenRule frozen{std::move(body), rule.head().predicate(),
                    FreezeAtom(rule.head(), &pool)};
  return frozen;
}

}  // namespace datalog
