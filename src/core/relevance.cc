#include "core/relevance.h"

#include <vector>

namespace datalog {

std::set<PredicateId> RelevantPredicates(const Program& program,
                                         PredicateId query_pred) {
  // Reverse reachability over rule dependencies: start from the query
  // predicate and pull in every predicate appearing in the body of a rule
  // whose head is already relevant.
  std::set<PredicateId> relevant{query_pred};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      if (!relevant.contains(rule.head().predicate())) continue;
      for (const Literal& lit : rule.body()) {
        if (relevant.insert(lit.atom.predicate()).second) changed = true;
      }
    }
  }
  return relevant;
}

Result<Program> RestrictToQuery(const Program& program,
                                PredicateId query_pred) {
  if (query_pred < 0 || query_pred >= program.symbols()->NumPredicates()) {
    return Status::InvalidArgument("unknown query predicate id");
  }
  std::set<PredicateId> relevant = RelevantPredicates(program, query_pred);
  Program out(program.symbols());
  for (const Rule& rule : program.rules()) {
    if (relevant.contains(rule.head().predicate())) {
      out.AddRule(rule);
    }
  }
  return out;
}

}  // namespace datalog
