#ifndef DATALOG_CORE_TGD_H_
#define DATALOG_CORE_TGD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ast/tgd.h"
#include "eval/database.h"
#include "eval/rule_matcher.h"
#include "util/result.h"

namespace datalog {

/// Allocates the labeled nulls introduced when embedded tgds are applied
/// (Section VIII). One counter per chase so nulls are "not already in the
/// DB".
class NullPool {
 public:
  Value Fresh() { return Value::Null(next_++); }
  std::int32_t allocated() const { return next_; }

 private:
  std::int32_t next_ = 0;
};

/// True if `db` satisfies `tgd`: every instantiation of the universally
/// quantified variables that grounds the left-hand side in `db` extends to
/// one grounding the right-hand side in `db` (Section VIII).
bool SatisfiesTgd(const Database& db, const Tgd& tgd);

/// True if `db` satisfies every tgd of `tgds`.
bool SatisfiesAll(const Database& db, const std::vector<Tgd>& tgds);

/// Given a binding of the tgd's universal variables that grounds its
/// left-hand side in `db`, returns true when the binding extends to ground
/// the right-hand side in `db` (i.e. this instantiation does NOT exhibit a
/// violation).
bool LhsInstantiationSatisfied(const Database& db, const Tgd& tgd,
                               const Binding& lhs_binding);

/// Applies `tgd` to `db` once per violating instantiation found in the
/// current state: for each violation, existential variables are
/// instantiated with fresh nulls from `pool` and the right-hand side atoms
/// are added (Section VIII). Returns the number of facts added. One round
/// of a fair chase; iterate for the full chase.
std::size_t ApplyTgdRound(const Tgd& tgd, Database* db, NullPool* pool);

}  // namespace datalog

#endif  // DATALOG_CORE_TGD_H_
