#include "core/chase.h"

#include <unordered_map>

#include "ast/pretty_print.h"
#include "ast/validate.h"
#include "eval/seminaive.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// Per-predicate row counts; relations are append-only, so the facts a
/// step added are exactly the rows past the snapshot.
using Marks = std::unordered_map<PredicateId, std::size_t>;

Marks Snapshot(const Database& db) {
  Marks marks;
  for (PredicateId pred : db.NonEmptyPredicates()) {
    marks[pred] = db.relation(pred).size();
  }
  return marks;
}

void RecordStep(const Database& db, const Marks& before,
                ChaseStep::Kind kind, std::size_t tgd_index,
                ChaseTranscript* transcript) {
  if (transcript == nullptr) return;
  ChaseStep step;
  step.kind = kind;
  step.tgd_index = tgd_index;
  for (PredicateId pred : db.NonEmptyPredicates()) {
    const Relation& rel = db.relation(pred);
    auto it = before.find(pred);
    std::size_t from = it == before.end() ? 0 : it->second;
    for (std::size_t i = from; i < rel.size(); ++i) {
      step.added.emplace_back(pred, rel.row(i));
    }
  }
  if (!step.added.empty()) {
    transcript->steps.push_back(std::move(step));
  }
}

}  // namespace

std::string ChaseTranscript::ToString(const SymbolTable& symbols,
                                      const std::vector<Tgd>& tgds) const {
  std::string out;
  for (const ChaseStep& step : steps) {
    if (step.kind == ChaseStep::Kind::kRules) {
      out += "rules derived:";
    } else {
      out += "tgd " + std::to_string(step.tgd_index);
      if (step.tgd_index < tgds.size()) {
        out += " (" + datalog::ToString(tgds[step.tgd_index], symbols) + ")";
      }
      out += " added:";
    }
    for (const auto& [pred, tuple] : step.added) {
      out += " " + symbols.PredicateName(pred);
      if (!tuple.empty()) {
        out += "(";
        for (std::size_t i = 0; i < tuple.size(); ++i) {
          if (i != 0) out += ", ";
          out += datalog::ToString(tuple[i], symbols);
        }
        out += ")";
      }
    }
    out += "\n";
  }
  return out;
}

Result<ChaseResult> Chase(const Program& program, const std::vector<Tgd>& tgds,
                          Database* db, const ChaseBudget& budget,
                          const std::optional<ChaseGoal>& goal,
                          ChaseTranscript* transcript) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));

  TraceSpan span("chase");
  span.Note("tgds", tgds.size());
  ChaseResult result;
  NullPool nulls;
  const std::size_t initial_facts = db->NumFacts();

  auto goal_reached = [&]() {
    return goal.has_value() && db->Contains(goal->predicate, goal->tuple);
  };

  if (goal_reached()) {
    result.status = ChaseStatus::kGoalReached;
    return result;
  }

  while (true) {
    if (result.rounds >= budget.max_rounds ||
        static_cast<std::size_t>(nulls.allocated()) > budget.max_nulls ||
        db->NumFacts() > budget.max_facts) {
      result.status = ChaseStatus::kBudgetExhausted;
      break;
    }
    ++result.rounds;

    TraceSpan round_span("chase/round");
    round_span.Note("round", static_cast<std::uint64_t>(result.rounds));
    std::size_t before = db->NumFacts();

    // Rules to their fixpoint (always terminates: no new constants).
    Marks marks = Snapshot(*db);
    {
      TraceSpan rules_span("chase/rules");
      RunSemiNaiveFixpoint(program.rules(), db);
      rules_span.Note("facts", db->NumFacts());
    }
    RecordStep(*db, marks, ChaseStep::Kind::kRules, 0, transcript);
    if (goal_reached()) {
      result.status = ChaseStatus::kGoalReached;
      break;
    }

    // One fair round of every tgd.
    for (std::size_t i = 0; i < tgds.size(); ++i) {
      marks = Snapshot(*db);
      TraceSpan tgd_span("chase/tgd");
      tgd_span.Note("tgd", i);
      ApplyTgdRound(tgds[i], db, &nulls);
      tgd_span.Note("facts", db->NumFacts());
      tgd_span.End();
      RecordStep(*db, marks, ChaseStep::Kind::kTgd, i, transcript);
    }
    if (goal_reached()) {
      result.status = ChaseStatus::kGoalReached;
      break;
    }

    if (db->NumFacts() == before) {
      result.status = ChaseStatus::kFixpoint;
      break;
    }
  }

  result.facts_added = db->NumFacts() - initial_facts;
  result.nulls_introduced = nulls.allocated();
  if (span.active()) {
    span.Note("rounds", static_cast<std::uint64_t>(result.rounds));
    span.Note("facts_added", result.facts_added);
    span.Note("nulls", static_cast<std::uint64_t>(result.nulls_introduced));
  }
  MetricsRegistry& metrics = MetricsRegistry::Get();
  if (metrics.enabled()) {
    metrics.Add("chase.runs", {}, 1);
    metrics.Add("chase.rounds", {}, result.rounds);
    metrics.Add("chase.facts_added", {}, result.facts_added);
    metrics.Add("chase.nulls_introduced", {},
                static_cast<std::uint64_t>(result.nulls_introduced));
  }
  return result;
}

}  // namespace datalog
