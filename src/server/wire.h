#ifndef DATALOG_SERVER_WIRE_H_
#define DATALOG_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace datalog {

/// The Datalog server's wire protocol: length-prefixed binary frames over
/// a local stream socket (docs/server.md).
///
/// Every frame is
///
///   [u32 length, little-endian] [u8 tag] [payload: length-1 bytes]
///
/// where `length` counts the tag byte plus the payload. In a request the
/// tag is an Opcode and the payload is UTF-8 Datalog text (a fact list
/// for INSERT/RETRACT, a query atom for QUERY, empty otherwise). In a
/// response the tag is a RespStatus and the payload is
///
///   [u64 epoch id, little-endian] [UTF-8 body]
///
/// -- the epoch the request was served against (0 before any epoch is
/// pinned), followed by answers / an ack / an error message. Keeping the
/// payloads textual makes the protocol trivially scriptable while the
/// framing stays binary-safe and cheap to parse incrementally.
enum class Opcode : std::uint8_t {
  kPing = 1,      // liveness + head-epoch probe
  kQuery = 2,     // answer a single-atom query against the pinned epoch
  kInsert = 3,    // buffer fact insertions in the connection's transaction
  kRetract = 4,   // buffer fact retractions
  kCommit = 5,    // apply the buffered transaction, publish a new epoch
  kStats = 6,     // server counters as JSON
  kDumpBase = 7,  // the pinned epoch's asserted base facts (oracle hook)
  kShutdown = 8,  // ack, then stop the server
};

enum class RespStatus : std::uint8_t {
  kOk = 0,
  kError = 1,  // body is the error message; the connection stays usable
};

/// Frames larger than this are a protocol violation: the decoder reports
/// an error and the server closes the connection instead of allocating
/// unbounded memory on a corrupt length prefix.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;  // 16 MiB

/// Encodes one frame (request or response) ready to write to the socket.
std::string EncodeFrame(std::uint8_t tag, std::string_view payload);

/// Appends `value` to `out` as 8 little-endian bytes (the epoch header of
/// a response payload).
void AppendU64(std::string* out, std::uint64_t value);

/// Reads the little-endian u64 at data[0..8). `data` must hold >= 8 bytes.
std::uint64_t ReadU64(std::string_view data);

/// Incremental frame decoder: feed it raw socket bytes, take complete
/// frames out. Tolerates frames split across arbitrarily many reads and
/// multiple frames per read (the poll loop's natural input).
class FrameReader {
 public:
  /// Appends raw bytes from the socket.
  void Append(const char* data, std::size_t size);

  /// If a complete frame is buffered, moves its tag/payload out and
  /// returns true. Returns false when more bytes are needed. A malformed
  /// frame (zero or oversized length) sets error() permanently; the
  /// caller should drop the connection.
  bool Next(std::uint8_t* tag, std::string* payload);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (for tests).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  std::string error_;
};

}  // namespace datalog

#endif  // DATALOG_SERVER_WIRE_H_
