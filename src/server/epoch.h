#ifndef DATALOG_SERVER_EPOCH_H_
#define DATALOG_SERVER_EPOCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/database.h"
#include "incr/materialized_view.h"

namespace datalog {

/// One published epoch: an immutable snapshot of the materialized view
/// (and the asserted base it was derived from) at a commit boundary.
/// Snapshots are shared_ptr-pinned: a reader that opened epoch E keeps E
/// alive for exactly as long as it holds the pointer, no matter how many
/// newer epochs writers publish meanwhile. Nothing mutates a snapshot
/// after Publish(), so readers touch it without locks; the single-column
/// indexes every query probe are prebuilt before publication
/// (PrepareSnapshotIndexes), keeping concurrent Lookups pure reads under
/// the frozen-snapshot contract of eval/relation.h.
struct EpochSnapshot {
  std::uint64_t id = 0;  // 0 is the initial materialization
  Database db;           // the materialized fixpoint at this epoch
  Database base;         // the asserted EDB at this epoch (the oracle input)
  CommitStats stats;     // work of the commit that produced this epoch

  EpochSnapshot(std::uint64_t id_in, Database db_in, Database base_in,
                CommitStats stats_in)
      : id(id_in),
        db(std::move(db_in)),
        base(std::move(base_in)),
        stats(std::move(stats_in)) {}
};

/// Builds (single-column) hash indexes on every column of every non-empty
/// relation of `db`, so that concurrent snapshot queries probe them
/// without triggering a lazy build. Called once per snapshot, before it
/// is published; afterwards the snapshot is never written again.
void PrepareSnapshotIndexes(const Database& db);

/// MVCC-style epoch chain. Publish() atomically replaces the head with a
/// new immutable snapshot -- an O(1) pointer swap, so writers never wait
/// for readers -- and head() pins the current head for a reader. Old
/// epochs are reclaimed automatically when their last pin drops;
/// LiveEpochs() observes that through a weak registry (and is what the
/// epoch-lifetime tests and the STATS frame report).
///
/// Thread-safe.
class EpochManager {
 public:
  /// Starts the chain at epoch 0 with the initial materialization.
  EpochManager(Database db, Database base, CommitStats stats);

  /// Pins and returns the current head epoch.
  std::shared_ptr<const EpochSnapshot> head() const;

  std::uint64_t head_id() const;

  /// Publishes a new head epoch (id = previous head id + 1) holding the
  /// given state; returns the pinned new head. Prebuilds the snapshot's
  /// query indexes before the swap. Callers serialize commits themselves
  /// (the server's commit lock); Publish() only guards the swap.
  std::shared_ptr<const EpochSnapshot> Publish(Database db, Database base,
                                               CommitStats stats);

  /// Number of epochs ever published, including epoch 0.
  std::uint64_t epochs_published() const;

  /// Number of snapshots still alive (pinned by a reader or the head).
  /// Prunes expired registry entries as a side effect.
  std::size_t LiveEpochs() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const EpochSnapshot> head_;
  std::uint64_t published_ = 0;
  /// Weak handles onto every published snapshot, pruned lazily: expired
  /// entries are exactly the epochs that have been reclaimed.
  mutable std::vector<std::weak_ptr<const EpochSnapshot>> registry_;
};

}  // namespace datalog

#endif  // DATALOG_SERVER_EPOCH_H_
