#ifndef DATALOG_SERVER_CLIENT_H_
#define DATALOG_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/result.h"

namespace datalog {

/// One decoded server response: whether the server reported success, the
/// epoch the request was served against, and the textual body (answers,
/// an ack, stats JSON, or an error message when !ok).
struct Reply {
  bool ok = true;
  std::uint64_t epoch = 0;
  std::string body;
};

/// A blocking client for the Datalog server's wire protocol (one request
/// in flight at a time, which is all the protocol allows per connection).
/// Not thread-safe; open one client per thread.
class DatalogClient {
 public:
  /// Connects to the server's AF_UNIX socket.
  static Result<DatalogClient> Connect(const std::string& socket_path);

  DatalogClient(DatalogClient&& other) noexcept;
  DatalogClient& operator=(DatalogClient&& other) noexcept;
  DatalogClient(const DatalogClient&) = delete;
  DatalogClient& operator=(const DatalogClient&) = delete;
  ~DatalogClient();

  /// Round-trips one frame. The payload is Datalog text (see wire.h); the
  /// returned Reply distinguishes server-side errors (Reply::ok == false)
  /// from transport failures (non-OK Result).
  Result<Reply> Call(Opcode op, std::string_view payload);

  // Convenience wrappers.
  Result<Reply> Ping() { return Call(Opcode::kPing, ""); }
  Result<Reply> Query(std::string_view atom_text) {
    return Call(Opcode::kQuery, atom_text);
  }
  Result<Reply> Insert(std::string_view facts_text) {
    return Call(Opcode::kInsert, facts_text);
  }
  Result<Reply> Retract(std::string_view facts_text) {
    return Call(Opcode::kRetract, facts_text);
  }
  Result<Reply> Commit() { return Call(Opcode::kCommit, ""); }
  Result<Reply> Stats() { return Call(Opcode::kStats, ""); }
  Result<Reply> DumpBase() { return Call(Opcode::kDumpBase, ""); }
  Result<Reply> Shutdown() { return Call(Opcode::kShutdown, ""); }

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit DatalogClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace datalog

#endif  // DATALOG_SERVER_CLIENT_H_
