#include "server/epoch.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace datalog {

void PrepareSnapshotIndexes(const Database& db) {
  for (PredicateId pred : db.NonEmptyPredicates()) {
    const Relation& rel = db.relation(pred);
    for (int c = 0; c < rel.arity(); ++c) {
      rel.PrepareSingleIndex(c);
    }
  }
}

EpochManager::EpochManager(Database db, Database base, CommitStats stats) {
  PrepareSnapshotIndexes(db);
  head_ = std::make_shared<const EpochSnapshot>(0, std::move(db),
                                                std::move(base),
                                                std::move(stats));
  registry_.push_back(head_);
  published_ = 1;
}

std::shared_ptr<const EpochSnapshot> EpochManager::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::uint64_t EpochManager::head_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->id;
}

std::shared_ptr<const EpochSnapshot> EpochManager::Publish(Database db,
                                                           Database base,
                                                           CommitStats stats) {
  TraceSpan span("server/publish_epoch");
  // Index building happens outside the lock: the snapshot is private
  // until the swap below, and commits are already serialized upstream.
  PrepareSnapshotIndexes(db);
  std::lock_guard<std::mutex> lock(mu_);
  auto snapshot = std::make_shared<const EpochSnapshot>(
      head_->id + 1, std::move(db), std::move(base), std::move(stats));
  head_ = snapshot;
  registry_.push_back(snapshot);
  ++published_;
  span.Note("epoch", snapshot->id);
  return snapshot;
}

std::uint64_t EpochManager::epochs_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::size_t EpochManager::LiveEpochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.erase(
      std::remove_if(registry_.begin(), registry_.end(),
                     [](const std::weak_ptr<const EpochSnapshot>& w) {
                       return w.expired();
                     }),
      registry_.end());
  return registry_.size();
}

}  // namespace datalog
