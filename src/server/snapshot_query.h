#ifndef DATALOG_SERVER_SNAPSHOT_QUERY_H_
#define DATALOG_SERVER_SNAPSHOT_QUERY_H_

#include <string>
#include <vector>

#include "ast/atom.h"
#include "ast/symbol_table.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"

namespace datalog {

/// Answers the single-atom query `pattern` (e.g. `g(1, x)`) against an
/// immutable snapshot database: returns the matching tuples of the
/// pattern's predicate, sorted (Value order), each with the pattern's
/// arity.
///
/// Read-only by construction, so any number of threads may query the same
/// snapshot concurrently: bound columns probe the prebuilt single-column
/// indexes (PrepareSnapshotIndexes), unbound patterns scan rows(), and
/// nothing is lazily built or cached. `stats`, when non-null, counts the
/// probe work (tuples_scanned / index_lookups / substitutions) like every
/// other engine.
Result<std::vector<Tuple>> QuerySnapshot(const Database& db,
                                         const Atom& pattern,
                                         MatchStats* stats = nullptr);

/// Renders answers the way the incr CLI prints them: one `pred(v, ...).`
/// line per tuple, in the given order. The snapshot-isolation oracle
/// compares these strings bit-for-bit against an offline evaluation.
std::string RenderAnswers(PredicateId pred, const std::vector<Tuple>& tuples,
                          const SymbolTable& symbols);

}  // namespace datalog

#endif  // DATALOG_SERVER_SNAPSHOT_QUERY_H_
