#include "server/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace datalog {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal("client: " + what + ": " + std::strerror(errno));
}

}  // namespace

Result<DatalogClient> DatalogClient::Connect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("client: socket path too long: " +
                                   socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket()");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoStatus("connect(" + socket_path + ")");
    ::close(fd);
    return status;
  }
  return DatalogClient(fd);
}

DatalogClient::DatalogClient(DatalogClient&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

DatalogClient& DatalogClient::operator=(DatalogClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

DatalogClient::~DatalogClient() { Close(); }

void DatalogClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Reply> DatalogClient::Call(Opcode op, std::string_view payload) {
  if (fd_ < 0) return Status::Internal("client: not connected");
  const std::string frame =
      EncodeFrame(static_cast<std::uint8_t>(op), payload);
  const char* data = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const Status status = ErrnoStatus("send()");
    Close();
    return status;
  }

  std::uint8_t tag = 0;
  std::string resp;
  while (!reader_.Next(&tag, &resp)) {
    if (!reader_.ok()) {
      Close();
      return Status::Internal("client: protocol error: " + reader_.error());
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const Status status =
        n == 0 ? Status::Internal("client: server closed the connection")
               : ErrnoStatus("recv()");
    Close();
    return status;
  }
  if (resp.size() < 8) {
    Close();
    return Status::Internal("client: short response payload (" +
                            std::to_string(resp.size()) + " bytes)");
  }
  Reply reply;
  reply.ok = tag == static_cast<std::uint8_t>(RespStatus::kOk);
  reply.epoch = ReadU64(resp);
  reply.body = resp.substr(8);
  return reply;
}

}  // namespace datalog
