#ifndef DATALOG_SERVER_SERVER_H_
#define DATALOG_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "incr/materialized_view.h"
#include "server/epoch.h"
#include "server/wire.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace datalog {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket. Created on Start()
  /// (an existing stale socket file is replaced) and unlinked on Stop().
  std::string socket_path;

  /// Request-handler threads (the pool that runs QUERY/COMMIT/... frames).
  /// Clamped to at least 1.
  std::size_t num_workers = 2;

  /// Maintenance parallelism handed to the MaterializedView (see
  /// IncrOptions::num_threads). 1 keeps commits single-threaded.
  std::size_t incr_threads = 1;
};

/// Deterministic-where-possible server counters, exported by the STATS
/// frame (as JSON) and by Stats() for in-process tests.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t pings = 0;
  std::uint64_t queries = 0;
  std::uint64_t inserts = 0;
  std::uint64_t retracts = 0;
  std::uint64_t commits = 0;        // COMMIT frames that published an epoch
  std::uint64_t empty_commits = 0;  // COMMIT frames that only re-pinned
  std::uint64_t stats_requests = 0;
  std::uint64_t errors = 0;  // error responses sent
  std::uint64_t head_epoch = 0;
  std::uint64_t epochs_published = 0;
  std::uint64_t live_epochs = 0;
  std::uint64_t base_facts = 0;  // at the head epoch
  std::uint64_t view_facts = 0;  // at the head epoch

  std::string ToJson() const;
};

/// A long-lived Datalog server: hosts one MaterializedView behind
/// MVCC-style epoch snapshots and serves the wire protocol of
/// server/wire.h over a local (AF_UNIX) stream socket.
///
/// Concurrency model (docs/server.md):
///  - one I/O thread accepts connections and reassembles frames; each
///    complete frame is dispatched to a ThreadPool of `num_workers`
///    request handlers (one in-flight request per connection, so
///    responses stay FIFO per client without per-connection queues);
///  - readers resolve QUERY frames against the epoch snapshot their
///    connection pinned (the head at first query, refreshed by COMMIT),
///    entirely lock-free -- snapshots are immutable and their indexes
///    prebuilt, so readers never block writers and vice versa;
///  - writers buffer INSERT/RETRACT per connection and serialize COMMIT
///    through one commit mutex: apply the batch to the incremental view,
///    copy the maintained state, publish it as the next epoch (an O(1)
///    shared_ptr swap), and re-pin the committing connection;
///  - parsing interns into the shared SymbolTable under a writer lock;
///    rendering and evaluation take the reader side.
///
/// Every request runs under an obs span (server/<op>) and bumps
/// server.requests / server.latency_ns metrics labeled by op.
class DatalogServer {
 public:
  /// Materializes `program` over `edb` (epoch 0), binds the socket, and
  /// starts the I/O thread and worker pool.
  static Result<std::unique_ptr<DatalogServer>> Start(Program program,
                                                      Database edb,
                                                      ServerOptions options);

  ~DatalogServer();

  DatalogServer(const DatalogServer&) = delete;
  DatalogServer& operator=(const DatalogServer&) = delete;

  /// Stops accepting, drains in-flight requests, closes connections, and
  /// joins the I/O thread and workers. Idempotent.
  void Stop();

  /// Blocks until the server stops -- either a client sent SHUTDOWN or
  /// another thread called Stop(). The CLI `serve` command parks here.
  void WaitUntilStopped();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  const std::string& socket_path() const { return options_.socket_path; }
  std::uint64_t head_epoch() const { return epochs_->head_id(); }
  std::size_t live_epochs() const { return epochs_->LiveEpochs(); }

  ServerStats Stats() const;

 private:
  struct Connection;

  DatalogServer(Program program, ServerOptions options);

  Status Initialize(Database edb);
  void IoLoop();
  void Wake();
  void AcceptReady();
  void ReadReady(Connection* conn);
  /// Dispatches the next buffered frame of `conn` to the pool, if any.
  void MaybeDispatch(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);

  /// Runs on a pool worker: executes one request frame and writes the
  /// response.
  void HandleFrame(const std::shared_ptr<Connection>& conn, std::uint8_t tag,
                   std::string payload);
  void Respond(const std::shared_ptr<Connection>& conn, RespStatus status,
               std::uint64_t epoch, std::string_view body);

  std::string HandleQuery(const std::shared_ptr<Connection>& conn,
                          const std::string& text, RespStatus* status,
                          std::uint64_t* epoch);
  std::string HandleUpdate(const std::shared_ptr<Connection>& conn,
                           const std::string& text, bool insert,
                           RespStatus* status, std::uint64_t* epoch);
  std::string HandleCommit(const std::shared_ptr<Connection>& conn,
                           RespStatus* status, std::uint64_t* epoch);

  Program program_;
  std::shared_ptr<SymbolTable> symbols_;
  ServerOptions options_;

  std::unique_ptr<MaterializedView> view_;  // guarded by commit_mu_
  std::unique_ptr<EpochManager> epochs_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex commit_mu_;  // serializes Apply + Publish
  /// Writer side: parsing (may intern). Reader side: arity checks,
  /// rendering, and the maintenance passes inside Apply.
  std::shared_mutex symbols_mu_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  std::thread io_thread_;

  /// Connections, keyed by fd. Only the I/O thread touches the map.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool teardown_done_ = false;  // guarded by stopped_mu_ (Stop idempotence)

  // Request counters (relaxed atomics; exact because each op bumps once).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> retracts_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> empty_commits_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace datalog

#endif  // DATALOG_SERVER_SERVER_H_
