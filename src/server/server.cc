#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <shared_mutex>
#include <sstream>
#include <tuple>

#include "ast/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/snapshot_query.h"

namespace datalog {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal("server: " + what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Normalizes a QUERY payload to the `?- atom.` form ParseQuery expects:
/// clients may send a bare atom (`g(1, x)`), with or without the trailing
/// period.
std::string NormalizeQueryText(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return text;
  std::size_t end = text.find_last_not_of(" \t\r\n");
  std::string body = text.substr(begin, end - begin + 1);
  std::string out;
  if (body.rfind("?-", 0) != 0) out = "?- ";
  out += body;
  if (body.empty() || body.back() != '.') out += ".";
  return out;
}

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::ostringstream out;
  out << "{\"connections_accepted\": " << connections_accepted
      << ", \"pings\": " << pings << ", \"queries\": " << queries
      << ", \"inserts\": " << inserts << ", \"retracts\": " << retracts
      << ", \"commits\": " << commits
      << ", \"empty_commits\": " << empty_commits
      << ", \"stats_requests\": " << stats_requests
      << ", \"errors\": " << errors << ", \"head_epoch\": " << head_epoch
      << ", \"epochs_published\": " << epochs_published
      << ", \"live_epochs\": " << live_epochs
      << ", \"base_facts\": " << base_facts
      << ", \"view_facts\": " << view_facts << "}";
  return out.str();
}

/// Per-connection state. The fd, reader, and `closing` belong to the I/O
/// thread; `pinned` and `ops` belong to whichever worker runs the
/// connection's current frame (at most one -- `busy` both enforces that
/// and carries the release/acquire edge that orders one worker's writes
/// before the next worker's reads).
struct DatalogServer::Connection {
  int fd = -1;
  FrameReader reader;
  bool closing = false;           // EOF seen; close once idle
  std::atomic<bool> busy{false};  // a worker owns this connection
  std::atomic<bool> dead{false};  // response write failed; close once idle

  /// The epoch snapshot this connection reads from: pinned lazily by the
  /// first QUERY / DUMP_BASE, advanced to the new head by every COMMIT.
  std::shared_ptr<const EpochSnapshot> pinned;
  /// Buffered transaction: (is_insert, predicate, tuple) in arrival order.
  std::vector<std::tuple<bool, PredicateId, Tuple>> ops;
};

DatalogServer::DatalogServer(Program program, ServerOptions options)
    : program_(std::move(program)), options_(std::move(options)) {}

Result<std::unique_ptr<DatalogServer>> DatalogServer::Start(
    Program program, Database edb, ServerOptions options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("server: socket_path is required");
  }
  if (options.num_workers == 0) options.num_workers = 1;
  std::unique_ptr<DatalogServer> server(
      new DatalogServer(std::move(program), std::move(options)));
  DATALOG_RETURN_IF_ERROR(server->Initialize(std::move(edb)));
  return server;
}

Status DatalogServer::Initialize(Database edb) {
  IncrOptions incr;
  incr.num_threads = options_.incr_threads;
  DATALOG_ASSIGN_OR_RETURN(
      MaterializedView view,
      MaterializedView::Create(program_, std::move(edb), incr));
  view_ = std::make_unique<MaterializedView>(std::move(view));
  symbols_ = view_->symbols();
  epochs_ = std::make_unique<EpochManager>(view_->db(), view_->base(),
                                           CommitStats{});

  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("server: socket path too long (max " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes): " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket()");
  ::unlink(options_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.data(),
              options_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind(" + options_.socket_path + ")");
  }
  if (::listen(listen_fd_, 64) != 0) return ErrnoStatus("listen()");
  DATALOG_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  if (::pipe(wake_fds_) != 0) return ErrnoStatus("pipe()");
  DATALOG_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[0]));
  DATALOG_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[1]));

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

DatalogServer::~DatalogServer() {
  Stop();
  for (int fd : {wake_fds_[0], wake_fds_[1], listen_fd_}) {
    if (fd >= 0) ::close(fd);
  }
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
}

void DatalogServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  // Teardown is serialized and idempotent, but must not hold stopped_mu_
  // while joining (the I/O thread takes stopped_mu_ to signal exit).
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    if (teardown_done_) return;
    teardown_done_ = true;
  }
  if (io_thread_.joinable()) io_thread_.join();
  // The I/O thread never exits while a request is in flight, so the pool
  // is quiescent here; Shutdown just retires the workers.
  if (pool_ != nullptr) pool_->Shutdown(ThreadPool::DrainPolicy::kDrain);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

void DatalogServer::WaitUntilStopped() {
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(
      lock, [this] { return stopped_.load(std::memory_order_acquire); });
}

void DatalogServer::Wake() {
  char byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_fds_[1], &byte, 1);
  } while (n < 0 && errno == EINTR);
  // A full pipe is fine: the I/O thread is already due to wake.
}

void DatalogServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<int> poll_conn_fds;  // conn fd per pollfd, past the fixed ones
  bool listen_open = true;
  while (true) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping) {
      if (listen_open) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(options_.socket_path.c_str());
        listen_open = false;
      }
      // Close every idle connection; in-flight requests finish first and
      // their wake brings us back here.
      std::vector<int> idle;
      for (const auto& entry : conns_) {
        if (!entry.second->busy.load(std::memory_order_acquire)) {
          idle.push_back(entry.first);
        }
      }
      for (int fd : idle) CloseConnection(fd);
      if (conns_.empty()) break;
    }

    pfds.clear();
    poll_conn_fds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    if (listen_open) pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    const std::size_t fixed = pfds.size();
    for (const auto& entry : conns_) {
      if (!entry.second->busy.load(std::memory_order_acquire)) {
        pfds.push_back(pollfd{entry.first, POLLIN, 0});
        poll_conn_fds.push_back(entry.first);
      }
    }

    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; tear down
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (listen_open && (pfds[1].revents & POLLIN) != 0) AcceptReady();
    for (std::size_t i = fixed; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        auto it = conns_.find(poll_conn_fds[i - fixed]);
        if (it != conns_.end()) ReadReady(it->second.get());
      }
    }

    // Dispatch / reap pass. Dispatching is skipped while stopping, so a
    // shutdown drains in-flight work but never starts more.
    std::vector<int> to_close;
    for (const auto& entry : conns_) {
      const std::shared_ptr<Connection>& conn = entry.second;
      if (conn->busy.load(std::memory_order_acquire)) continue;
      if (conn->dead.load(std::memory_order_acquire) || !conn->reader.ok()) {
        to_close.push_back(entry.first);
        continue;
      }
      if (!stopping) MaybeDispatch(conn);
      if (!conn->busy.load(std::memory_order_acquire) && conn->closing) {
        to_close.push_back(entry.first);
      }
    }
    for (int fd : to_close) CloseConnection(fd);
  }

  for (const auto& entry : conns_) ::close(entry.second->fd);
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_.store(true, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void DatalogServer::AcceptReady() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error; poll again
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DatalogServer::ReadReady(Connection* conn) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reader.Append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->closing = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->closing = true;  // read error: treat as hangup
    return;
  }
}

void DatalogServer::MaybeDispatch(const std::shared_ptr<Connection>& conn) {
  std::uint8_t tag = 0;
  std::string payload;
  if (!conn->reader.Next(&tag, &payload)) return;
  conn->busy.store(true, std::memory_order_release);
  const bool accepted = pool_->Submit(
      [this, conn, tag, payload = std::move(payload)]() mutable {
        HandleFrame(conn, tag, std::move(payload));
        conn->busy.store(false, std::memory_order_release);
        Wake();
      });
  if (!accepted) {  // pool already shut down (teardown race): drop the conn
    conn->busy.store(false, std::memory_order_relaxed);
    conn->dead.store(true, std::memory_order_relaxed);
  }
}

void DatalogServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
}

void DatalogServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                                std::uint8_t tag, std::string payload) {
  const auto start = std::chrono::steady_clock::now();
  RespStatus status = RespStatus::kOk;
  std::uint64_t epoch = 0;
  std::string body;
  const char* op = "unknown";
  bool shutdown_after_reply = false;

  switch (static_cast<Opcode>(tag)) {
    case Opcode::kPing: {
      op = "ping";
      TraceSpan span("server/ping");
      pings_.fetch_add(1, std::memory_order_relaxed);
      epoch = epochs_->head_id();
      body = "pong";
      break;
    }
    case Opcode::kQuery: {
      op = "query";
      TraceSpan span("server/query");
      body = HandleQuery(conn, payload, &status, &epoch);
      break;
    }
    case Opcode::kInsert: {
      op = "insert";
      TraceSpan span("server/insert");
      body = HandleUpdate(conn, payload, /*insert=*/true, &status, &epoch);
      break;
    }
    case Opcode::kRetract: {
      op = "retract";
      TraceSpan span("server/retract");
      body = HandleUpdate(conn, payload, /*insert=*/false, &status, &epoch);
      break;
    }
    case Opcode::kCommit: {
      op = "commit";
      TraceSpan span("server/commit");
      body = HandleCommit(conn, &status, &epoch);
      span.Note("epoch", epoch);
      break;
    }
    case Opcode::kStats: {
      op = "stats";
      TraceSpan span("server/stats");
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      epoch = epochs_->head_id();
      body = Stats().ToJson();
      break;
    }
    case Opcode::kDumpBase: {
      op = "dump_base";
      TraceSpan span("server/dump_base");
      if (conn->pinned == nullptr) conn->pinned = epochs_->head();
      epoch = conn->pinned->id;
      std::shared_lock<std::shared_mutex> lock(symbols_mu_);
      body = conn->pinned->base.ToString();
      break;
    }
    case Opcode::kShutdown: {
      op = "shutdown";
      TraceSpan span("server/shutdown");
      epoch = epochs_->head_id();
      body = "bye";
      shutdown_after_reply = true;
      break;
    }
    default: {
      status = RespStatus::kError;
      body = "unknown opcode " + std::to_string(static_cast<int>(tag));
      break;
    }
  }

  if (status == RespStatus::kError) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  Respond(conn, status, epoch, body);
  if (shutdown_after_reply) {
    stop_requested_.store(true, std::memory_order_release);
    // The caller's busy-clear + Wake() get the I/O thread moving.
  }

  auto& metrics = MetricsRegistry::Get();
  metrics.Add("server.requests", {{"op", op}}, 1);
  metrics.Add("server.latency_ns", {{"op", op}}, ElapsedNs(start));
}

std::string DatalogServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                                       const std::string& text,
                                       RespStatus* status,
                                       std::uint64_t* epoch) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::string normalized = NormalizeQueryText(text);
  std::optional<Atom> pattern;
  std::string parse_error;
  {
    std::unique_lock<std::shared_mutex> lock(symbols_mu_);  // parse interns
    Parser parser(symbols_);
    Result<Atom> parsed = parser.ParseQuery(normalized);
    if (parsed.ok()) {
      pattern.emplace(*std::move(parsed));
    } else {
      parse_error = parsed.status().message();
    }
  }
  if (!pattern.has_value()) {
    *status = RespStatus::kError;
    *epoch = conn->pinned != nullptr ? conn->pinned->id : epochs_->head_id();
    return parse_error;
  }

  if (conn->pinned == nullptr) conn->pinned = epochs_->head();
  *epoch = conn->pinned->id;

  MatchStats mstats;
  std::shared_lock<std::shared_mutex> lock(symbols_mu_);
  Result<std::vector<Tuple>> answers =
      QuerySnapshot(conn->pinned->db, *pattern, &mstats);
  if (!answers.ok()) {
    *status = RespStatus::kError;
    return answers.status().message();
  }
  std::string body = RenderAnswers(pattern->predicate(), *answers, *symbols_);
  auto& metrics = MetricsRegistry::Get();
  metrics.Add("server.query_tuples_scanned", {}, mstats.tuples_scanned);
  metrics.Add("server.query_answers", {}, answers->size());
  return body;
}

std::string DatalogServer::HandleUpdate(const std::shared_ptr<Connection>& conn,
                                        const std::string& text, bool insert,
                                        RespStatus* status,
                                        std::uint64_t* epoch) {
  (insert ? inserts_ : retracts_).fetch_add(1, std::memory_order_relaxed);
  *epoch = conn->pinned != nullptr ? conn->pinned->id : epochs_->head_id();
  std::vector<Atom> atoms;
  {
    std::unique_lock<std::shared_mutex> lock(symbols_mu_);  // parse interns
    Parser parser(symbols_);
    Result<std::vector<Atom>> parsed = parser.ParseGroundAtoms(text);
    if (!parsed.ok()) {
      *status = RespStatus::kError;
      return parsed.status().message();
    }
    atoms = *std::move(parsed);
  }
  for (const Atom& atom : atoms) {
    Tuple tuple;
    tuple.reserve(atom.args().size());
    for (const Term& term : atom.args()) tuple.push_back(term.value());
    conn->ops.emplace_back(insert, atom.predicate(), std::move(tuple));
  }
  return "buffered " + std::to_string(conn->ops.size()) + " op(s)";
}

std::string DatalogServer::HandleCommit(const std::shared_ptr<Connection>& conn,
                                        RespStatus* status,
                                        std::uint64_t* epoch) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  if (conn->ops.empty()) {
    // An empty commit still advances the connection to the newest epoch --
    // that is how a pure reader refreshes its snapshot.
    empty_commits_.fetch_add(1, std::memory_order_relaxed);
    conn->pinned = epochs_->head();
    *epoch = conn->pinned->id;
    return "nop (pinned epoch " + std::to_string(conn->pinned->id) + ")";
  }
  commits_.fetch_add(1, std::memory_order_relaxed);

  // Net the buffered ops, last-op-wins per fact, so Apply() sees each
  // (predicate, tuple) in at most one list -- its contract. The ordered
  // map keeps the batch deterministic regardless of arrival interleaving.
  std::map<std::pair<PredicateId, Tuple>, bool> net;
  for (const auto& op : conn->ops) {
    net[{std::get<1>(op), std::get<2>(op)}] = std::get<0>(op);
  }
  conn->ops.clear();
  std::vector<std::pair<PredicateId, Tuple>> inserts;
  std::vector<std::pair<PredicateId, Tuple>> retracts;
  for (const auto& entry : net) {
    (entry.second ? inserts : retracts).push_back(entry.first);
  }

  // The maintenance passes read predicate names/arities, hence the reader
  // lock; a concurrent QUERY parse (writer side) waits, queries already
  // past parsing share the lock and proceed.
  std::shared_lock<std::shared_mutex> sym_lock(symbols_mu_);
  Result<CommitStats> applied = view_->Apply(inserts, retracts);
  if (!applied.ok()) {
    *status = RespStatus::kError;
    *epoch = epochs_->head_id();
    return applied.status().message();
  }
  Database db_copy = view_->db();
  Database base_copy = view_->base();
  conn->pinned = epochs_->Publish(std::move(db_copy), std::move(base_copy),
                                  *applied);
  *epoch = conn->pinned->id;
  return applied->ToString();
}

void DatalogServer::Respond(const std::shared_ptr<Connection>& conn,
                            RespStatus status, std::uint64_t epoch,
                            std::string_view body) {
  std::string payload;
  payload.reserve(8 + body.size());
  AppendU64(&payload, epoch);
  payload.append(body);
  const std::string frame =
      EncodeFrame(static_cast<std::uint8_t>(status), payload);
  const char* data = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(conn->fd, data, left, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, /*timeout_ms=*/1000);
      continue;
    }
    conn->dead.store(true, std::memory_order_release);  // client went away
    return;
  }
}

ServerStats DatalogServer::Stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.retracts = retracts_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.empty_commits = empty_commits_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  const std::shared_ptr<const EpochSnapshot> head = epochs_->head();
  s.head_epoch = head->id;
  s.epochs_published = epochs_->epochs_published();
  s.live_epochs = epochs_->LiveEpochs();
  s.base_facts = head->base.NumFacts();
  s.view_facts = head->db.NumFacts();
  return s;
}

}  // namespace datalog
