#include "server/snapshot_query.h"

#include <algorithm>
#include <utility>

#include "ast/pretty_print.h"

namespace datalog {

namespace {

/// True when `row` matches `pattern`: constants agree positionally and
/// repeated variables bind consistently.
bool RowMatches(const Atom& pattern, const Tuple& row) {
  const std::vector<Term>& args = pattern.args();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Term& t = args[i];
    if (t.is_constant()) {
      if (t.value() != row[i]) return false;
      continue;
    }
    // Repeated variable: every later occurrence must carry the same value
    // as the first. Arities are tiny, so the quadratic probe is cheaper
    // than building a binding map per row.
    for (std::size_t j = 0; j < i; ++j) {
      if (args[j].is_variable() && args[j].var() == t.var() &&
          row[j] != row[i]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<std::vector<Tuple>> QuerySnapshot(const Database& db,
                                         const Atom& pattern,
                                         MatchStats* stats) {
  const int arity = db.symbols()->PredicateArity(pattern.predicate());
  if (arity != pattern.arity()) {
    return Status::InvalidArgument(
        "query arity " + std::to_string(pattern.arity()) +
        " does not match predicate " +
        db.symbols()->PredicateName(pattern.predicate()) + "/" +
        std::to_string(arity));
  }
  const Relation& rel = db.relation(pattern.predicate());
  std::vector<Tuple> out;
  if (rel.empty()) return out;

  // Probe the prebuilt single-column index of the first bound column;
  // fall back to a full scan for all-variable patterns. Either way the
  // surviving candidates are filtered positionally, so nothing here
  // builds or extends an index -- the property that makes concurrent
  // queries over one snapshot safe.
  int probe_column = -1;
  for (std::size_t i = 0; i < pattern.args().size(); ++i) {
    if (pattern.args()[i].is_constant()) {
      probe_column = static_cast<int>(i);
      break;
    }
  }
  if (probe_column >= 0) {
    const std::vector<std::uint32_t>& row_ids =
        rel.Lookup(probe_column, pattern.args()[
            static_cast<std::size_t>(probe_column)].value());
    if (stats != nullptr) {
      ++stats->index_lookups;
      stats->tuples_scanned += row_ids.size();
    }
    for (std::uint32_t row_id : row_ids) {
      const Tuple& row = rel.row(row_id);
      if (RowMatches(pattern, row)) out.push_back(row);
    }
  } else {
    if (stats != nullptr) {
      ++stats->index_lookups;  // counted as one (scan) probe, like a plan
      stats->tuples_scanned += rel.size();
    }
    for (const Tuple& row : rel.rows()) {
      if (RowMatches(pattern, row)) out.push_back(row);
    }
  }
  std::sort(out.begin(), out.end());
  if (stats != nullptr) stats->substitutions += out.size();
  return out;
}

std::string RenderAnswers(PredicateId pred, const std::vector<Tuple>& tuples,
                          const SymbolTable& symbols) {
  std::string out;
  const std::string& name = symbols.PredicateName(pred);
  for (const Tuple& tuple : tuples) {
    out += name;
    if (!tuple.empty()) {
      out += "(";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (i != 0) out += ", ";
        out += ToString(tuple[i], symbols);
      }
      out += ")";
    }
    out += ".\n";
  }
  return out;
}

}  // namespace datalog
