#include "server/wire.h"

#include <cstring>

namespace datalog {

namespace {

std::uint32_t ReadU32(const char* data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::string EncodeFrame(std::uint8_t tag, std::string_view payload) {
  std::string out;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size() + 1);
  out.reserve(4 + length);
  out.push_back(static_cast<char>(length & 0xff));
  out.push_back(static_cast<char>((length >> 8) & 0xff));
  out.push_back(static_cast<char>((length >> 16) & 0xff));
  out.push_back(static_cast<char>((length >> 24) & 0xff));
  out.push_back(static_cast<char>(tag));
  out.append(payload);
  return out;
}

void AppendU64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t ReadU64(std::string_view data) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(data[static_cast<std::size_t>(i)]);
  }
  return value;
}

void FrameReader::Append(const char* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameReader::Next(std::uint8_t* tag, std::string* payload) {
  if (!ok()) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint32_t length = ReadU32(buffer_.data() + consumed_);
  if (length == 0) {
    error_ = "zero-length frame";
    return false;
  }
  if (length > kMaxFrameBytes) {
    error_ = "frame length " + std::to_string(length) + " exceeds limit " +
             std::to_string(kMaxFrameBytes);
    return false;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return false;
  *tag = static_cast<std::uint8_t>(buffer_[consumed_ + 4]);
  payload->assign(buffer_, consumed_ + 5, length - 1);
  consumed_ += 4 + static_cast<std::size_t>(length);
  return true;
}

}  // namespace datalog
