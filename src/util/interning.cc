#include "util/interning.h"

#include <stdexcept>

namespace datalog {

int32_t StringInterner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  int32_t id = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

int32_t StringInterner::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? -1 : it->second;
}

ValueDictionary::ValueDictionary()
    : chunks_(std::make_unique<std::array<std::atomic<Value*>, kMaxChunks>>()) {
  for (std::atomic<Value*>& chunk : *chunks_) {
    chunk.store(nullptr, std::memory_order_relaxed);
  }
}

ValueDictionary& ValueDictionary::Global() {
  // Leaked intentionally: relations on any thread may resolve ids during
  // static destruction of other objects.
  static ValueDictionary* const kGlobal = new ValueDictionary();
  return *kGlobal;
}

std::uint32_t ValueDictionary::Intern(const Value& v) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(v);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  if (id == kInvalidId) {
    throw std::length_error("ValueDictionary: 2^32-1 distinct values");
  }
  const std::uint32_t chunk_index = id >> kChunkBits;
  Value* chunk = (*chunks_)[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk_storage_.push_back(std::make_unique<Value[]>(kChunkSize));
    chunk = chunk_storage_.back().get();
    (*chunks_)[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[id & (kChunkSize - 1)] = v;
  index_.emplace(v, id);
  // Publish: the slot write above becomes visible to every reader that
  // observes size() > id (Resolve's acquire load pairs with this).
  size_.store(id + 1, std::memory_order_release);
  return id;
}

void ValueDictionary::InternRow(const std::vector<Value>& row,
                                std::vector<std::uint32_t>* out) {
  out->resize(row.size());
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    bool all_found = true;
    for (std::size_t i = 0; i < row.size(); ++i) {
      auto it = index_.find(row[i]);
      if (it == index_.end()) {
        all_found = false;
        break;
      }
      (*out)[i] = it->second;
    }
    if (all_found) return;
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    (*out)[i] = Intern(row[i]);
  }
}

std::uint32_t ValueDictionary::LookupId(const Value& v) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(v);
  return it == index_.end() ? kInvalidId : it->second;
}

bool ValueDictionary::LookupRow(const std::vector<Value>& row,
                                std::vector<std::uint32_t>* out) const {
  out->resize(row.size());
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (std::size_t i = 0; i < row.size(); ++i) {
    auto it = index_.find(row[i]);
    if (it == index_.end()) return false;
    (*out)[i] = it->second;
  }
  return true;
}

}  // namespace datalog
