#include "util/interning.h"

namespace datalog {

int32_t StringInterner::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  int32_t id = static_cast<int32_t>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), id);
  return id;
}

int32_t StringInterner::Lookup(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? -1 : it->second;
}

}  // namespace datalog
