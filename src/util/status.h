#ifndef DATALOG_UTIL_STATUS_H_
#define DATALOG_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace datalog {

/// Error codes used throughout the library. The library does not throw
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: parse errors, arity mismatches, unsafe rules.
  kInvalidArgument,
  /// A named entity (predicate, rule index, ...) does not exist.
  kNotFound,
  /// A bounded procedure (e.g. the chase with embedded tgds) exhausted its
  /// step or null budget before reaching a conclusion.
  kResourceExhausted,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal,
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// An Arrow/RocksDB-style status object: either OK (cheap, no allocation)
/// or an error code with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeToString(code()));
    out += ": ";
    out += message();
    return out;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status copyable and cheap to pass around; the error
  // path is cold so the allocation is acceptable.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace datalog

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T>.
#define DATALOG_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::datalog::Status status_macro_internal_ = (expr);  \
    if (!status_macro_internal_.ok()) {                 \
      return status_macro_internal_;                    \
    }                                                   \
  } while (false)

#endif  // DATALOG_UTIL_STATUS_H_
