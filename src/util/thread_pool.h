#ifndef DATALOG_UTIL_THREAD_POOL_H_
#define DATALOG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datalog {

/// A fixed-size worker pool with a shared FIFO task queue. Built for the
/// parallel evaluator's round structure -- submit a batch of tasks, then
/// Wait() for the round barrier -- but generic enough for any fan-out,
/// including the long-lived request loop of the Datalog server
/// (src/server), which needs a deterministic shutdown story.
///
/// With zero workers the pool is still usable: Wait() drains the queue on
/// the calling thread, so ThreadPool(0) gives a deterministic
/// single-threaded execution of the same task stream (handy under
/// sanitizers and in tests).
class ThreadPool {
 public:
  /// What Shutdown() does with tasks that are queued but not yet running.
  enum class DrainPolicy {
    kDrain,   // run every queued task before the workers exit
    kReject,  // drop queued tasks; only tasks already running finish
  };

  /// Spawns `num_threads` workers (0 is allowed, see above).
  explicit ThreadPool(std::size_t num_threads);

  /// Equivalent to Shutdown(kDrain): drains outstanding tasks, then joins
  /// the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` and returns true. Tasks must not throw; they may
  /// Submit() further tasks, which the same Wait() call will also drain.
  /// After Shutdown() the task is rejected (not run) and Submit returns
  /// false -- the deterministic behavior a long-lived server needs when a
  /// request races teardown.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. With zero workers
  /// (or while workers are busy) the calling thread runs queued tasks
  /// itself instead of idling.
  void Wait();

  /// Permanently shuts the pool down: no Submit() is accepted afterwards.
  /// kDrain runs every queued task first; kReject discards tasks that
  /// have not started (tasks already running always complete). Blocks
  /// until the workers have joined. Idempotent; the policy of the first
  /// call wins. Must not be called from inside a pool task.
  void Shutdown(DrainPolicy policy = DrainPolicy::kDrain);

  bool shutdown() const;

 private:
  void WorkerLoop();
  /// Pops and runs one task if available; returns false when the queue is
  /// empty. `lock` must hold `mu_` and is reacquired before returning.
  bool RunOneTask(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when tasks arrive / stop
  std::condition_variable done_cv_;  // signalled when in_flight_ hits zero
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;          // workers should exit once the queue is empty
  bool shutdown_ = false;      // Submit() rejects; set by Shutdown()
  std::vector<std::thread> threads_;
};

}  // namespace datalog

#endif  // DATALOG_UTIL_THREAD_POOL_H_
