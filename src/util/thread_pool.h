#ifndef DATALOG_UTIL_THREAD_POOL_H_
#define DATALOG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datalog {

/// A fixed-size worker pool with a shared FIFO task queue. Built for the
/// parallel evaluator's round structure -- submit a batch of tasks, then
/// Wait() for the round barrier -- but generic enough for any fan-out.
///
/// With zero workers the pool is still usable: Wait() drains the queue on
/// the calling thread, so ThreadPool(0) gives a deterministic
/// single-threaded execution of the same task stream (handy under
/// sanitizers and in tests).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed, see above).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task`. Tasks must not throw; they may Submit() further
  /// tasks, which the same Wait() call will also drain.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. With zero workers
  /// (or while workers are busy) the calling thread runs queued tasks
  /// itself instead of idling.
  void Wait();

 private:
  void WorkerLoop();
  /// Pops and runs one task if available; returns false when the queue is
  /// empty. `lock` must hold `mu_` and is reacquired before returning.
  bool RunOneTask(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when tasks arrive / stop
  std::condition_variable done_cv_;  // signalled when in_flight_ hits zero
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace datalog

#endif  // DATALOG_UTIL_THREAD_POOL_H_
