#include "util/thread_pool.h"

#include <utility>

namespace datalog {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(DrainPolicy::kDrain); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
  return true;
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task();
  lock.lock();
  if (--in_flight_ == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    RunOneTask(lock);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  // Help drain the queue: guarantees progress with zero workers and
  // shortens the barrier when tasks outnumber workers.
  while (RunOneTask(lock)) {
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown(DrainPolicy policy) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      // A second call still waits for teardown to finish (threads_ is
      // only mutated below under the first caller, after workers joined).
      done_cv_.wait(lock, [this] { return in_flight_ == 0; });
      return;
    }
    shutdown_ = true;  // Submit() rejects from here on
    if (policy == DrainPolicy::kReject) {
      // Queued-but-not-started tasks are dropped deterministically; tasks
      // a worker already dequeued are mid-run and always complete.
      in_flight_ -= queue_.size();
      queue_.clear();
      if (in_flight_ == 0) done_cv_.notify_all();
    } else {
      // Drain: run queued tasks here too, then wait out the stragglers.
      while (RunOneTask(lock)) {
      }
    }
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

bool ThreadPool::shutdown() const {
  std::unique_lock<std::mutex> lock(mu_);
  return shutdown_;
}

}  // namespace datalog
