#include "util/thread_pool.h"

#include <utility>

namespace datalog {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task();
  lock.lock();
  if (--in_flight_ == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    RunOneTask(lock);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  // Help drain the queue: guarantees progress with zero workers and
  // shortens the barrier when tasks outnumber workers.
  while (RunOneTask(lock)) {
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace datalog
