#ifndef DATALOG_UTIL_HASH_H_
#define DATALOG_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace datalog {

/// Mixes `value` into a running hash seed (boost::hash_combine recipe with a
/// 64-bit golden-ratio constant).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of hashable elements into one seed.
template <typename Iter>
std::size_t HashRange(Iter begin, Iter end, std::size_t seed = 0) {
  for (Iter it = begin; it != end; ++it) {
    HashCombine(seed, std::hash<typename std::iterator_traits<Iter>::value_type>{}(*it));
  }
  return seed;
}

}  // namespace datalog

#endif  // DATALOG_UTIL_HASH_H_
