#include "util/status.h"

namespace datalog {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace datalog
