#ifndef DATALOG_UTIL_RESULT_H_
#define DATALOG_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace datalog {

/// Holds either a value of type T or an error Status (never both, never
/// neither). Modeled on arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (the common error path). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace datalog

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which it declares).
#define DATALOG_ASSIGN_OR_RETURN(lhs, rexpr)            \
  DATALOG_ASSIGN_OR_RETURN_IMPL_(                       \
      DATALOG_MACRO_CONCAT_(result_, __LINE__), lhs, rexpr)

#define DATALOG_MACRO_CONCAT_INNER_(x, y) x##y
#define DATALOG_MACRO_CONCAT_(x, y) DATALOG_MACRO_CONCAT_INNER_(x, y)

#define DATALOG_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                   \
  if (!result.ok()) {                                      \
    return result.status();                                \
  }                                                        \
  lhs = std::move(result).value()

#endif  // DATALOG_UTIL_RESULT_H_
