#ifndef DATALOG_UTIL_INTERNING_H_
#define DATALOG_UTIL_INTERNING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace datalog {

/// Maps strings to dense non-negative integer ids and back. Used for
/// predicate names, variable names and symbolic constants so the rest of
/// the library can work with small integers.
///
/// Not thread-safe; each SymbolTable/Program owns its interner.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `text`, interning it on first use.
  int32_t Intern(std::string_view text);

  /// Returns the id for `text`, or -1 if it has never been interned.
  int32_t Lookup(std::string_view text) const;

  /// Returns the string for a valid id. Ids come from Intern().
  const std::string& ToString(int32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace datalog

#endif  // DATALOG_UTIL_INTERNING_H_
