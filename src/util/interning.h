#ifndef DATALOG_UTIL_INTERNING_H_
#define DATALOG_UTIL_INTERNING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/value.h"

namespace datalog {

/// Maps strings to dense non-negative integer ids and back. Used for
/// predicate names, variable names and symbolic constants so the rest of
/// the library can work with small integers.
///
/// Not thread-safe; each SymbolTable/Program owns its interner.
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `text`, interning it on first use.
  int32_t Intern(std::string_view text);

  /// Returns the id for `text`, or -1 if it has never been interned.
  int32_t Lookup(std::string_view text) const;

  /// Returns the string for a valid id. Ids come from Intern().
  const std::string& ToString(int32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> strings_;
};

/// Maps database constants (`Value`s of any kind) to dense `u32` ids and
/// back. The columnar relation backend stores every column as a
/// contiguous `std::vector<std::uint32_t>` of these ids, so equality of
/// two stored values is a single integer compare and per-column hash
/// indexes key on 4-byte ids instead of 16-byte Values (see
/// docs/columnar_storage.md).
///
/// Id assignment is dense and append-only: the first distinct value ever
/// interned gets id 0, the next gets 1, and so on (no holes, never
/// reused, stable for the dictionary's lifetime). Nothing observable
/// depends on the numeric order of ids -- relations iterate in row
/// insertion order and indexes are only probed, never enumerated -- so a
/// process-global dictionary shared by every database stays
/// deterministic even when parallel workers intern in racy order.
///
/// Thread safety: Intern / LookupId / LookupRow take an internal
/// shared_mutex (writes exclusive, lookups shared). Resolve is lock-free:
/// ids are published with a release store after the value is written into
/// a chunked append-only table, and Resolve acquires through the size
/// counter, so readers may run concurrently with interning threads
/// (verified under TSan by tests/util/interning_test.cc).
class ValueDictionary {
 public:
  /// Ids are dense, so the all-ones pattern can serve as "no such value".
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

  ValueDictionary();
  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;

  /// The process-wide dictionary used by every columnar Relation.
  static ValueDictionary& Global();

  /// Returns the id for `v`, interning it on first use.
  std::uint32_t Intern(const Value& v);

  /// Interns every value of `row`, writing the ids into `out` (resized
  /// to match). One lock round-trip for the whole row: a shared-lock
  /// pass resolves values that are already interned (the common case on
  /// hot paths), and only rows containing novel values upgrade to the
  /// exclusive lock.
  void InternRow(const std::vector<Value>& row,
                 std::vector<std::uint32_t>* out);

  /// Returns the id for `v`, or kInvalidId if it was never interned.
  std::uint32_t LookupId(const Value& v) const;

  /// Id-resolves every value of `row` into `out` without interning.
  /// Returns false (and leaves `out` unspecified) if any value is
  /// unknown -- for membership probes that means the row cannot be
  /// present in any columnar relation.
  bool LookupRow(const std::vector<Value>& row,
                 std::vector<std::uint32_t>* out) const;

  /// Returns the value for a valid id (any id previously returned by
  /// Intern). Lock-free; safe concurrently with interning threads.
  Value Resolve(std::uint32_t id) const {
    // The release store in Intern makes the chunk slot (and the chunk
    // pointer) visible to any reader that observed id < size().
    const std::uint32_t published = size_.load(std::memory_order_acquire);
    (void)published;
    const Value* chunk =
        (*chunks_)[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk[id & (kChunkSize - 1)];
  }

  /// Number of distinct interned values (== the next id to be assigned).
  std::uint32_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint32_t kChunkBits = 16;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kMaxChunks = 1u << (32 - kChunkBits);

  mutable std::shared_mutex mu_;
  std::unordered_map<Value, std::uint32_t, ValueHash> index_;  // guarded by mu_
  // Append-only id -> Value table in fixed-size chunks: a published
  // chunk pointer never moves, which is what makes Resolve lock-free.
  std::unique_ptr<std::array<std::atomic<Value*>, kMaxChunks>> chunks_;
  std::vector<std::unique_ptr<Value[]>> chunk_storage_;  // guarded by mu_
  std::atomic<std::uint32_t> size_{0};
};

}  // namespace datalog

#endif  // DATALOG_UTIL_INTERNING_H_
