#include "util/string_util.h"

#include <cstdio>

namespace datalog {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace datalog
