#include "util/string_util.h"

namespace datalog {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace datalog
