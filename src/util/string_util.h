#ifndef DATALOG_UTIL_STRING_UTIL_H_
#define DATALOG_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace datalog {

/// Joins `parts` with `separator`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters. Shared by the metrics exporter and the diagnostics
/// renderers.
std::string JsonEscape(std::string_view text);

}  // namespace datalog

#endif  // DATALOG_UTIL_STRING_UTIL_H_
