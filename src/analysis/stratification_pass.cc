#include <map>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "ast/dependence_graph.h"

namespace datalog {
namespace {

/// The index of the first rule whose head is `pred`, or npos.
std::size_t FirstDefiningRule(const Program& program, PredicateId pred) {
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].head().predicate() == pred) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Locates the negated body literal realizing the witness cycle's
/// negative edge cycle[0] -> cycle[1]: a literal `not cycle[0](...)` in a
/// rule whose head is cycle[1] (== cycle[0] for a self-loop). Returns
/// (rule index, body position) or (npos, npos).
std::pair<std::size_t, std::size_t> FindNegativeEdgeLiteral(
    const Program& program, const std::vector<PredicateId>& cycle) {
  const PredicateId from = cycle[0];
  const PredicateId to = cycle.size() > 1 ? cycle[1] : cycle[0];
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].head().predicate() != to) continue;
    const auto& body = rules[i].body();
    for (std::size_t j = 0; j < body.size(); ++j) {
      if (body[j].negated && body[j].atom.predicate() == from) return {i, j};
    }
  }
  return {static_cast<std::size_t>(-1), static_cast<std::size_t>(-1)};
}

}  // namespace

// Pass 2: the dependence graph (Section III) viewed as a lint surface.
// Reports an exact negative-cycle witness when the program is not
// stratifiable, and structural infos otherwise: strata count, mutually
// recursive components, and the linear/nonlinear classification that
// decides which of the paper's Section V results apply.
void RunStratificationPass(const Program& program,
                           const AnalyzerOptions& options,
                           const ProgramSourceMap* source,
                           AnalysisResult* result) {
  (void)options;
  if (program.NumRules() == 0) return;
  const SymbolTable& symbols = *program.symbols();
  DependenceGraph graph(program);

  bool has_negation = false;
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body()) {
      if (lit.negated) has_negation = true;
    }
  }

  auto strata = graph.Stratify();
  if (!strata.ok()) {
    std::vector<PredicateId> cycle = graph.NegativeCycleWitness();
    std::string names;
    for (PredicateId p : cycle) {
      if (!names.empty()) names += " -> ";
      names += symbols.PredicateName(p);
    }
    if (!cycle.empty()) names += " -> " + symbols.PredicateName(cycle[0]);
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "stratification";
    d.code = "negative-cycle";
    d.message =
        "program is not stratifiable: the negation of '" +
        (cycle.empty() ? std::string("?") : symbols.PredicateName(cycle[0])) +
        "' lies on the recursive cycle " + names;
    d.note = "no stratum ordering can evaluate '" +
             (cycle.empty() ? std::string("?")
                            : symbols.PredicateName(cycle[0])) +
             "' before it is negated; break the cycle or drop the negation";
    auto [rule_index, body_pos] = FindNegativeEdgeLiteral(program, cycle);
    if (rule_index != static_cast<std::size_t>(-1)) {
      d.rule_index = rule_index;
      d.span = SpanOfLiteral(program, source, rule_index, body_pos);
    }
    result->diagnostics.push_back(std::move(d));
    return;  // SCC infos below would describe an unevaluable program
  }

  if (has_negation) {
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "stratification";
    d.code = "strata";
    d.message = "program stratifies into " +
                std::to_string(strata.value().size()) + " strata";
    result->diagnostics.push_back(std::move(d));
  }

  // Group the recursive intentional predicates by SCC.
  std::map<int, std::vector<PredicateId>> components;
  for (PredicateId p : program.IntentionalPredicates()) {
    if (graph.IsPredicateRecursive(p)) {
      components[graph.SccIndex(p)].push_back(p);
    }
  }
  for (const auto& [scc, members] : components) {
    (void)scc;
    std::string names;
    for (PredicateId p : members) {
      if (!names.empty()) names += ", ";
      names += "'" + symbols.PredicateName(p) + "'";
    }
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "stratification";
    d.code = "recursive-component";
    d.message = members.size() == 1
                    ? "predicate " + names + " is recursive"
                    : "predicates " + names + " are mutually recursive";
    const std::size_t rule_index = FirstDefiningRule(program, members[0]);
    if (rule_index != static_cast<std::size_t>(-1)) {
      d.rule_index = rule_index;
      d.span = SpanOfLiteral(program, source, rule_index,
                             /*body_pos=*/static_cast<std::size_t>(-1));
    }
    result->diagnostics.push_back(std::move(d));
  }

  if (!components.empty()) {
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "stratification";
    d.code = graph.IsLinear(program) ? "linear" : "nonlinear";
    d.message =
        graph.IsLinear(program)
            ? "the recursion is linear (at most one recursive atom per "
              "body)"
            : "the recursion is nonlinear (some body joins two atoms "
              "mutually recursive with its head)";
    result->diagnostics.push_back(std::move(d));
  }
}

}  // namespace datalog
