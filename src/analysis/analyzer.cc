#include "analysis/analyzer.h"

#include <algorithm>

#include "analysis/passes.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {

SourceSpan SpanOfLiteral(const Program& program,
                         const ProgramSourceMap* source,
                         std::size_t rule_index, std::size_t body_pos) {
  const Rule& rule = program.rules()[rule_index];
  const bool is_head = body_pos == static_cast<std::size_t>(-1);
  if (source != nullptr) {
    const RuleSourceSpans* spans = source->rule(rule_index);
    if (spans != nullptr) {
      if (is_head && spans->head.span.valid()) return spans->head.span;
      if (!is_head && body_pos < spans->body.size() &&
          spans->body[body_pos].span.valid()) {
        return spans->body[body_pos].span;
      }
    }
  }
  const Atom& atom = is_head ? rule.head() : rule.body()[body_pos].atom;
  if (atom.span().valid()) return atom.span();
  return rule.span();
}

SourceSpan SpanOfRule(const Program& program, const ProgramSourceMap* source,
                      std::size_t rule_index) {
  if (source != nullptr) {
    const RuleSourceSpans* spans = source->rule(rule_index);
    if (spans != nullptr && spans->span.valid()) return spans->span;
  }
  return program.rules()[rule_index].span();
}

AnalysisResult Analyze(const Program& program, const AnalyzerOptions& options,
                       const ProgramSourceMap* source) {
  TraceSpan span("analysis/run");
  span.Note("rules", program.NumRules());
  AnalysisResult result;

  struct PassEntry {
    const char* name;
    bool enabled;
    void (*run)(const Program&, const AnalyzerOptions&,
                const ProgramSourceMap*, AnalysisResult*);
  };
  const PassEntry passes[] = {
      {"safety", options.safety, RunSafetyPass},
      {"stratification", options.stratification, RunStratificationPass},
      {"dead_code", options.dead_code, RunDeadCodePass},
      {"redundancy", options.redundancy, RunRedundancyPass},
      {"binding", options.binding, RunBindingPass},
  };
  MetricsRegistry& metrics = MetricsRegistry::Get();
  for (const PassEntry& pass : passes) {
    if (!pass.enabled) continue;
    TraceSpan pass_span("analysis/pass");
    const std::size_t before = result.diagnostics.size();
    pass.run(program, options, source, &result);
    const std::uint64_t produced =
        static_cast<std::uint64_t>(result.diagnostics.size() - before);
    pass_span.Note("diagnostics", produced);
    if (metrics.enabled()) {
      metrics.Add("analysis.pass_runs", {{"pass", pass.name}}, 1);
      metrics.Add("analysis.diagnostics", {{"pass", pass.name}}, produced);
    }
  }

  // Order by source position so the report reads top to bottom; unknown
  // locations sink to the end, and within one location the pass order
  // (already severity-meaningful: errors-first passes run first) is kept
  // by stable sort.
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     const bool a_known = a.span.valid();
                     const bool b_known = b.span.valid();
                     if (a_known != b_known) return a_known;
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     return a.span.col < b.span.col;
                   });
  span.Note("diagnostics",
            static_cast<std::uint64_t>(result.diagnostics.size()));
  span.Note("budget_exhausted", result.budget_exhausted ? 1 : 0);
  return result;
}

AnalysisResult AnalyzeParsed(const ParsedProgram& parsed,
                             AnalyzerOptions options) {
  if (!options.query.has_value() && !parsed.queries.empty()) {
    options.query = parsed.queries.front();
  }
  return Analyze(parsed.program, options, &parsed.source);
}

}  // namespace datalog
