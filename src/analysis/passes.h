#ifndef DATALOG_ANALYSIS_PASSES_H_
#define DATALOG_ANALYSIS_PASSES_H_

#include "analysis/analyzer.h"

namespace datalog {

// The individual analyzer passes (internal interface; call Analyze()
// instead). Each appends its diagnostics to `result->diagnostics` and may
// set `result->budget_exhausted`. All take the same shape so the driver
// can table them; `source` may be null.

void RunSafetyPass(const Program& program, const AnalyzerOptions& options,
                   const ProgramSourceMap* source, AnalysisResult* result);

void RunStratificationPass(const Program& program,
                           const AnalyzerOptions& options,
                           const ProgramSourceMap* source,
                           AnalysisResult* result);

void RunDeadCodePass(const Program& program, const AnalyzerOptions& options,
                     const ProgramSourceMap* source, AnalysisResult* result);

void RunRedundancyPass(const Program& program, const AnalyzerOptions& options,
                       const ProgramSourceMap* source, AnalysisResult* result);

void RunBindingPass(const Program& program, const AnalyzerOptions& options,
                    const ProgramSourceMap* source, AnalysisResult* result);

/// Shared helper: the span of body literal `body_pos` of rule
/// `rule_index`, preferring the source map, then the atom's own span,
/// then the rule's. A `body_pos` of npos addresses the head atom.
SourceSpan SpanOfLiteral(const Program& program, const ProgramSourceMap* source,
                         std::size_t rule_index, std::size_t body_pos);

/// Shared helper: the span of the whole rule `rule_index`.
SourceSpan SpanOfRule(const Program& program, const ProgramSourceMap* source,
                      std::size_t rule_index);

}  // namespace datalog

#endif  // DATALOG_ANALYSIS_PASSES_H_
