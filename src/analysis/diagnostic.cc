#include "analysis/diagnostic.h"

#include "util/string_util.h"

namespace datalog {
namespace {

void AppendSpanJson(std::string& out, const SourceSpan& span) {
  out += "\"line\": " + std::to_string(span.line);
  out += ", \"col\": " + std::to_string(span.col);
  out += ", \"endLine\": " + std::to_string(span.end_line);
  out += ", \"endCol\": " + std::to_string(span.end_col);
}

}  // namespace

std::string_view ToString(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

std::string Diagnostic::ToText() const {
  std::string out;
  if (span.valid()) {
    out += span.ToString();
    out += ": ";
  }
  out += ToString(severity);
  out += ": [";
  out += pass;
  out += '/';
  out += code;
  out += "] ";
  out += message;
  if (!note.empty()) {
    out += "\n  note: ";
    out += note;
  }
  return out;
}

Status Diagnostic::ToStatus() const {
  return Status::InvalidArgument(ToText());
}

DiagnosticCounts CountBySeverity(const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts counts;
  for (const Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++counts.errors; break;
      case Severity::kWarning: ++counts.warnings; break;
      case Severity::kInfo: ++counts.infos; break;
    }
  }
  return counts;
}

std::string DiagnosticsToText(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToText();
    out += '\n';
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file, bool budget_exhausted) {
  std::string out = "{\"version\": 1, \"file\": \"";
  out += JsonEscape(file);
  out += "\",\n \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"severity\": \"";
    out += ToString(d.severity);
    out += "\", \"pass\": \"" + JsonEscape(d.pass) + "\"";
    out += ", \"code\": \"" + JsonEscape(d.code) + "\"";
    out += ", ";
    AppendSpanJson(out, d.span);
    if (d.rule_index != Diagnostic::kNoRule) {
      out += ", \"ruleIndex\": " + std::to_string(d.rule_index);
    }
    out += ", \"message\": \"" + JsonEscape(d.message) + "\"";
    if (!d.note.empty()) {
      out += ", \"note\": \"" + JsonEscape(d.note) + "\"";
    }
    out += "}";
  }
  DiagnosticCounts counts = CountBySeverity(diagnostics);
  out += "\n ],\n \"summary\": {\"errors\": " + std::to_string(counts.errors);
  out += ", \"warnings\": " + std::to_string(counts.warnings);
  out += ", \"infos\": " + std::to_string(counts.infos);
  out += ", \"budgetExhausted\": ";
  out += budget_exhausted ? "true" : "false";
  out += "}}\n";
  return out;
}

std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diagnostics,
                               std::string_view file) {
  std::string out =
      "{\"version\": \"2.1.0\", "
      "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      " \"runs\": [{\"tool\": {\"driver\": {\"name\": \"datalog-check\", "
      "\"rules\": []}},\n  \"results\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ",";
    first = false;
    // SARIF has no "info" result level; map it to "note".
    std::string_view level =
        d.severity == Severity::kInfo ? "note" : ToString(d.severity);
    out += "\n   {\"ruleId\": \"" + JsonEscape(d.pass) + "/" +
           JsonEscape(d.code) + "\"";
    out += ", \"level\": \"";
    out += level;
    out += "\", \"message\": {\"text\": \"" + JsonEscape(d.message);
    if (!d.note.empty()) out += " (note: " + JsonEscape(d.note) + ")";
    out += "\"}";
    out += ", \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(file) + "\"}";
    if (d.span.valid()) {
      out += ", \"region\": {\"startLine\": " + std::to_string(d.span.line);
      out += ", \"startColumn\": " + std::to_string(d.span.col);
      out += ", \"endLine\": " + std::to_string(d.span.end_line);
      out += ", \"endColumn\": " + std::to_string(d.span.end_col);
      out += "}";
    }
    out += "}}]}";
  }
  out += "\n  ]}]}\n";
  return out;
}

}  // namespace datalog
