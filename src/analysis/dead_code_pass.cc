#include <set>
#include <string>

#include "analysis/passes.h"
#include "ast/pretty_print.h"
#include "core/relevance.h"

namespace datalog {

// Pass 3: dead code. With a query, the relevance restriction of
// core/relevance decides exactly which rules can contribute to the answer
// (the graph-reachability complement to the paper's semantic minimizer);
// rules outside that set are dead for this query. Without a query the
// pass degrades to the purely syntactic "defined but never used" check.
void RunDeadCodePass(const Program& program, const AnalyzerOptions& options,
                     const ProgramSourceMap* source, AnalysisResult* result) {
  if (program.NumRules() == 0) return;
  const SymbolTable& symbols = *program.symbols();

  if (options.query.has_value()) {
    const PredicateId query_pred = options.query->predicate();
    if (!program.IsIntentional(query_pred)) {
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.pass = "dead_code";
      d.code = "extensional-query";
      d.message = "query predicate '" + symbols.PredicateName(query_pred) +
                  "' is extensional: no rule derives it, so every rule of "
                  "the program is irrelevant to the query";
      result->diagnostics.push_back(std::move(d));
      return;
    }
    std::set<PredicateId> relevant = RelevantPredicates(program, query_pred);
    const auto& rules = program.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (relevant.contains(rules[i].head().predicate())) continue;
      Diagnostic d;
      d.severity = Severity::kWarning;
      d.pass = "dead_code";
      d.code = "irrelevant-rule";
      d.message = "rule #" + std::to_string(i) + " for predicate '" +
                  symbols.PredicateName(rules[i].head().predicate()) +
                  "' cannot contribute to the query '" +
                  ToString(*options.query, symbols) +
                  "': " + ToString(rules[i], symbols);
      d.note = "the relevance restriction (Section III) removes it without "
               "changing the query answer";
      d.rule_index = i;
      d.span = SpanOfRule(program, source, i);
      result->diagnostics.push_back(std::move(d));
    }
    return;
  }

  // No query: flag intentional predicates no rule body ever reads. They
  // are only informational -- the program may be a library whose every
  // predicate is a potential query target.
  std::set<PredicateId> read;
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body()) {
      read.insert(lit.atom.predicate());
    }
  }
  for (PredicateId pred : program.IntentionalPredicates()) {
    if (read.contains(pred)) continue;
    const auto& rules = program.rules();
    std::size_t first_rule = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].head().predicate() == pred) {
        first_rule = i;
        break;
      }
    }
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "dead_code";
    d.code = "unused-predicate";
    d.message = "predicate '" + symbols.PredicateName(pred) +
                "' is defined but never used by another rule";
    d.note = "harmless if it is a query target; add a `?- ...` query to "
             "let the analyzer check relevance precisely";
    if (first_rule != static_cast<std::size_t>(-1)) {
      d.rule_index = first_rule;
      d.span = SpanOfLiteral(program, source, first_rule,
                             /*body_pos=*/static_cast<std::size_t>(-1));
    }
    result->diagnostics.push_back(std::move(d));
  }
}

}  // namespace datalog
