#include <set>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "ast/pretty_print.h"
#include "ast/validate.h"
#include "core/minimize.h"

namespace datalog {
namespace {

/// The body position of the first not-yet-consumed positive literal of
/// `rule` equal to `atom`, or npos. Deletions are reported atom-by-atom,
/// so duplicate atoms are matched left to right.
std::size_t FindAtomPosition(const Rule& rule, const Atom& atom,
                             std::set<std::size_t>* consumed) {
  const auto& body = rule.body();
  for (std::size_t j = 0; j < body.size(); ++j) {
    if (!body[j].negated && body[j].atom == atom && !consumed->contains(j)) {
      consumed->insert(j);
      return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

// Pass 4: report-only minimization. Runs the Fig. 2 algorithm (phase 1:
// redundant atoms, phase 2: redundant rules, both under uniform
// equivalence) against the positive rules and reports what IT WOULD
// delete, without touching the program. Every warning is a theorem: the
// deletion preserves the program's meaning on every database (Section
// VII). The chase inside each containment test makes this the expensive
// pass, so it spends the AnalyzerOptions::budget one containment test at
// a time and stops early -- sound but possibly incomplete -- when the
// budget runs out.
void RunRedundancyPass(const Program& program, const AnalyzerOptions& options,
                       const ProgramSourceMap* source,
                       AnalysisResult* result) {
  if (program.NumRules() == 0) return;
  // Unsafe rules make uniform containment meaningless; the safety pass
  // already reported them as errors.
  if (!ValidateProgram(program).ok()) return;
  const SymbolTable& symbols = *program.symbols();

  // The minimizer handles positive rules only (the stratified extension
  // keeps negation rules verbatim); analyze the positive subset and keep
  // a map back to original indices.
  Program positive(program.symbols());
  std::vector<std::size_t> original_index;
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].IsPositive()) {
      positive.AddRule(rules[i]);
      original_index.push_back(i);
    }
  }
  if (positive.NumRules() == 0) return;

  MinimizeOptions minimize_options;
  minimize_options.max_containment_tests = options.budget;
  MinimizeReport report;
  auto minimized = MinimizeProgram(positive, &report, minimize_options);
  if (!minimized.ok()) return;

  std::vector<std::set<std::size_t>> consumed(rules.size());
  for (const MinimizeReport::RemovedAtom& removed : report.removed_atoms) {
    // Phase 1 never reorders rules, so the subset index is stable.
    const std::size_t i = original_index[removed.rule_index];
    const std::size_t body_pos =
        FindAtomPosition(rules[i], removed.atom, &consumed[i]);
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.pass = "redundancy";
    d.code = "redundant-atom";
    d.message = "atom '" + ToString(removed.atom, symbols) + "' in rule #" +
                std::to_string(i) + " for predicate '" +
                symbols.PredicateName(rules[i].head().predicate()) +
                "' is redundant under uniform equivalence";
    d.note = "deleting it preserves the program's meaning on every "
             "database (Fig. 1/2); `datalog-opt minimize` applies the "
             "deletion";
    d.rule_index = i;
    d.span = body_pos != static_cast<std::size_t>(-1)
                 ? SpanOfLiteral(program, source, i, body_pos)
                 : SpanOfRule(program, source, i);
    result->diagnostics.push_back(std::move(d));
  }

  for (std::size_t k = 0; k < report.removed_rule_indices.size(); ++k) {
    const std::size_t i = original_index[report.removed_rule_indices[k]];
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.pass = "redundancy";
    d.code = "redundant-rule";
    d.message = "rule #" + std::to_string(i) + " for predicate '" +
                symbols.PredicateName(rules[i].head().predicate()) +
                "' is redundant: the remaining rules uniformly derive it: " +
                ToString(rules[i], symbols);
    d.note = "phase 2 of the Fig. 2 minimization deletes whole rules the "
             "rest of the program subsumes";
    d.rule_index = i;
    d.span = SpanOfRule(program, source, i);
    result->diagnostics.push_back(std::move(d));
  }

  if (report.budget_exhausted) {
    result->budget_exhausted = true;
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "redundancy";
    d.code = "budget-exhausted";
    d.message = "minimization stopped after " +
                std::to_string(report.containment_tests) +
                " containment tests (budget " +
                std::to_string(options.budget) +
                "); further redundancies may be unreported";
    d.note = "raise --budget to let the chase finish";
    result->diagnostics.push_back(std::move(d));
  }
}

}  // namespace datalog
