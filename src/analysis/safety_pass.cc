#include "analysis/passes.h"
#include "ast/validate.h"

namespace datalog {

// Pass 1: range restriction / groundness (Section II), subsuming the
// string-only ValidateProgram surface. The diagnostics come from the same
// SafetyDiagnostics helper ValidateRule wraps, so the error wording and
// the analyzer agree; here the full per-rule list is reported (ValidateRule
// stops at the first) with exact token spans from the source map.
void RunSafetyPass(const Program& program, const AnalyzerOptions& options,
                   const ProgramSourceMap* source, AnalysisResult* result) {
  (void)options;
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleSourceSpans* spans =
        source != nullptr ? source->rule(i) : nullptr;
    std::vector<Diagnostic> diagnostics =
        SafetyDiagnostics(rules[i], *program.symbols(), i, spans);
    result->diagnostics.insert(result->diagnostics.end(),
                               diagnostics.begin(), diagnostics.end());
  }
}

}  // namespace datalog
