#ifndef DATALOG_ANALYSIS_DIAGNOSTIC_H_
#define DATALOG_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "ast/source_span.h"
#include "util/status.h"

namespace datalog {

/// How serious a diagnostic is. Errors make the program unsuitable for
/// evaluation (unsafe rules, unstratifiable negation); warnings flag
/// provable inefficiencies (redundant atoms/rules, dead code, unbindable
/// adornments); infos carry structural findings (recursion class, SCC
/// shape) that are useful but never actionable by themselves.
enum class Severity {
  kError,
  kWarning,
  kInfo,
};

std::string_view ToString(Severity severity);

/// One finding of the static analyzer (src/analysis): which pass produced
/// it, how severe it is, a stable machine-readable code, the source span
/// it anchors to, and an optional fix-it note. Also the carrier for the
/// upgraded ValidateRule/ValidateProgram messages, so the old Status
/// surface and the new analyzer agree on wording.
struct Diagnostic {
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  Severity severity = Severity::kError;
  std::string pass;     // e.g. "safety", "stratification", "redundancy"
  std::string code;     // stable slug, e.g. "unsafe-rule", "negative-cycle"
  std::string message;  // human-readable, self-contained
  SourceSpan span;      // invalid when the program was built in memory
  std::string note;     // optional fix-it / explanation, may be empty
  std::size_t rule_index = kNoRule;  // index into Program::rules(), if any

  /// "3:5: error: [safety/unsafe-rule] message" (+ "\n  note: ..." when a
  /// note is present). The span prefix is omitted when unknown.
  std::string ToText() const;

  /// An InvalidArgument Status carrying ToText()-style content, used to
  /// keep the legacy Validate* surface intact.
  Status ToStatus() const;
};

/// Totals per severity, in the order error/warning/info.
struct DiagnosticCounts {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
};

DiagnosticCounts CountBySeverity(const std::vector<Diagnostic>& diagnostics);

/// One line per diagnostic, ToText()-formatted.
std::string DiagnosticsToText(const std::vector<Diagnostic>& diagnostics);

/// Machine-readable report:
///   {"version": 1, "file": "...", "diagnostics": [{"severity": "error",
///    "pass": "...", "code": "...", "message": "...", "line": 3, "col": 5,
///    "endLine": 3, "endCol": 8, "ruleIndex": 2, "note": "..."}, ...],
///    "summary": {"errors": N, "warnings": N, "infos": N,
///                "budgetExhausted": bool}}
/// Spans of unknown location render as line 0. `file` is whatever label
/// the caller passes (a path, or "-" for stdin).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view file, bool budget_exhausted);

/// A minimal SARIF 2.1.0 document (one run, one result per diagnostic)
/// accepted by code-scanning UIs.
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diagnostics,
                               std::string_view file);

}  // namespace datalog

#endif  // DATALOG_ANALYSIS_DIAGNOSTIC_H_
