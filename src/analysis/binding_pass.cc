#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/passes.h"
#include "ast/pretty_print.h"
#include "eval/hypergraph.h"

namespace datalog {
namespace {

bool AllFree(const std::string& adornment) {
  return std::all_of(adornment.begin(), adornment.end(),
                     [](char c) { return c == 'f'; });
}

/// The (fingerprint, permutation) join hint for `rule` under a SIP visit
/// `order` over its whole body: the order restricted to positive
/// literals, re-expressed as positions into the planned-atom list the
/// matcher builds (positive literals in textual order). The permutation
/// is empty when the rule has fewer than two positive atoms (nothing to
/// reorder).
std::pair<std::uint64_t, std::vector<std::size_t>> HintForRule(
    const Rule& rule, const std::vector<std::size_t>& order) {
  std::vector<std::size_t> positive_index(rule.body().size(),
                                          static_cast<std::size_t>(-1));
  std::vector<PlannedAtom> planned;
  for (std::size_t j = 0; j < rule.body().size(); ++j) {
    if (rule.body()[j].negated) continue;
    positive_index[j] = planned.size();
    planned.push_back(PlannedAtom{rule.body()[j].atom, AtomSource::kFull});
  }
  std::vector<std::size_t> hint;
  for (std::size_t pos : order) {
    if (positive_index[pos] != static_cast<std::size_t>(-1)) {
      hint.push_back(positive_index[pos]);
    }
  }
  if (hint.size() < 2) hint.clear();
  return {BodyFingerprint(planned), std::move(hint)};
}

}  // namespace

JoinOrderHints StaticJoinHints(const Program& program, SipStrategy sip) {
  JoinOrderHints hints;
  for (const Rule& rule : program.rules()) {
    auto [fingerprint, hint] =
        HintForRule(rule, SipOrder(rule, /*initially_bound=*/{}, sip));
    if (!hint.empty()) hints.order.emplace(fingerprint, std::move(hint));
  }
  return hints;
}

// Pass 5: binding/adornment analysis. Replays the adornment propagation a
// magic-sets rewrite of the query would perform (same SipOrder, same
// AdornmentFor -- shared with eval/magic_sets.cc so predictions match the
// rewrite) without building the rewritten program. Two outputs: warnings
// for predicates reached only with all-free adornments, where the magic
// predicate degenerates to arity 0 and restricts nothing; and per-rule
// join-order hints (the SIP visit order), keyed by body fingerprint for
// PlanJoinOrder to consume when installed via SetJoinOrderHints.
void RunBindingPass(const Program& program, const AnalyzerOptions& options,
                    const ProgramSourceMap* source, AnalysisResult* result) {
  // High-width bodies (query-independent, so reported before the early
  // return below): a cyclic join hypergraph of estimated width >= 2 is
  // exactly the shape where any left-deep plan enumerates intermediate
  // results the output never needs; the evaluator selects the multiway
  // intersection plan for these (see docs/multiway_joins.md). Info only:
  // the body may well be intentional.
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    std::vector<PlannedAtom> planned;
    for (const Literal& lit : rule.body()) {
      if (!lit.negated) {
        planned.push_back(PlannedAtom{lit.atom, AtomSource::kFull});
      }
    }
    if (!MultiwayEligibleBody(planned)) continue;
    const int width = EstimateJoinWidth(BuildJoinHypergraph(planned));
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "binding";
    d.code = "high-width-body";
    d.message = "rule #" + std::to_string(i) + " for predicate '" +
                program.symbols()->PredicateName(rule.head().predicate()) +
                "' has a cyclic join hypergraph (estimated width " +
                std::to_string(width) +
                "); left-deep plans enumerate intermediate results the "
                "output never needs";
    d.note = "the evaluator uses the worst-case-optimal multiway "
             "intersection for this body (SetMultiwayJoins)";
    d.rule_index = i;
    d.span = SpanOfRule(program, source, i);
    result->diagnostics.push_back(std::move(d));
  }

  if (!options.query.has_value() || program.NumRules() == 0) return;
  const Atom& query = *options.query;
  if (!program.IsIntentional(query.predicate())) return;  // dead_code warns
  const SymbolTable& symbols = *program.symbols();
  const std::set<PredicateId> intentional = program.IntentionalPredicates();

  const std::string query_adornment = QueryAdornment(query);
  const bool free_query = AllFree(query_adornment) && query.arity() > 0;
  if (free_query) {
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "binding";
    d.code = "free-query";
    d.message = "query '" + ToString(query, symbols) +
                "' binds no arguments (adornment '" + query_adornment +
                "'); magic sets cannot restrict the computation";
    d.note = "bind an argument to a constant to benefit from the rewrite";
    result->diagnostics.push_back(std::move(d));
  }

  std::set<std::pair<PredicateId, std::string>> seen;
  std::deque<std::pair<PredicateId, std::string>> work;
  auto reach = [&](PredicateId pred, const std::string& adornment) {
    if (seen.emplace(pred, adornment).second) {
      work.emplace_back(pred, adornment);
    }
  };
  reach(query.predicate(), query_adornment);

  std::set<PredicateId> warned_unbindable;
  std::set<std::size_t> rule_has_hint;
  bool budget_hit = false;

  while (!work.empty()) {
    if (options.budget != 0 && seen.size() > options.budget) {
      budget_hit = true;
      break;
    }
    auto [head_pred, head_adornment] = work.front();
    work.pop_front();

    const auto& rules = program.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (rule.head().predicate() != head_pred) continue;

      std::set<VariableId> bound;
      for (std::size_t a = 0; a < head_adornment.size(); ++a) {
        const Term& t = rule.head().args()[a];
        if (head_adornment[a] == 'b' && t.is_variable()) bound.insert(t.var());
      }
      const std::vector<std::size_t> order =
          SipOrder(rule, bound, options.sip);

      for (std::size_t pos : order) {
        const Literal& lit = rule.body()[pos];
        const std::string adornment = AdornmentFor(lit.atom, bound);
        if (intentional.contains(lit.atom.predicate())) {
          // An all-free adornment of an intentional body atom means the
          // rewrite's magic predicate has arity 0: pure overhead, no
          // restriction. Suppressed for an all-free query, where every
          // reached predicate would repeat the same story.
          if (!free_query && AllFree(adornment) && lit.atom.arity() > 0 &&
              warned_unbindable.insert(lit.atom.predicate()).second) {
            Diagnostic d;
            d.severity = Severity::kWarning;
            d.pass = "binding";
            d.code = "unbindable-adornment";
            d.message =
                "magic sets cannot restrict predicate '" +
                symbols.PredicateName(lit.atom.predicate()) +
                "': rule #" + std::to_string(i) + " for predicate '" +
                symbols.PredicateName(head_pred) + "' (adornment '" +
                head_adornment + "') reaches it with the all-free "
                "adornment '" + adornment + "'";
            d.note = "no binding passes sideways into this atom; reorder "
                     "the body or bind a query argument";
            d.rule_index = i;
            d.span = SpanOfLiteral(program, source, i, pos);
            result->diagnostics.push_back(std::move(d));
          }
          reach(lit.atom.predicate(), adornment);
        }
        // Negated literals test, they do not bind (their variables are
        // already positively bound in a safe rule).
        if (!lit.negated) {
          for (VariableId v : lit.atom.Variables()) bound.insert(v);
        }
      }

      // Join-order hint: the SIP visit order restricted to the positive
      // literals, as a permutation of the planned-atom list the matcher
      // builds (positive literals in textual order). First adornment
      // processed wins; later ones rarely disagree and the hint is
      // advisory anyway.
      if (rule_has_hint.insert(i).second) {
        auto [fingerprint, hint] = HintForRule(rule, order);
        if (!hint.empty()) {
          bool identity = true;
          for (std::size_t j = 0; j < hint.size(); ++j) {
            if (hint[j] != j) identity = false;
          }
          if (!identity) {
            std::string positions;
            for (std::size_t idx : hint) {
              if (!positions.empty()) positions += ", ";
              positions += std::to_string(idx);
            }
            Diagnostic d;
            d.severity = Severity::kInfo;
            d.pass = "binding";
            d.code = "join-order";
            d.message = "rule #" + std::to_string(i) + " for predicate '" +
                        symbols.PredicateName(head_pred) +
                        "': sideways information passing suggests visiting "
                        "the positive body atoms in order [" +
                        positions + "]";
            d.note = "installed as a join hint by `eval --hints`";
            d.rule_index = i;
            d.span = SpanOfRule(program, source, i);
            result->diagnostics.push_back(std::move(d));
          }
          result->join_hints.order.emplace(fingerprint, std::move(hint));
        }
      }
    }
  }

  if (budget_hit) {
    result->budget_exhausted = true;
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.pass = "binding";
    d.code = "budget-exhausted";
    d.message = "adornment propagation stopped after " +
                std::to_string(seen.size()) +
                " adornments (budget " + std::to_string(options.budget) +
                "); further unbindable predicates may be unreported";
    d.note = "raise --budget to propagate every binding pattern";
    result->diagnostics.push_back(std::move(d));
  }
}

}  // namespace datalog
