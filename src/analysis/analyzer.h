#ifndef DATALOG_ANALYSIS_ANALYZER_H_
#define DATALOG_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/parser.h"
#include "ast/program.h"
#include "eval/magic_sets.h"
#include "eval/rule_matcher.h"

namespace datalog {

/// Configuration for one analyzer run. Passes are independent and can be
/// toggled individually; `datalog-opt check` exposes them via --pass.
struct AnalyzerOptions {
  bool safety = true;          // range restriction / groundness (Section II)
  bool stratification = true;  // negation cycles, SCCs, recursion classes
  bool dead_code = true;       // query-irrelevant rules, unused predicates
  bool redundancy = true;      // Fig. 2 minimizer, report-only
  bool binding = true;         // magic-set adornments + join-order hints

  /// Work budget shared by the expensive passes: the redundancy pass
  /// spends one unit per uniform-containment test (each a chase to
  /// fixpoint), the binding pass one unit per registered adornment. The
  /// cheap passes (safety, stratification, dead code) are linear and
  /// ignore it. 0 means unlimited. When a pass hits the budget it stops
  /// early, sets AnalysisResult::budget_exhausted, and reports what it
  /// proved so far (never a wrong diagnostic, possibly fewer).
  std::size_t budget = 2000;

  /// The query the program will be asked, directing the dead-code and
  /// binding passes. Defaults to the first `?- q(...)` statement of the
  /// parsed source (see AnalyzeParsed); without any query those two
  /// passes degrade gracefully (unused-predicate infos only, no
  /// adornment analysis).
  std::optional<Atom> query;

  /// Sideways-information-passing strategy assumed by the binding pass;
  /// bound-first matches what an optimizing magic-sets rewrite would do.
  SipStrategy sip = SipStrategy::kBoundFirst;
};

/// Everything one analyzer run produced.
struct AnalysisResult {
  /// All diagnostics, ordered by source position (unknown locations
  /// last), ties broken by pass registration order.
  std::vector<Diagnostic> diagnostics;

  /// True when some pass stopped early on AnalyzerOptions::budget.
  bool budget_exhausted = false;

  /// Per-body join-order hints from the binding pass, installable into
  /// the evaluation engines via SetJoinOrderHints (the CLI's
  /// `eval --hints` path). Empty when the binding pass did not run or
  /// had no query to propagate bindings from.
  JoinOrderHints join_hints;

  bool HasErrors() const { return CountBySeverity(diagnostics).errors > 0; }
};

/// Runs the enabled passes over `program`. `source` (from
/// ParseProgramWithSource) supplies exact token spans; with a null source
/// diagnostics fall back to the spans the AST itself carries, which are
/// invalid for programs built in memory. Purely static: no database is
/// consulted and no evaluation engine runs, so the analyzer terminates on
/// every input (the chase inside the redundancy pass is budgeted).
AnalysisResult Analyze(const Program& program,
                       const AnalyzerOptions& options = {},
                       const ProgramSourceMap* source = nullptr);

/// Analyze() over a parsed file: wires up the source map and, when
/// `options.query` is unset, adopts the file's first `?- q(...)` query.
AnalysisResult AnalyzeParsed(const ParsedProgram& parsed,
                             AnalyzerOptions options = {});

/// Join-order hints for every rule of `program` from a static SIP pass
/// with no query bindings: only constants count as bound, so the order
/// prefers constant-constrained atoms first. This is what `eval --hints`
/// installs when no query is available to adorn from; with a query,
/// prefer Analyze()'s AnalysisResult::join_hints.
JoinOrderHints StaticJoinHints(const Program& program,
                               SipStrategy sip = SipStrategy::kBoundFirst);

}  // namespace datalog

#endif  // DATALOG_ANALYSIS_ANALYZER_H_
