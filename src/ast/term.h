#ifndef DATALOG_AST_TERM_H_
#define DATALOG_AST_TERM_H_

#include <cstdint>

#include "ast/value.h"
#include "util/hash.h"

namespace datalog {

/// A variable id, interned in a SymbolTable.
using VariableId = std::int32_t;

/// An argument of an atom: either a variable or a constant. Datalog has no
/// function symbols, so terms are flat (Section II).
class Term {
 public:
  /// Default-constructs the constant 0. Required for container use.
  Term() : is_variable_(false), var_(0), value_() {}

  static Term Variable(VariableId v) {
    Term t;
    t.is_variable_ = true;
    t.var_ = v;
    return t;
  }
  static Term Constant(Value v) {
    Term t;
    t.is_variable_ = false;
    t.value_ = v;
    return t;
  }
  static Term Int(std::int64_t v) { return Constant(Value::Int(v)); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  /// Requires is_variable().
  VariableId var() const { return var_; }
  /// Requires is_constant().
  const Value& value() const { return value_; }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.var_ == b.var_ : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return a.is_variable_ < b.is_variable_;
    if (a.is_variable_) return a.var_ < b.var_;
    return a.value_ < b.value_;
  }

  std::size_t Hash() const {
    std::size_t seed = is_variable_ ? 0x517cc1b727220a95ULL : 0;
    HashCombine(seed, is_variable_ ? std::hash<VariableId>{}(var_) : value_.Hash());
    return seed;
  }

 private:
  bool is_variable_;
  VariableId var_;
  Value value_;
};

}  // namespace datalog

namespace std {
template <>
struct hash<datalog::Term> {
  size_t operator()(const datalog::Term& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // DATALOG_AST_TERM_H_
