#include "ast/symbol_table.h"

#include <string>

namespace datalog {

Result<PredicateId> SymbolTable::InternPredicate(std::string_view name,
                                                 int arity) {
  std::int32_t existing = predicates_.Lookup(name);
  if (existing >= 0) {
    if (arities_[static_cast<std::size_t>(existing)] != arity) {
      return Status::InvalidArgument(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but previously declared with arity " +
          std::to_string(arities_[static_cast<std::size_t>(existing)]));
    }
    return existing;
  }
  PredicateId id = predicates_.Intern(name);
  arities_.push_back(arity);
  return id;
}

Result<PredicateId> SymbolTable::LookupPredicate(std::string_view name) const {
  std::int32_t id = predicates_.Lookup(name);
  if (id < 0) {
    return Status::NotFound("unknown predicate '" + std::string(name) + "'");
  }
  return id;
}

PredicateId SymbolTable::FreshPredicate(std::string_view hint, int arity) {
  std::string candidate(hint);
  while (predicates_.Lookup(candidate) >= 0) {
    candidate = std::string(hint) + "_" + std::to_string(fresh_counter_++);
  }
  PredicateId id = predicates_.Intern(candidate);
  arities_.push_back(arity);
  return id;
}

std::int32_t SymbolTable::FreshVariable(std::string_view hint) {
  std::string candidate(hint);
  while (variables_.Lookup(candidate) >= 0) {
    candidate = std::string(hint) + "_" + std::to_string(fresh_counter_++);
  }
  return variables_.Intern(candidate);
}

}  // namespace datalog
