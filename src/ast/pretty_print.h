#ifndef DATALOG_AST_PRETTY_PRINT_H_
#define DATALOG_AST_PRETTY_PRINT_H_

#include <string>

#include "ast/atom.h"
#include "ast/program.h"
#include "ast/rule.h"
#include "ast/symbol_table.h"
#include "ast/tgd.h"

namespace datalog {

/// Renders a value, e.g. `42`, `'paris'`, `$c3` (frozen), `~n7` (null).
std::string ToString(const Value& value, const SymbolTable& symbols);

/// Renders a term: a constant or a variable name.
std::string ToString(const Term& term, const SymbolTable& symbols);

/// Renders an atom, e.g. `G(x, z)`.
std::string ToString(const Atom& atom, const SymbolTable& symbols);

/// Renders a literal, e.g. `not A(x, y)`.
std::string ToString(const Literal& literal, const SymbolTable& symbols);

/// Renders a rule, e.g. `G(x, z) :- A(x, z).`, or `G(1, 2).` for a fact.
std::string ToString(const Rule& rule, const SymbolTable& symbols);

/// Renders a program, one rule per line.
std::string ToString(const Program& program);

/// Renders a tgd, e.g. `G(x, z) -> A(x, w).`.
std::string ToString(const Tgd& tgd, const SymbolTable& symbols);

}  // namespace datalog

#endif  // DATALOG_AST_PRETTY_PRINT_H_
