#include "ast/substitution.h"

namespace datalog {

Term Substitution::Resolve(Term t) const {
  while (t.is_variable()) {
    auto it = map_.find(t.var());
    if (it == map_.end()) return t;
    t = it->second;
  }
  return t;
}

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    args.push_back(Resolve(t));
  }
  return Atom(atom.predicate(), std::move(args));
}

Rule Substitution::Apply(const Rule& rule) const {
  std::vector<Literal> body;
  body.reserve(rule.body().size());
  for (const Literal& lit : rule.body()) {
    body.push_back(Literal{Apply(lit.atom), lit.negated});
  }
  return Rule(Apply(rule.head()), std::move(body));
}

}  // namespace datalog
