#ifndef DATALOG_AST_TGD_H_
#define DATALOG_AST_TGD_H_

#include <set>
#include <vector>

#include "ast/atom.h"

namespace datalog {

/// A tuple-generating dependency (Section VIII):
///
///   forall x [ lhs(x)  ->  exists y  rhs(x, y) ]
///
/// written without quantifiers, e.g. G(y,z) -> G(y,w) & C(w). Universally
/// quantified variables are those appearing in the left-hand side;
/// existentially quantified variables appear only in the right-hand side.
/// Tgds here are untyped, as in the paper.
class Tgd {
 public:
  Tgd() = default;
  Tgd(std::vector<Atom> lhs, std::vector<Atom> rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  const std::vector<Atom>& lhs() const { return lhs_; }
  const std::vector<Atom>& rhs() const { return rhs_; }

  /// Universally quantified variables: those in the left-hand side.
  std::set<VariableId> UniversalVariables() const;

  /// Existentially quantified variables: those appearing only in the
  /// right-hand side.
  std::set<VariableId> ExistentialVariables() const;

  /// A tgd is full if it has no existentially quantified variables;
  /// applying a full tgd is the same as applying rules (Example 10).
  /// Otherwise it is embedded and its application introduces nulls.
  bool IsFull() const { return ExistentialVariables().empty(); }

  friend bool operator==(const Tgd& a, const Tgd& b) {
    return a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_;
  }
  friend bool operator!=(const Tgd& a, const Tgd& b) { return !(a == b); }

 private:
  std::vector<Atom> lhs_;
  std::vector<Atom> rhs_;
};

}  // namespace datalog

#endif  // DATALOG_AST_TGD_H_
