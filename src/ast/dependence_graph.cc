#include "ast/dependence_graph.h"

#include <algorithm>
#include <set>

namespace datalog {
namespace {

/// Iterative Tarjan SCC. Returns the number of components and fills
/// `scc_out` with component indices in reverse topological order
/// (a component's index is >= the indices of the components it reaches...
/// Tarjan numbers components so that callees get smaller indices).
int TarjanScc(const std::vector<std::vector<int>>& adj,
              std::vector<int>* scc_out) {
  int n = static_cast<int>(adj.size());
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int num_sccs = 0;
  scc_out->assign(n, -1);

  struct Frame {
    int node;
    std::size_t child;
  };
  std::vector<Frame> call_stack;

  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      int v = frame.node;
      if (frame.child < adj[v].size()) {
        int w = adj[v][frame.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            (*scc_out)[w] = num_sccs;
            if (w == v) break;
          }
          ++num_sccs;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          int parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return num_sccs;
}

}  // namespace

DependenceGraph::DependenceGraph(const Program& program) {
  num_preds_ = program.symbols()->NumPredicates();
  adjacency_.assign(static_cast<std::size_t>(num_preds_), {});
  negative_edges_.assign(static_cast<std::size_t>(num_preds_), {});
  self_loop_.assign(static_cast<std::size_t>(num_preds_), false);

  std::set<std::pair<int, int>> seen;
  for (const Rule& rule : program.rules()) {
    int head = rule.head().predicate();
    for (const Literal& lit : rule.body()) {
      int body = lit.atom.predicate();
      if (seen.insert({body, head}).second) {
        adjacency_[static_cast<std::size_t>(body)].push_back(head);
      }
      if (lit.negated) {
        negative_edges_[static_cast<std::size_t>(body)].push_back(head);
      }
      if (body == head) self_loop_[static_cast<std::size_t>(body)] = true;
    }
  }
  num_sccs_ = TarjanScc(adjacency_, &scc_);
}

bool DependenceGraph::IsRecursive() const {
  for (int p = 0; p < num_preds_; ++p) {
    if (IsPredicateRecursive(p)) return true;
  }
  return false;
}

bool DependenceGraph::IsPredicateRecursive(PredicateId pred) const {
  if (self_loop_[static_cast<std::size_t>(pred)]) return true;
  // pred lies on a cycle iff its SCC contains another node.
  for (int q = 0; q < num_preds_; ++q) {
    if (q != pred && scc_[static_cast<std::size_t>(q)] ==
                         scc_[static_cast<std::size_t>(pred)]) {
      return true;
    }
  }
  return false;
}

bool DependenceGraph::IsRuleRecursive(const Rule& rule) const {
  PredicateId head = rule.head().predicate();
  for (const Literal& lit : rule.body()) {
    if (MutuallyRecursive(head, lit.atom.predicate())) return true;
  }
  return false;
}

bool DependenceGraph::IsLinear(const Program& program) const {
  for (const Rule& rule : program.rules()) {
    PredicateId head = rule.head().predicate();
    int recursive_atoms = 0;
    for (const Literal& lit : rule.body()) {
      if (MutuallyRecursive(head, lit.atom.predicate())) ++recursive_atoms;
    }
    if (recursive_atoms > 1) return false;
  }
  return true;
}

bool DependenceGraph::Reaches(PredicateId from, PredicateId to) const {
  std::vector<bool> visited(static_cast<std::size_t>(num_preds_), false);
  std::vector<int> worklist;
  for (int w : adjacency_[static_cast<std::size_t>(from)]) {
    if (!visited[static_cast<std::size_t>(w)]) {
      visited[static_cast<std::size_t>(w)] = true;
      worklist.push_back(w);
    }
  }
  while (!worklist.empty()) {
    int v = worklist.back();
    worklist.pop_back();
    if (v == to) return true;
    for (int w : adjacency_[static_cast<std::size_t>(v)]) {
      if (!visited[static_cast<std::size_t>(w)]) {
        visited[static_cast<std::size_t>(w)] = true;
        worklist.push_back(w);
      }
    }
  }
  return false;
}

int DependenceGraph::SccIndex(PredicateId pred) const {
  return scc_[static_cast<std::size_t>(pred)];
}

bool DependenceGraph::MutuallyRecursive(PredicateId a, PredicateId b) const {
  if (a == b) {
    return self_loop_[static_cast<std::size_t>(a)] || IsPredicateRecursive(a);
  }
  return scc_[static_cast<std::size_t>(a)] == scc_[static_cast<std::size_t>(b)];
}

std::vector<PredicateId> DependenceGraph::NegativeCycleWitness() const {
  for (int p = 0; p < num_preds_; ++p) {
    for (int q : negative_edges_[static_cast<std::size_t>(p)]) {
      if (scc_[static_cast<std::size_t>(p)] !=
          scc_[static_cast<std::size_t>(q)]) {
        continue;
      }
      if (p == q) return {p};
      // Both endpoints share an SCC, so a path q -> ... -> p exists; BFS
      // restricted to the SCC finds a shortest one.
      std::vector<int> parent(static_cast<std::size_t>(num_preds_), -2);
      parent[static_cast<std::size_t>(q)] = -1;
      std::vector<int> frontier{q};
      while (!frontier.empty() && parent[static_cast<std::size_t>(p)] == -2) {
        std::vector<int> next;
        for (int v : frontier) {
          for (int w : adjacency_[static_cast<std::size_t>(v)]) {
            if (scc_[static_cast<std::size_t>(w)] !=
                    scc_[static_cast<std::size_t>(p)] ||
                parent[static_cast<std::size_t>(w)] != -2) {
              continue;
            }
            parent[static_cast<std::size_t>(w)] = v;
            next.push_back(w);
          }
        }
        frontier = std::move(next);
      }
      std::vector<PredicateId> path;
      for (int v = p; v != -1; v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
      }
      // path is p, ..., q; reverse and rotate so the negative edge p -> q
      // is the first edge of the cycle.
      std::reverse(path.begin(), path.end());  // q, ..., p
      std::vector<PredicateId> cycle;
      cycle.push_back(p);
      cycle.insert(cycle.end(), path.begin(), path.end() - 1);
      return cycle;
    }
  }
  return {};
}

Result<std::vector<std::vector<PredicateId>>> DependenceGraph::Stratify()
    const {
  // A program is stratifiable iff no negative edge stays inside an SCC.
  for (int p = 0; p < num_preds_; ++p) {
    for (int q : negative_edges_[static_cast<std::size_t>(p)]) {
      if (scc_[static_cast<std::size_t>(p)] == scc_[static_cast<std::size_t>(q)]) {
        return Status::InvalidArgument(
            "program is not stratifiable: negation through recursion");
      }
    }
  }
  // Compute stratum numbers: stratum(R) >= stratum(Q) for positive edges
  // Q -> R, and stratum(R) >= stratum(Q) + 1 for negative edges. Iterate to
  // fixpoint (terminates because the program is stratifiable).
  std::vector<int> stratum(static_cast<std::size_t>(num_preds_), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = 0; p < num_preds_; ++p) {
      for (int q : adjacency_[static_cast<std::size_t>(p)]) {
        if (stratum[static_cast<std::size_t>(q)] <
            stratum[static_cast<std::size_t>(p)]) {
          stratum[static_cast<std::size_t>(q)] =
              stratum[static_cast<std::size_t>(p)];
          changed = true;
        }
      }
      for (int q : negative_edges_[static_cast<std::size_t>(p)]) {
        if (stratum[static_cast<std::size_t>(q)] <
            stratum[static_cast<std::size_t>(p)] + 1) {
          stratum[static_cast<std::size_t>(q)] =
              stratum[static_cast<std::size_t>(p)] + 1;
          changed = true;
        }
      }
    }
  }
  int max_stratum = 0;
  for (int s : stratum) max_stratum = std::max(max_stratum, s);
  std::vector<std::vector<PredicateId>> strata(
      static_cast<std::size_t>(max_stratum + 1));
  for (int p = 0; p < num_preds_; ++p) {
    strata[static_cast<std::size_t>(stratum[static_cast<std::size_t>(p)])]
        .push_back(p);
  }
  return strata;
}

}  // namespace datalog
