#ifndef DATALOG_AST_ATOM_H_
#define DATALOG_AST_ATOM_H_

#include <cstddef>
#include <set>
#include <vector>

#include "ast/source_span.h"
#include "ast/symbol_table.h"
#include "ast/term.h"

namespace datalog {

/// An atomic formula: a predicate applied to terms, e.g. Q(x, y, 3, 10)
/// (Section II). Value type; cheap to copy for the small arities typical of
/// Datalog programs.
class Atom {
 public:
  Atom() : predicate_(-1) {}
  Atom(PredicateId predicate, std::vector<Term> args)
      : predicate_(predicate), args_(std::move(args)) {}

  PredicateId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  /// Where this atom came from in the source text (invalid for atoms built
  /// programmatically). Ignored by equality, ordering, and hashing.
  const SourceSpan& span() const { return span_; }
  void set_span(const SourceSpan& span) { span_ = span; }

  /// True if every argument is a constant (the atom is a ground atom /
  /// fact, Section III).
  bool IsGround() const;

  /// Appends this atom's variables to `out` (with duplicates, in argument
  /// order).
  void AppendVariables(std::vector<VariableId>* out) const;

  /// The set of variables appearing in this atom.
  std::set<VariableId> Variables() const;

  /// True if variable `v` appears in some argument.
  bool ContainsVariable(VariableId v) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

  std::size_t Hash() const;

 private:
  PredicateId predicate_;
  std::vector<Term> args_;
  SourceSpan span_;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// A body literal: an atom, possibly negated. The optimization algorithms
/// of the paper handle positive programs only; negation is supported by the
/// evaluation engine via stratification (the extension announced in
/// Section XII).
struct Literal {
  Atom atom;
  bool negated = false;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.negated == b.negated && a.atom == b.atom;
  }
  friend bool operator!=(const Literal& a, const Literal& b) {
    return !(a == b);
  }
};

}  // namespace datalog

#endif  // DATALOG_AST_ATOM_H_
