#include "ast/validate.h"

#include "ast/pretty_print.h"

namespace datalog {

Status ValidateRule(const Rule& rule, const SymbolTable& symbols) {
  if (rule.IsFact() && !rule.head().IsGround()) {
    return Status::InvalidArgument(
        "rule with empty body must have a ground head: " +
        ToString(rule, symbols));
  }
  if (!rule.IsSafe()) {
    return Status::InvalidArgument(
        "unsafe rule (a head variable or a variable of a negated literal "
        "does not appear in a positive body literal): " +
        ToString(rule, symbols));
  }
  return Status::OK();
}

Status ValidateProgram(const Program& program) {
  for (const Rule& rule : program.rules()) {
    DATALOG_RETURN_IF_ERROR(ValidateRule(rule, *program.symbols()));
  }
  return Status::OK();
}

Status ValidatePositiveProgram(const Program& program) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  for (const Rule& rule : program.rules()) {
    if (!rule.IsPositive()) {
      return Status::InvalidArgument(
          "negation is not supported here (the optimization algorithms "
          "require positive programs): " +
          ToString(rule, *program.symbols()));
    }
  }
  return Status::OK();
}

}  // namespace datalog
