#include "ast/validate.h"

#include <set>
#include <string>

#include "ast/pretty_print.h"

namespace datalog {
namespace {

/// "rule #2 for predicate 'g'" (index omitted when unknown).
std::string RuleLabel(const Rule& rule, const SymbolTable& symbols,
                      std::size_t rule_index) {
  std::string label = "rule";
  if (rule_index != Diagnostic::kNoRule) {
    label += " #" + std::to_string(rule_index);
  }
  if (rule.head().predicate() >= 0) {
    label += " for predicate '" + symbols.PredicateName(rule.head().predicate()) +
             "'";
  }
  return label;
}

/// The span of argument `arg` of `atom`, preferring the exact token span
/// from the source map, then the atom span, then the whole-rule span.
SourceSpan ArgSpan(const AtomSourceSpans* atom_spans, const Atom& atom,
                   std::size_t arg, const Rule& rule) {
  if (atom_spans != nullptr && arg < atom_spans->arg_spans.size() &&
      atom_spans->arg_spans[arg].valid()) {
    return atom_spans->arg_spans[arg];
  }
  if (atom.span().valid()) return atom.span();
  return rule.span();
}

}  // namespace

std::vector<Diagnostic> SafetyDiagnostics(const Rule& rule,
                                          const SymbolTable& symbols,
                                          std::size_t rule_index,
                                          const RuleSourceSpans* spans) {
  std::vector<Diagnostic> out;
  const std::string label = RuleLabel(rule, symbols, rule_index);
  const std::string rule_text = ToString(rule, symbols);
  const AtomSourceSpans* head_spans = spans ? &spans->head : nullptr;

  if (rule.IsFact()) {
    const auto& args = rule.head().args();
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!args[i].is_variable()) continue;
      Diagnostic d;
      d.severity = Severity::kError;
      d.pass = "safety";
      d.code = "nonground-fact";
      d.message = "fact " + label + " must be ground: argument " +
                  std::to_string(i + 1) + " is the variable '" +
                  symbols.VariableName(args[i].var()) + "': " + rule_text;
      d.note = "replace '" + symbols.VariableName(args[i].var()) +
               "' with a constant, or give the rule a body that binds it";
      d.span = ArgSpan(head_spans, rule.head(), i, rule);
      d.rule_index = rule_index;
      out.push_back(std::move(d));
    }
    return out;
  }

  const std::set<VariableId> positive = rule.PositiveBodyVariables();

  // Head variables must be bound by a positive body literal.
  const auto& head_args = rule.head().args();
  std::set<VariableId> reported;
  for (std::size_t i = 0; i < head_args.size(); ++i) {
    if (!head_args[i].is_variable()) continue;
    VariableId v = head_args[i].var();
    if (positive.count(v) != 0 || !reported.insert(v).second) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "safety";
    d.code = "unsafe-rule";
    d.message = label + " is unsafe: head variable '" +
                symbols.VariableName(v) +
                "' does not appear in a positive body literal: " + rule_text;
    d.note = "bind '" + symbols.VariableName(v) +
             "' in a positive body atom (range restriction, Section II)";
    d.span = ArgSpan(head_spans, rule.head(), i, rule);
    d.rule_index = rule_index;
    out.push_back(std::move(d));
  }

  // Variables of negated literals must also be bound positively.
  const auto& body = rule.body();
  for (std::size_t j = 0; j < body.size(); ++j) {
    if (!body[j].negated) continue;
    const AtomSourceSpans* atom_spans =
        spans && j < spans->body.size() ? &spans->body[j] : nullptr;
    const auto& args = body[j].atom.args();
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!args[i].is_variable()) continue;
      VariableId v = args[i].var();
      if (positive.count(v) != 0 || !reported.insert(v).second) continue;
      Diagnostic d;
      d.severity = Severity::kError;
      d.pass = "safety";
      d.code = "unsafe-negation";
      d.message = label + " is unsafe: variable '" + symbols.VariableName(v) +
                  "' of negated literal '" + ToString(body[j], symbols) +
                  "' does not appear in a positive body literal: " + rule_text;
      d.note = "negation is evaluated as set difference, so every variable "
               "of a negated literal needs a positive binding";
      d.span = ArgSpan(atom_spans, body[j].atom, i, rule);
      d.rule_index = rule_index;
      out.push_back(std::move(d));
    }
  }
  return out;
}

Status ValidateRule(const Rule& rule, const SymbolTable& symbols,
                    std::size_t rule_index) {
  std::vector<Diagnostic> diagnostics =
      SafetyDiagnostics(rule, symbols, rule_index);
  if (diagnostics.empty()) return Status::OK();
  return diagnostics.front().ToStatus();
}

Status ValidateProgram(const Program& program) {
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    DATALOG_RETURN_IF_ERROR(ValidateRule(rules[i], *program.symbols(), i));
  }
  return Status::OK();
}

Status ValidatePositiveProgram(const Program& program) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].IsPositive()) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "validate";
    d.code = "negation-unsupported";
    d.message = "negation is not supported here (the optimization "
                "algorithms require positive programs): " +
                RuleLabel(rules[i], *program.symbols(), i) + ": " +
                ToString(rules[i], *program.symbols());
    d.span = rules[i].span();
    d.rule_index = i;
    return d.ToStatus();
  }
  return Status::OK();
}

}  // namespace datalog
