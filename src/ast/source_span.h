#ifndef DATALOG_AST_SOURCE_SPAN_H_
#define DATALOG_AST_SOURCE_SPAN_H_

#include <string>
#include <vector>

namespace datalog {

/// A half-open region of the source text, in 1-based lines and columns.
/// A default-constructed span (line 0) means "no source location": the
/// AST node was built programmatically rather than parsed. Spans are
/// carried alongside the AST for diagnostics only; they never participate
/// in equality, ordering, or hashing of AST nodes.
struct SourceSpan {
  int line = 0;      // 1-based start line; 0 = unknown
  int col = 0;       // 1-based start column
  int end_line = 0;  // line of the last character
  int end_col = 0;   // column one past the last character

  bool valid() const { return line > 0; }

  static SourceSpan Point(int line, int col) {
    return SourceSpan{line, col, line, col + 1};
  }

  /// The smallest span covering both `a` and `b` (invalid inputs are
  /// ignored; two invalid spans join to an invalid span).
  static SourceSpan Join(const SourceSpan& a, const SourceSpan& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    SourceSpan out = a;
    if (b.line < out.line || (b.line == out.line && b.col < out.col)) {
      out.line = b.line;
      out.col = b.col;
    }
    if (b.end_line > out.end_line ||
        (b.end_line == out.end_line && b.end_col > out.end_col)) {
      out.end_line = b.end_line;
      out.end_col = b.end_col;
    }
    return out;
  }

  /// "3:5" for a point-like span, "3:5-3:12" otherwise, "?" when unknown.
  std::string ToString() const {
    if (!valid()) return "?";
    std::string out = std::to_string(line) + ":" + std::to_string(col);
    if (end_line != line || end_col > col + 1) {
      out += "-" + std::to_string(end_line) + ":" + std::to_string(end_col);
    }
    return out;
  }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.col == b.col && a.end_line == b.end_line &&
           a.end_col == b.end_col;
  }
  friend bool operator!=(const SourceSpan& a, const SourceSpan& b) {
    return !(a == b);
  }
};

/// Fine-grained source locations for one parsed atom: the atom itself and
/// each argument token. Kept OUTSIDE the Atom value type (which carries
/// only its own span) so that copying atoms in the optimizer's inner
/// loops stays allocation-free.
struct AtomSourceSpans {
  SourceSpan span;
  std::vector<SourceSpan> arg_spans;  // parallel to Atom::args()
};

/// Source locations for one parsed rule.
struct RuleSourceSpans {
  SourceSpan span;
  AtomSourceSpans head;
  std::vector<AtomSourceSpans> body;  // parallel to Rule::body()
};

/// Per-rule source locations for a parsed program, parallel to
/// Program::rules(). Produced by Parser::ParseProgramWithSource and
/// consumed by the static analyzer (src/analysis) to attach exact token
/// spans to diagnostics. The map is positional: program transforms that
/// reorder or rewrite rules invalidate it.
struct ProgramSourceMap {
  std::vector<RuleSourceSpans> rules;

  const RuleSourceSpans* rule(std::size_t index) const {
    return index < rules.size() ? &rules[index] : nullptr;
  }
};

}  // namespace datalog

#endif  // DATALOG_AST_SOURCE_SPAN_H_
