#include "ast/rule.h"

namespace datalog {

Rule Rule::Positive(Atom head, std::vector<Atom> body_atoms) {
  std::vector<Literal> body;
  body.reserve(body_atoms.size());
  for (Atom& a : body_atoms) {
    body.push_back(Literal{std::move(a), /*negated=*/false});
  }
  return Rule(std::move(head), std::move(body));
}

bool Rule::IsPositive() const {
  for (const Literal& lit : body_) {
    if (lit.negated) return false;
  }
  return true;
}

std::vector<Atom> Rule::PositiveBodyAtoms() const {
  std::vector<Atom> atoms;
  atoms.reserve(body_.size());
  for (const Literal& lit : body_) {
    if (!lit.negated) atoms.push_back(lit.atom);
  }
  return atoms;
}

std::set<VariableId> Rule::Variables() const {
  std::set<VariableId> vars = head_.Variables();
  for (const Literal& lit : body_) {
    std::set<VariableId> body_vars = lit.atom.Variables();
    vars.insert(body_vars.begin(), body_vars.end());
  }
  return vars;
}

std::set<VariableId> Rule::PositiveBodyVariables() const {
  std::set<VariableId> vars;
  for (const Literal& lit : body_) {
    if (lit.negated) continue;
    std::set<VariableId> atom_vars = lit.atom.Variables();
    vars.insert(atom_vars.begin(), atom_vars.end());
  }
  return vars;
}

bool Rule::IsSafe() const {
  std::set<VariableId> positive = PositiveBodyVariables();
  for (VariableId v : head_.Variables()) {
    if (!positive.contains(v)) return false;
  }
  for (const Literal& lit : body_) {
    if (!lit.negated) continue;
    for (VariableId v : lit.atom.Variables()) {
      if (!positive.contains(v)) return false;
    }
  }
  return true;
}

Rule Rule::WithoutBodyLiteral(std::size_t index) const {
  Rule copy = *this;
  copy.body_.erase(copy.body_.begin() + static_cast<std::ptrdiff_t>(index));
  return copy;
}

}  // namespace datalog
