#ifndef DATALOG_AST_PARSER_H_
#define DATALOG_AST_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "ast/rule.h"
#include "ast/source_span.h"
#include "ast/tgd.h"
#include "util/result.h"

namespace datalog {

/// Parses the textual Datalog syntax used throughout this library.
///
/// Grammar (comments run from '%' or '//' to end of line):
///
///   program  :=  { rule | fact }
///   rule     :=  atom ":-" atom { "," atom | "," "not" atom } "."
///   fact     :=  atom "."                      (head must be ground)
///   tgd      :=  atoms "->" atoms "."          (atoms separated by "," or "&")
///   query    :=  "?-" atom "."
///   atom     :=  ident [ "(" term { "," term } ")" ]
///   term     :=  integer | quoted string | ident
///
/// Bare identifiers in argument positions are variables; integers and
/// quoted strings ('...' or "...") are constants. This matches the paper's
/// notation, where G(x, y, 3, 10) has variables x, y and constants 3, 10.
/// Negated body atoms are written `not A(x)` or `!A(x)` and are accepted by
/// the evaluation engine only (stratified negation).
/// A parsed program together with its fine-grained source locations and
/// any inline queries (`?- atom.` statements). The source map is
/// positional (rules[i] describes program.rules()[i]); transforms that
/// reorder rules invalidate it. Inline queries are what `datalog check`
/// uses to drive the query-directed analysis passes.
struct ParsedProgram {
  Program program;
  ProgramSourceMap source;
  std::vector<Atom> queries;
  std::vector<SourceSpan> query_spans;  // parallel to `queries`

  explicit ParsedProgram(std::shared_ptr<SymbolTable> symbols)
      : program(std::move(symbols)) {}
};

class Parser {
 public:
  /// The parser interns names into `symbols`; callers that parse several
  /// related artifacts (a program, its tgds, its EDB) should reuse one
  /// table.
  explicit Parser(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  /// Parses a whole program (sequence of rules and facts). Facts are
  /// represented as rules with empty bodies.
  Result<Program> ParseProgram(std::string_view text);

  /// Like ParseProgram, but additionally accepts interleaved query
  /// statements (`?- atom.`) and returns a per-rule source map with exact
  /// token spans for every atom and argument. The map is what the static
  /// analyzer (src/analysis) uses to report `line:col` diagnostics.
  Result<ParsedProgram> ParseProgramWithSource(std::string_view text);

  /// Parses a single rule or fact (with trailing '.').
  Result<Rule> ParseRule(std::string_view text);

  /// Parses a single tgd (with trailing '.').
  Result<Tgd> ParseTgd(std::string_view text);

  /// Parses a sequence of tgds.
  Result<std::vector<Tgd>> ParseTgds(std::string_view text);

  /// Parses a sequence of ground atoms (facts), each ending with '.'.
  Result<std::vector<Atom>> ParseGroundAtoms(std::string_view text);

  /// Parses a query `?- atom.` and returns the atom.
  Result<Atom> ParseQuery(std::string_view text);

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

 private:
  std::shared_ptr<SymbolTable> symbols_;
};

}  // namespace datalog

#endif  // DATALOG_AST_PARSER_H_
