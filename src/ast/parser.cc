#include "ast/parser.h"

#include <cctype>
#include <cstdint>
#include <string>

namespace datalog {
namespace {

enum class TokenKind {
  kIdent,
  kInteger,
  kString,
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kColonDash,  // ":-"
  kArrow,      // "->"
  kAmp,        // "&" or "&&"
  kBang,       // "!"
  kQueryDash,  // "?-"
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier or string payload
  std::int64_t value = 0;  // integer payload
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        DATALOG_ASSIGN_OR_RETURN(Token t, LexInteger(/*negative=*/false));
        tokens.push_back(t);
      } else if (c == '\'' || c == '"') {
        DATALOG_ASSIGN_OR_RETURN(Token t, LexString(c));
        tokens.push_back(t);
      } else if (c == '(') {
        tokens.push_back(Simple(TokenKind::kLParen));
      } else if (c == ')') {
        tokens.push_back(Simple(TokenKind::kRParen));
      } else if (c == ',') {
        tokens.push_back(Simple(TokenKind::kComma));
      } else if (c == '.') {
        tokens.push_back(Simple(TokenKind::kPeriod));
      } else if (c == '!') {
        tokens.push_back(Simple(TokenKind::kBang));
      } else if (c == '&') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '&') ++pos_;
        tokens.push_back(Token{TokenKind::kAmp, "", 0, line_});
      } else if (c == ':') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          pos_ += 2;
          tokens.push_back(Token{TokenKind::kColonDash, "", 0, line_});
        } else {
          return Error("expected ':-'");
        }
      } else if (c == '?') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          pos_ += 2;
          tokens.push_back(Token{TokenKind::kQueryDash, "", 0, line_});
        } else {
          return Error("expected '?-'");
        }
      } else if (c == '-') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          tokens.push_back(Token{TokenKind::kArrow, "", 0, line_});
        } else if (pos_ + 1 < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          ++pos_;
          DATALOG_ASSIGN_OR_RETURN(Token t, LexInteger(/*negative=*/true));
          tokens.push_back(t);
        } else {
          return Error("unexpected '-'");
        }
      } else {
        return Error(std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0, line_});
    return tokens;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token Simple(TokenKind kind) {
    ++pos_;
    return Token{kind, "", 0, line_};
  }

  Token LexIdent() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{TokenKind::kIdent, std::string(text_.substr(start, pos_ - start)),
                 0, line_};
  }

  Result<Token> LexInteger(bool negative) {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    std::string digits(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(digits.c_str(), &end, 10);
    if (errno != 0 || end != digits.c_str() + digits.size()) {
      return Error("integer literal out of range: " + digits);
    }
    return Token{TokenKind::kInteger, "", negative ? -v : v, line_};
  }

  Result<Token> LexString(char quote) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\n') return Error("unterminated string literal");
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(out), 0, line_};
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument("line " + std::to_string(line_) + ": " +
                                   std::move(message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Recursive-descent parser over the token stream.
class TokenParser {
 public:
  TokenParser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Result<Rule> ParseRuleOrFact() {
    DATALOG_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    if (Peek().kind == TokenKind::kPeriod) {
      Advance();
      return Rule(std::move(head), {});
    }
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kColonDash, "':-' or '.'"));
    std::vector<Literal> body;
    while (true) {
      DATALOG_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      body.push_back(std::move(lit));
      if (Peek().kind == TokenKind::kComma || Peek().kind == TokenKind::kAmp) {
        Advance();
        continue;
      }
      break;
    }
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return Rule(std::move(head), std::move(body));
  }

  Result<Tgd> ParseTgd() {
    DATALOG_ASSIGN_OR_RETURN(std::vector<Atom> lhs, ParseAtomConjunction());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    DATALOG_ASSIGN_OR_RETURN(std::vector<Atom> rhs, ParseAtomConjunction());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return Tgd(std::move(lhs), std::move(rhs));
  }

  Result<Atom> ParseGroundAtomStatement() {
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (!atom.IsGround()) {
      return ErrorHere("fact must be ground");
    }
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return atom;
  }

  Result<Atom> ParseQueryStatement() {
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kQueryDash, "'?-'"));
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return atom;
  }

  Status ExpectEnd() {
    if (!AtEnd()) return ErrorHere("trailing input");
    return Status::OK();
  }

 private:
  Result<std::vector<Atom>> ParseAtomConjunction() {
    std::vector<Atom> atoms;
    while (true) {
      DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      atoms.push_back(std::move(atom));
      if (Peek().kind == TokenKind::kComma || Peek().kind == TokenKind::kAmp) {
        Advance();
        continue;
      }
      break;
    }
    return atoms;
  }

  Result<Literal> ParseLiteral() {
    bool negated = false;
    if (Peek().kind == TokenKind::kBang) {
      negated = true;
      Advance();
    } else if (Peek().kind == TokenKind::kIdent && Peek().text == "not") {
      // "not" followed by an atom is a negated literal; a bare ident "not"
      // followed by anything else would be a 0-ary predicate named "not",
      // which we reject for clarity.
      negated = true;
      Advance();
    }
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    return Literal{std::move(atom), negated};
  }

  Result<Atom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected predicate name");
    }
    std::string name = Peek().text;
    Advance();
    std::vector<Term> args;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          DATALOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    DATALOG_ASSIGN_OR_RETURN(
        PredicateId pred,
        symbols_->InternPredicate(name, static_cast<int>(args.size())));
    return Atom(pred, std::move(args));
  }

  Result<Term> ParseTerm() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        Term t = Term::Int(tok.value);
        Advance();
        return t;
      }
      case TokenKind::kString: {
        Term t = Term::Constant(Value::Symbol(symbols_->InternSymbol(tok.text)));
        Advance();
        return t;
      }
      case TokenKind::kIdent: {
        Term t = Term::Variable(symbols_->InternVariable(tok.text));
        Advance();
        return t;
      }
      default:
        return ErrorHere("expected term");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return ErrorHere("expected " + std::string(what));
    }
    Advance();
    return Status::OK();
  }

  Status ErrorHere(std::string message) const {
    return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                   ": " + std::move(message));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  SymbolTable* symbols_;
};

Result<TokenParser> MakeTokenParser(std::string_view text,
                                    SymbolTable* symbols) {
  Lexer lexer(text);
  DATALOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return TokenParser(std::move(tokens), symbols);
}

}  // namespace

Result<Program> Parser::ParseProgram(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  Program program(symbols_);
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleOrFact());
    program.AddRule(std::move(rule));
  }
  return program;
}

Result<Rule> Parser::ParseRule(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleOrFact());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return rule;
}

Result<Tgd> Parser::ParseTgd(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Tgd tgd, parser.ParseTgd());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return tgd;
}

Result<std::vector<Tgd>> Parser::ParseTgds(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  std::vector<Tgd> tgds;
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Tgd tgd, parser.ParseTgd());
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

Result<std::vector<Atom>> Parser::ParseGroundAtoms(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  std::vector<Atom> atoms;
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Atom atom, parser.ParseGroundAtomStatement());
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

Result<Atom> Parser::ParseQuery(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Atom atom, parser.ParseQueryStatement());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return atom;
}

}  // namespace datalog
