#include "ast/parser.h"

#include <cctype>
#include <cstdint>
#include <string>

namespace datalog {
namespace {

enum class TokenKind {
  kIdent,
  kInteger,
  kString,
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kColonDash,  // ":-"
  kArrow,      // "->"
  kAmp,        // "&" or "&&"
  kBang,       // "!"
  kQueryDash,  // "?-"
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier or string payload
  std::int64_t value = 0;  // integer payload
  int line = 0;  // 1-based start line
  int col = 0;   // 1-based start column
  int end_col = 0;  // column one past the token's last character

  /// The token's source region. Tokens never span lines (strings reject
  /// embedded newlines), so end_line == line.
  SourceSpan Span() const { return SourceSpan{line, col, line, end_col}; }
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        DATALOG_ASSIGN_OR_RETURN(Token t, LexInteger(/*negative=*/false));
        tokens.push_back(t);
      } else if (c == '\'' || c == '"') {
        DATALOG_ASSIGN_OR_RETURN(Token t, LexString(c));
        tokens.push_back(t);
      } else if (c == '(') {
        tokens.push_back(Simple(TokenKind::kLParen));
      } else if (c == ')') {
        tokens.push_back(Simple(TokenKind::kRParen));
      } else if (c == ',') {
        tokens.push_back(Simple(TokenKind::kComma));
      } else if (c == '.') {
        tokens.push_back(Simple(TokenKind::kPeriod));
      } else if (c == '!') {
        tokens.push_back(Simple(TokenKind::kBang));
      } else if (c == '&') {
        int col = Col();
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '&') ++pos_;
        tokens.push_back(Make(TokenKind::kAmp, col));
      } else if (c == ':') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          int col = Col();
          pos_ += 2;
          tokens.push_back(Make(TokenKind::kColonDash, col));
        } else {
          return Error("expected ':-'");
        }
      } else if (c == '?') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          int col = Col();
          pos_ += 2;
          tokens.push_back(Make(TokenKind::kQueryDash, col));
        } else {
          return Error("expected '?-'");
        }
      } else if (c == '-') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          int col = Col();
          pos_ += 2;
          tokens.push_back(Make(TokenKind::kArrow, col));
        } else if (pos_ + 1 < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          int col = Col();
          ++pos_;
          DATALOG_ASSIGN_OR_RETURN(Token t, LexInteger(/*negative=*/true));
          t.col = col;
          tokens.push_back(t);
        } else {
          return Error("unexpected '-'");
        }
      } else {
        return Error(std::string("unexpected character '") + c + "'");
      }
    }
    tokens.push_back(Make(TokenKind::kEnd, Col()));
    return tokens;
  }

 private:
  /// 1-based column of the character at `pos_`.
  int Col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  Token Make(TokenKind kind, int col) const {
    return Token{kind, "", 0, line_, col, Col()};
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token Simple(TokenKind kind) {
    int col = Col();
    ++pos_;
    return Make(kind, col);
  }

  Token LexIdent() {
    std::size_t start = pos_;
    int col = Col();
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    Token t = Make(TokenKind::kIdent, col);
    t.text = std::string(text_.substr(start, pos_ - start));
    return t;
  }

  Result<Token> LexInteger(bool negative) {
    std::size_t start = pos_;
    int col = Col();
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    std::string digits(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(digits.c_str(), &end, 10);
    if (errno != 0 || end != digits.c_str() + digits.size()) {
      return Error("integer literal out of range: " + digits);
    }
    Token t = Make(TokenKind::kInteger, col);
    t.value = negative ? -v : v;
    return t;
  }

  Result<Token> LexString(char quote) {
    int col = Col();
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\n') return Error("unterminated string literal");
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    Token t = Make(TokenKind::kString, col);
    t.text = std::move(out);
    return t;
  }

  Status Error(std::string message) const {
    // "line L:C" keeps the historical "line L" prefix (older callers grep
    // for it) while adding the column.
    return Status::InvalidArgument("line " + std::to_string(line_) + ":" +
                                   std::to_string(Col()) + ": " +
                                   std::move(message));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

/// Recursive-descent parser over the token stream.
class TokenParser {
 public:
  TokenParser(std::vector<Token> tokens, SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool AtQuery() const { return Peek().kind == TokenKind::kQueryDash; }

  /// Parses a rule or fact. When `source` is non-null, fills it with the
  /// exact token spans of the rule, its atoms, and their arguments.
  Result<Rule> ParseRuleOrFact(RuleSourceSpans* source = nullptr) {
    const SourceSpan start = Peek().Span();
    AtomSourceSpans head_spans;
    DATALOG_ASSIGN_OR_RETURN(Atom head, ParseAtom(&head_spans));
    if (source != nullptr) source->head = head_spans;
    if (Peek().kind == TokenKind::kPeriod) {
      SourceSpan rule_span = SourceSpan::Join(start, Peek().Span());
      Advance();
      Rule fact(std::move(head), {});
      fact.set_span(rule_span);
      if (source != nullptr) source->span = rule_span;
      return fact;
    }
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kColonDash, "':-' or '.'"));
    std::vector<Literal> body;
    while (true) {
      AtomSourceSpans literal_spans;
      DATALOG_ASSIGN_OR_RETURN(Literal lit, ParseLiteral(&literal_spans));
      body.push_back(std::move(lit));
      if (source != nullptr) source->body.push_back(std::move(literal_spans));
      if (Peek().kind == TokenKind::kComma || Peek().kind == TokenKind::kAmp) {
        Advance();
        continue;
      }
      break;
    }
    SourceSpan rule_span = SourceSpan::Join(start, Peek().Span());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    Rule rule(std::move(head), std::move(body));
    rule.set_span(rule_span);
    if (source != nullptr) source->span = rule_span;
    return rule;
  }

  Result<Tgd> ParseTgd() {
    DATALOG_ASSIGN_OR_RETURN(std::vector<Atom> lhs, ParseAtomConjunction());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    DATALOG_ASSIGN_OR_RETURN(std::vector<Atom> rhs, ParseAtomConjunction());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return Tgd(std::move(lhs), std::move(rhs));
  }

  Result<Atom> ParseGroundAtomStatement() {
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (!atom.IsGround()) {
      return ErrorHere("fact must be ground");
    }
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return atom;
  }

  Result<Atom> ParseQueryStatement() {
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kQueryDash, "'?-'"));
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "'.'"));
    return atom;
  }

  Status ExpectEnd() {
    if (!AtEnd()) return ErrorHere("trailing input");
    return Status::OK();
  }

 private:
  Result<std::vector<Atom>> ParseAtomConjunction() {
    std::vector<Atom> atoms;
    while (true) {
      DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      atoms.push_back(std::move(atom));
      if (Peek().kind == TokenKind::kComma || Peek().kind == TokenKind::kAmp) {
        Advance();
        continue;
      }
      break;
    }
    return atoms;
  }

  /// Parses a (possibly negated) body literal. The recorded span covers
  /// the negation marker too, so diagnostics can point at `not p(x)` as a
  /// whole.
  Result<Literal> ParseLiteral(AtomSourceSpans* source = nullptr) {
    bool negated = false;
    SourceSpan negation_span;
    if (Peek().kind == TokenKind::kBang) {
      negated = true;
      negation_span = Peek().Span();
      Advance();
    } else if (Peek().kind == TokenKind::kIdent && Peek().text == "not") {
      // "not" followed by an atom is a negated literal; a bare ident "not"
      // followed by anything else would be a 0-ary predicate named "not",
      // which we reject for clarity.
      negated = true;
      negation_span = Peek().Span();
      Advance();
    }
    DATALOG_ASSIGN_OR_RETURN(Atom atom, ParseAtom(source));
    if (negated && source != nullptr) {
      source->span = SourceSpan::Join(negation_span, source->span);
    }
    return Literal{std::move(atom), negated};
  }

  Result<Atom> ParseAtom(AtomSourceSpans* source = nullptr) {
    if (Peek().kind != TokenKind::kIdent) {
      return ErrorHere("expected predicate name");
    }
    std::string name = Peek().text;
    SourceSpan span = Peek().Span();
    Advance();
    std::vector<Term> args;
    std::vector<SourceSpan> arg_spans;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          arg_spans.push_back(Peek().Span());
          DATALOG_ASSIGN_OR_RETURN(Term t, ParseTerm());
          args.push_back(t);
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      span = SourceSpan::Join(span, Peek().Span());
      DATALOG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    DATALOG_ASSIGN_OR_RETURN(
        PredicateId pred,
        symbols_->InternPredicate(name, static_cast<int>(args.size())));
    Atom atom(pred, std::move(args));
    atom.set_span(span);
    if (source != nullptr) {
      source->span = span;
      source->arg_spans = std::move(arg_spans);
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        Term t = Term::Int(tok.value);
        Advance();
        return t;
      }
      case TokenKind::kString: {
        Term t = Term::Constant(Value::Symbol(symbols_->InternSymbol(tok.text)));
        Advance();
        return t;
      }
      case TokenKind::kIdent: {
        Term t = Term::Variable(symbols_->InternVariable(tok.text));
        Advance();
        return t;
      }
      default:
        return ErrorHere("expected term");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Expect(TokenKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return ErrorHere("expected " + std::string(what));
    }
    Advance();
    return Status::OK();
  }

  Status ErrorHere(std::string message) const {
    // "line L:C" keeps the historical "line L" prefix while reporting the
    // exact column of the offending token.
    return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                   ":" + std::to_string(Peek().col) + ": " +
                                   std::move(message));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  SymbolTable* symbols_;
};

Result<TokenParser> MakeTokenParser(std::string_view text,
                                    SymbolTable* symbols) {
  Lexer lexer(text);
  DATALOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return TokenParser(std::move(tokens), symbols);
}

}  // namespace

Result<Program> Parser::ParseProgram(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  Program program(symbols_);
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleOrFact());
    program.AddRule(std::move(rule));
  }
  return program;
}

Result<ParsedProgram> Parser::ParseProgramWithSource(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  ParsedProgram parsed(symbols_);
  while (!parser.AtEnd()) {
    if (parser.AtQuery()) {
      DATALOG_ASSIGN_OR_RETURN(Atom query, parser.ParseQueryStatement());
      parsed.query_spans.push_back(query.span());
      parsed.queries.push_back(std::move(query));
      continue;
    }
    RuleSourceSpans source;
    DATALOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleOrFact(&source));
    parsed.program.AddRule(std::move(rule));
    parsed.source.rules.push_back(std::move(source));
  }
  return parsed;
}

Result<Rule> Parser::ParseRule(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleOrFact());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return rule;
}

Result<Tgd> Parser::ParseTgd(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Tgd tgd, parser.ParseTgd());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return tgd;
}

Result<std::vector<Tgd>> Parser::ParseTgds(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  std::vector<Tgd> tgds;
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Tgd tgd, parser.ParseTgd());
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

Result<std::vector<Atom>> Parser::ParseGroundAtoms(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  std::vector<Atom> atoms;
  while (!parser.AtEnd()) {
    DATALOG_ASSIGN_OR_RETURN(Atom atom, parser.ParseGroundAtomStatement());
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

Result<Atom> Parser::ParseQuery(std::string_view text) {
  DATALOG_ASSIGN_OR_RETURN(TokenParser parser,
                           MakeTokenParser(text, symbols_.get()));
  DATALOG_ASSIGN_OR_RETURN(Atom atom, parser.ParseQueryStatement());
  DATALOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return atom;
}

}  // namespace datalog
