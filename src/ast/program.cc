#include "ast/program.h"

namespace datalog {

Program Program::WithoutRule(std::size_t index) const {
  Program copy = *this;
  copy.rules_.erase(copy.rules_.begin() + static_cast<std::ptrdiff_t>(index));
  return copy;
}

Program Program::WithRuleReplaced(std::size_t index, Rule rule) const {
  Program copy = *this;
  copy.rules_[index] = std::move(rule);
  return copy;
}

std::set<PredicateId> Program::IntentionalPredicates() const {
  std::set<PredicateId> intentional;
  for (const Rule& rule : rules_) {
    intentional.insert(rule.head().predicate());
  }
  return intentional;
}

std::set<PredicateId> Program::ExtensionalPredicates() const {
  std::set<PredicateId> intentional = IntentionalPredicates();
  std::set<PredicateId> extensional;
  for (const Rule& rule : rules_) {
    for (const Literal& lit : rule.body()) {
      if (!intentional.contains(lit.atom.predicate())) {
        extensional.insert(lit.atom.predicate());
      }
    }
  }
  return extensional;
}

std::set<PredicateId> Program::AllPredicates() const {
  std::set<PredicateId> all;
  for (const Rule& rule : rules_) {
    all.insert(rule.head().predicate());
    for (const Literal& lit : rule.body()) {
      all.insert(lit.atom.predicate());
    }
  }
  return all;
}

bool Program::IsIntentional(PredicateId pred) const {
  for (const Rule& rule : rules_) {
    if (rule.head().predicate() == pred) return true;
  }
  return false;
}

std::size_t Program::TotalBodyLiterals() const {
  std::size_t n = 0;
  for (const Rule& rule : rules_) {
    n += rule.body().size();
  }
  return n;
}

}  // namespace datalog
