#ifndef DATALOG_AST_SUBSTITUTION_H_
#define DATALOG_AST_SUBSTITUTION_H_

#include <unordered_map>

#include "ast/atom.h"
#include "ast/rule.h"
#include "ast/term.h"

namespace datalog {

/// A mapping from variables to terms, used for rule instantiation
/// (Section III) and unification. Bindings form chains (x -> y, y -> c);
/// Resolve() follows them to a fixpoint.
class Substitution {
 public:
  Substitution() = default;

  /// Binds variable `v` to `t`. `v` must be unbound. Callers must ensure
  /// `t` does not (transitively) resolve back to `v`; Unify* maintain this
  /// by always binding fully resolved variables.
  void Bind(VariableId v, Term t) { map_.emplace(v, t); }

  bool IsBound(VariableId v) const { return map_.contains(v); }
  bool empty() const { return map_.empty(); }
  std::size_t size() const { return map_.size(); }

  /// Follows binding chains: returns the final term `t` resolves to. The
  /// result is either a constant or an unbound variable.
  Term Resolve(Term t) const;

  /// Applies the substitution to an atom, resolving every argument.
  Atom Apply(const Atom& atom) const;

  /// Applies the substitution to every atom of a rule.
  Rule Apply(const Rule& rule) const;

 private:
  std::unordered_map<VariableId, Term> map_;
};

}  // namespace datalog

#endif  // DATALOG_AST_SUBSTITUTION_H_
