#ifndef DATALOG_AST_RULE_H_
#define DATALOG_AST_RULE_H_

#include <set>
#include <vector>

#include "ast/atom.h"

namespace datalog {

/// A Horn-clause rule `head :- body` (Section II). A rule with an empty
/// body is a fact and must have a ground head (the paper requires every
/// head variable to appear in the body).
class Rule {
 public:
  Rule() = default;
  Rule(Atom head, std::vector<Literal> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  /// Convenience constructor for the common positive case.
  static Rule Positive(Atom head, std::vector<Atom> body_atoms);

  const Atom& head() const { return head_; }
  Atom& mutable_head() { return head_; }
  const std::vector<Literal>& body() const { return body_; }
  std::vector<Literal>& mutable_body() { return body_; }

  /// Where this rule came from in the source text (invalid for rules built
  /// programmatically). Ignored by equality.
  const SourceSpan& span() const { return span_; }
  void set_span(const SourceSpan& span) { span_ = span; }

  /// True if the body is empty (the rule is a ground fact).
  bool IsFact() const { return body_.empty(); }

  /// True if no body literal is negated.
  bool IsPositive() const;

  /// The positive body atoms, in order. Most of the optimization machinery
  /// operates on positive rules and uses this view.
  std::vector<Atom> PositiveBodyAtoms() const;

  /// All variables appearing anywhere in the rule.
  std::set<VariableId> Variables() const;

  /// Variables appearing in positive body literals.
  std::set<VariableId> PositiveBodyVariables() const;

  /// True if every head variable and every variable of a negated literal
  /// also appears in a positive body literal (the paper's safety
  /// assumption from Section II, extended to negation in the usual way).
  bool IsSafe() const;

  /// Returns a copy of this rule with the body literal at `index` removed.
  Rule WithoutBodyLiteral(std::size_t index) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head_ == b.head_ && a.body_ == b.body_;
  }
  friend bool operator!=(const Rule& a, const Rule& b) { return !(a == b); }

 private:
  Atom head_;
  std::vector<Literal> body_;
  SourceSpan span_;
};

}  // namespace datalog

#endif  // DATALOG_AST_RULE_H_
