#include "ast/atom.h"

#include "util/hash.h"

namespace datalog {

bool Atom::IsGround() const {
  for (const Term& t : args_) {
    if (t.is_variable()) return false;
  }
  return true;
}

void Atom::AppendVariables(std::vector<VariableId>* out) const {
  for (const Term& t : args_) {
    if (t.is_variable()) out->push_back(t.var());
  }
}

std::set<VariableId> Atom::Variables() const {
  std::set<VariableId> vars;
  for (const Term& t : args_) {
    if (t.is_variable()) vars.insert(t.var());
  }
  return vars;
}

bool Atom::ContainsVariable(VariableId v) const {
  for (const Term& t : args_) {
    if (t.is_variable() && t.var() == v) return true;
  }
  return false;
}

std::size_t Atom::Hash() const {
  std::size_t seed = std::hash<PredicateId>{}(predicate_);
  for (const Term& t : args_) {
    HashCombine(seed, t.Hash());
  }
  return seed;
}

}  // namespace datalog
