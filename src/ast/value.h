#ifndef DATALOG_AST_VALUE_H_
#define DATALOG_AST_VALUE_H_

#include <cstdint>
#include <functional>

#include "util/hash.h"

namespace datalog {

/// Discriminates the four kinds of constants that can appear in a database.
///
/// The paper assumes constants are integers; we additionally support interned
/// symbolic constants (strings), *frozen* constants (the distinct constants
/// substituted for variables when a rule body is turned into a canonical
/// database, Section VI), and labeled *nulls* (the Skolem values introduced
/// by applying embedded tgds, Section VIII).
enum class ValueKind : std::uint8_t {
  kInt = 0,
  kSymbol = 1,
  kFrozen = 2,
  kNull = 3,
};

/// A single database constant. Trivially copyable, 16 bytes.
///
/// Frozen constants and nulls are ordinary constants as far as rule and tgd
/// application is concerned (the paper: "once an atom with nulls is added to
/// the DB, ... nulls are viewed as constants"); the distinct kinds exist so
/// that freshly generated values can never collide with program constants.
class Value {
 public:
  /// Default-constructs the integer 0. Required for container use.
  Value() : kind_(ValueKind::kInt), payload_(0) {}

  static Value Int(std::int64_t v) { return Value(ValueKind::kInt, v); }
  /// `id` is an interned-string id from a SymbolTable.
  static Value Symbol(std::int32_t id) { return Value(ValueKind::kSymbol, id); }
  /// A frozen constant with a per-operation sequence number.
  static Value Frozen(std::int32_t id) { return Value(ValueKind::kFrozen, id); }
  /// A labeled null with a per-operation sequence number.
  static Value Null(std::int32_t id) { return Value(ValueKind::kNull, id); }

  ValueKind kind() const { return kind_; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_symbol() const { return kind_ == ValueKind::kSymbol; }
  bool is_frozen() const { return kind_ == ValueKind::kFrozen; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  /// The integer payload: the int value, the symbol id, or the frozen/null
  /// sequence number, depending on kind().
  std::int64_t payload() const { return payload_; }

  friend bool operator==(const Value& a, const Value& b) {
    return a.kind_ == b.kind_ && a.payload_ == b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Arbitrary-but-total order (kind-major), for canonical sorting.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.payload_ < b.payload_;
  }

  std::size_t Hash() const {
    std::size_t seed = static_cast<std::size_t>(kind_);
    HashCombine(seed, std::hash<std::int64_t>{}(payload_));
    return seed;
  }

 private:
  Value(ValueKind kind, std::int64_t payload) : kind_(kind), payload_(payload) {}

  ValueKind kind_;
  std::int64_t payload_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace datalog

namespace std {
template <>
struct hash<datalog::Value> {
  size_t operator()(const datalog::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // DATALOG_AST_VALUE_H_
