#include "ast/tgd.h"

namespace datalog {

std::set<VariableId> Tgd::UniversalVariables() const {
  std::set<VariableId> vars;
  for (const Atom& atom : lhs_) {
    std::set<VariableId> atom_vars = atom.Variables();
    vars.insert(atom_vars.begin(), atom_vars.end());
  }
  return vars;
}

std::set<VariableId> Tgd::ExistentialVariables() const {
  std::set<VariableId> universal = UniversalVariables();
  std::set<VariableId> existential;
  for (const Atom& atom : rhs_) {
    for (VariableId v : atom.Variables()) {
      if (!universal.contains(v)) existential.insert(v);
    }
  }
  return existential;
}

}  // namespace datalog
