#ifndef DATALOG_AST_DEPENDENCE_GRAPH_H_
#define DATALOG_AST_DEPENDENCE_GRAPH_H_

#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace datalog {

/// The dependence graph of a program (Section III): a node per predicate
/// and an edge from Q to R whenever Q appears in the body of a rule whose
/// head is R. Edges through negated literals are marked negative, which is
/// what stratification (Section XII extension) needs.
class DependenceGraph {
 public:
  explicit DependenceGraph(const Program& program);

  /// True if the graph has a cycle, i.e. the program is recursive.
  bool IsRecursive() const;

  /// True if there is a path (of length >= 1) from `pred` to itself.
  bool IsPredicateRecursive(PredicateId pred) const;

  /// True if `rule` is recursive in the program: its head predicate lies on
  /// a cycle through some predicate of its body. In particular a rule whose
  /// head predicate appears in its own body is recursive.
  bool IsRuleRecursive(const Rule& rule) const;

  /// True if every rule body has at most one predicate mutually recursive
  /// with the rule head (the class for which Section V's undecidability
  /// results already hold).
  bool IsLinear(const Program& program) const;

  /// True if `from` can reach `to` by a path of length >= 1.
  bool Reaches(PredicateId from, PredicateId to) const;

  /// The strongly connected component index of `pred` (components are
  /// numbered in reverse topological order: callees before callers).
  int SccIndex(PredicateId pred) const;
  int NumSccs() const { return num_sccs_; }

  /// True if `a` and `b` are mutually recursive (same nontrivial SCC, or
  /// a == b with a self-loop).
  bool MutuallyRecursive(PredicateId a, PredicateId b) const;

  /// When the program is not stratifiable, a witness cycle: predicates
  /// c[0], c[1], ..., c[n-1] such that every consecutive pair (and the
  /// closing pair c[n-1] -> c[0]) is an edge of the graph, and the edge
  /// c[0] -> c[1] is negative. Empty when the program is stratifiable.
  /// For a negative self-loop the witness is the single predicate.
  std::vector<PredicateId> NegativeCycleWitness() const;

  /// Computes a stratification: predicates grouped into strata such that
  /// every positive edge stays within or climbs strata, and every negative
  /// edge strictly climbs. Fails with InvalidArgument if a negative edge
  /// lies inside an SCC (the program is not stratifiable).
  Result<std::vector<std::vector<PredicateId>>> Stratify() const;

 private:
  int num_preds_;
  int num_sccs_ = 0;
  std::vector<std::vector<int>> adjacency_;       // positive + negative edges
  std::vector<std::vector<int>> negative_edges_;  // negative edges only
  std::vector<int> scc_;                          // pred -> SCC index
  std::vector<bool> self_loop_;                   // pred has an edge to itself
};

}  // namespace datalog

#endif  // DATALOG_AST_DEPENDENCE_GRAPH_H_
