#include "ast/unify.h"

#include <unordered_map>

namespace datalog {

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term ra = subst->Resolve(a);
  Term rb = subst->Resolve(b);
  if (ra == rb) return true;
  if (ra.is_variable()) {
    subst->Bind(ra.var(), rb);
    return true;
  }
  if (rb.is_variable()) {
    subst->Bind(rb.var(), ra);
    return true;
  }
  return false;  // Two distinct constants.
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.predicate() != b.predicate()) return false;
  if (a.args().size() != b.args().size()) return false;
  for (std::size_t i = 0; i < a.args().size(); ++i) {
    if (!UnifyTerms(a.args()[i], b.args()[i], subst)) return false;
  }
  return true;
}

Rule RenameApart(const Rule& rule, SymbolTable* symbols) {
  std::unordered_map<VariableId, VariableId> renaming;
  auto rename_atom = [&](const Atom& atom) {
    std::vector<Term> args;
    args.reserve(atom.args().size());
    for (const Term& t : atom.args()) {
      if (t.is_constant()) {
        args.push_back(t);
        continue;
      }
      auto it = renaming.find(t.var());
      if (it == renaming.end()) {
        VariableId fresh =
            symbols->FreshVariable(symbols->VariableName(t.var()));
        it = renaming.emplace(t.var(), fresh).first;
      }
      args.push_back(Term::Variable(it->second));
    }
    return Atom(atom.predicate(), std::move(args));
  };

  std::vector<Literal> body;
  body.reserve(rule.body().size());
  Atom head = rename_atom(rule.head());
  for (const Literal& lit : rule.body()) {
    body.push_back(Literal{rename_atom(lit.atom), lit.negated});
  }
  return Rule(std::move(head), std::move(body));
}

}  // namespace datalog
