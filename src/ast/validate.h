#ifndef DATALOG_AST_VALIDATE_H_
#define DATALOG_AST_VALIDATE_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/program.h"
#include "ast/source_span.h"
#include "util/status.h"

namespace datalog {

/// Structured safety diagnostics for one rule: the paper's well-formedness
/// assumptions from Section II (every head variable appears in a positive
/// body literal; a rule with an empty body has a ground head), extended to
/// negation in the usual way (every variable of a negated literal must be
/// bound positively). When `spans` is provided (from ParseProgramWithSource)
/// each diagnostic points at the exact offending variable token; otherwise
/// spans fall back to whatever the rule itself carries.
std::vector<Diagnostic> SafetyDiagnostics(
    const Rule& rule, const SymbolTable& symbols,
    std::size_t rule_index = Diagnostic::kNoRule,
    const RuleSourceSpans* spans = nullptr);

/// Checks the paper's well-formedness assumptions for a single rule
/// (Section II). Returns the first safety diagnostic as an InvalidArgument
/// Status naming the rule (and its index when known), or OK.
Status ValidateRule(const Rule& rule, const SymbolTable& symbols,
                    std::size_t rule_index = Diagnostic::kNoRule);

/// Validates every rule of the program.
Status ValidateProgram(const Program& program);

/// Additionally requires the program to be negation-free, which the
/// optimization algorithms of Sections VI-XI assume.
Status ValidatePositiveProgram(const Program& program);

}  // namespace datalog

#endif  // DATALOG_AST_VALIDATE_H_
