#ifndef DATALOG_AST_VALIDATE_H_
#define DATALOG_AST_VALIDATE_H_

#include "ast/program.h"
#include "util/status.h"

namespace datalog {

/// Checks the paper's well-formedness assumptions for a single rule
/// (Section II): every head variable appears in the (positive) body, and a
/// rule with an empty body has a ground head. With negation, every variable
/// of a negated literal must appear in a positive literal.
Status ValidateRule(const Rule& rule, const SymbolTable& symbols);

/// Validates every rule of the program.
Status ValidateProgram(const Program& program);

/// Additionally requires the program to be negation-free, which the
/// optimization algorithms of Sections VI-XI assume.
Status ValidatePositiveProgram(const Program& program);

}  // namespace datalog

#endif  // DATALOG_AST_VALIDATE_H_
