#ifndef DATALOG_AST_PROGRAM_H_
#define DATALOG_AST_PROGRAM_H_

#include <memory>
#include <set>
#include <vector>

#include "ast/rule.h"
#include "ast/symbol_table.h"

namespace datalog {

/// A Datalog program: a set of rules over a shared symbol table
/// (Section II). Rules are kept in insertion order; the minimization
/// algorithms consider atoms and rules in this order unless told otherwise.
class Program {
 public:
  /// Creates an empty program with a fresh symbol table.
  Program() : symbols_(std::make_shared<SymbolTable>()) {}

  /// Creates an empty program sharing an existing symbol table.
  explicit Program(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }
  SymbolTable* mutable_symbols() { return symbols_.get(); }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  std::size_t NumRules() const { return rules_.size(); }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Returns a copy of this program with the rule at `index` removed.
  Program WithoutRule(std::size_t index) const;

  /// Returns a copy of this program with the rule at `index` replaced.
  Program WithRuleReplaced(std::size_t index, Rule rule) const;

  /// The intentional predicates: those appearing as the head of some rule
  /// (Section III).
  std::set<PredicateId> IntentionalPredicates() const;

  /// The extensional predicates: those appearing in the program but never
  /// as a rule head (Section III).
  std::set<PredicateId> ExtensionalPredicates() const;

  /// All predicates mentioned anywhere in the program.
  std::set<PredicateId> AllPredicates() const;

  /// True if `pred` is the head predicate of some rule.
  bool IsIntentional(PredicateId pred) const;

  /// Total number of body literals across all rules (the join-count proxy
  /// used when reporting minimization benefit).
  std::size_t TotalBodyLiterals() const;

  /// Structural equality (same rules in the same order). Assumes both
  /// programs share a symbol table; ids are compared directly.
  friend bool operator==(const Program& a, const Program& b) {
    return a.rules_ == b.rules_;
  }
  friend bool operator!=(const Program& a, const Program& b) {
    return !(a == b);
  }

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Rule> rules_;
};

}  // namespace datalog

#endif  // DATALOG_AST_PROGRAM_H_
