#ifndef DATALOG_AST_SYMBOL_TABLE_H_
#define DATALOG_AST_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/interning.h"
#include "util/result.h"
#include "util/status.h"

namespace datalog {

/// A predicate id, dense per SymbolTable. In traditional database
/// terminology a predicate is a relation scheme (Section II).
using PredicateId = std::int32_t;

/// Interns predicate names (with fixed arities), variable names, and
/// symbolic constants. A SymbolTable is shared (via std::shared_ptr) by all
/// Programs and Databases that must agree on ids.
///
/// Not thread-safe.
class SymbolTable {
 public:
  SymbolTable() = default;

  // --- Predicates -----------------------------------------------------

  /// Interns predicate `name` with the given arity. Fails with
  /// InvalidArgument if `name` was already interned with a different arity
  /// (a predicate's arity is fixed, Section II).
  Result<PredicateId> InternPredicate(std::string_view name, int arity);

  /// Returns the id for `name` or NotFound.
  Result<PredicateId> LookupPredicate(std::string_view name) const;

  const std::string& PredicateName(PredicateId id) const {
    return predicates_.ToString(id);
  }
  int PredicateArity(PredicateId id) const {
    return arities_[static_cast<std::size_t>(id)];
  }
  std::int32_t NumPredicates() const { return predicates_.size(); }

  /// Interns a predicate whose name is guaranteed fresh (used by the
  /// magic-sets transformation). The returned predicate's name starts with
  /// `hint` and does not collide with any existing predicate.
  PredicateId FreshPredicate(std::string_view hint, int arity);

  // --- Variables ------------------------------------------------------

  /// Interns variable `name` (scoped globally; rules that reuse a name
  /// share an id, which is harmless because rules are renamed apart when
  /// it matters).
  std::int32_t InternVariable(std::string_view name) {
    return variables_.Intern(name);
  }
  const std::string& VariableName(std::int32_t id) const {
    return variables_.ToString(id);
  }
  std::int32_t NumVariables() const { return variables_.size(); }

  /// Creates a fresh variable whose name starts with `hint`.
  std::int32_t FreshVariable(std::string_view hint);

  // --- Symbolic constants ----------------------------------------------

  std::int32_t InternSymbol(std::string_view text) {
    return symbols_.Intern(text);
  }
  const std::string& SymbolText(std::int32_t id) const {
    return symbols_.ToString(id);
  }

 private:
  StringInterner predicates_;
  std::vector<int> arities_;  // parallel to predicates_
  StringInterner variables_;
  StringInterner symbols_;
  int fresh_counter_ = 0;
};

}  // namespace datalog

#endif  // DATALOG_AST_SYMBOL_TABLE_H_
