#include "ast/pretty_print.h"

#include <string>
#include <vector>

#include "util/string_util.h"

namespace datalog {

std::string ToString(const Value& value, const SymbolTable& symbols) {
  switch (value.kind()) {
    case ValueKind::kInt:
      return std::to_string(value.payload());
    case ValueKind::kSymbol: {
      const std::string& text =
          symbols.SymbolText(static_cast<std::int32_t>(value.payload()));
      // Pick a quote character the text does not contain (the lexer has
      // no escape sequences). A text containing both quote kinds cannot
      // round-trip; single quotes are emitted as the lesser evil.
      if (text.find('\'') == std::string::npos) return "'" + text + "'";
      return "\"" + text + "\"";
    }
    case ValueKind::kFrozen:
      return "$c" + std::to_string(value.payload());
    case ValueKind::kNull:
      return "~n" + std::to_string(value.payload());
  }
  return "?";
}

std::string ToString(const Term& term, const SymbolTable& symbols) {
  if (term.is_variable()) return symbols.VariableName(term.var());
  return ToString(term.value(), symbols);
}

std::string ToString(const Atom& atom, const SymbolTable& symbols) {
  std::string out = symbols.PredicateName(atom.predicate());
  if (atom.args().empty()) return out;
  std::vector<std::string> args;
  args.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    args.push_back(ToString(t, symbols));
  }
  out += "(";
  out += Join(args, ", ");
  out += ")";
  return out;
}

std::string ToString(const Literal& literal, const SymbolTable& symbols) {
  std::string out = literal.negated ? "not " : "";
  return out + ToString(literal.atom, symbols);
}

std::string ToString(const Rule& rule, const SymbolTable& symbols) {
  std::string out = ToString(rule.head(), symbols);
  if (!rule.IsFact()) {
    std::vector<std::string> body;
    body.reserve(rule.body().size());
    for (const Literal& lit : rule.body()) {
      body.push_back(ToString(lit, symbols));
    }
    out += " :- " + Join(body, ", ");
  }
  out += ".";
  return out;
}

std::string ToString(const Program& program) {
  std::string out;
  for (const Rule& rule : program.rules()) {
    out += ToString(rule, *program.symbols());
    out += "\n";
  }
  return out;
}

std::string ToString(const Tgd& tgd, const SymbolTable& symbols) {
  std::vector<std::string> lhs;
  lhs.reserve(tgd.lhs().size());
  for (const Atom& atom : tgd.lhs()) lhs.push_back(ToString(atom, symbols));
  std::vector<std::string> rhs;
  rhs.reserve(tgd.rhs().size());
  for (const Atom& atom : tgd.rhs()) rhs.push_back(ToString(atom, symbols));
  return Join(lhs, ", ") + " -> " + Join(rhs, ", ") + ".";
}

}  // namespace datalog
