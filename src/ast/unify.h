#ifndef DATALOG_AST_UNIFY_H_
#define DATALOG_AST_UNIFY_H_

#include "ast/atom.h"
#include "ast/rule.h"
#include "ast/substitution.h"
#include "ast/symbol_table.h"

namespace datalog {

/// Extends `subst` to a most general unifier of `a` and `b`. Returns false
/// (leaving `subst` in an unspecified but valid state) if the terms do not
/// unify. Terms are flat (no function symbols), so no occurs check is
/// needed.
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Extends `subst` to a most general unifier of atoms `a` and `b`
/// (same predicate, argument-wise term unification).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

/// Returns a copy of `rule` in which every variable has been replaced by a
/// fresh variable from `symbols`. Used to rename rules apart before
/// unification (Fig. 3 and the magic-sets transformation).
Rule RenameApart(const Rule& rule, SymbolTable* symbols);

}  // namespace datalog

#endif  // DATALOG_AST_UNIFY_H_
