#ifndef DATALOG_INCR_MATERIALIZED_VIEW_H_
#define DATALOG_INCR_MATERIALIZED_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace datalog {

/// Work and effect counters for one committed transaction. The match /
/// recompute counters are the incremental engine's analogue of EvalStats:
/// together they bound the rule-matching work a commit did, which is what
/// bench_incr compares against a from-scratch re-evaluation.
struct CommitStats {
  std::uint64_t base_inserted = 0;   // EDB facts added to the base
  std::uint64_t base_retracted = 0;  // EDB facts removed from the base
  std::uint64_t derived_added = 0;   // net facts added to the view
  std::uint64_t derived_removed = 0;  // net facts removed from the view
  std::uint64_t overdeleted = 0;     // DRed: facts provisionally deleted
  std::uint64_t rederived = 0;       // DRed: overdeleted facts that survived
  std::uint64_t rule_applications = 0;  // incremental (rule, delta-pos) passes
  int sccs_touched = 0;     // SCCs whose update logic ran
  int sccs_recomputed = 0;  // SCCs that fell back to full recomputation
  MatchStats match;         // join work of the counting/DRed passes
  EvalStats recompute;      // work of recompute fallbacks + DRed re-insertion

  /// Total complete body matches found, across incremental passes and
  /// recompute fallbacks -- the "number of joins" proxy used everywhere
  /// else in this library.
  std::uint64_t TotalSubstitutions() const {
    return match.substitutions + recompute.match.substitutions;
  }
  std::uint64_t TotalTuplesScanned() const {
    return match.tuples_scanned + recompute.match.tuples_scanned;
  }

  void Add(const CommitStats& other);

  /// One-line human-readable summary (the CLI prints this per commit).
  std::string ToString() const;
};

/// Tuning knobs for a materialized view.
struct IncrOptions {
  /// Total parallelism for the DRed rederivation sweeps and recompute
  /// fallbacks: 1 (default) is fully sequential, 0 means
  /// std::thread::hardware_concurrency(). The maintained database is
  /// identical at any thread count.
  std::size_t num_threads = 1;
};

class Transaction;

/// A materialized Datalog fixpoint kept up to date under batches of fact
/// insertions and retractions without from-scratch re-evaluation.
///
/// The program's predicates are split into dependence-graph SCCs,
/// processed in topological order per commit, and each SCC is maintained
/// by the cheapest sound algorithm for its shape:
///   - nonrecursive, negation-free SCCs keep an exact support count per
///     fact (the counting algorithm);
///   - recursive, negation-free SCCs run Delete/Rederive (DRed):
///     overdelete via semi-naive delta passes, rederive survivors, then
///     continue the fixpoint for insertions;
///   - SCCs with negation fall back to recomputing just that SCC, which
///     is always sound for stratified programs.
/// See docs/incremental_eval.md for the algorithms and the soundness
/// argument.
///
/// Not thread-safe: commits and reads must be externally serialized.
class MaterializedView {
 public:
  /// Validates and stratifies `program`, materializes its fixpoint over
  /// `edb`, and returns the live view. The program and database must
  /// share a symbol table.
  static Result<MaterializedView> Create(Program program, Database edb,
                                         IncrOptions options = {});

  /// The materialized fixpoint: base facts plus everything derivable.
  const Database& db() const { return db_; }

  /// The extensional base: exactly the facts asserted (initially the edb,
  /// then as modified by committed transactions). A base fact may also be
  /// derivable; retracting it then leaves it in the view.
  const Database& base() const { return base_; }

  const Program& program() const { return program_; }
  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Stats of the initial from-scratch materialization.
  const EvalStats& initial_stats() const { return initial_stats_; }

  /// Starts a transaction. At most one may be active at a time; the view
  /// must outlive it.
  Transaction Begin();

  /// Applies a batch of base-fact changes and incrementally repairs the
  /// view. Each (predicate, tuple) must appear in at most one of the two
  /// lists. Prefer the Transaction API, which nets conflicting ops.
  Result<CommitStats> Apply(
      const std::vector<std::pair<PredicateId, Tuple>>& inserts,
      const std::vector<std::pair<PredicateId, Tuple>>& retracts);

 private:
  enum class SccKind { kCounting, kDRed, kRecompute };
  struct SccPlan {
    std::vector<PredicateId> preds;  // head predicates of this SCC
    std::vector<Rule> rules;         // rules whose head lies in this SCC
    SccKind kind;
  };
  using FactCounts = std::unordered_map<Tuple, std::int64_t, TupleHash>;

  MaterializedView(Program program, Database edb, IncrOptions options);

  Status Initialize();
  void InitializeCounts(const SccPlan& plan);

  bool PlanTouched(const SccPlan& plan, const Database& base_plus,
                   const Database& base_minus) const;
  void UpdateExtensional(const Database& base_plus, const Database& base_minus,
                         CommitStats* stats);
  void UpdateCounting(const SccPlan& plan, const Database& base_plus,
                      const Database& base_minus, CommitStats* stats);
  void UpdateDRed(const SccPlan& plan, const Database& base_plus,
                  const Database& base_minus, CommitStats* stats);
  void UpdateRecompute(const SccPlan& plan, CommitStats* stats);

  /// DRed rederivation: true if `fact` has a derivation from surviving
  /// facts (view minus `over` plus `rederived`) via some rule of `plan`.
  bool CanRederive(const SccPlan& plan, PredicateId pred, const Tuple& fact,
                   const Database& over, const Database& rederived,
                   MatchStats* stats, bool fixed_order) const;

  /// True if `fact` persists independently of any derivation: it is an
  /// asserted base fact or a program fact.
  bool IsPinned(PredicateId pred, const Tuple& fact) const;

  /// Records a net view change for downstream SCCs: an add cancels a
  /// pending remove of the same fact (and vice versa), keeping
  /// delta_plus_/delta_minus_ disjoint and proper.
  void RecordAdd(PredicateId pred, const Tuple& fact);
  void RecordRemove(PredicateId pred, const Tuple& fact);

  bool InScc(const SccPlan& plan, PredicateId pred) const;

  Program program_;
  std::shared_ptr<SymbolTable> symbols_;
  Database base_;           // asserted EDB facts
  Database program_facts_;  // facts contributed by the program's own rules
  Database db_;             // the materialized fixpoint
  std::vector<SccPlan> plans_;  // topological order (dependencies first)
  std::unordered_map<PredicateId, FactCounts> counts_;  // counting SCCs only
  EvalStats initial_stats_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1

  // Per-commit scratch: the net view deltas accumulated so far, consumed
  // by later SCCs' passes. Reset by Apply.
  Database delta_plus_;
  Database delta_minus_;
};

/// A batch of pending base-fact changes against a MaterializedView.
/// Operations are buffered; Commit() nets them (the last operation on a
/// fact wins) and applies the batch atomically to the view. Abort()
/// discards them. A transaction is single-use.
class Transaction {
 public:
  /// Buffers an insertion. Fails on arity mismatch (tuple form) or a
  /// non-ground atom (atom form); the transaction stays usable.
  Status Insert(PredicateId pred, Tuple tuple);
  Status Insert(const Atom& fact);

  /// Buffers a retraction of a base fact. Retracting an absent fact is a
  /// no-op at commit time.
  Status Retract(PredicateId pred, Tuple tuple);
  Status Retract(const Atom& fact);

  /// Applies the buffered batch to the view and returns the commit's
  /// stats. The transaction becomes inactive.
  Result<CommitStats> Commit();

  /// Discards the buffered batch; the view is untouched.
  void Abort();

  bool active() const { return active_; }
  std::size_t NumPendingOps() const { return ops_.size(); }

 private:
  friend class MaterializedView;
  explicit Transaction(MaterializedView* view) : view_(view) {}

  struct Op {
    bool insert;
    PredicateId pred;
    Tuple tuple;
  };

  Status Buffer(bool insert, PredicateId pred, Tuple tuple);
  Status Buffer(bool insert, const Atom& fact);

  MaterializedView* view_;
  std::vector<Op> ops_;
  bool active_ = true;
};

}  // namespace datalog

#endif  // DATALOG_INCR_MATERIALIZED_VIEW_H_
