#ifndef DATALOG_INCR_SCRIPT_H_
#define DATALOG_INCR_SCRIPT_H_

#include <string_view>
#include <vector>

#include "ast/atom.h"
#include "ast/parser.h"
#include "util/result.h"

namespace datalog {

/// One operation of an update script (docs/FILE_FORMAT.md):
///
///   +fact.      buffer an insertion (several facts may share a line)
///   -fact.      buffer a retraction
///   ?query      commit pending ops, then answer the single-atom query
///   commit      apply buffered ops as one transaction
///
/// The `datalog-opt client` batch mode accepts the same grammar plus the
/// server-only verbs `ping`, `stats`, `base`, and `shutdown` (parsed only
/// when ScriptDialect::kClient is requested; `incr` rejects them with the
/// offending line number).
struct ScriptOp {
  enum class Kind {
    kInsert,    // facts
    kRetract,   // facts
    kQuery,     // query
    kCommit,
    kPing,      // client dialect only
    kStats,     // client dialect only
    kDumpBase,  // client dialect only
    kShutdown,  // client dialect only
  };

  Kind kind;
  std::vector<Atom> facts;  // kInsert / kRetract
  Atom query;               // kQuery
  int line = 0;             // 1-based source line, for error reporting
};

enum class ScriptDialect {
  kIncr,    // +/-/?/commit only
  kClient,  // also ping / stats / base / shutdown
};

/// Parses an update script into its operation list. Comment lines start
/// with '#'; a '%' starts a trailing comment (quote-aware, so constants
/// like 'a%b' survive). Malformed lines produce an InvalidArgument Status
/// naming the 1-based line number -- no line is ever silently skipped.
/// Atoms are interned into `parser`'s symbol table.
Result<std::vector<ScriptOp>> ParseUpdateScript(std::string_view text,
                                                Parser* parser,
                                                ScriptDialect dialect);

}  // namespace datalog

#endif  // DATALOG_INCR_SCRIPT_H_
