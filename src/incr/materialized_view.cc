#include "incr/materialized_view.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <unordered_set>

#include "ast/dependence_graph.h"
#include "ast/validate.h"
#include "eval/compiled_rule.h"
#include "eval/parallel.h"
#include "eval/rule_matcher.h"
#include "eval/seminaive.h"
#include "incr/delta_join.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {

namespace {

/// Unifies a ground tuple with a rule head, extending `binding`. Fails on
/// a constant mismatch or an inconsistent repeated variable.
bool BindHead(const Atom& head, const Tuple& fact, Binding* binding) {
  for (std::size_t i = 0; i < fact.size(); ++i) {
    const Term& t = head.args()[i];
    if (t.is_constant()) {
      if (t.value() != fact[i]) return false;
    } else {
      auto [it, inserted] = binding->emplace(t.var(), fact[i]);
      if (!inserted && it->second != fact[i]) return false;
    }
  }
  return true;
}

}  // namespace

void CommitStats::Add(const CommitStats& other) {
  base_inserted += other.base_inserted;
  base_retracted += other.base_retracted;
  derived_added += other.derived_added;
  derived_removed += other.derived_removed;
  overdeleted += other.overdeleted;
  rederived += other.rederived;
  rule_applications += other.rule_applications;
  sccs_touched += other.sccs_touched;
  sccs_recomputed += other.sccs_recomputed;
  match.Add(other.match);
  recompute.Add(other.recompute);
}

std::string CommitStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "base +%llu -%llu | view +%llu -%llu | overdeleted %llu, "
      "rederived %llu | %llu joins, %d sccs touched (%d recomputed)",
      static_cast<unsigned long long>(base_inserted),
      static_cast<unsigned long long>(base_retracted),
      static_cast<unsigned long long>(derived_added),
      static_cast<unsigned long long>(derived_removed),
      static_cast<unsigned long long>(overdeleted),
      static_cast<unsigned long long>(rederived),
      static_cast<unsigned long long>(TotalSubstitutions()), sccs_touched,
      sccs_recomputed);
  return buf;
}

MaterializedView::MaterializedView(Program program, Database edb,
                                   IncrOptions options)
    : program_(std::move(program)),
      symbols_(program_.symbols()),
      base_(std::move(edb)),
      program_facts_(symbols_),
      db_(symbols_),
      delta_plus_(symbols_),
      delta_minus_(symbols_) {
  std::size_t threads = options.num_threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : options.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
}

Result<MaterializedView> MaterializedView::Create(Program program,
                                                  Database edb,
                                                  IncrOptions options) {
  if (program.symbols() != edb.symbols()) {
    return Status::InvalidArgument(
        "program and database must share a symbol table");
  }
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  MaterializedView view(std::move(program), std::move(edb), options);
  DATALOG_RETURN_IF_ERROR(view.Initialize());
  return view;
}

Status MaterializedView::Initialize() {
  DependenceGraph graph(program_);
  // Only the stratifiability check is needed here; updates run SCC by
  // SCC, which refines any stratification.
  DATALOG_RETURN_IF_ERROR(graph.Stratify().status());

  // Group rules by the SCC of their head predicate, in topological order
  // (Tarjan numbers successors lower, so dependencies first means
  // descending index -- see EvaluateSemiNaiveScc).
  std::map<int, SccPlan, std::greater<int>> groups;
  for (const Rule& rule : program_.rules()) {
    groups[graph.SccIndex(rule.head().predicate())].rules.push_back(rule);
  }
  for (auto& [scc, plan] : groups) {
    std::set<PredicateId> preds;
    bool negated = false;
    bool recursive = false;
    for (const Rule& rule : plan.rules) {
      preds.insert(rule.head().predicate());
      for (const Literal& lit : rule.body()) negated |= lit.negated;
      recursive = recursive || graph.IsRuleRecursive(rule);
      if (rule.IsFact()) {
        Tuple t;
        for (const Term& term : rule.head().args()) t.push_back(term.value());
        program_facts_.AddFact(rule.head().predicate(), std::move(t));
      }
    }
    plan.preds.assign(preds.begin(), preds.end());
    plan.kind = negated      ? SccKind::kRecompute
                : recursive  ? SccKind::kDRed
                             : SccKind::kCounting;
    plans_.push_back(std::move(plan));
  }

  // Initial materialization, SCC by SCC (negated predicates are always in
  // strictly earlier SCCs, so each fixpoint sees them completed).
  db_.UnionWith(base_);
  for (const SccPlan& plan : plans_) {
    EvalStats stats =
        pool_ != nullptr
            ? RunSemiNaiveFixpointParallel(plan.rules, &db_, pool_.get())
            : RunSemiNaiveFixpoint(plan.rules, &db_);
    stats.per_rule.clear();  // plan-local indexing; meaningless here
    initial_stats_.Add(stats);
    if (plan.kind == SccKind::kCounting) InitializeCounts(plan);
  }
  return Status::OK();
}

void MaterializedView::InitializeCounts(const SccPlan& plan) {
  PredicateId p = plan.preds.front();
  FactCounts& counts = counts_[p];
  for (const Tuple& t : base_.relation(p).rows()) ++counts[t];
  for (const Tuple& t : program_facts_.relation(p).rows()) ++counts[t];
  for (const Rule& rule : plan.rules) {
    if (rule.IsFact()) continue;
    std::vector<Atom> atoms = rule.PositiveBodyAtoms();
    std::vector<AtomSourceSpec> specs(atoms.size(),
                                      AtomSourceSpec{&db_, nullptr, nullptr});
    EnumerateDeltaJoin(
        atoms, specs, {},
        [&](const Binding& b) {
          ++counts[InstantiateHead(rule.head(), b)];
          return true;
        },
        &initial_stats_.match);
  }
}

bool MaterializedView::IsPinned(PredicateId pred, const Tuple& fact) const {
  return base_.Contains(pred, fact) || program_facts_.Contains(pred, fact);
}

bool MaterializedView::InScc(const SccPlan& plan, PredicateId pred) const {
  return std::find(plan.preds.begin(), plan.preds.end(), pred) !=
         plan.preds.end();
}

void MaterializedView::RecordAdd(PredicateId pred, const Tuple& fact) {
  if (delta_minus_.Contains(pred, fact)) {
    delta_minus_.EraseFacts(pred, {fact});
  } else {
    delta_plus_.AddFact(pred, fact);
  }
}

void MaterializedView::RecordRemove(PredicateId pred, const Tuple& fact) {
  if (delta_plus_.Contains(pred, fact)) {
    delta_plus_.EraseFacts(pred, {fact});
  } else {
    delta_minus_.AddFact(pred, fact);
  }
}

bool MaterializedView::PlanTouched(const SccPlan& plan,
                                   const Database& base_plus,
                                   const Database& base_minus) const {
  for (PredicateId pred : plan.preds) {
    if (!base_plus.relation(pred).empty()) return true;
    if (!base_minus.relation(pred).empty()) return true;
  }
  for (const Rule& rule : plan.rules) {
    for (const Literal& lit : rule.body()) {
      PredicateId pred = lit.atom.predicate();
      if (!delta_plus_.relation(pred).empty()) return true;
      if (!delta_minus_.relation(pred).empty()) return true;
    }
  }
  return false;
}

void MaterializedView::UpdateExtensional(const Database& base_plus,
                                         const Database& base_minus,
                                         CommitStats* stats) {
  (void)stats;
  for (PredicateId pred : base_minus.NonEmptyPredicates()) {
    if (program_.IsIntentional(pred)) continue;
    std::vector<Tuple> removed;
    for (const Tuple& t : base_minus.relation(pred).rows()) {
      if (db_.Contains(pred, t) && !program_facts_.Contains(pred, t)) {
        removed.push_back(t);
        RecordRemove(pred, t);
      }
    }
    db_.EraseFacts(pred, removed);
  }
  for (PredicateId pred : base_plus.NonEmptyPredicates()) {
    if (program_.IsIntentional(pred)) continue;
    for (const Tuple& t : base_plus.relation(pred).rows()) {
      if (db_.AddFact(pred, t)) RecordAdd(pred, t);
    }
  }
}

void MaterializedView::UpdateCounting(const SccPlan& plan,
                                      const Database& base_plus,
                                      const Database& base_minus,
                                      CommitStats* stats) {
  PredicateId p = plan.preds.front();
  FactCounts& counts = counts_[p];
  FactCounts delta_counts;

  // Derivation-count changes from the body predicates (all of which lie
  // in earlier SCCs and are already at their new state in the view).
  // Deletion passes count derivations lost, enumerated in the old state
  // (position q from Δ−, earlier positions from old \ Δ− = view \ Δ+,
  // later positions from old = (view \ Δ+) ∪ Δ−); insertion passes count
  // derivations gained, enumerated in the new state. Each changed
  // derivation is counted exactly once, at its first delta position.
  auto run_passes = [&](const Database& delta, bool deletion) {
    for (const Rule& rule : plan.rules) {
      if (rule.IsFact()) continue;
      std::vector<Atom> atoms = rule.PositiveBodyAtoms();
      for (std::size_t q = 0; q < atoms.size(); ++q) {
        if (delta.relation(atoms[q].predicate()).empty()) continue;
        ++stats->rule_applications;
        std::vector<AtomSourceSpec> specs(atoms.size());
        for (std::size_t j = 0; j < atoms.size(); ++j) {
          if (j == q) {
            specs[j] = {&delta, nullptr, nullptr};
          } else if (j < q) {
            specs[j] = {&db_, &delta_plus_, nullptr};
          } else if (deletion) {
            specs[j] = {&db_, &delta_plus_, &delta_minus_};
          } else {
            specs[j] = {&db_, nullptr, nullptr};
          }
        }
        const std::int64_t sign = deletion ? -1 : +1;
        EnumerateDeltaJoin(
            atoms, specs, {},
            [&](const Binding& b) {
              delta_counts[InstantiateHead(rule.head(), b)] += sign;
              return true;
            },
            &stats->match);
      }
    }
  };
  run_passes(delta_minus_, /*deletion=*/true);
  run_passes(delta_plus_, /*deletion=*/false);

  // Base-fact support.
  for (const Tuple& t : base_minus.relation(p).rows()) delta_counts[t] -= 1;
  for (const Tuple& t : base_plus.relation(p).rows()) delta_counts[t] += 1;

  std::vector<Tuple> removed;
  for (auto& [tuple, change] : delta_counts) {
    if (change == 0) continue;
    auto it = counts.find(tuple);
    std::int64_t old_count = it == counts.end() ? 0 : it->second;
    // A negative result would indicate a maintenance bug; clamp at zero
    // so the view degrades to missing counts rather than corruption.
    std::int64_t new_count = std::max<std::int64_t>(0, old_count + change);
    if (new_count == 0) {
      if (it != counts.end()) counts.erase(it);
    } else if (it == counts.end()) {
      counts.emplace(tuple, new_count);
    } else {
      it->second = new_count;
    }
    if (old_count > 0 && new_count == 0) {
      removed.push_back(tuple);
      RecordRemove(p, tuple);
    } else if (old_count == 0 && new_count > 0) {
      db_.AddFact(p, tuple);
      RecordAdd(p, tuple);
    }
  }
  db_.EraseFacts(p, removed);
}

bool MaterializedView::CanRederive(const SccPlan& plan, PredicateId pred,
                                   const Tuple& fact, const Database& over,
                                   const Database& rederived,
                                   MatchStats* stats,
                                   bool fixed_order) const {
  for (const Rule& rule : plan.rules) {
    if (rule.IsFact() || rule.head().predicate() != pred) continue;
    Binding binding;
    if (!BindHead(rule.head(), fact, &binding)) continue;
    std::vector<Atom> atoms = rule.PositiveBodyAtoms();
    std::vector<AtomSourceSpec> specs(atoms.size());
    for (std::size_t j = 0; j < atoms.size(); ++j) {
      // Same-SCC positions see the survivors (view minus overdeleted
      // plus already-rederived); lower positions are final already.
      specs[j] = InScc(plan, atoms[j].predicate())
                     ? AtomSourceSpec{&db_, &over, &rederived}
                     : AtomSourceSpec{&db_, nullptr, nullptr};
    }
    bool found = false;
    EnumerateDeltaJoin(
        atoms, specs, binding,
        [&found](const Binding&) {
          found = true;
          return false;  // one derivation suffices
        },
        stats, fixed_order);
    if (found) return true;
  }
  return false;
}

void MaterializedView::UpdateDRed(const SccPlan& plan,
                                  const Database& base_plus,
                                  const Database& base_minus,
                                  CommitStats* stats) {
  // --- Overdeletion: every fact of this SCC some derivation of which
  // used a deleted fact, found by semi-naive delta rounds over the OLD
  // state. The view still holds the old state for this SCC; for lower
  // predicates the old state is (view \ Δ+) ∪ Δ−.
  Database over(symbols_);
  Database round(symbols_);
  round.UnionWith(delta_minus_);
  for (PredicateId pred : plan.preds) {
    for (const Tuple& t : base_minus.relation(pred).rows()) {
      if (db_.Contains(pred, t) && !IsPinned(pred, t) &&
          over.AddFact(pred, t)) {
        round.AddFact(pred, t);
      }
    }
  }
  while (!round.empty()) {
    Database next(symbols_);
    for (const Rule& rule : plan.rules) {
      if (rule.IsFact()) continue;
      std::vector<Atom> atoms = rule.PositiveBodyAtoms();
      PredicateId head_pred = rule.head().predicate();
      for (std::size_t q = 0; q < atoms.size(); ++q) {
        if (round.relation(atoms[q].predicate()).empty()) continue;
        ++stats->rule_applications;
        std::vector<AtomSourceSpec> specs(atoms.size());
        for (std::size_t j = 0; j < atoms.size(); ++j) {
          if (j == q) {
            specs[j] = {&round, nullptr, nullptr};
          } else if (InScc(plan, atoms[j].predicate())) {
            specs[j] = {&db_, nullptr, nullptr};
          } else {
            specs[j] = {&db_, &delta_plus_, &delta_minus_};
          }
        }
        EnumerateDeltaJoin(
            atoms, specs, {},
            [&](const Binding& b) {
              Tuple t = InstantiateHead(rule.head(), b);
              if (db_.Contains(head_pred, t) &&
                  !over.Contains(head_pred, t) && !IsPinned(head_pred, t)) {
                over.AddFact(head_pred, t);
                next.AddFact(head_pred, t);
              }
              return true;
            },
            &stats->match);
      }
    }
    round = std::move(next);
  }
  stats->overdeleted += over.NumFacts();

  // --- Rederivation: an overdeleted fact survives if some rule still
  // derives it from surviving facts. Sweeps run until a fixpoint; with a
  // worker pool each sweep checks its candidates concurrently against a
  // frozen snapshot (indexes pre-built, rederived set copied), mirroring
  // the parallel evaluator's round structure.
  Database rederived(symbols_);
  bool progress = true;
  while (progress && rederived.NumFacts() < over.NumFacts()) {
    progress = false;
    std::vector<std::pair<PredicateId, Tuple>> candidates;
    for (PredicateId pred : over.NonEmptyPredicates()) {
      for (const Tuple& t : over.relation(pred).rows()) {
        if (!rederived.Contains(pred, t)) candidates.emplace_back(pred, t);
      }
    }
    if (candidates.empty()) break;
    if (pool_ != nullptr && candidates.size() > 1) {
      Database frozen(symbols_);
      frozen.UnionWith(rederived);
      // Pre-build every index a fixed-order enumeration can probe so the
      // concurrent checks are pure reads on the shared relations.
      for (const Rule& rule : plan.rules) {
        if (rule.IsFact()) continue;
        std::vector<Atom> atoms = rule.PositiveBodyAtoms();
        std::vector<VariableId> head_vars;
        rule.head().AppendVariables(&head_vars);
        for (const auto& [i, cols] : PlannedIndexColumns(atoms, head_vars)) {
          if (cols.empty() ||
              static_cast<int>(cols.size()) == atoms[i].arity()) {
            continue;  // full scan or pure membership test: no index
          }
          const Relation& full_rel = db_.relation(atoms[i].predicate());
          if (!full_rel.empty()) full_rel.EnsureIndex(cols);
          const Relation& frozen_rel = frozen.relation(atoms[i].predicate());
          if (!frozen_rel.empty()) frozen_rel.EnsureIndex(cols);
        }
      }
      std::vector<char> ok(candidates.size(), 0);
      std::vector<MatchStats> task_stats(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        pool_->Submit([this, &plan, &candidates, &over, &frozen, &ok,
                       &task_stats, i] {
          ok[i] = CanRederive(plan, candidates[i].first, candidates[i].second,
                              over, frozen, &task_stats[i],
                              /*fixed_order=*/true)
                      ? 1
                      : 0;
        });
      }
      pool_->Wait();
      for (const MatchStats& s : task_stats) stats->match.Add(s);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (ok[i] != 0) {
          rederived.AddFact(candidates[i].first, candidates[i].second);
          progress = true;
        }
      }
    } else {
      for (const auto& [pred, tuple] : candidates) {
        if (CanRederive(plan, pred, tuple, over, rederived, &stats->match,
                        /*fixed_order=*/false)) {
          rederived.AddFact(pred, tuple);
          progress = true;
        }
      }
    }
  }
  stats->rederived += rederived.NumFacts();

  // --- Apply the net deletions.
  for (PredicateId pred : over.NonEmptyPredicates()) {
    std::vector<Tuple> removed;
    for (const Tuple& t : over.relation(pred).rows()) {
      if (!rederived.Contains(pred, t)) {
        removed.push_back(t);
        RecordRemove(pred, t);
      }
    }
    db_.EraseFacts(pred, removed);
  }

  // --- Insertions: continue the semi-naive fixpoint from the new state,
  // seeded with the lower predicates' Δ+ and this SCC's new base facts.
  // This is the existing delta machinery (ApplyRuleWithDelta +
  // watermarks) driven by an external delta.
  Database cur(symbols_);
  cur.UnionWith(delta_plus_);
  for (PredicateId pred : plan.preds) {
    for (const Tuple& t : base_plus.relation(pred).rows()) {
      if (db_.AddFact(pred, t)) {
        RecordAdd(pred, t);
        cur.AddFact(pred, t);
      }
    }
  }
  CompiledRuleCache insert_cache;  // plans persist across delta rounds
  while (!cur.empty()) {
    bool delta_used = false;
    Watermarks marks = TakeWatermarks(db_);
    for (std::size_t ri = 0; ri < plan.rules.size(); ++ri) {
      const Rule& rule = plan.rules[ri];
      if (rule.IsFact()) continue;
      for (std::size_t q = 0; q < rule.body().size(); ++q) {
        if (cur.relation(rule.body()[q].atom.predicate()).empty()) continue;
        ++stats->recompute.rule_applications;
        delta_used = true;
        MatchStats local;
        std::size_t added = ApplyRuleWithDelta(rule, db_, cur, q, &db_,
                                               &local, nullptr, &insert_cache,
                                               ri);
        stats->recompute.match.Add(local);
        stats->recompute.facts_derived += added;
      }
    }
    if (!delta_used) break;  // delta only touches predicates no rule reads
    ++stats->recompute.iterations;
    Database fresh = CollectNewFacts(db_, marks);
    for (PredicateId pred : fresh.NonEmptyPredicates()) {
      for (const Tuple& t : fresh.relation(pred).rows()) RecordAdd(pred, t);
    }
    cur = std::move(fresh);
  }
}

void MaterializedView::UpdateRecompute(const SccPlan& plan,
                                       CommitStats* stats) {
  ++stats->sccs_recomputed;
  // Negation makes deletion propagation non-monotonic (an insertion below
  // can delete here and vice versa), so recompute just this SCC from its
  // final inputs: every body predicate outside the SCC -- positive or
  // negated -- lies in an earlier SCC and is already at its new state.
  std::map<PredicateId, std::vector<Tuple>> old_rows;
  for (PredicateId pred : plan.preds) {
    old_rows[pred] = db_.relation(pred).rows();
    db_.ClearRelation(pred);
    for (const Tuple& t : base_.relation(pred).rows()) db_.AddFact(pred, t);
  }
  EvalStats run =
      pool_ != nullptr
          ? RunSemiNaiveFixpointParallel(plan.rules, &db_, pool_.get())
          : RunSemiNaiveFixpoint(plan.rules, &db_);
  run.per_rule.clear();
  stats->recompute.Add(run);
  for (auto& [pred, rows] : old_rows) {
    std::unordered_set<Tuple, TupleHash> old_set(rows.begin(), rows.end());
    for (const Tuple& t : rows) {
      if (!db_.Contains(pred, t)) RecordRemove(pred, t);
    }
    for (const Tuple& t : db_.relation(pred).rows()) {
      if (!old_set.contains(t)) RecordAdd(pred, t);
    }
  }
}

Result<CommitStats> MaterializedView::Apply(
    const std::vector<std::pair<PredicateId, Tuple>>& inserts,
    const std::vector<std::pair<PredicateId, Tuple>>& retracts) {
  TraceSpan span("incr/commit");
  CommitStats stats;
  // Net the batch against the current base: retracting an absent fact or
  // inserting a present one is a no-op.
  Database base_plus(symbols_);
  Database base_minus(symbols_);
  for (const auto& [pred, tuple] : retracts) {
    if (base_.Contains(pred, tuple)) base_minus.AddFact(pred, tuple);
  }
  for (const auto& [pred, tuple] : inserts) {
    if (!base_.Contains(pred, tuple)) base_plus.AddFact(pred, tuple);
  }
  stats.base_inserted = base_plus.NumFacts();
  stats.base_retracted = base_minus.NumFacts();
  if (base_plus.empty() && base_minus.empty()) {
    RecordCommitStats("incr", stats);
    return stats;
  }

  for (PredicateId pred : base_minus.NonEmptyPredicates()) {
    base_.EraseFacts(pred, base_minus.relation(pred).rows());
  }
  base_.UnionWith(base_plus);

  delta_plus_ = Database(symbols_);
  delta_minus_ = Database(symbols_);

  // Purely extensional predicates change exactly as the base does; their
  // deltas then drive the SCC plans in dependency order.
  UpdateExtensional(base_plus, base_minus, &stats);
  for (std::size_t pi = 0; pi < plans_.size(); ++pi) {
    const SccPlan& plan = plans_[pi];
    if (!PlanTouched(plan, base_plus, base_minus)) continue;
    ++stats.sccs_touched;
    switch (plan.kind) {
      case SccKind::kCounting: {
        TraceSpan scc_span("incr/counting");
        scc_span.Note("scc", pi);
        UpdateCounting(plan, base_plus, base_minus, &stats);
        break;
      }
      case SccKind::kDRed: {
        TraceSpan scc_span("incr/dred");
        scc_span.Note("scc", pi);
        UpdateDRed(plan, base_plus, base_minus, &stats);
        break;
      }
      case SccKind::kRecompute: {
        TraceSpan scc_span("incr/recompute");
        scc_span.Note("scc", pi);
        UpdateRecompute(plan, &stats);
        break;
      }
    }
  }
  stats.derived_added = delta_plus_.NumFacts();
  stats.derived_removed = delta_minus_.NumFacts();
  if (span.active()) {
    span.Note("base_inserted", stats.base_inserted);
    span.Note("base_retracted", stats.base_retracted);
    span.Note("derived_added", stats.derived_added);
    span.Note("derived_removed", stats.derived_removed);
    span.Note("overdeleted", stats.overdeleted);
    span.Note("rederived", stats.rederived);
    span.Note("sccs_touched", static_cast<std::uint64_t>(stats.sccs_touched));
  }
  RecordCommitStats("incr", stats);
  return stats;
}

Transaction MaterializedView::Begin() { return Transaction(this); }

Status Transaction::Buffer(bool insert, PredicateId pred, Tuple tuple) {
  if (!active_) {
    return Status::InvalidArgument("transaction is no longer active");
  }
  int arity = view_->symbols()->PredicateArity(pred);
  if (arity != static_cast<int>(tuple.size())) {
    return Status::InvalidArgument("arity mismatch for predicate " +
                                   view_->symbols()->PredicateName(pred));
  }
  ops_.push_back(Op{insert, pred, std::move(tuple)});
  return Status::OK();
}

Status Transaction::Buffer(bool insert, const Atom& fact) {
  if (!fact.IsGround()) {
    return Status::InvalidArgument("only ground atoms can be asserted");
  }
  Tuple tuple;
  tuple.reserve(fact.args().size());
  for (const Term& t : fact.args()) tuple.push_back(t.value());
  return Buffer(insert, fact.predicate(), std::move(tuple));
}

Status Transaction::Insert(PredicateId pred, Tuple tuple) {
  return Buffer(true, pred, std::move(tuple));
}
Status Transaction::Insert(const Atom& fact) { return Buffer(true, fact); }
Status Transaction::Retract(PredicateId pred, Tuple tuple) {
  return Buffer(false, pred, std::move(tuple));
}
Status Transaction::Retract(const Atom& fact) { return Buffer(false, fact); }

Result<CommitStats> Transaction::Commit() {
  if (!active_) {
    return Status::InvalidArgument("transaction is no longer active");
  }
  active_ = false;
  // Net the ops: the last operation on a fact wins.
  std::map<PredicateId, std::unordered_map<Tuple, bool, TupleHash>> net;
  for (Op& op : ops_) {
    net[op.pred][std::move(op.tuple)] = op.insert;
  }
  ops_.clear();
  std::vector<std::pair<PredicateId, Tuple>> inserts;
  std::vector<std::pair<PredicateId, Tuple>> retracts;
  for (auto& [pred, facts] : net) {
    for (auto& [tuple, is_insert] : facts) {
      (is_insert ? inserts : retracts).emplace_back(pred, tuple);
    }
  }
  return view_->Apply(inserts, retracts);
}

void Transaction::Abort() {
  ops_.clear();
  active_ = false;
}

}  // namespace datalog
