#include "incr/delta_join.h"

#include <algorithm>
#include <set>

namespace datalog {
namespace {

/// Backtracking join over source-annotated atoms, structured like the
/// semi-naive Matcher in eval/rule_matcher.cc but with the three-part
/// (primary \ subtraction) ∪ addition sources the incremental passes
/// need.
class DeltaMatcher {
 public:
  DeltaMatcher(const std::vector<Atom>& atoms,
               const std::vector<AtomSourceSpec>& specs,
               const Binding& initial,
               const std::function<bool(const Binding&)>& callback,
               MatchStats* stats, bool fixed_order)
      : atoms_(atoms),
        specs_(specs),
        callback_(callback),
        stats_(stats),
        binding_(initial) {
    order_.resize(atoms.size());
    for (std::size_t i = 0; i < atoms.size(); ++i) order_[i] = i;
    if (!fixed_order) GreedyOrder();
  }

  void Run() {
    if (atoms_.empty()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      callback_(binding_);
      return;
    }
    Enumerate(0);
  }

 private:
  /// Most-bound-columns first; smaller primary relation breaks ties.
  /// Recomputed statically from the initial binding (greedy on the
  /// variables bound so far), mirroring PlanJoinOrder's heuristic.
  void GreedyOrder() {
    std::set<VariableId> bound;
    for (const auto& [var, value] : binding_) bound.insert(var);
    std::vector<std::size_t> remaining = order_;
    order_.clear();
    while (!remaining.empty()) {
      std::size_t best_pos = 0;
      int best_bound = -1;
      std::size_t best_size = 0;
      for (std::size_t r = 0; r < remaining.size(); ++r) {
        const Atom& atom = atoms_[remaining[r]];
        int n_bound = 0;
        for (const Term& t : atom.args()) {
          if (t.is_constant() || bound.contains(t.var())) ++n_bound;
        }
        std::size_t size =
            specs_[remaining[r]].primary->relation(atom.predicate()).size();
        if (n_bound > best_bound ||
            (n_bound == best_bound && size < best_size)) {
          best_pos = r;
          best_bound = n_bound;
          best_size = size;
        }
      }
      std::size_t chosen = remaining[best_pos];
      order_.push_back(chosen);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
      for (const Term& t : atoms_[chosen].args()) {
        if (t.is_variable()) bound.insert(t.var());
      }
    }
  }

  bool Enumerate(std::size_t depth) {
    if (depth == order_.size()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      return callback_(binding_);
    }
    const Atom& atom = atoms_[order_[depth]];
    const AtomSourceSpec& spec = specs_[order_[depth]];

    std::vector<int> bound_cols;
    Tuple key;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        key.push_back(t.value());
      } else if (auto it = binding_.find(t.var()); it != binding_.end()) {
        bound_cols.push_back(i);
        key.push_back(it->second);
      }
    }

    auto try_row = [&](const Tuple& row, bool check_subtraction) {
      if (stats_ != nullptr) ++stats_->tuples_scanned;
      if (check_subtraction && spec.subtraction != nullptr &&
          spec.subtraction->Contains(atom.predicate(), row)) {
        return true;  // excluded; keep enumerating
      }
      std::vector<VariableId> newly_bound;
      bool ok = true;
      for (int i = 0; i < atom.arity() && ok; ++i) {
        const Term& t = atom.args()[static_cast<std::size_t>(i)];
        const Value& v = row[static_cast<std::size_t>(i)];
        if (t.is_constant()) {
          ok = t.value() == v;
        } else if (auto it = binding_.find(t.var()); it != binding_.end()) {
          ok = it->second == v;
        } else {
          binding_.emplace(t.var(), v);
          newly_bound.push_back(t.var());
        }
      }
      bool keep_going = true;
      if (ok) keep_going = Enumerate(depth + 1);
      for (VariableId v : newly_bound) binding_.erase(v);
      return keep_going;
    };

    auto scan_source = [&](const Database& db, bool check_subtraction) {
      const Relation& rel = db.relation(atom.predicate());
      if (rel.empty() || rel.arity() != atom.arity()) return true;
      if (bound_cols.empty()) {
        if (stats_ != nullptr) ++stats_->index_lookups;
        for (const Tuple& row : rel.rows()) {
          if (!try_row(row, check_subtraction)) return false;
        }
        return true;
      }
      if (stats_ != nullptr) ++stats_->index_lookups;
      if (static_cast<int>(bound_cols.size()) == atom.arity()) {
        if (rel.Contains(key) && !try_row(key, check_subtraction)) {
          return false;
        }
        return true;
      }
      for (std::uint32_t row_id : rel.Lookup(bound_cols, key)) {
        if (!try_row(rel.row(row_id), check_subtraction)) return false;
      }
      return true;
    };

    if (!scan_source(*spec.primary, /*check_subtraction=*/true)) return false;
    if (spec.addition != nullptr &&
        !scan_source(*spec.addition, /*check_subtraction=*/false)) {
      return false;
    }
    return true;
  }

  const std::vector<Atom>& atoms_;
  const std::vector<AtomSourceSpec>& specs_;
  const std::function<bool(const Binding&)>& callback_;
  MatchStats* stats_;
  Binding binding_;
  std::vector<std::size_t> order_;
};

}  // namespace

void EnumerateDeltaJoin(const std::vector<Atom>& atoms,
                        const std::vector<AtomSourceSpec>& specs,
                        const Binding& initial,
                        const std::function<bool(const Binding&)>& callback,
                        MatchStats* stats, bool fixed_order) {
  DeltaMatcher(atoms, specs, initial, callback, stats, fixed_order).Run();
}

std::vector<std::pair<std::size_t, std::vector<int>>> PlannedIndexColumns(
    const std::vector<Atom>& atoms,
    const std::vector<VariableId>& bound_vars) {
  std::set<VariableId> bound(bound_vars.begin(), bound_vars.end());
  std::vector<std::pair<std::size_t, std::vector<int>>> plan;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    std::vector<int> cols;
    for (int c = 0; c < atoms[i].arity(); ++c) {
      const Term& t = atoms[i].args()[static_cast<std::size_t>(c)];
      if (t.is_constant() || bound.contains(t.var())) cols.push_back(c);
    }
    plan.emplace_back(i, std::move(cols));
    for (const Term& t : atoms[i].args()) {
      if (t.is_variable()) bound.insert(t.var());
    }
  }
  return plan;
}

}  // namespace datalog
