#include "incr/delta_join.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "eval/hypergraph.h"

namespace datalog {
namespace {

/// Backtracking join over source-annotated atoms, structured like the
/// semi-naive Matcher in eval/rule_matcher.cc but with the three-part
/// (primary \ subtraction) ∪ addition sources the incremental passes
/// need. Probes go through Relation::Lookup/Contains, which route to
/// the id-keyed indexes on the columnar backend -- the delta joins are
/// storage-agnostic and work identically over either backend (the
/// differential commit-script fuzzer pins this down).
class DeltaMatcher {
 public:
  DeltaMatcher(const std::vector<Atom>& atoms,
               const std::vector<AtomSourceSpec>& specs,
               const Binding& initial,
               const std::function<bool(const Binding&)>& callback,
               MatchStats* stats, bool fixed_order)
      : atoms_(atoms),
        specs_(specs),
        callback_(callback),
        stats_(stats),
        binding_(initial) {
    order_.resize(atoms.size());
    for (std::size_t i = 0; i < atoms.size(); ++i) order_[i] = i;
    if (!fixed_order) GreedyOrder();
  }

  void Run() {
    if (atoms_.empty()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      callback_(binding_);
      return;
    }
    Enumerate(0);
  }

 private:
  /// Most-bound-columns first; smaller primary relation breaks ties.
  /// Recomputed statically from the initial binding (greedy on the
  /// variables bound so far), mirroring PlanJoinOrder's heuristic.
  void GreedyOrder() {
    std::set<VariableId> bound;
    for (const auto& [var, value] : binding_) bound.insert(var);
    std::vector<std::size_t> remaining = order_;
    order_.clear();
    while (!remaining.empty()) {
      std::size_t best_pos = 0;
      int best_bound = -1;
      std::size_t best_size = 0;
      for (std::size_t r = 0; r < remaining.size(); ++r) {
        const Atom& atom = atoms_[remaining[r]];
        int n_bound = 0;
        for (const Term& t : atom.args()) {
          if (t.is_constant() || bound.contains(t.var())) ++n_bound;
        }
        std::size_t size =
            specs_[remaining[r]].primary->relation(atom.predicate()).size();
        if (n_bound > best_bound ||
            (n_bound == best_bound && size < best_size)) {
          best_pos = r;
          best_bound = n_bound;
          best_size = size;
        }
      }
      std::size_t chosen = remaining[best_pos];
      order_.push_back(chosen);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
      for (const Term& t : atoms_[chosen].args()) {
        if (t.is_variable()) bound.insert(t.var());
      }
    }
  }

  bool Enumerate(std::size_t depth) {
    if (depth == order_.size()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      return callback_(binding_);
    }
    const Atom& atom = atoms_[order_[depth]];
    const AtomSourceSpec& spec = specs_[order_[depth]];

    std::vector<int> bound_cols;
    Tuple key;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        key.push_back(t.value());
      } else if (auto it = binding_.find(t.var()); it != binding_.end()) {
        bound_cols.push_back(i);
        key.push_back(it->second);
      }
    }

    auto try_row = [&](const Tuple& row, bool check_subtraction) {
      if (stats_ != nullptr) ++stats_->tuples_scanned;
      if (check_subtraction && spec.subtraction != nullptr &&
          spec.subtraction->Contains(atom.predicate(), row)) {
        return true;  // excluded; keep enumerating
      }
      std::vector<VariableId> newly_bound;
      bool ok = true;
      for (int i = 0; i < atom.arity() && ok; ++i) {
        const Term& t = atom.args()[static_cast<std::size_t>(i)];
        const Value& v = row[static_cast<std::size_t>(i)];
        if (t.is_constant()) {
          ok = t.value() == v;
        } else if (auto it = binding_.find(t.var()); it != binding_.end()) {
          ok = it->second == v;
        } else {
          binding_.emplace(t.var(), v);
          newly_bound.push_back(t.var());
        }
      }
      bool keep_going = true;
      if (ok) keep_going = Enumerate(depth + 1);
      for (VariableId v : newly_bound) binding_.erase(v);
      return keep_going;
    };

    auto scan_source = [&](const Database& db, bool check_subtraction) {
      const Relation& rel = db.relation(atom.predicate());
      if (rel.empty() || rel.arity() != atom.arity()) return true;
      if (bound_cols.empty()) {
        if (stats_ != nullptr) ++stats_->index_lookups;
        for (const Tuple& row : rel.rows()) {
          if (!try_row(row, check_subtraction)) return false;
        }
        return true;
      }
      if (stats_ != nullptr) ++stats_->index_lookups;
      if (static_cast<int>(bound_cols.size()) == atom.arity()) {
        if (rel.Contains(key) && !try_row(key, check_subtraction)) {
          return false;
        }
        return true;
      }
      for (std::uint32_t row_id : rel.Lookup(bound_cols, key)) {
        if (!try_row(rel.row(row_id), check_subtraction)) return false;
      }
      return true;
    };

    if (!scan_source(*spec.primary, /*check_subtraction=*/true)) return false;
    if (spec.addition != nullptr &&
        !scan_source(*spec.addition, /*check_subtraction=*/false)) {
      return false;
    }
    return true;
  }

  const std::vector<Atom>& atoms_;
  const std::vector<AtomSourceSpec>& specs_;
  const std::function<bool(const Binding&)>& callback_;
  MatchStats* stats_;
  Binding binding_;
  std::vector<std::size_t> order_;
};

/// Slot-addressed variant of DeltaMatcher (the incremental leg of the
/// compiled-rule-plan work, see eval/compiled_rule.h): argument positions
/// are classified once into key / write / check schedules against a flat
/// Value frame, and every depth reuses one key buffer, so the inner loop
/// performs no per-row binding churn and no per-probe allocation. Counter
/// semantics mirror DeltaMatcher row for row; the enumeration order is
/// identical (same greedy heuristic, same source sequence), so results
/// AND MatchStats agree with the legacy path.
class CompiledDeltaMatcher {
 public:
  CompiledDeltaMatcher(const std::vector<Atom>& atoms,
                       const std::vector<AtomSourceSpec>& specs,
                       const Binding& initial,
                       const std::function<bool(const Binding&)>& callback,
                       MatchStats* stats, bool fixed_order)
      : specs_(specs), callback_(callback), stats_(stats), binding_(initial) {
    std::vector<std::size_t> order(atoms.size());
    for (std::size_t i = 0; i < atoms.size(); ++i) order[i] = i;
    if (!fixed_order) order = GreedyOrder(atoms, specs, initial);

    std::unordered_map<VariableId, int> slot_of;
    auto slot_for = [&](VariableId v) {
      auto [it, inserted] =
          slot_of.emplace(v, static_cast<int>(slots_.size()));
      if (inserted) slots_.push_back(Value());
      return it->second;
    };
    std::set<VariableId> bound_before;
    for (const auto& [var, value] : initial) {
      slots_[static_cast<std::size_t>(slot_for(var))] = value;
      bound_before.insert(var);
    }

    steps_.reserve(order.size());
    for (std::size_t idx : order) {
      const Atom& atom = atoms[idx];
      Step step;
      step.predicate = atom.predicate();
      step.arity = atom.arity();
      step.spec = idx;
      std::set<VariableId> written_here;
      for (int i = 0; i < atom.arity(); ++i) {
        const Term& t = atom.args()[static_cast<std::size_t>(i)];
        if (t.is_constant()) {
          step.key_cols.push_back(i);
          step.key.push_back(t.value());
        } else if (bound_before.contains(t.var())) {
          step.key_cols.push_back(i);
          step.key.push_back(Value());
          step.key_fill.push_back(
              {static_cast<int>(step.key.size()) - 1, slot_for(t.var())});
        } else if (written_here.insert(t.var()).second) {
          step.writes.push_back({i, slot_for(t.var())});
          var_slots_.emplace_back(t.var(), step.writes.back().slot);
        } else {
          step.checks.push_back({i, slot_for(t.var())});
        }
      }
      for (const Term& t : atom.args()) {
        if (t.is_variable()) bound_before.insert(t.var());
      }
      steps_.push_back(std::move(step));
    }
  }

  void Run() {
    if (steps_.empty()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      callback_(binding_);
      return;
    }
    Enumerate(0);
  }

 private:
  struct SlotRef {
    int col;
    int slot;
  };
  struct KeyFill {
    int key_index;
    int slot;
  };
  struct Step {
    PredicateId predicate = 0;
    int arity = 0;
    std::size_t spec = 0;
    std::vector<int> key_cols;
    Tuple key;  // constants pre-filled; bound positions patched per visit
    std::vector<KeyFill> key_fill;
    std::vector<SlotRef> writes;
    std::vector<SlotRef> checks;
  };

  /// Same heuristic and tie-breaks as DeltaMatcher::GreedyOrder.
  static std::vector<std::size_t> GreedyOrder(
      const std::vector<Atom>& atoms, const std::vector<AtomSourceSpec>& specs,
      const Binding& initial) {
    std::set<VariableId> bound;
    for (const auto& [var, value] : initial) bound.insert(var);
    std::vector<std::size_t> remaining(atoms.size());
    for (std::size_t i = 0; i < atoms.size(); ++i) remaining[i] = i;
    std::vector<std::size_t> order;
    while (!remaining.empty()) {
      std::size_t best_pos = 0;
      int best_bound = -1;
      std::size_t best_size = 0;
      for (std::size_t r = 0; r < remaining.size(); ++r) {
        const Atom& atom = atoms[remaining[r]];
        int n_bound = 0;
        for (const Term& t : atom.args()) {
          if (t.is_constant() || bound.contains(t.var())) ++n_bound;
        }
        std::size_t size =
            specs[remaining[r]].primary->relation(atom.predicate()).size();
        if (n_bound > best_bound ||
            (n_bound == best_bound && size < best_size)) {
          best_pos = r;
          best_bound = n_bound;
          best_size = size;
        }
      }
      std::size_t chosen = remaining[best_pos];
      order.push_back(chosen);
      remaining.erase(remaining.begin() +
                      static_cast<std::ptrdiff_t>(best_pos));
      for (const Term& t : atoms[chosen].args()) {
        if (t.is_variable()) bound.insert(t.var());
      }
    }
    return order;
  }

  bool Enumerate(std::size_t depth) {
    if (depth == steps_.size()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      // Every complete match binds the same variable set, so the binding
      // handed to the callback is refreshed in place (no per-match maps).
      for (const auto& [var, slot] : var_slots_) {
        binding_[var] = slots_[static_cast<std::size_t>(slot)];
      }
      return callback_(binding_);
    }
    Step& step = steps_[depth];
    const AtomSourceSpec& spec = specs_[step.spec];
    for (const KeyFill& kf : step.key_fill) {
      step.key[static_cast<std::size_t>(kf.key_index)] =
          slots_[static_cast<std::size_t>(kf.slot)];
    }

    auto try_row = [&](const Tuple& row, bool check_subtraction) {
      if (stats_ != nullptr) ++stats_->tuples_scanned;
      if (check_subtraction && spec.subtraction != nullptr &&
          spec.subtraction->Contains(step.predicate, row)) {
        return true;  // excluded; keep enumerating
      }
      for (const SlotRef& w : step.writes) {
        slots_[static_cast<std::size_t>(w.slot)] =
            row[static_cast<std::size_t>(w.col)];
      }
      for (const SlotRef& c : step.checks) {
        if (slots_[static_cast<std::size_t>(c.slot)] !=
            row[static_cast<std::size_t>(c.col)]) {
          return true;  // repeated variable mismatch
        }
      }
      return Enumerate(depth + 1);
    };

    auto scan_source = [&](const Database& db, bool check_subtraction) {
      const Relation& rel = db.relation(step.predicate);
      if (rel.empty() || rel.arity() != step.arity) return true;
      if (step.key_cols.empty()) {
        if (stats_ != nullptr) ++stats_->index_lookups;
        for (const Tuple& row : rel.rows()) {
          if (!try_row(row, check_subtraction)) return false;
        }
        return true;
      }
      if (stats_ != nullptr) ++stats_->index_lookups;
      if (static_cast<int>(step.key_cols.size()) == step.arity) {
        if (rel.Contains(step.key) &&
            !try_row(step.key, check_subtraction)) {
          return false;
        }
        return true;
      }
      const std::vector<std::uint32_t>& row_ids =
          step.key_cols.size() == 1
              ? rel.Lookup(step.key_cols[0], step.key[0])
              : rel.Lookup(step.key_cols, step.key);
      for (std::uint32_t row_id : row_ids) {
        if (!try_row(rel.row(row_id), check_subtraction)) return false;
      }
      return true;
    };

    if (!scan_source(*spec.primary, /*check_subtraction=*/true)) return false;
    if (spec.addition != nullptr &&
        !scan_source(*spec.addition, /*check_subtraction=*/false)) {
      return false;
    }
    return true;
  }

  const std::vector<AtomSourceSpec>& specs_;
  const std::function<bool(const Binding&)>& callback_;
  MatchStats* stats_;
  Binding binding_;
  std::vector<Value> slots_;
  std::vector<std::pair<VariableId, int>> var_slots_;
  std::vector<Step> steps_;
};

/// Worst-case-optimal leg of the delta joins: when the residual body --
/// the variables still unbound after the initial binding -- forms a
/// cyclic hypergraph of width >= 2 (the same structural test
/// CompiledRule's planner uses, see eval/hypergraph.h), variables are
/// enumerated one at a time and each variable's value is the
/// intersection of the candidate sets contributed by every atom that
/// mentions it. Candidate sets respect the three-part source semantics:
/// (primary \ subtraction) ∪ addition, per atom. Works in value space
/// through Relation::Lookup, so it is storage-agnostic like the other
/// two matchers. Substitutions count complete assignments, identical to
/// the left-deep matchers; probe/scan counters measure this shape's own
/// (deterministic) work.
class MultiwayDeltaMatcher {
 public:
  static bool Eligible(const std::vector<Atom>& atoms,
                       const Binding& initial) {
    if (atoms.size() < 3) return false;
    std::vector<std::vector<VariableId>> var_lists;
    var_lists.reserve(atoms.size());
    for (const Atom& atom : atoms) {
      std::vector<VariableId> vars;
      for (const Term& t : atom.args()) {
        if (t.is_variable() && !initial.contains(t.var())) {
          vars.push_back(t.var());
        }
      }
      // An atom with no residual variable would need a plain membership
      // check this matcher does not do; leave such bodies left-deep.
      if (vars.empty()) return false;
      var_lists.push_back(std::move(vars));
    }
    const JoinHypergraph graph = BuildJoinHypergraph(var_lists);
    return !GyoAcyclic(graph) && EstimateJoinWidth(graph) >= 2;
  }

  MultiwayDeltaMatcher(const std::vector<Atom>& atoms,
                       const std::vector<AtomSourceSpec>& specs,
                       const Binding& initial,
                       const std::function<bool(const Binding&)>& callback,
                       MatchStats* stats)
      : atoms_(atoms),
        specs_(specs),
        callback_(callback),
        stats_(stats),
        binding_(initial) {
    struct VarInfo {
      std::vector<std::size_t> atoms;
      std::size_t min_size = static_cast<std::size_t>(-1);
    };
    std::map<VariableId, VarInfo> info;
    for (std::size_t d = 0; d < atoms.size(); ++d) {
      const std::size_t size =
          specs[d].primary->relation(atoms[d].predicate()).size();
      for (const Term& t : atoms[d].args()) {
        if (!t.is_variable() || binding_.contains(t.var())) continue;
        VarInfo& vi = info[t.var()];
        if (vi.atoms.empty() || vi.atoms.back() != d) vi.atoms.push_back(d);
        vi.min_size = std::min(vi.min_size, size);
      }
    }
    for (const auto& [var, vi] : info) {
      var_order_.push_back(var);
      atoms_of_.push_back(vi.atoms);
    }
    // Most-constrained variable first, then smallest participating
    // relation; the map iteration already fixed a deterministic
    // VariableId tiebreak.
    std::vector<std::size_t> perm(var_order_.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::size_t a, std::size_t b) {
                       const VarInfo& va = info.at(var_order_[a]);
                       const VarInfo& vb = info.at(var_order_[b]);
                       if (va.atoms.size() != vb.atoms.size()) {
                         return va.atoms.size() > vb.atoms.size();
                       }
                       return va.min_size < vb.min_size;
                     });
    std::vector<VariableId> vars;
    std::vector<std::vector<std::size_t>> atom_lists;
    for (std::size_t i : perm) {
      vars.push_back(var_order_[i]);
      atom_lists.push_back(std::move(atoms_of_[i]));
    }
    var_order_ = std::move(vars);
    atoms_of_ = std::move(atom_lists);
  }

  void Run() { Enumerate(0); }

 private:
  /// Sorted distinct values the variable can take in atom `d` under the
  /// current binding: project the variable's column(s) over the rows of
  /// (primary \ subtraction) and of addition that match every bound
  /// column.
  std::vector<Value> Candidates(std::size_t d, VariableId var) {
    const Atom& atom = atoms_[d];
    const AtomSourceSpec& spec = specs_[d];
    std::vector<int> bound_cols;
    Tuple key;
    std::vector<int> var_cols;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        key.push_back(t.value());
      } else if (t.var() == var) {
        var_cols.push_back(i);
      } else if (auto it = binding_.find(t.var()); it != binding_.end()) {
        bound_cols.push_back(i);
        key.push_back(it->second);
      }
    }

    std::vector<Value> values;
    auto scan_source = [&](const Database& db, bool check_subtraction) {
      const Relation& rel = db.relation(atom.predicate());
      if (rel.empty() || rel.arity() != atom.arity()) return;
      if (stats_ != nullptr) ++stats_->index_lookups;
      auto consider = [&](const Tuple& row) {
        if (stats_ != nullptr) ++stats_->tuples_scanned;
        if (check_subtraction && spec.subtraction != nullptr &&
            spec.subtraction->Contains(atom.predicate(), row)) {
          return;
        }
        const Value& v = row[static_cast<std::size_t>(var_cols[0])];
        for (std::size_t k = 1; k < var_cols.size(); ++k) {
          if (row[static_cast<std::size_t>(var_cols[k])] != v) return;
        }
        values.push_back(v);
      };
      if (bound_cols.empty()) {
        for (const Tuple& row : rel.rows()) consider(row);
        return;
      }
      for (std::uint32_t row_id : rel.Lookup(bound_cols, key)) {
        consider(rel.row(row_id));
      }
    };
    scan_source(*spec.primary, /*check_subtraction=*/true);
    if (spec.addition != nullptr) {
      scan_source(*spec.addition, /*check_subtraction=*/false);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
  }

  bool Enumerate(std::size_t depth) {
    if (depth == var_order_.size()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      return callback_(binding_);
    }
    const VariableId var = var_order_[depth];
    // Intersect the candidate sets of every atom mentioning the
    // variable. Materializing all of them is fine here: delta sources
    // are small by construction and candidate sets shrink fast.
    std::vector<std::vector<Value>> sets;
    sets.reserve(atoms_of_[depth].size());
    for (std::size_t d : atoms_of_[depth]) {
      std::vector<Value> s = Candidates(d, var);
      if (s.empty()) return true;  // this branch has no matches
      sets.push_back(std::move(s));
    }
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < sets.size(); ++i) {
      if (sets[i].size() < sets[smallest].size()) smallest = i;
    }
    for (const Value& v : sets[smallest]) {
      bool in_all = true;
      for (std::size_t i = 0; i < sets.size() && in_all; ++i) {
        if (i == smallest) continue;
        in_all = std::binary_search(sets[i].begin(), sets[i].end(), v);
      }
      if (!in_all) continue;
      binding_.emplace(var, v);
      const bool keep_going = Enumerate(depth + 1);
      binding_.erase(var);
      if (!keep_going) return false;
    }
    return true;
  }

  const std::vector<Atom>& atoms_;
  const std::vector<AtomSourceSpec>& specs_;
  const std::function<bool(const Binding&)>& callback_;
  MatchStats* stats_;
  Binding binding_;
  std::vector<VariableId> var_order_;
  std::vector<std::vector<std::size_t>> atoms_of_;
};

}  // namespace

void EnumerateDeltaJoin(const std::vector<Atom>& atoms,
                        const std::vector<AtomSourceSpec>& specs,
                        const Binding& initial,
                        const std::function<bool(const Binding&)>& callback,
                        MatchStats* stats, bool fixed_order) {
  // Multiway residual shape: never on the fixed-order path (the parallel
  // rederive sweep pre-ensures indexes for the textual left-deep order
  // and must stay write-free), and only with the plan/knob family that
  // enables it on the batch side.
  if (!fixed_order && CompiledRulePlansEnabled() && MultiwayJoinsEnabled() &&
      IndexLookupsEnabled() && MultiwayDeltaMatcher::Eligible(atoms, initial)) {
    MultiwayDeltaMatcher(atoms, specs, initial, callback, stats).Run();
    return;
  }
  if (CompiledRulePlansEnabled()) {
    CompiledDeltaMatcher(atoms, specs, initial, callback, stats, fixed_order)
        .Run();
    return;
  }
  DeltaMatcher(atoms, specs, initial, callback, stats, fixed_order).Run();
}

std::vector<std::pair<std::size_t, std::vector<int>>> PlannedIndexColumns(
    const std::vector<Atom>& atoms,
    const std::vector<VariableId>& bound_vars) {
  std::set<VariableId> bound(bound_vars.begin(), bound_vars.end());
  std::vector<std::pair<std::size_t, std::vector<int>>> plan;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    std::vector<int> cols;
    for (int c = 0; c < atoms[i].arity(); ++c) {
      const Term& t = atoms[i].args()[static_cast<std::size_t>(c)];
      if (t.is_constant() || bound.contains(t.var())) cols.push_back(c);
    }
    plan.emplace_back(i, std::move(cols));
    for (const Term& t : atoms[i].args()) {
      if (t.is_variable()) bound.insert(t.var());
    }
  }
  return plan;
}

}  // namespace datalog
