#ifndef DATALOG_INCR_DELTA_JOIN_H_
#define DATALOG_INCR_DELTA_JOIN_H_

#include <functional>
#include <vector>

#include "ast/atom.h"
#include "eval/database.h"
#include "eval/rule_matcher.h"

namespace datalog {

/// The tuple set a body atom is matched against during an incremental
/// update pass: (primary \ subtraction) ∪ addition. The three parts let
/// the maintenance passes express every state they need without copying
/// relations -- e.g. the pre-update state of a predicate whose deletions
/// were already applied is (view \ Δ+) ∪ Δ−, with the view as primary.
///
/// `addition` must be disjoint from (primary \ subtraction); counting
/// passes rely on each tuple being enumerated exactly once.
struct AtomSourceSpec {
  const Database* primary = nullptr;
  const Database* subtraction = nullptr;  // may be null
  const Database* addition = nullptr;     // may be null
};

/// Enumerates every extension of `initial` that instantiates all `atoms`
/// to tuples of their respective sources (specs[i] governs atoms[i]).
/// `initial` may pre-bind variables (the DRed rederivation step binds the
/// head variables to the fact under test). The callback returns false to
/// stop the enumeration early.
///
/// When `fixed_order` is false, atoms are matched in a greedily chosen
/// order (most bound columns first, smaller primary relation as the tie
/// break). When true, atoms are matched left to right, which makes the
/// probed column sets statically predictable: PlannedIndexColumns below
/// reports them, so a caller can EnsureIndex every probe up front and run
/// enumerations concurrently under the frozen-snapshot contract.
void EnumerateDeltaJoin(const std::vector<Atom>& atoms,
                        const std::vector<AtomSourceSpec>& specs,
                        const Binding& initial,
                        const std::function<bool(const Binding&)>& callback,
                        MatchStats* stats, bool fixed_order = false);

/// The (atom index, bound columns) pairs a fixed-order enumeration of
/// `atoms` will probe, given that the variables of `bound_vars` are bound
/// before the first atom is matched. Column lists may be empty (full
/// scan: no index is probed).
std::vector<std::pair<std::size_t, std::vector<int>>> PlannedIndexColumns(
    const std::vector<Atom>& atoms, const std::vector<VariableId>& bound_vars);

}  // namespace datalog

#endif  // DATALOG_INCR_DELTA_JOIN_H_
