#include "incr/script.h"

#include <sstream>
#include <string>
#include <utility>

namespace datalog {

namespace {

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument("script line " + std::to_string(line) + ": " +
                                 message);
}

}  // namespace

Result<std::vector<ScriptOp>> ParseUpdateScript(std::string_view text,
                                                Parser* parser,
                                                ScriptDialect dialect) {
  std::vector<ScriptOp> ops;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    // Strip a trailing %-comment (quote-aware) and surrounding blanks.
    bool in_quote = false;
    std::size_t cut = line.size();
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '\'') in_quote = !in_quote;
      if (line[i] == '%' && !in_quote) {
        cut = i;
        break;
      }
    }
    std::string body = line.substr(0, cut);
    std::size_t start = body.find_first_not_of(" \t\r");
    if (start == std::string::npos || body[start] == '#') continue;
    std::size_t end = body.find_last_not_of(" \t\r");
    body = body.substr(start, end - start + 1);

    ScriptOp op;
    op.line = line_no;
    if (body == "commit") {
      op.kind = ScriptOp::Kind::kCommit;
      ops.push_back(std::move(op));
      continue;
    }
    const bool client = dialect == ScriptDialect::kClient;
    if (body == "ping" || body == "stats" || body == "base" ||
        body == "shutdown") {
      if (!client) {
        return LineError(line_no, "'" + body +
                                      "' is a client-mode verb; incr scripts "
                                      "accept +fact, -fact, ?query, commit");
      }
      op.kind = body == "ping"    ? ScriptOp::Kind::kPing
                : body == "stats" ? ScriptOp::Kind::kStats
                : body == "base"  ? ScriptOp::Kind::kDumpBase
                                  : ScriptOp::Kind::kShutdown;
      ops.push_back(std::move(op));
      continue;
    }

    const char verb = body[0];
    std::string rest = body.substr(1);
    if (verb == '+' || verb == '-' || verb == '?') {
      if (rest.find_first_not_of(" \t") == std::string::npos) {
        return LineError(line_no, "expected an atom after '" +
                                      std::string(1, verb) + "'");
      }
      if (rest.back() != '.') rest += '.';
    }
    if (verb == '+' || verb == '-') {
      Result<std::vector<Atom>> atoms = parser->ParseGroundAtoms(rest);
      if (!atoms.ok()) {
        return LineError(line_no, atoms.status().ToString());
      }
      op.kind = verb == '+' ? ScriptOp::Kind::kInsert : ScriptOp::Kind::kRetract;
      op.facts = std::move(atoms).value();
      ops.push_back(std::move(op));
      continue;
    }
    if (verb == '?') {
      Result<Atom> query = parser->ParseQuery("?- " + rest);
      if (!query.ok()) {
        return LineError(line_no, query.status().ToString());
      }
      op.kind = ScriptOp::Kind::kQuery;
      op.query = std::move(query).value();
      ops.push_back(std::move(op));
      continue;
    }
    return LineError(line_no,
                     "expected +fact, -fact, ?query, commit, or a %-comment");
  }
  return ops;
}

}  // namespace datalog
