#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace datalog {
namespace {

MetricLabels SortedLabels(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::Key(std::string_view name,
                                 const MetricLabels& labels) {
  std::string key(name);
  key += '{';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

void MetricsRegistry::Add(std::string_view name, const MetricLabels& labels,
                          std::uint64_t delta) {
  if (!enabled()) return;
  MetricLabels sorted = SortedLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(Key(name, sorted));
  if (inserted) {
    it->second.name = std::string(name);
    it->second.labels = std::move(sorted);
  }
  it->second.value += delta;
}

void MetricsRegistry::Set(std::string_view name, const MetricLabels& labels,
                          std::uint64_t value) {
  if (!enabled()) return;
  MetricLabels sorted = SortedLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(Key(name, sorted));
  if (inserted) {
    it->second.name = std::string(name);
    it->second.labels = std::move(sorted);
  }
  it->second.value = value;
}

std::uint64_t MetricsRegistry::Value(std::string_view name,
                                     const MetricLabels& labels) const {
  std::string key = Key(name, SortedLabels(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second.value;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) out.push_back(entry);
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::vector<Entry> entries = Snapshot();
  std::string out = "{\"metrics\": [";
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"" + JsonEscape(entry.name) + "\", \"labels\": {";
    bool first_label = true;
    for (const auto& [k, v] : entry.labels) {
      if (!first_label) out += ", ";
      first_label = false;
      out += "\"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
    }
    out += "}, \"value\": " + std::to_string(entry.value) + "}";
  }
  out += "\n]}\n";
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 path.c_str());
    return false;
  }
  file << ToJson();
  return file.good();
}

}  // namespace datalog
