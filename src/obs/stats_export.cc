#include "obs/stats_export.h"

#include <string>

#include "incr/materialized_view.h"
#include "obs/metrics.h"

namespace datalog {

void RecordEvalStats(std::string_view engine, const EvalStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  if (!registry.enabled()) return;
  const MetricLabels labels = {{"engine", std::string(engine)}};
  registry.Add("eval.iterations", labels,
               static_cast<std::uint64_t>(stats.iterations));
  registry.Add("eval.facts_derived", labels, stats.facts_derived);
  registry.Add("eval.rule_applications", labels, stats.rule_applications);
  registry.Add("eval.substitutions", labels, stats.match.substitutions);
  registry.Add("eval.index_lookups", labels, stats.match.index_lookups);
  registry.Add("eval.tuples_scanned", labels, stats.match.tuples_scanned);
  if (stats.parallel_rounds != 0 || stats.parallel_tasks != 0) {
    registry.Add("eval.parallel_rounds", labels, stats.parallel_rounds);
    registry.Add("eval.parallel_tasks", labels, stats.parallel_tasks);
    registry.Add("eval.index_build_ns", labels, stats.index_build_ns);
    registry.Add("eval.parallel_match_ns", labels, stats.parallel_match_ns);
    registry.Add("eval.merge_ns", labels, stats.merge_ns);
  }
  for (std::size_t i = 0; i < stats.per_rule.size(); ++i) {
    const RuleStats& rule = stats.per_rule[i];
    if (rule.applications == 0 && rule.facts == 0 &&
        rule.substitutions == 0) {
      continue;  // keep the export focused on rules that did work
    }
    const MetricLabels rule_labels = {{"engine", std::string(engine)},
                                      {"rule", std::to_string(i)}};
    registry.Add("eval.rule.applications", rule_labels, rule.applications);
    registry.Add("eval.rule.facts", rule_labels, rule.facts);
    registry.Add("eval.rule.substitutions", rule_labels, rule.substitutions);
  }
}

void RecordTopDownStats(std::string_view engine, const TopDownStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  if (!registry.enabled()) return;
  const MetricLabels labels = {{"engine", std::string(engine)}};
  registry.Add("topdown.subgoals", labels,
               static_cast<std::uint64_t>(stats.subgoals));
  registry.Add("topdown.iterations", labels,
               static_cast<std::uint64_t>(stats.iterations));
  registry.Add("topdown.answers", labels, stats.answers);
  registry.Add("topdown.body_matches", labels, stats.body_matches);
}

void RecordCommitStats(std::string_view engine, const CommitStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  if (!registry.enabled()) return;
  const MetricLabels labels = {{"engine", std::string(engine)}};
  registry.Add("incr.base_inserted", labels, stats.base_inserted);
  registry.Add("incr.base_retracted", labels, stats.base_retracted);
  registry.Add("incr.derived_added", labels, stats.derived_added);
  registry.Add("incr.derived_removed", labels, stats.derived_removed);
  registry.Add("incr.overdeleted", labels, stats.overdeleted);
  registry.Add("incr.rederived", labels, stats.rederived);
  registry.Add("incr.rule_applications", labels, stats.rule_applications);
  registry.Add("incr.sccs_touched", labels,
               static_cast<std::uint64_t>(stats.sccs_touched));
  registry.Add("incr.sccs_recomputed", labels,
               static_cast<std::uint64_t>(stats.sccs_recomputed));
  registry.Add("incr.substitutions", labels, stats.match.substitutions);
  registry.Add("incr.index_lookups", labels, stats.match.index_lookups);
  registry.Add("incr.tuples_scanned", labels, stats.match.tuples_scanned);
  registry.Add("incr.recompute_substitutions", labels,
               stats.recompute.match.substitutions);
}

}  // namespace datalog
