#ifndef DATALOG_OBS_METRICS_H_
#define DATALOG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace datalog {

/// A label dimension attached to a counter, e.g. {"engine", "semi-naive"}
/// or {"rule", "3"}. Labels distinguish series of the same counter name.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Process-wide registry of named monotonic counters with labeled
/// dimensions, unifying the library's scattered work counters (EvalStats,
/// MatchStats, CommitStats, TopDownStats) behind one export surface.
///
/// Disabled by default: every Add() starts with one relaxed atomic load
/// and returns immediately, so instrumented hot paths pay a single
/// predictable branch when observability is off. Enable() starts
/// collection (the CLI's --metrics flag and the bench binaries'
/// --metrics flag do this); ToJson() renders the flat metrics export.
///
/// Thread-safe: counters may be bumped from worker threads (the parallel
/// engine's shard tasks); a mutex serializes the map. Counter VALUES are
/// deterministic whenever the recorded stats are (see
/// docs/observability.md); only ns-suffixed timing counters vary run to
/// run.
class MetricsRegistry {
 public:
  struct Entry {
    std::string name;
    MetricLabels labels;  // sorted by key
    std::uint64_t value = 0;
  };

  /// The process registry. Individual instances can also be constructed
  /// for tests.
  static MetricsRegistry& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every counter; the enabled flag is unchanged.
  void Clear();

  /// Adds `delta` to the counter `name` with the given labels. No-op when
  /// the registry is disabled.
  void Add(std::string_view name, const MetricLabels& labels,
           std::uint64_t delta);

  /// Overwrites the counter with `value` (for gauges snapshotted at the
  /// end of a run, e.g. final EvalStats fields). No-op when disabled.
  void Set(std::string_view name, const MetricLabels& labels,
           std::uint64_t value);

  /// Current value of a counter; 0 if it was never touched.
  std::uint64_t Value(std::string_view name, const MetricLabels& labels) const;

  /// All counters in deterministic (name, labels) order.
  std::vector<Entry> Snapshot() const;

  /// Flat metrics JSON:
  ///   {"metrics": [{"name": "...", "labels": {...}, "value": N}, ...]}
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a perror-style message on
  /// stderr) when the file cannot be written.
  bool WriteJsonFile(const std::string& path) const;

 private:
  /// Canonical map key: name + sorted serialized labels.
  static std::string Key(std::string_view name, const MetricLabels& labels);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Entry> counters_;
};

}  // namespace datalog

#endif  // DATALOG_OBS_METRICS_H_
