#ifndef DATALOG_OBS_STATS_EXPORT_H_
#define DATALOG_OBS_STATS_EXPORT_H_

#include <string_view>

#include "eval/eval_stats.h"
#include "eval/topdown.h"

namespace datalog {

struct CommitStats;  // incr/materialized_view.h

/// Publishes a completed evaluation's EvalStats into the process
/// MetricsRegistry under the `engine` label:
///
///   eval.iterations{engine=E}         == stats.iterations
///   eval.facts_derived{engine=E}      == stats.facts_derived
///   eval.rule_applications{engine=E}  == stats.rule_applications
///   eval.substitutions{engine=E}      == stats.match.substitutions
///   eval.index_lookups{engine=E}      == stats.match.index_lookups
///   eval.tuples_scanned{engine=E}     == stats.match.tuples_scanned
///   eval.parallel_rounds/parallel_tasks{engine=E}   (parallel engines)
///   eval.index_build_ns/parallel_match_ns/merge_ns  (wall-clock, NOT
///                                                    deterministic)
///   eval.rule.applications/facts/substitutions{engine=E, rule=i}
///
/// Counters ADD across runs; Clear() the registry between runs when a
/// single run's numbers are wanted. Every counter except the ns-suffixed
/// ones is deterministic and equals the EvalStats field bit-for-bit --
/// tests/obs/trace_invariant_test.cc holds every engine to that contract.
/// No-op when the registry is disabled.
void RecordEvalStats(std::string_view engine, const EvalStats& stats);

/// Publishes TopDownStats as topdown.subgoals / topdown.iterations /
/// topdown.answers / topdown.body_matches under the `engine` label.
void RecordTopDownStats(std::string_view engine, const TopDownStats& stats);

/// Publishes one committed transaction's CommitStats as incr.* counters
/// (base_inserted, base_retracted, derived_added, derived_removed,
/// overdeleted, rederived, rule_applications, sccs_touched,
/// sccs_recomputed, substitutions, index_lookups, tuples_scanned,
/// recompute_substitutions) under the `engine` label.
void RecordCommitStats(std::string_view engine, const CommitStats& stats);

}  // namespace datalog

#endif  // DATALOG_OBS_STATS_EXPORT_H_
