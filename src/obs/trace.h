#ifndef DATALOG_OBS_TRACE_H_
#define DATALOG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace datalog {

/// One begin/end trace record. Spans are recorded as Chrome trace-event
/// "B"/"E" pairs: a kBegin marks a span opening on a thread, the matching
/// kEnd (same thread, stack discipline) closes it and carries the span's
/// counters. Timestamps are steady-clock nanoseconds since Enable().
struct TraceEvent {
  enum class Phase { kBegin, kEnd };

  Phase phase = Phase::kBegin;
  const char* name = "";  // static string supplied by the instrumentation
  int tid = 0;            // small sequential id assigned per OS thread
  std::uint64_t ts_ns = 0;
  /// Deterministic counters attached when the span closed (facts derived,
  /// rule applications, substitutions, ...). Empty for kBegin.
  std::vector<std::pair<const char*, std::uint64_t>> args;
};

/// Process-wide structured tracer. Records nested spans (engine ->
/// stratum/SCC -> round -> rule application; chase -> step; minimizer ->
/// candidate -> containment check) from any thread and exports them as
/// Chrome trace-event JSON (load the file at chrome://tracing or
/// https://ui.perfetto.dev).
///
/// Disabled by default; a disabled tracer costs one relaxed atomic load
/// per TraceSpan construction and records nothing. Enable() clears the
/// buffer and starts recording. Thread-safe: events from pool workers are
/// appended under a mutex and distinguished by per-thread ids, so the
/// parallel engine's per-shard task spans land on their own tracks and
/// merge with the round barrier in the viewer.
class Tracer {
 public:
  static Tracer& Get();

  /// Starts recording into an empty buffer.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events; the enabled flag is unchanged.
  void Clear();

  void BeginSpan(const char* name);
  void EndSpan(const char* name,
               std::vector<std::pair<const char*, std::uint64_t>> args);

  /// The recorded events, in global append order (per-thread order is
  /// preserved; cross-thread order follows the mutex).
  std::vector<TraceEvent> Events() const;

  /// Chrome trace-event JSON:
  ///   {"traceEvents": [{"name":..., "ph":"B"|"E", "ts":..., ...}, ...]}
  /// Timestamps are microseconds (Chrome's unit) with nanosecond
  /// precision preserved as fractions.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a message on stderr) when the
  /// file cannot be written.
  bool WriteJsonFile(const std::string& path) const;

 private:
  int ThreadId();  // caller must hold mu_
  std::uint64_t NowNs() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> thread_ids_;
  std::uint64_t epoch_ns_ = 0;
};

/// RAII span against the process tracer. Construction opens the span
/// (no-op when tracing is disabled), destruction closes it; Note()
/// attaches a named counter to the closing event. The enabled check is a
/// single relaxed load, so spans may guard hot loops.
///
///   TraceSpan span("seminaive/round");
///   ...
///   span.Note("facts", added);
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), active_(Tracer::Get().enabled()) {
    if (active_) Tracer::Get().BeginSpan(name_);
  }
  ~TraceSpan() { End(); }

  /// Closes the span before the end of scope (phases of a loop body).
  /// Later Note()/End() calls are no-ops.
  void End() {
    if (active_) {
      Tracer::Get().EndSpan(name_, std::move(args_));
      active_ = false;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches `key: value` to the span's closing event. `key` must be a
  /// static string.
  void Note(const char* key, std::uint64_t value) {
    if (active_) args_.emplace_back(key, value);
  }

  bool active() const { return active_; }

 private:
  const char* name_;
  bool active_;
  std::vector<std::pair<const char*, std::uint64_t>> args_;
};

}  // namespace datalog

#endif  // DATALOG_OBS_TRACE_H_
