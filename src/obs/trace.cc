#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace datalog {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_ids_.clear();
  epoch_ns_ = SteadyNowNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_ids_.clear();
  epoch_ns_ = SteadyNowNs();
}

int Tracer::ThreadId() {
  auto [it, inserted] = thread_ids_.emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ids_.size()));
  return it->second;
}

std::uint64_t Tracer::NowNs() const {
  std::uint64_t now = SteadyNowNs();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

void Tracer::BeginSpan(const char* name) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kBegin;
  event.name = name;
  event.ts_ns = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = ThreadId();
  events_.push_back(std::move(event));
}

void Tracer::EndSpan(
    const char* name,
    std::vector<std::pair<const char*, std::uint64_t>> args) {
  // Recorded even if the tracer was disabled mid-span: the matching begin
  // event is already in the buffer, and an unbalanced trace would be
  // worse than one extra event.
  TraceEvent event;
  event.phase = TraceEvent::Phase::kEnd;
  event.name = name;
  event.ts_ns = NowNs();
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  event.tid = ThreadId();
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[64];
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    // Chrome's ts unit is microseconds; keep nanosecond precision in the
    // fraction.
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(event.ts_ns / 1000),
                  static_cast<unsigned long long>(event.ts_ns % 1000));
    out += "\n  {\"name\": \"";
    out += event.name;
    out += "\", \"ph\": \"";
    out += event.phase == TraceEvent::Phase::kBegin ? "B" : "E";
    out += "\", \"pid\": 1, \"tid\": ";
    out += std::to_string(event.tid);
    out += ", \"ts\": ";
    out += buf;
    if (!event.args.empty()) {
      out += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ", ";
        first_arg = false;
        out += "\"";
        out += key;
        out += "\": ";
        out += std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n", path.c_str());
    return false;
  }
  file << ToJson();
  return file.good();
}

}  // namespace datalog
