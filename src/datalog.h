#ifndef DATALOG_DATALOG_H_
#define DATALOG_DATALOG_H_

/// Umbrella header for the datalog_opt library: a from-scratch
/// implementation of Y. Sagiv, "Optimizing Datalog Programs" (PODS 1987) —
/// minimization of Datalog programs under uniform equivalence, the
/// tgd-based equivalence optimizer, and the bottom-up evaluation substrate
/// they run on.
///
/// Typical use:
///
///   auto symbols = std::make_shared<datalog::SymbolTable>();
///   datalog::Parser parser(symbols);
///   auto program = parser.ParseProgram(
///       "g(x, z) :- a(x, z).\n"
///       "g(x, z) :- g(x, y), g(y, z), g(y, z).\n").value();
///   auto minimized = datalog::MinimizeProgram(program).value();
///   auto edb = datalog::ParseDatabase(symbols, "a(1,2). a(2,3).").value();
///   datalog::Database db = edb;
///   datalog::EvaluateSemiNaive(minimized, &db).value();

#include "analysis/analyzer.h"    // IWYU pragma: export
#include "analysis/diagnostic.h"  // IWYU pragma: export
#include "ast/atom.h"             // IWYU pragma: export
#include "ast/dependence_graph.h" // IWYU pragma: export
#include "ast/parser.h"           // IWYU pragma: export
#include "ast/pretty_print.h"     // IWYU pragma: export
#include "ast/program.h"          // IWYU pragma: export
#include "ast/rule.h"             // IWYU pragma: export
#include "ast/symbol_table.h"     // IWYU pragma: export
#include "ast/term.h"             // IWYU pragma: export
#include "ast/tgd.h"              // IWYU pragma: export
#include "ast/validate.h"         // IWYU pragma: export
#include "ast/value.h"            // IWYU pragma: export
#include "core/chase.h"           // IWYU pragma: export
#include "core/constrained.h"     // IWYU pragma: export
#include "core/cq.h"              // IWYU pragma: export
#include "core/equivalence.h"     // IWYU pragma: export
#include "core/equivalence_optimizer.h"  // IWYU pragma: export
#include "core/minimize.h"        // IWYU pragma: export
#include "core/model_containment.h"     // IWYU pragma: export
#include "core/pipeline.h"        // IWYU pragma: export
#include "core/preservation.h"    // IWYU pragma: export
#include "core/proof_outcome.h"   // IWYU pragma: export
#include "core/relevance.h"     // IWYU pragma: export
#include "core/unfold.h"        // IWYU pragma: export
#include "core/uniform_containment.h"   // IWYU pragma: export
#include "eval/compiled_rule.h"   // IWYU pragma: export
#include "eval/database.h"        // IWYU pragma: export
#include "eval/magic_sets.h"      // IWYU pragma: export
#include "eval/naive.h"           // IWYU pragma: export
#include "eval/parallel.h"        // IWYU pragma: export
#include "eval/provenance.h"      // IWYU pragma: export
#include "eval/query.h"           // IWYU pragma: export
#include "eval/seminaive.h"       // IWYU pragma: export
#include "eval/stratified.h"      // IWYU pragma: export
#include "eval/topdown.h"         // IWYU pragma: export
#include "incr/delta_join.h"      // IWYU pragma: export
#include "incr/materialized_view.h"  // IWYU pragma: export
#include "incr/script.h"          // IWYU pragma: export
#include "obs/metrics.h"          // IWYU pragma: export
#include "obs/stats_export.h"     // IWYU pragma: export
#include "obs/trace.h"            // IWYU pragma: export
#include "server/client.h"        // IWYU pragma: export
#include "server/epoch.h"         // IWYU pragma: export
#include "server/server.h"        // IWYU pragma: export
#include "server/snapshot_query.h"  // IWYU pragma: export
#include "server/wire.h"          // IWYU pragma: export
#include "util/result.h"          // IWYU pragma: export
#include "version.h"              // IWYU pragma: export
#include "util/status.h"          // IWYU pragma: export

#endif  // DATALOG_DATALOG_H_
