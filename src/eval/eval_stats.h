#ifndef DATALOG_EVAL_EVAL_STATS_H_
#define DATALOG_EVAL_EVAL_STATS_H_

#include <cstdint>
#include <vector>

#include "eval/rule_matcher.h"

namespace datalog {

/// Per-rule breakdown of fixpoint work, indexed like Program::rules().
/// Lets optimizer reports point at the rules that dominate evaluation.
struct RuleStats {
  std::uint64_t applications = 0;   // times the rule was matched
  std::uint64_t facts = 0;          // new facts it contributed
  std::uint64_t substitutions = 0;  // complete body matches it found

  void Add(const RuleStats& other) {
    applications += other.applications;
    facts += other.facts;
    substitutions += other.substitutions;
  }
};

/// Work counters for a bottom-up fixpoint computation.
struct EvalStats {
  int iterations = 0;                 // fixpoint rounds
  std::uint64_t facts_derived = 0;    // new facts added to the database
  std::uint64_t rule_applications = 0;  // (rule, round[, delta position]) pairs
  MatchStats match;                   // join work
  std::vector<RuleStats> per_rule;    // indexed by rule position

  // Parallel-engine breakdown (all zero for the sequential engines).
  // Wall-clock times are nanoseconds summed across rounds; they vary run
  // to run, unlike every other counter, which is deterministic.
  std::uint64_t parallel_rounds = 0;  // rounds that fanned out to the pool
  std::uint64_t parallel_tasks = 0;   // (rule, delta-pos, shard) tasks run
  std::uint64_t index_build_ns = 0;   // pre-building frozen-snapshot indexes
  std::uint64_t parallel_match_ns = 0;  // workers matching into buffers
  std::uint64_t merge_ns = 0;           // single-threaded round-barrier merge

  void Add(const EvalStats& other) {
    iterations += other.iterations;
    facts_derived += other.facts_derived;
    rule_applications += other.rule_applications;
    parallel_rounds += other.parallel_rounds;
    parallel_tasks += other.parallel_tasks;
    index_build_ns += other.index_build_ns;
    parallel_match_ns += other.parallel_match_ns;
    merge_ns += other.merge_ns;
    match.Add(other.match);
    if (per_rule.size() < other.per_rule.size()) {
      per_rule.resize(other.per_rule.size());
    }
    for (std::size_t i = 0; i < other.per_rule.size(); ++i) {
      per_rule[i].Add(other.per_rule[i]);
    }
  }
};

}  // namespace datalog

#endif  // DATALOG_EVAL_EVAL_STATS_H_
