#ifndef DATALOG_EVAL_RULE_MATCHER_H_
#define DATALOG_EVAL_RULE_MATCHER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ast/rule.h"
#include "eval/database.h"

namespace datalog {

/// Counters describing the work done while matching rule bodies. The
/// number of substitutions found is the library's proxy for "number of
/// joins", the cost the paper's optimization reduces.
struct MatchStats {
  std::uint64_t substitutions = 0;   // complete body matches found
  std::uint64_t index_lookups = 0;   // per-atom index probes / scans
  std::uint64_t tuples_scanned = 0;  // candidate tuples inspected

  void Add(const MatchStats& other) {
    substitutions += other.substitutions;
    index_lookups += other.index_lookups;
    tuples_scanned += other.tuples_scanned;
  }
};

/// Which database a body atom is matched against during semi-naive
/// evaluation: the full database, the last round's delta, or the "old"
/// prefix of the full database (rows that existed before the delta was
/// born -- expressible as a per-predicate row-count bound because
/// relations are append-only).
enum class AtomSource { kFull, kDelta, kOld };

/// Per-predicate row-count bounds defining the "old" snapshot; predicates
/// absent from the map have no old rows.
using OldLimits = std::unordered_map<PredicateId, std::size_t>;

/// A body atom together with its source.
struct PlannedAtom {
  Atom atom;
  AtomSource source = AtomSource::kFull;
};

/// A substitution from variables to constants, built up during matching
/// (the instantiation of Section III).
using Binding = std::unordered_map<VariableId, Value>;

/// Process-wide ablation switches used by bench_ablation to quantify
/// engine design choices. Not thread-safe; intended for benchmarks only.
/// When greedy join ordering is off, body atoms are matched in their
/// given (textual) order. When index lookups are off, every atom match
/// scans the whole relation and filters. When compiled rule plans are
/// off, matching falls back to the legacy row-at-a-time Matcher instead
/// of the slot-addressed compiled path (see eval/compiled_rule.h). A
/// fourth knob of the same family, SetColumnarStorage in
/// eval/relation.h, selects the relation storage backend and thereby
/// whether compiled Apply takes the vectorized batch-probe path; all
/// four knobs are bit-for-bit neutral on results and MatchStats.
///
/// SetMultiwayJoins gates the second compiled plan shape: the generic
/// worst-case-optimal multiway intersection that CompiledRule selects
/// for cyclic bodies of estimated width >= 2 (see eval/hypergraph.h and
/// docs/multiway_joins.md). Disabling it pins every plan to the greedy
/// left-deep shape. Multiway plans also require index lookups: with
/// SetIndexLookups(false) the planner falls back to left-deep, keeping
/// that knob a true ablation axis. Neutral on results and on the
/// substitution count, but -- unlike the other knobs -- not on the
/// probe/scan counters, which measure the work the shape saves.
void SetGreedyJoinOrdering(bool enabled);
bool GreedyJoinOrderingEnabled();
void SetIndexLookups(bool enabled);
bool IndexLookupsEnabled();
void SetCompiledRulePlans(bool enabled);
bool CompiledRulePlansEnabled();
void SetMultiwayJoins(bool enabled);
bool MultiwayJoinsEnabled();

/// SetBytecodeExecution selects how compiled plans execute: lowered to
/// the register-based bytecode run by the computed-goto VM (default; see
/// eval/bytecode/bytecode.h and docs/bytecode_vm.md), or the struct
/// interpreters ApplyBatch/ApplyMultiway. Checked per Apply, not
/// snapshotted into the plan, so flipping it never triggers a replan and
/// replanning semantics (cardinality drift, hint-version bumps) are
/// unchanged. Bit-for-bit neutral on results, MatchStats, and frontier
/// emission order.
void SetBytecodeExecution(bool enabled);
bool BytecodeExecutionEnabled();

/// Join-order hints produced by the analyzer's binding pass (see
/// src/analysis/binding_pass.cc): for a body whose predicate-id sequence
/// hashes to the key, the preferred visit order as a permutation of
/// positions into the planned atom list. Keying by body fingerprint
/// rather than rule index lets one hint table serve every engine and
/// every (delta position, use_old) variant of a rule; two rules with the
/// same predicate sequence share a hint, which is harmless because the
/// hint was derived from that sequence alone.
struct JoinOrderHints {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> order;

  bool empty() const { return order.empty(); }
};

/// The fingerprint `JoinOrderHints` keys on: a hash of the sequence of
/// predicate ids of `atoms` (sources and argument patterns excluded).
std::uint64_t BodyFingerprint(const std::vector<PlannedAtom>& atoms);

/// Installs (or, with nullptr, clears) the process-wide hint table
/// consulted by PlanJoinOrder. The pointed-to table must outlive the
/// installation; like the other knobs above this is not thread-safe and
/// intended for benchmarks and the CLI's --hints path. A malformed hint
/// (wrong length, not a permutation) is ignored and the greedy planner
/// runs as usual, so hints can never change results -- only join order.
void SetJoinOrderHints(const JoinOrderHints* hints);
const JoinOrderHints* InstalledJoinOrderHints();
/// Bumped on every SetJoinOrderHints call; compiled plans snapshot it so
/// CompiledRule::NeedsReplan notices a hint change (see
/// eval/compiled_rule.h).
std::uint64_t JoinOrderHintsVersion();

class CompiledRuleCache;  // eval/compiled_rule.h

/// Enumerates every binding that instantiates all `atoms` to facts of the
/// indicated sources. Atoms are matched in a greedily chosen order
/// (most-bound / smallest-relation first). The callback returns false to
/// stop the enumeration early.
///
/// `delta` may be null when no atom uses AtomSource::kDelta.
void MatchAtoms(const Database& full, const Database* delta,
                const std::vector<PlannedAtom>& atoms,
                const std::function<bool(const Binding&)>& callback,
                MatchStats* stats);

/// The body-atom list a semi-naive delta pass matches: the positive
/// literals of `rule` with the literal at `delta_pos` sourced from the
/// delta, earlier positive literals from the old snapshot (when `use_old`)
/// and the rest from the full database. A `delta_pos` past the body (e.g.
/// npos) yields the all-kFull plan that ApplyRule uses.
std::vector<PlannedAtom> BuildDeltaPassAtoms(const Rule& rule,
                                             std::size_t delta_pos,
                                             bool use_old);

/// The join order the matcher will use for `atoms`: greedy most-bound /
/// smallest-relation first, or the given order when greedy planning is
/// disabled. Deterministic given the relation sizes, which is what lets
/// the parallel evaluator pre-build exactly the indexes a pass will probe
/// before fanning out (see docs/parallel_eval.md).
std::vector<PlannedAtom> PlanJoinOrder(const Database& full,
                                       const Database* delta,
                                       const std::vector<PlannedAtom>& atoms);

/// Instantiates `atom` under `binding`; every variable must be bound.
Tuple InstantiateHead(const Atom& atom, const Binding& binding);

/// Applies `rule` once, non-recursively, against `full` (Section IX's
/// P^n-style single application): enumerates body matches (negated
/// literals are tested against `full` after the positive part is bound)
/// and inserts head facts into `out`. Returns the number of facts that
/// were new in `out`. `out` may alias `full`'s storage only if the caller
/// accepts immediate visibility of new facts (naive evaluation does).
///
/// With a non-null `cache`, the compiled plan for (`rule_index`,
/// delta position, use_old) is fetched from it -- compiled on first use,
/// replanned only when a participating relation's cardinality drifts --
/// instead of being rebuilt per call. `rule_index` must identify `rule`
/// stably for the cache's lifetime. A null cache compiles transiently.
std::size_t ApplyRule(const Rule& rule, const Database& full, Database* out,
                      MatchStats* stats, CompiledRuleCache* cache = nullptr,
                      std::size_t rule_index = 0);

/// Semi-naive variant: like ApplyRule but the body atom at position
/// `delta_pos` (an index into rule.body(), which must be positive there)
/// is matched against `delta` instead of `full`. When `old_limits` is
/// non-null, positive positions BEFORE delta_pos are matched against the
/// old snapshot only (the classic old/delta/full scheme, which covers
/// every derivation that uses a delta fact exactly once instead of once
/// per delta position); with a null `old_limits` those positions fall
/// back to the full database.
std::size_t ApplyRuleWithDelta(const Rule& rule, const Database& full,
                               const Database& delta, std::size_t delta_pos,
                               Database* out, MatchStats* stats,
                               const OldLimits* old_limits = nullptr,
                               CompiledRuleCache* cache = nullptr,
                               std::size_t rule_index = 0);

}  // namespace datalog

#endif  // DATALOG_EVAL_RULE_MATCHER_H_
