#ifndef DATALOG_EVAL_DATABASE_H_
#define DATALOG_EVAL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ast/symbol_table.h"
#include "eval/relation.h"
#include "util/result.h"

namespace datalog {

/// A database: a relation per predicate, viewed as a single set of ground
/// atoms (Section III). The same type represents EDBs, IDBs, and their
/// union; nothing distinguishes extensional from intentional facts except
/// the program they are used with.
class Database {
 public:
  /// Creates an empty database over `symbols` (shared with the programs
  /// that will be evaluated against it).
  explicit Database(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Adds the fact `pred(tuple)`; returns true if it is new.
  bool AddFact(PredicateId pred, Tuple tuple);

  /// Adds the fact whose column values are the dictionary ids `ids`
  /// (columnar fast path; falls back to value insertion on a row-store
  /// relation). Returns true if it is new.
  bool AddFactIds(PredicateId pred, const std::vector<std::uint32_t>& ids);

  /// Appends rows [begin, end) of `rel` as facts of `pred`, preserving
  /// their order; returns how many were new. When both `rel` and the
  /// destination relation are columnar the copy stays in id space (no
  /// Value hashing, no dictionary round-trip) -- this is how the
  /// semi-naive drivers cut deltas and shards out of the full database.
  std::size_t AddRowRange(PredicateId pred, const Relation& rel,
                          std::size_t begin, std::size_t end);

  /// The relation for `pred`, created (empty, at the arity the symbol
  /// table declares) if no fact was ever added. The returned reference
  /// is the live storage: engine fast paths hoist it out of their emit
  /// loops to insert many rows without re-finding the relation. Stable
  /// until the Database itself is destroyed or moved.
  Relation& MutableRelation(PredicateId pred);

  /// Adds a ground atom. Returns InvalidArgument when `atom` is not ground.
  Status AddAtom(const Atom& atom);

  /// Removes the facts `pred(t)` for every tuple of `tuples`; returns how
  /// many were present. Erasure rebuilds the relation's rows and drops its
  /// indexes (Relation::EraseAll), so it must not race any reader.
  std::size_t EraseFacts(PredicateId pred, const std::vector<Tuple>& tuples);

  /// Removes every fact of `pred`; returns how many there were.
  std::size_t ClearRelation(PredicateId pred);

  bool Contains(PredicateId pred, const Tuple& tuple) const;

  /// The relation for `pred` (an empty relation if no fact was added).
  const Relation& relation(PredicateId pred) const;

  /// All predicates that currently have at least one tuple.
  std::vector<PredicateId> NonEmptyPredicates() const;

  /// Total number of ground atoms.
  std::size_t NumFacts() const;
  bool empty() const { return NumFacts() == 0; }

  /// Adds every fact of `other`; returns the number of new facts.
  std::size_t UnionWith(const Database& other);

  /// True if every fact of this database is in `other`.
  bool IsSubsetOf(const Database& other) const;

  /// Set equality of the ground-atom sets.
  friend bool operator==(const Database& a, const Database& b) {
    return a.NumFacts() == b.NumFacts() && a.IsSubsetOf(b);
  }
  friend bool operator!=(const Database& a, const Database& b) {
    return !(a == b);
  }

  /// Renders all facts, sorted, one per line (for tests and debugging).
  std::string ToString() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::unordered_map<PredicateId, Relation> relations_;
};

/// Builds a database from ground atoms (e.g. from Parser::ParseGroundAtoms).
Result<Database> DatabaseFromAtoms(std::shared_ptr<SymbolTable> symbols,
                                   const std::vector<Atom>& atoms);

/// Parses a fact list ("A(1,2). A(2,3).") into a database.
Result<Database> ParseDatabase(std::shared_ptr<SymbolTable> symbols,
                               std::string_view text);

}  // namespace datalog

#endif  // DATALOG_EVAL_DATABASE_H_
