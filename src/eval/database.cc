#include "eval/database.h"

#include <algorithm>

#include "ast/parser.h"
#include "ast/pretty_print.h"

namespace datalog {

Relation& Database::MutableRelation(PredicateId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_
             .emplace(pred, Relation(symbols_->PredicateArity(pred)))
             .first;
  }
  return it->second;
}

bool Database::AddFact(PredicateId pred, Tuple tuple) {
  return MutableRelation(pred).Insert(std::move(tuple));
}

bool Database::AddFactIds(PredicateId pred,
                          const std::vector<std::uint32_t>& ids) {
  return MutableRelation(pred).InsertIds(ids);
}

std::size_t Database::AddRowRange(PredicateId pred, const Relation& rel,
                                  std::size_t begin, std::size_t end) {
  if (begin >= end) return 0;
  Relation& dst = MutableRelation(pred);
  std::size_t added = 0;
  if (rel.columnar() && dst.columnar()) {
    dst.ReserveRows(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      if (dst.AppendRowFrom(rel, i)) ++added;
    }
    return added;
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (dst.Insert(rel.row(i))) ++added;
  }
  return added;
}

Status Database::AddAtom(const Atom& atom) {
  Tuple tuple;
  tuple.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    if (t.is_variable()) {
      return Status::InvalidArgument("cannot add non-ground atom to database");
    }
    tuple.push_back(t.value());
  }
  AddFact(atom.predicate(), std::move(tuple));
  return Status::OK();
}

std::size_t Database::EraseFacts(PredicateId pred,
                                 const std::vector<Tuple>& tuples) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return 0;
  return it->second.EraseAll(tuples);
}

std::size_t Database::ClearRelation(PredicateId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) return 0;
  std::size_t n = it->second.size();
  it->second = Relation(it->second.arity());
  return n;
}

bool Database::Contains(PredicateId pred, const Tuple& tuple) const {
  auto it = relations_.find(pred);
  return it != relations_.end() && it->second.Contains(tuple);
}

const Relation& Database::relation(PredicateId pred) const {
  static const Relation* const kEmpty = new Relation(0);
  auto it = relations_.find(pred);
  return it == relations_.end() ? *kEmpty : it->second;
}

std::vector<PredicateId> Database::NonEmptyPredicates() const {
  std::vector<PredicateId> preds;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.empty()) preds.push_back(pred);
  }
  std::sort(preds.begin(), preds.end());
  return preds;
}

std::size_t Database::NumFacts() const {
  std::size_t n = 0;
  for (const auto& [pred, rel] : relations_) {
    n += rel.size();
  }
  return n;
}

std::size_t Database::UnionWith(const Database& other) {
  std::size_t added = 0;
  for (const auto& [pred, rel] : other.relations_) {
    // Id-space copy when both sides are columnar (AddRowRange falls
    // back to Tuple insertion otherwise).
    added += AddRowRange(pred, rel, 0, rel.size());
  }
  return added;
}

bool Database::IsSubsetOf(const Database& other) const {
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& row : rel.rows()) {
      if (!other.Contains(pred, row)) return false;
    }
  }
  return true;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  for (const auto& [pred, rel] : relations_) {
    for (const Tuple& row : rel.rows()) {
      std::string line = symbols_->PredicateName(pred);
      if (!row.empty()) {
        line += "(";
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (i != 0) line += ", ";
          line += datalog::ToString(row[i], *symbols_);
        }
        line += ")";
      }
      line += ".";
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

Result<Database> DatabaseFromAtoms(std::shared_ptr<SymbolTable> symbols,
                                   const std::vector<Atom>& atoms) {
  Database db(std::move(symbols));
  for (const Atom& atom : atoms) {
    DATALOG_RETURN_IF_ERROR(db.AddAtom(atom));
  }
  return db;
}

Result<Database> ParseDatabase(std::shared_ptr<SymbolTable> symbols,
                               std::string_view text) {
  Parser parser(symbols);
  DATALOG_ASSIGN_OR_RETURN(std::vector<Atom> atoms,
                           parser.ParseGroundAtoms(text));
  return DatabaseFromAtoms(std::move(symbols), atoms);
}

}  // namespace datalog
