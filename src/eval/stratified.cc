#include "eval/stratified.h"

#include <set>

#include "ast/dependence_graph.h"
#include "ast/validate.h"
#include "eval/seminaive.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {

Result<EvalStats> EvaluateStratified(const Program& program, Database* db) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  DependenceGraph graph(program);
  DATALOG_ASSIGN_OR_RETURN(std::vector<std::vector<PredicateId>> strata,
                           graph.Stratify());

  TraceSpan span("eval/stratified");
  EvalStats total;
  total.per_rule.resize(program.NumRules());
  for (std::size_t si = 0; si < strata.size(); ++si) {
    const std::vector<PredicateId>& stratum = strata[si];
    std::set<PredicateId> preds(stratum.begin(), stratum.end());
    std::vector<Rule> rules;
    std::vector<std::size_t> original_index;  // stratum-local -> program
    for (std::size_t i = 0; i < program.NumRules(); ++i) {
      if (preds.contains(program.rules()[i].head().predicate())) {
        rules.push_back(program.rules()[i]);
        original_index.push_back(i);
      }
    }
    if (rules.empty()) continue;
    TraceSpan stratum_span("stratified/stratum");
    stratum_span.Note("stratum", si);
    stratum_span.Note("rules", rules.size());
    EvalStats stratum_stats = RunSemiNaiveFixpoint(rules, db);
    // Remap the stratum-local per-rule rows onto program rule positions
    // before merging, so EvalStats::per_rule stays program-indexed.
    std::vector<RuleStats> remapped(program.NumRules());
    for (std::size_t i = 0; i < stratum_stats.per_rule.size(); ++i) {
      remapped[original_index[i]] = stratum_stats.per_rule[i];
    }
    stratum_stats.per_rule = std::move(remapped);
    stratum_span.Note("facts", stratum_stats.facts_derived);
    total.Add(stratum_stats);
  }
  span.Note("iterations", static_cast<std::uint64_t>(total.iterations));
  span.Note("facts", total.facts_derived);
  RecordEvalStats("stratified", total);
  return total;
}

}  // namespace datalog
