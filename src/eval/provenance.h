#ifndef DATALOG_EVAL_PROVENANCE_H_
#define DATALOG_EVAL_PROVENANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "util/result.h"

namespace datalog {

/// One node of a derivation tree: a fact, and -- when the fact was derived
/// rather than given -- the rule and the premise subtrees that produced it
/// (one instantiation; a fact may have many derivations, the tracer keeps
/// the first).
struct Derivation {
  PredicateId predicate;
  Tuple fact;
  /// -1 for input facts; otherwise an index into the program's rules.
  int rule_index = -1;
  std::vector<std::shared_ptr<const Derivation>> premises;

  bool IsInputFact() const { return rule_index < 0; }
};

/// Evaluates `program` over `db` (naive-style, positive programs only)
/// while recording why-provenance, then returns the derivation tree of
/// `fact`. NotFound when the fact is not derivable from `db`.
///
/// Intended for explaining optimizer transcripts and debugging programs;
/// provenance tracking roughly doubles evaluation cost and memory.
Result<Derivation> ExplainFact(const Program& program, const Database& db,
                               PredicateId predicate, const Tuple& fact);

/// Renders the tree, one fact per line, indented by depth:
///   g(1, 3)                        [rule 1]
///     g(1, 2)                      [rule 0]
///       a(1, 2)                    [input]
///     ...
std::string ToString(const Derivation& derivation, const SymbolTable& symbols);

}  // namespace datalog

#endif  // DATALOG_EVAL_PROVENANCE_H_
