#include "eval/compiled_rule.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/interning.h"

namespace datalog {

void MatchFrame::Reset(const CompiledRule& plan) {
  slots.assign(static_cast<std::size_t>(plan.num_slots()), Value());
  keys.resize(plan.num_steps());
  sources.assign(plan.num_steps(), DepthSource());
  for (std::size_t d = 0; d < plan.num_steps(); ++d) {
    // Constants are baked into the buffer once; per-probe key_fill
    // patches only the bound-variable positions.
    keys[d] = plan.steps()[d].key_template;
  }
}

CompiledRule CompiledRule::Compile(const Rule& rule, std::size_t delta_pos,
                                   bool use_old, const Database& full,
                                   const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = BuildDeltaPassAtoms(rule, delta_pos, use_old);
  plan.has_rule_ = true;
  plan.head_ = rule.head();
  plan.head_predicate_ = rule.head().predicate();
  for (const Literal& lit : rule.body()) {
    if (!lit.negated) continue;
    plan.negated_.push_back(lit.atom);
    plan.negated_preds_.push_back(lit.atom.predicate());
  }
  plan.BuildSchedules(full, delta);
  return plan;
}

CompiledRule CompiledRule::CompileAtoms(std::vector<PlannedAtom> atoms,
                                        const Database& full,
                                        const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = std::move(atoms);
  plan.BuildSchedules(full, delta);
  return plan;
}

void CompiledRule::BuildSchedules(const Database& full,
                                  const Database* delta) {
  greedy_ = GreedyJoinOrderingEnabled();
  use_index_ = IndexLookupsEnabled();
  multiway_ = MultiwayJoinsEnabled();
  hints_version_ = JoinOrderHintsVersion();
  steps_.clear();
  var_slots_.clear();
  num_slots_ = 0;
  shape_ = PlanShape::kLeftDeep;
  mw_candidate_ = false;
  mw_steps_.clear();

  const std::vector<PlannedAtom> order = PlanJoinOrder(full, delta, atoms_);

  std::unordered_map<VariableId, int> slot_of;
  auto slot_for = [&](VariableId v) {
    auto [it, inserted] = slot_of.emplace(v, num_slots_);
    if (inserted) {
      var_slots_.emplace_back(v, num_slots_);
      ++num_slots_;
    }
    return it->second;
  };

  std::unordered_set<VariableId> bound_before;  // by atoms 0..d-1
  steps_.reserve(order.size());
  for (const PlannedAtom& planned : order) {
    const Atom& atom = planned.atom;
    CompiledAtomStep step;
    step.predicate = atom.predicate();
    step.arity = atom.arity();
    step.source = planned.source;
    const Database& src =
        planned.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                                 : full;
    step.planned_size = src.relation(atom.predicate()).size();

    std::unordered_set<VariableId> written_here;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        step.key_cols.push_back(i);
        step.key_template.push_back(t.value());
        step.key_template_ids.push_back(
            ValueDictionary::Global().Intern(t.value()));
        continue;
      }
      const VariableId v = t.var();
      if (bound_before.contains(v)) {
        step.key_cols.push_back(i);
        step.key_template.push_back(Value());
        step.key_template_ids.push_back(ValueDictionary::kInvalidId);
        step.key_fill.push_back(CompiledAtomStep::KeyFill{
            static_cast<int>(step.key_template.size()) - 1, slot_for(v)});
      } else if (written_here.insert(v).second) {
        step.writes.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      } else {
        step.checks.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      }
    }
    for (const Term& t : atom.args()) {
      if (t.is_variable()) bound_before.insert(t.var());
    }
    // Lower each repeated-variable check to a row-local column pair: the
    // checked slot is always written by this same step (that is what
    // made it a check instead of a key position), so the batch executor
    // can compare the two raw columns of the candidate row directly.
    for (const CompiledAtomStep::SlotRef& c : step.checks) {
      for (const CompiledAtomStep::SlotRef& w : step.writes) {
        if (w.slot == c.slot) {
          step.id_checks.emplace_back(w.col, c.col);
          break;
        }
      }
    }
    steps_.push_back(std::move(step));
  }

  auto compile_terms = [&](const Atom& atom) {
    std::vector<CompiledTerm> terms;
    terms.reserve(atom.args().size());
    for (const Term& t : atom.args()) {
      CompiledTerm ct;
      if (t.is_constant()) {
        ct.is_constant = true;
        ct.value = t.value();
        ct.value_id = ValueDictionary::Global().Intern(t.value());
      } else {
        auto it = slot_of.find(t.var());
        // A variable the positive body never binds keeps slot -1; using
        // it throws at match time, like the legacy Binding::at.
        ct.slot = it == slot_of.end() ? -1 : it->second;
      }
      terms.push_back(ct);
    }
    return terms;
  };
  if (has_rule_) {
    head_terms_ = compile_terms(head_);
    negated_terms_.clear();
    negated_terms_.reserve(negated_.size());
    for (const Atom& atom : negated_) {
      negated_terms_.push_back(compile_terms(atom));
    }
  }
  // The batch executor instantiates heads and negation keys straight
  // from the u32 frame, so it has no way to reproduce the unbound-
  // variable throw; rules with a slot the positive body never binds
  // stay on the depth-first path.
  auto all_bound = [](const std::vector<CompiledTerm>& terms) {
    for (const CompiledTerm& t : terms) {
      if (!t.is_constant && t.slot < 0) return false;
    }
    return true;
  };
  batch_ok_ = has_rule_ && all_bound(head_terms_);
  for (const std::vector<CompiledTerm>& terms : negated_terms_) {
    if (!all_bound(terms)) batch_ok_ = false;
  }

  // Plan-shape selection (docs/multiway_joins.md): cyclic bodies of
  // estimated width >= 2 get the generic multiway-intersection shape --
  // when the multiway and index knobs are on, the plan qualifies for
  // id-space emission (batch_ok_), no explicit join-order hint covers
  // the body (a hint is a request for a specific left-deep order), and
  // every participating relation is non-empty. The size condition is
  // what lets the >= 4x drift replanning flip the shape between rounds:
  // a plan built while some relation was still empty stays left-deep
  // and upgrades once the relation fills in.
  if (batch_ok_ && MultiwayEligibleBody(atoms_)) {
    const JoinOrderHints* hints = InstalledJoinOrderHints();
    const bool hinted =
        hints != nullptr && hints->order.contains(BodyFingerprint(atoms_));
    // Structural candidacy is size-independent; it decides whether drift
    // can ever flip this plan's shape (NeedsReplan consults it).
    mw_candidate_ = !hinted;
    if (multiway_ && use_index_ && !hinted) {
      bool all_live = !steps_.empty();
      for (const CompiledAtomStep& step : steps_) {
        if (step.planned_size == 0 || step.arity == 0) all_live = false;
      }
      if (all_live) {
        shape_ = PlanShape::kMultiway;
        BuildMultiwaySchedules(order, slot_of);
      }
    }
  }
  // Lower the finished schedules to bytecode (empty when the plan does
  // not qualify for id-space execution). Replan lands here too, so the
  // program always mirrors the current struct schedules.
  bc_ = bytecode::Lower(*this);
  compiled_ = true;
}

void CompiledRule::BuildMultiwaySchedules(
    const std::vector<PlannedAtom>& order,
    const std::unordered_map<VariableId, int>& slot_of) {
  // Gather, per variable (addressed by its frame slot), the atoms that
  // mention it and the smallest participating relation.
  struct VarInfo {
    std::vector<std::size_t> atoms;
    std::size_t min_size = std::numeric_limits<std::size_t>::max();
  };
  std::vector<VarInfo> info(static_cast<std::size_t>(num_slots_));
  for (std::size_t d = 0; d < order.size(); ++d) {
    for (const Term& t : order[d].atom.args()) {
      if (!t.is_variable()) continue;
      VarInfo& vi = info[static_cast<std::size_t>(slot_of.at(t.var()))];
      if (vi.atoms.empty() || vi.atoms.back() != d) vi.atoms.push_back(d);
      vi.min_size = std::min(vi.min_size, steps_[d].planned_size);
    }
  }

  // Fixed variable order: most-constrained first (mentioned by the most
  // atoms), then smallest participating relation, then slot index (the
  // left-deep first-occurrence order) -- fully deterministic given the
  // planned sizes. A triangle body orders its three variables x, y, z.
  std::vector<int> var_order(static_cast<std::size_t>(num_slots_));
  for (int s = 0; s < num_slots_; ++s) {
    var_order[static_cast<std::size_t>(s)] = s;
  }
  std::sort(var_order.begin(), var_order.end(), [&](int a, int b) {
    const VarInfo& va = info[static_cast<std::size_t>(a)];
    const VarInfo& vb = info[static_cast<std::size_t>(b)];
    if (va.atoms.size() != vb.atoms.size()) {
      return va.atoms.size() > vb.atoms.size();
    }
    if (va.min_size != vb.min_size) return va.min_size < vb.min_size;
    return a < b;
  });

  std::unordered_set<int> bound_slots;
  for (int s : var_order) {
    const VarInfo& vi = info[static_cast<std::size_t>(s)];
    MultiwayStep step;
    step.slot = s;
    for (std::size_t d : vi.atoms) {
      const Atom& atom = order[d].atom;
      MultiwayProbe probe;
      probe.atom = d;
      for (int i = 0; i < atom.arity(); ++i) {
        const Term& t = atom.args()[static_cast<std::size_t>(i)];
        if (t.is_constant()) {
          const std::uint32_t id = ValueDictionary::Global().Intern(t.value());
          probe.bound_cols.push_back(i);
          probe.key_template_ids.push_back(id);
          probe.union_cols.push_back(i);
          probe.union_template_ids.push_back(id);
          continue;
        }
        const int ts = slot_of.at(t.var());
        if (ts == s) {
          probe.var_cols.push_back(i);
          probe.union_cols.push_back(i);
          probe.union_template_ids.push_back(ValueDictionary::kInvalidId);
          probe.union_var_positions.push_back(
              static_cast<int>(probe.union_template_ids.size()) - 1);
        } else if (bound_slots.contains(ts)) {
          probe.bound_cols.push_back(i);
          probe.key_template_ids.push_back(ValueDictionary::kInvalidId);
          probe.key_fill.push_back(CompiledAtomStep::KeyFill{
              static_cast<int>(probe.key_template_ids.size()) - 1, ts});
          probe.union_cols.push_back(i);
          probe.union_template_ids.push_back(ValueDictionary::kInvalidId);
          probe.union_key_fill.push_back(CompiledAtomStep::KeyFill{
              static_cast<int>(probe.union_template_ids.size()) - 1, ts});
        }
        // Variables bound by later steps do not constrain this probe.
      }
      probe.unconditional = probe.bound_cols.empty();
      step.probes.push_back(std::move(probe));
    }
    bound_slots.insert(s);
    mw_steps_.push_back(std::move(step));
  }
}

bool CompiledRule::NeedsReplan(const Database& full,
                               const Database* delta) const {
  if (greedy_ != GreedyJoinOrderingEnabled() ||
      use_index_ != IndexLookupsEnabled() ||
      multiway_ != MultiwayJoinsEnabled() ||
      hints_version_ != JoinOrderHintsVersion()) {
    return true;
  }
  // With greedy ordering off, sizes matter only if drift could flip the
  // plan's shape: shape selection requires every relation non-empty, so
  // on a structurally multiway-candidate body a fill-in upgrades
  // left-deep to multiway (and an EraseAll downgrades it back). Bodies
  // that can never go multiway (too few atoms, acyclic, hinted) keep
  // the fixed-order never-replan behavior.
  if (!greedy_ && !(multiway_ && use_index_ && mw_candidate_)) return false;
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    // Clamp to 1 so empty relations compare on the same log scale
    // instead of always forcing a replan.
    const std::size_t now =
        std::max<std::size_t>(src.relation(step.predicate).size(), 1);
    const std::size_t then = std::max<std::size_t>(step.planned_size, 1);
    if (now >= 4 * then || then >= 4 * now) return true;
  }
  return false;
}

void CompiledRule::Replan(const Database& full, const Database* delta) {
  BuildSchedules(full, delta);
}

void CompiledRule::EnsureIndexes(const Database& full,
                                 const Database* delta) const {
  if (!use_index_) return;  // knob off: Execute only scans
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    const Relation& rel = src.relation(step.predicate);
    if (rel.empty() || rel.arity() != step.arity) continue;
    // Partially bound probes use the index; fully bound probes use set
    // membership except against the old snapshot, which needs row ids
    // (including the zero-arity case, whose degenerate empty-column
    // index maps the empty key to every row). Unbound non-old atoms are
    // full scans and probe nothing.
    const bool fully_bound =
        static_cast<int>(step.key_cols.size()) == step.arity;
    if (fully_bound ? step.source == AtomSource::kOld
                    : !step.key_cols.empty()) {
      rel.EnsureIndex(step.key_cols);
    }
  }
  // Multiway probes and root candidate lists (empty unless the plan
  // shape is kMultiway): pre-built so the parallel fan-out stays
  // read-only on the multiway path too. The left-deep loop above is
  // still needed -- ApplyMultiway falls back to Execute when a relation
  // turns out not to be columnar at run time.
  for (const MultiwayStep& mw_step : mw_steps_) {
    for (const MultiwayProbe& probe : mw_step.probes) {
      const CompiledAtomStep& step = steps_[probe.atom];
      const Database& src =
          step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                                : full;
      const Relation& rel = src.relation(step.predicate);
      if (rel.empty() || rel.arity() != step.arity) continue;
      if (probe.unconditional) {
        if (step.source != AtomSource::kOld && probe.var_cols.size() == 1 &&
            rel.columnar()) {
          rel.EnsureSortedKeys(probe.var_cols[0]);
        }
        // Old-snapshot and repeated-variable roots are built by scanning
        // rows at Apply time: reads only, no index to pre-build.
      } else {
        rel.EnsureIndex(probe.bound_cols);
        // Membership seeks for probes that are not the iteration source
        // go through the index on bound-plus-variable columns.
        rel.EnsureIndex(probe.union_cols);
      }
    }
  }
}

bool CompiledRule::NegationHolds(const Database& full, const MatchFrame& frame,
                                 Tuple* scratch) const {
  for (std::size_t i = 0; i < negated_terms_.size(); ++i) {
    FillTerms(negated_terms_[i], frame, scratch);
    if (full.Contains(negated_preds_[i], *scratch)) return false;
  }
  return true;
}

Tuple CompiledRule::InstantiateHeadFromFrame(const MatchFrame& frame) const {
  Tuple tuple;
  FillTerms(head_terms_, frame, &tuple);
  return tuple;
}

bool CompiledRule::ApplyBatch(const Database& full, const Database* delta,
                              const OldLimits* old_limits, Database* out,
                              MatchStats* stats,
                              std::size_t* new_facts) const {
  // Loop-invariant per-depth state, resolved exactly as Execute resolves
  // MatchFrame::DepthSource -- same liveness rule, same limit, same
  // index-preparation condition -- so the two executors probe the same
  // structures in the same order.
  struct BatchSource {
    const Relation* rel = nullptr;
    std::size_t limit = 0;
    bool dead = false;
    bool fully_bound = false;
    Relation::SingleIndexView single_index;
    Relation::MultiIndexView multi_index;
  };
  std::vector<BatchSource> sources(steps_.size());
  for (std::size_t d = 0; d < steps_.size(); ++d) {
    const CompiledAtomStep& step = steps_[d];
    const Database& src =
        step.source == AtomSource::kDelta ? *delta : full;
    const Relation& rel = src.relation(step.predicate);
    BatchSource& bs = sources[d];
    bs.rel = &rel;
    bs.limit = rel.size();
    bs.dead = rel.empty() || rel.arity() != step.arity;
    if (step.source == AtomSource::kOld && !bs.dead) {
      bs.limit = OldLimitFor(old_limits, step.predicate);
      bs.dead = bs.limit == 0;
    }
    // A live row-store relation (constructed before the knob flipped on)
    // has no id columns to scan: bail out before any counter moves and
    // let Apply run the depth-first path instead.
    if (!bs.dead && !rel.columnar()) return false;
    bs.fully_bound =
        static_cast<int>(step.key_cols.size()) == step.arity;
    const bool probes_index =
        use_index_ && (bs.fully_bound ? step.source == AtomSource::kOld
                                      : !step.key_cols.empty());
    if (!bs.dead && probes_index) {
      if (step.key_cols.size() == 1) {
        bs.single_index = rel.PrepareSingleIndex(step.key_cols[0]);
      } else {
        bs.multi_index = rel.PrepareIndex(step.key_cols);
      }
    }
  }

  // The frontier: `cur_count` flat frames of `stride` u32 slots each,
  // expanded one join depth at a time. Frames are appended in the order
  // their parents are visited and, per parent, in the order the depth's
  // rows are visited -- which is exactly the depth-first visit order, so
  // the emit boundary sees complete matches in the same sequence Execute
  // would produce.
  const std::size_t stride = static_cast<std::size_t>(num_slots_);
  std::vector<std::uint32_t> cur(stride, 0u);  // one root frame
  std::size_t cur_count = 1;
  std::vector<std::uint32_t> next;
  std::vector<std::uint32_t> key;

  for (std::size_t d = 0; d < steps_.size() && cur_count != 0; ++d) {
    const CompiledAtomStep& step = steps_[d];
    const BatchSource& bs = sources[d];
    if (bs.dead) {
      // Every parent frame dies here with no counter bump, matching the
      // depth-first early return.
      cur_count = 0;
      break;
    }
    const Relation& rel = *bs.rel;
    const bool old_only = step.source == AtomSource::kOld;
    const std::size_t limit = bs.limit;
    key = step.key_template_ids;  // constants pre-filled
    next.clear();
    std::size_t next_count = 0;

    // The batch try_row: extend parent frame `slots` by candidate row
    // `r` into `next`, dropping it on a repeated-variable mismatch. The
    // checks compare two raw columns of the same row (see id_checks);
    // the writes gather the row's free-variable columns into the child.
    auto emit_row = [&](const std::uint32_t* slots, std::uint32_t r) {
      for (const auto& [first_col, repeat_col] : step.id_checks) {
        if (rel.column(first_col)[r] != rel.column(repeat_col)[r]) return;
      }
      next.resize((next_count + 1) * stride);
      std::uint32_t* dst = next.data() + next_count * stride;
      if (stride != 0) std::copy(slots, slots + stride, dst);
      for (const CompiledAtomStep::SlotRef& w : step.writes) {
        dst[static_cast<std::size_t>(w.slot)] = rel.column(w.col)[r];
      }
      ++next_count;
    };

    for (std::size_t f = 0; f < cur_count; ++f) {
      const std::uint32_t* slots = cur.data() + f * stride;
      if (stats != nullptr) ++stats->index_lookups;
      for (const CompiledAtomStep::KeyFill& kf : step.key_fill) {
        key[static_cast<std::size_t>(kf.key_index)] =
            slots[static_cast<std::size_t>(kf.slot)];
      }

      if (use_index_ && bs.fully_bound) {
        // Fully bound: membership test; the old snapshot additionally
        // needs a matching row below the limit.
        if (stats != nullptr) ++stats->tuples_scanned;
        bool matched = false;
        if (old_only) {
          const std::vector<std::uint32_t>& row_ids =
              step.key_cols.size() == 1 ? bs.single_index.FindId(key[0])
                                        : bs.multi_index.FindIds(key);
          for (std::uint32_t row_id : row_ids) {
            if (row_id < limit) {
              matched = true;
              break;
            }
          }
        } else {
          // key_cols covers every column in order, so `key` is the full
          // id row.
          matched = rel.ContainsIds(key);
        }
        if (matched) {
          // Survives unchanged: a fully bound atom writes no slot.
          next.resize((next_count + 1) * stride);
          if (stride != 0) {
            std::copy(slots, slots + stride,
                      next.data() + next_count * stride);
          }
          ++next_count;
        }
        continue;
      }

      if (step.key_cols.empty()) {
        for (std::size_t i = 0; i < limit; ++i) {
          if (stats != nullptr) ++stats->tuples_scanned;
          emit_row(slots, static_cast<std::uint32_t>(i));
        }
        continue;
      }

      if (!use_index_) {
        for (std::size_t i = 0; i < limit; ++i) {
          if (stats != nullptr) ++stats->tuples_scanned;
          bool matches = true;
          for (std::size_t k = 0; k < step.key_cols.size(); ++k) {
            if (rel.column(step.key_cols[k])[i] != key[k]) {
              matches = false;
              break;
            }
          }
          if (matches) emit_row(slots, static_cast<std::uint32_t>(i));
        }
        continue;
      }

      const std::vector<std::uint32_t>& row_ids =
          step.key_cols.size() == 1 ? bs.single_index.FindId(key[0])
                                    : bs.multi_index.FindIds(key);
      for (std::uint32_t row_id : row_ids) {
        if (old_only && row_id >= limit) continue;
        if (stats != nullptr) ++stats->tuples_scanned;
        emit_row(slots, row_id);
      }
    }

    cur.swap(next);
    cur_count = next_count;
  }

  // Emit boundary: the only place ids meet Values again -- and even here
  // only inside InsertIds for genuinely new rows. Negated literals are
  // probed in id space against `full` (ContainsIds handles a row-store
  // relation, so negation over a predicate the plan never steps through
  // is safe on either backend). Derivations are buffered until the
  // enumeration is fully consumed because `out` may alias `full`.
  std::vector<std::uint32_t> derived_ids;
  std::size_t derived_count = 0;
  const std::size_t head_arity = head_terms_.size();
  std::vector<std::uint32_t> neg_key;
  for (std::size_t f = 0; f < cur_count; ++f) {
    const std::uint32_t* slots = cur.data() + f * stride;
    if (stats != nullptr) ++stats->substitutions;
    bool excluded = false;
    for (std::size_t i = 0; i < negated_terms_.size() && !excluded; ++i) {
      neg_key.clear();
      for (const CompiledTerm& t : negated_terms_[i]) {
        neg_key.push_back(t.is_constant
                              ? t.value_id
                              : slots[static_cast<std::size_t>(t.slot)]);
      }
      if (full.relation(negated_preds_[i]).ContainsIds(neg_key)) {
        excluded = true;
      }
    }
    if (excluded) continue;
    for (const CompiledTerm& t : head_terms_) {
      derived_ids.push_back(t.is_constant
                                ? t.value_id
                                : slots[static_cast<std::size_t>(t.slot)]);
    }
    ++derived_count;
  }

  std::size_t added = 0;
  std::vector<std::uint32_t> row(head_arity);
  Relation& head_rel = out->MutableRelation(head_predicate_);
  if (head_rel.columnar()) head_rel.ReserveRows(derived_count);
  for (std::size_t i = 0; i < derived_count; ++i) {
    for (std::size_t k = 0; k < head_arity; ++k) {
      row[k] = derived_ids[i * head_arity + k];
    }
    if (head_rel.InsertIds(row)) ++added;
  }
  *new_facts = added;
  return true;
}

bool CompiledRule::ApplyMultiway(const Database& full, const Database* delta,
                                 const OldLimits* old_limits, Database* out,
                                 MatchStats* stats,
                                 std::size_t* new_facts) const {
  // Per-atom runtime state, resolved like ApplyBatch's BatchSource (same
  // liveness rule, same old-snapshot limit).
  struct AtomRt {
    const Relation* rel = nullptr;
    std::size_t limit = 0;
    bool old_only = false;
    bool dead = false;
  };
  std::vector<AtomRt> atoms_rt(steps_.size());
  for (std::size_t d = 0; d < steps_.size(); ++d) {
    const CompiledAtomStep& step = steps_[d];
    const Database& src = step.source == AtomSource::kDelta ? *delta : full;
    const Relation& rel = src.relation(step.predicate);
    AtomRt& at = atoms_rt[d];
    at.rel = &rel;
    at.limit = rel.size();
    at.old_only = step.source == AtomSource::kOld;
    at.dead = rel.empty() || rel.arity() != step.arity;
    if (at.old_only && !at.dead) {
      at.limit = OldLimitFor(old_limits, step.predicate);
      at.dead = at.limit == 0;
    }
    // A live row-store relation has no id columns to intersect: bail out
    // before any counter moves and let Apply fall back to Execute.
    if (!at.dead && !rel.columnar()) return false;
  }
  for (const AtomRt& at : atoms_rt) {
    if (at.dead) {
      // Every atom participates in every intersection, so one dead atom
      // kills every match before any probe happens.
      *new_facts = 0;
      return true;
    }
  }

  // Per-probe runtime state: an index view for bound probes, a root
  // candidate list for unconditional ones. Root lists built by scanning
  // (old snapshots, repeated variables) are owned by a deque so the
  // pointers stay stable as more are added.
  struct ProbeRt {
    const std::vector<std::uint32_t>* root = nullptr;
    Relation::SingleIndexView single;
    Relation::MultiIndexView multi;
    // Bound-plus-variable column index: membership seeks for probes that
    // did not win the iteration-source election.
    Relation::MultiIndexView union_index;
  };
  std::deque<std::vector<std::uint32_t>> owned_roots;
  std::vector<std::vector<ProbeRt>> probes_rt(mw_steps_.size());
  for (std::size_t s = 0; s < mw_steps_.size(); ++s) {
    probes_rt[s].resize(mw_steps_[s].probes.size());
    for (std::size_t p = 0; p < mw_steps_[s].probes.size(); ++p) {
      const MultiwayProbe& probe = mw_steps_[s].probes[p];
      const AtomRt& at = atoms_rt[probe.atom];
      const Relation& rel = *at.rel;
      ProbeRt& rt = probes_rt[s][p];
      if (!probe.unconditional) {
        if (probe.bound_cols.size() == 1) {
          rt.single = rel.PrepareSingleIndex(probe.bound_cols[0]);
        } else {
          rt.multi = rel.PrepareIndex(probe.bound_cols);
        }
        rt.union_index = rel.PrepareIndex(probe.union_cols);
        continue;
      }
      if (!at.old_only && probe.var_cols.size() == 1) {
        // kFull/kDelta cover all rows, so the cached sorted distinct
        // column keys are exactly the candidate list.
        rt.root = &rel.SortedColumnKeys(probe.var_cols[0]);
        continue;
      }
      // Old snapshot (limit may stop short of the cache) or repeated
      // variable: scan rows [0, limit) once per Apply.
      owned_roots.emplace_back();
      std::vector<std::uint32_t>& list = owned_roots.back();
      const std::vector<std::uint32_t>& c0 = rel.column(probe.var_cols[0]);
      for (std::size_t i = 0; i < at.limit; ++i) {
        const std::uint32_t id = c0[i];
        bool ok = true;
        for (std::size_t k = 1; k < probe.var_cols.size(); ++k) {
          if (rel.column(probe.var_cols[k])[i] != id) {
            ok = false;
            break;
          }
        }
        if (ok) list.push_back(id);
      }
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      rt.root = &list;
    }
  }

  // Per-depth scratch, allocated once: projection buffers and key
  // buffers (seek key plus union membership key) per probe, plus the
  // per-probe seek-result pointer array.
  std::vector<std::vector<std::vector<std::uint32_t>>> proj(mw_steps_.size());
  std::vector<std::vector<std::vector<std::uint32_t>>> keys(mw_steps_.size());
  std::vector<std::vector<std::vector<std::uint32_t>>> ukeys(mw_steps_.size());
  std::vector<std::vector<const std::vector<std::uint32_t>*>> lists(
      mw_steps_.size());
  for (std::size_t s = 0; s < mw_steps_.size(); ++s) {
    proj[s].resize(mw_steps_[s].probes.size());
    keys[s].resize(mw_steps_[s].probes.size());
    ukeys[s].resize(mw_steps_[s].probes.size());
    lists[s].resize(mw_steps_[s].probes.size());
  }

  std::vector<std::uint32_t> slots(static_cast<std::size_t>(num_slots_), 0);
  std::vector<std::uint32_t> derived_ids;
  std::size_t derived_count = 0;
  const std::size_t head_arity = head_terms_.size();
  std::vector<std::uint32_t> neg_key;

  // Emit boundary: identical in structure to ApplyBatch's -- bump
  // substitutions per complete assignment, test negation in id space,
  // buffer the head row (out may alias full).
  auto emit = [&]() {
    if (stats != nullptr) ++stats->substitutions;
    for (std::size_t i = 0; i < negated_terms_.size(); ++i) {
      neg_key.clear();
      for (const CompiledTerm& t : negated_terms_[i]) {
        neg_key.push_back(t.is_constant
                              ? t.value_id
                              : slots[static_cast<std::size_t>(t.slot)]);
      }
      if (full.relation(negated_preds_[i]).ContainsIds(neg_key)) return;
    }
    for (const CompiledTerm& t : head_terms_) {
      derived_ids.push_back(t.is_constant
                                ? t.value_id
                                : slots[static_cast<std::size_t>(t.slot)]);
    }
    ++derived_count;
  };

  // Generic join: per variable, seek each containing atom's candidate
  // set (the projection of its sigma-restricted rows), iterate the
  // smallest one, and membership-test each surviving id against the
  // others through their bound-plus-variable indexes. Only the smallest
  // set is ever materialized, so per visit the work is proportional to
  // the tightest atom, not the widest -- the property that makes the
  // intersection worst-case optimal. Candidates are projections of real
  // rows, so a surviving full assignment matches every atom with no
  // final membership check needed.
  auto enumerate = [&](auto&& self, std::size_t depth) -> void {
    if (depth == mw_steps_.size()) {
      emit();
      return;
    }
    const MultiwayStep& step = mw_steps_[depth];
    const std::size_t num_probes = step.probes.size();

    // Election pass: one seek per probe to size its candidate set. The
    // posting size over-counts for old snapshots and repeated variables
    // (filtering happens at projection time), but only as an estimate.
    std::size_t smallest = 0;
    std::size_t smallest_size = std::numeric_limits<std::size_t>::max();
    for (std::size_t p = 0; p < num_probes; ++p) {
      const MultiwayProbe& probe = step.probes[p];
      const ProbeRt& rt = probes_rt[depth][p];
      if (stats != nullptr) ++stats->index_lookups;
      std::size_t est;
      if (probe.unconditional) {
        lists[depth][p] = rt.root;
        est = rt.root->size();
      } else {
        std::vector<std::uint32_t>& key = keys[depth][p];
        key = probe.key_template_ids;
        for (const CompiledAtomStep::KeyFill& kf : probe.key_fill) {
          key[static_cast<std::size_t>(kf.key_index)] =
              slots[static_cast<std::size_t>(kf.slot)];
        }
        const std::vector<std::uint32_t>& row_ids =
            probe.bound_cols.size() == 1 ? rt.single.FindId(key[0])
                                         : rt.multi.FindIds(key);
        lists[depth][p] = &row_ids;  // row ids, pending projection
        est = row_ids.size();
      }
      if (est < smallest_size) {
        smallest_size = est;
        smallest = p;
      }
    }

    // Materialize the winner only.
    const MultiwayProbe& src_probe = step.probes[smallest];
    const std::vector<std::uint32_t>* iter;
    if (src_probe.unconditional) {
      iter = lists[depth][smallest];
    } else {
      const AtomRt& at = atoms_rt[src_probe.atom];
      const Relation& rel = *at.rel;
      const std::vector<std::uint32_t>& c0 =
          rel.column(src_probe.var_cols[0]);
      std::vector<std::uint32_t>& out_list = proj[depth][smallest];
      out_list.clear();
      for (std::uint32_t row_id : *lists[depth][smallest]) {
        if (at.old_only && row_id >= at.limit) continue;
        if (stats != nullptr) ++stats->tuples_scanned;
        const std::uint32_t id = c0[row_id];
        bool ok = true;
        for (std::size_t k = 1; k < src_probe.var_cols.size(); ++k) {
          if (rel.column(src_probe.var_cols[k])[row_id] != id) {
            ok = false;
            break;
          }
        }
        if (ok) out_list.push_back(id);
      }
      std::sort(out_list.begin(), out_list.end());
      out_list.erase(std::unique(out_list.begin(), out_list.end()),
                     out_list.end());
      iter = &out_list;
    }

    // Union membership keys change only at the candidate positions
    // inside the loop; fill the bound positions once per visit.
    for (std::size_t p = 0; p < num_probes; ++p) {
      if (p == smallest || step.probes[p].unconditional) continue;
      const MultiwayProbe& probe = step.probes[p];
      std::vector<std::uint32_t>& ukey = ukeys[depth][p];
      ukey = probe.union_template_ids;
      for (const CompiledAtomStep::KeyFill& kf : probe.union_key_fill) {
        ukey[static_cast<std::size_t>(kf.key_index)] =
            slots[static_cast<std::size_t>(kf.slot)];
      }
    }

    for (const std::uint32_t id : *iter) {
      if (stats != nullptr) ++stats->tuples_scanned;
      bool in_all = true;
      for (std::size_t p = 0; p < num_probes && in_all; ++p) {
        if (p == smallest) continue;
        const MultiwayProbe& probe = step.probes[p];
        const ProbeRt& rt = probes_rt[depth][p];
        if (probe.unconditional) {
          if (stats != nullptr) ++stats->tuples_scanned;
          in_all = std::binary_search(rt.root->begin(), rt.root->end(), id);
          continue;
        }
        if (stats != nullptr) ++stats->index_lookups;
        std::vector<std::uint32_t>& ukey = ukeys[depth][p];
        for (const int pos : probe.union_var_positions) {
          ukey[static_cast<std::size_t>(pos)] = id;
        }
        const std::vector<std::uint32_t>& rows =
            rt.union_index.FindIds(ukey);
        const AtomRt& at = atoms_rt[probe.atom];
        if (at.old_only) {
          in_all = false;
          for (const std::uint32_t row_id : rows) {
            if (row_id < at.limit) {
              in_all = true;
              break;
            }
          }
        } else {
          in_all = !rows.empty();
        }
      }
      if (!in_all) continue;
      slots[static_cast<std::size_t>(step.slot)] = id;
      self(self, depth + 1);
    }
  };
  enumerate(enumerate, 0);

  std::size_t added = 0;
  std::vector<std::uint32_t> row(head_arity);
  Relation& head_rel = out->MutableRelation(head_predicate_);
  if (head_rel.columnar()) head_rel.ReserveRows(derived_count);
  for (std::size_t i = 0; i < derived_count; ++i) {
    for (std::size_t k = 0; k < head_arity; ++k) {
      row[k] = derived_ids[i * head_arity + k];
    }
    if (head_rel.InsertIds(row)) ++added;
  }
  *new_facts = added;
  return true;
}

std::size_t CompiledRule::Apply(const Database& full, const Database* delta,
                                const OldLimits* old_limits, Database* out,
                                MatchStats* stats) const {
  // Bytecode fast path: the lowered program run by the computed-goto VM,
  // covering both plan shapes. Run returns false -- before bumping any
  // counter or inserting anything -- when a live relation is not
  // columnar, in which case the struct executors below re-resolve and
  // take over (they re-check the same condition). The knob is consulted
  // per Apply rather than snapshotted into the plan, so flipping it
  // never replans.
  if (!bc_.empty() && BytecodeExecutionEnabled() && ColumnarStorageEnabled()) {
    std::size_t vm_facts = 0;
    if (MetricsRegistry::Get().enabled()) {
      bytecode::DispatchCounts counts;
      if (bytecode::Run(bc_, full, delta, old_limits, out, stats, &vm_facts,
                        &counts)) {
        bytecode::PublishDispatchCounts(counts);
        return vm_facts;
      }
    } else if (bytecode::Run(bc_, full, delta, old_limits, out, stats,
                             &vm_facts)) {
      return vm_facts;
    }
  }
  // Multiway plan shape: the worst-case-optimal intersection executor.
  // Derives the same fact set and the same substitution count as the
  // left-deep executors (assignments, not row visits, are what both
  // count), but probe/scan counters measure the shape's own work.
  if (shape_ == PlanShape::kMultiway && ColumnarStorageEnabled()) {
    std::size_t mw_facts = 0;
    if (ApplyMultiway(full, delta, old_limits, out, stats, &mw_facts)) {
      return mw_facts;
    }
  }
  // Vectorized fast path: only when the plan qualifies (batch_ok_), the
  // columnar knob is on, and -- checked inside -- every live relation is
  // columnar. An empty body stays on Execute, whose no-step epilogue
  // already handles it. Counters, derivation order and results are
  // bit-identical between the two paths.
  if (batch_ok_ && !steps_.empty() && ColumnarStorageEnabled()) {
    std::size_t batch_facts = 0;
    if (ApplyBatch(full, delta, old_limits, out, stats, &batch_facts)) {
      return batch_facts;
    }
  }
  // Derived tuples are buffered and inserted only after the enumeration
  // finishes: `out` may alias `full`, and inserting while the matcher is
  // iterating rows/indexes of the same relation would invalidate them.
  std::vector<Tuple> derived;
  MatchFrame frame(*this);
  Tuple scratch;
  Execute(full, delta, old_limits, &frame, stats,
          [&](const MatchFrame& f) {
            if (!NegationHolds(full, f, &scratch)) return true;
            derived.push_back(InstantiateHeadFromFrame(f));
            return true;
          });
  std::size_t new_facts = 0;
  for (Tuple& tuple : derived) {
    if (out->AddFact(head_predicate_, std::move(tuple))) ++new_facts;
  }
  return new_facts;
}

const CompiledRule& CompiledRuleCache::Get(std::size_t rule_index,
                                           const Rule& rule,
                                           std::size_t delta_pos,
                                           bool use_old, const Database& full,
                                           const Database* delta) {
  CompiledRule& plan = plans_[std::make_tuple(rule_index, delta_pos, use_old)];
  if (!plan.compiled()) {
    plan = CompiledRule::Compile(rule, delta_pos, use_old, full, delta);
  } else if (plan.NeedsReplan(full, delta)) {
    plan.Replan(full, delta);
  }
  return plan;
}

}  // namespace datalog
