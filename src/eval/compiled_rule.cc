#include "eval/compiled_rule.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace datalog {

void MatchFrame::Reset(const CompiledRule& plan) {
  slots.assign(static_cast<std::size_t>(plan.num_slots()), Value());
  keys.resize(plan.num_steps());
  sources.assign(plan.num_steps(), DepthSource());
  for (std::size_t d = 0; d < plan.num_steps(); ++d) {
    // Constants are baked into the buffer once; per-probe key_fill
    // patches only the bound-variable positions.
    keys[d] = plan.steps()[d].key_template;
  }
}

CompiledRule CompiledRule::Compile(const Rule& rule, std::size_t delta_pos,
                                   bool use_old, const Database& full,
                                   const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = BuildDeltaPassAtoms(rule, delta_pos, use_old);
  plan.has_rule_ = true;
  plan.head_ = rule.head();
  plan.head_predicate_ = rule.head().predicate();
  for (const Literal& lit : rule.body()) {
    if (!lit.negated) continue;
    plan.negated_.push_back(lit.atom);
    plan.negated_preds_.push_back(lit.atom.predicate());
  }
  plan.BuildSchedules(full, delta);
  return plan;
}

CompiledRule CompiledRule::CompileAtoms(std::vector<PlannedAtom> atoms,
                                        const Database& full,
                                        const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = std::move(atoms);
  plan.BuildSchedules(full, delta);
  return plan;
}

void CompiledRule::BuildSchedules(const Database& full,
                                  const Database* delta) {
  greedy_ = GreedyJoinOrderingEnabled();
  use_index_ = IndexLookupsEnabled();
  steps_.clear();
  var_slots_.clear();
  num_slots_ = 0;

  const std::vector<PlannedAtom> order = PlanJoinOrder(full, delta, atoms_);

  std::unordered_map<VariableId, int> slot_of;
  auto slot_for = [&](VariableId v) {
    auto [it, inserted] = slot_of.emplace(v, num_slots_);
    if (inserted) {
      var_slots_.emplace_back(v, num_slots_);
      ++num_slots_;
    }
    return it->second;
  };

  std::unordered_set<VariableId> bound_before;  // by atoms 0..d-1
  steps_.reserve(order.size());
  for (const PlannedAtom& planned : order) {
    const Atom& atom = planned.atom;
    CompiledAtomStep step;
    step.predicate = atom.predicate();
    step.arity = atom.arity();
    step.source = planned.source;
    const Database& src =
        planned.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                                 : full;
    step.planned_size = src.relation(atom.predicate()).size();

    std::unordered_set<VariableId> written_here;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        step.key_cols.push_back(i);
        step.key_template.push_back(t.value());
        continue;
      }
      const VariableId v = t.var();
      if (bound_before.contains(v)) {
        step.key_cols.push_back(i);
        step.key_template.push_back(Value());
        step.key_fill.push_back(CompiledAtomStep::KeyFill{
            static_cast<int>(step.key_template.size()) - 1, slot_for(v)});
      } else if (written_here.insert(v).second) {
        step.writes.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      } else {
        step.checks.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      }
    }
    for (const Term& t : atom.args()) {
      if (t.is_variable()) bound_before.insert(t.var());
    }
    steps_.push_back(std::move(step));
  }

  auto compile_terms = [&](const Atom& atom) {
    std::vector<CompiledTerm> terms;
    terms.reserve(atom.args().size());
    for (const Term& t : atom.args()) {
      CompiledTerm ct;
      if (t.is_constant()) {
        ct.is_constant = true;
        ct.value = t.value();
      } else {
        auto it = slot_of.find(t.var());
        // A variable the positive body never binds keeps slot -1; using
        // it throws at match time, like the legacy Binding::at.
        ct.slot = it == slot_of.end() ? -1 : it->second;
      }
      terms.push_back(ct);
    }
    return terms;
  };
  if (has_rule_) {
    head_terms_ = compile_terms(head_);
    negated_terms_.clear();
    negated_terms_.reserve(negated_.size());
    for (const Atom& atom : negated_) {
      negated_terms_.push_back(compile_terms(atom));
    }
  }
  compiled_ = true;
}

bool CompiledRule::NeedsReplan(const Database& full,
                               const Database* delta) const {
  if (greedy_ != GreedyJoinOrderingEnabled() ||
      use_index_ != IndexLookupsEnabled()) {
    return true;
  }
  if (!greedy_) return false;  // fixed textual order never changes
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    // Clamp to 1 so empty relations compare on the same log scale
    // instead of always forcing a replan.
    const std::size_t now =
        std::max<std::size_t>(src.relation(step.predicate).size(), 1);
    const std::size_t then = std::max<std::size_t>(step.planned_size, 1);
    if (now >= 4 * then || then >= 4 * now) return true;
  }
  return false;
}

void CompiledRule::Replan(const Database& full, const Database* delta) {
  BuildSchedules(full, delta);
}

void CompiledRule::EnsureIndexes(const Database& full,
                                 const Database* delta) const {
  if (!use_index_) return;  // knob off: Execute only scans
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    const Relation& rel = src.relation(step.predicate);
    if (rel.empty() || rel.arity() != step.arity) continue;
    // Partially bound probes use the index; fully bound probes use set
    // membership except against the old snapshot, which needs row ids
    // (including the zero-arity case, whose degenerate empty-column
    // index maps the empty key to every row). Unbound non-old atoms are
    // full scans and probe nothing.
    const bool fully_bound =
        static_cast<int>(step.key_cols.size()) == step.arity;
    if (fully_bound ? step.source == AtomSource::kOld
                    : !step.key_cols.empty()) {
      rel.EnsureIndex(step.key_cols);
    }
  }
}

bool CompiledRule::NegationHolds(const Database& full, const MatchFrame& frame,
                                 Tuple* scratch) const {
  for (std::size_t i = 0; i < negated_terms_.size(); ++i) {
    FillTerms(negated_terms_[i], frame, scratch);
    if (full.Contains(negated_preds_[i], *scratch)) return false;
  }
  return true;
}

Tuple CompiledRule::InstantiateHeadFromFrame(const MatchFrame& frame) const {
  Tuple tuple;
  FillTerms(head_terms_, frame, &tuple);
  return tuple;
}

std::size_t CompiledRule::Apply(const Database& full, const Database* delta,
                                const OldLimits* old_limits, Database* out,
                                MatchStats* stats) const {
  // Derived tuples are buffered and inserted only after the enumeration
  // finishes: `out` may alias `full`, and inserting while the matcher is
  // iterating rows/indexes of the same relation would invalidate them.
  std::vector<Tuple> derived;
  MatchFrame frame(*this);
  Tuple scratch;
  Execute(full, delta, old_limits, &frame, stats,
          [&](const MatchFrame& f) {
            if (!NegationHolds(full, f, &scratch)) return true;
            derived.push_back(InstantiateHeadFromFrame(f));
            return true;
          });
  std::size_t new_facts = 0;
  for (Tuple& tuple : derived) {
    if (out->AddFact(head_predicate_, std::move(tuple))) ++new_facts;
  }
  return new_facts;
}

const CompiledRule& CompiledRuleCache::Get(std::size_t rule_index,
                                           const Rule& rule,
                                           std::size_t delta_pos,
                                           bool use_old, const Database& full,
                                           const Database* delta) {
  CompiledRule& plan = plans_[std::make_tuple(rule_index, delta_pos, use_old)];
  if (!plan.compiled()) {
    plan = CompiledRule::Compile(rule, delta_pos, use_old, full, delta);
  } else if (plan.NeedsReplan(full, delta)) {
    plan.Replan(full, delta);
  }
  return plan;
}

}  // namespace datalog
