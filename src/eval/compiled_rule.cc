#include "eval/compiled_rule.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/interning.h"

namespace datalog {

void MatchFrame::Reset(const CompiledRule& plan) {
  slots.assign(static_cast<std::size_t>(plan.num_slots()), Value());
  keys.resize(plan.num_steps());
  sources.assign(plan.num_steps(), DepthSource());
  for (std::size_t d = 0; d < plan.num_steps(); ++d) {
    // Constants are baked into the buffer once; per-probe key_fill
    // patches only the bound-variable positions.
    keys[d] = plan.steps()[d].key_template;
  }
}

CompiledRule CompiledRule::Compile(const Rule& rule, std::size_t delta_pos,
                                   bool use_old, const Database& full,
                                   const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = BuildDeltaPassAtoms(rule, delta_pos, use_old);
  plan.has_rule_ = true;
  plan.head_ = rule.head();
  plan.head_predicate_ = rule.head().predicate();
  for (const Literal& lit : rule.body()) {
    if (!lit.negated) continue;
    plan.negated_.push_back(lit.atom);
    plan.negated_preds_.push_back(lit.atom.predicate());
  }
  plan.BuildSchedules(full, delta);
  return plan;
}

CompiledRule CompiledRule::CompileAtoms(std::vector<PlannedAtom> atoms,
                                        const Database& full,
                                        const Database* delta) {
  CompiledRule plan;
  plan.atoms_ = std::move(atoms);
  plan.BuildSchedules(full, delta);
  return plan;
}

void CompiledRule::BuildSchedules(const Database& full,
                                  const Database* delta) {
  greedy_ = GreedyJoinOrderingEnabled();
  use_index_ = IndexLookupsEnabled();
  hints_version_ = JoinOrderHintsVersion();
  steps_.clear();
  var_slots_.clear();
  num_slots_ = 0;

  const std::vector<PlannedAtom> order = PlanJoinOrder(full, delta, atoms_);

  std::unordered_map<VariableId, int> slot_of;
  auto slot_for = [&](VariableId v) {
    auto [it, inserted] = slot_of.emplace(v, num_slots_);
    if (inserted) {
      var_slots_.emplace_back(v, num_slots_);
      ++num_slots_;
    }
    return it->second;
  };

  std::unordered_set<VariableId> bound_before;  // by atoms 0..d-1
  steps_.reserve(order.size());
  for (const PlannedAtom& planned : order) {
    const Atom& atom = planned.atom;
    CompiledAtomStep step;
    step.predicate = atom.predicate();
    step.arity = atom.arity();
    step.source = planned.source;
    const Database& src =
        planned.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                                 : full;
    step.planned_size = src.relation(atom.predicate()).size();

    std::unordered_set<VariableId> written_here;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        step.key_cols.push_back(i);
        step.key_template.push_back(t.value());
        step.key_template_ids.push_back(
            ValueDictionary::Global().Intern(t.value()));
        continue;
      }
      const VariableId v = t.var();
      if (bound_before.contains(v)) {
        step.key_cols.push_back(i);
        step.key_template.push_back(Value());
        step.key_template_ids.push_back(ValueDictionary::kInvalidId);
        step.key_fill.push_back(CompiledAtomStep::KeyFill{
            static_cast<int>(step.key_template.size()) - 1, slot_for(v)});
      } else if (written_here.insert(v).second) {
        step.writes.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      } else {
        step.checks.push_back(CompiledAtomStep::SlotRef{i, slot_for(v)});
      }
    }
    for (const Term& t : atom.args()) {
      if (t.is_variable()) bound_before.insert(t.var());
    }
    // Lower each repeated-variable check to a row-local column pair: the
    // checked slot is always written by this same step (that is what
    // made it a check instead of a key position), so the batch executor
    // can compare the two raw columns of the candidate row directly.
    for (const CompiledAtomStep::SlotRef& c : step.checks) {
      for (const CompiledAtomStep::SlotRef& w : step.writes) {
        if (w.slot == c.slot) {
          step.id_checks.emplace_back(w.col, c.col);
          break;
        }
      }
    }
    steps_.push_back(std::move(step));
  }

  auto compile_terms = [&](const Atom& atom) {
    std::vector<CompiledTerm> terms;
    terms.reserve(atom.args().size());
    for (const Term& t : atom.args()) {
      CompiledTerm ct;
      if (t.is_constant()) {
        ct.is_constant = true;
        ct.value = t.value();
        ct.value_id = ValueDictionary::Global().Intern(t.value());
      } else {
        auto it = slot_of.find(t.var());
        // A variable the positive body never binds keeps slot -1; using
        // it throws at match time, like the legacy Binding::at.
        ct.slot = it == slot_of.end() ? -1 : it->second;
      }
      terms.push_back(ct);
    }
    return terms;
  };
  if (has_rule_) {
    head_terms_ = compile_terms(head_);
    negated_terms_.clear();
    negated_terms_.reserve(negated_.size());
    for (const Atom& atom : negated_) {
      negated_terms_.push_back(compile_terms(atom));
    }
  }
  // The batch executor instantiates heads and negation keys straight
  // from the u32 frame, so it has no way to reproduce the unbound-
  // variable throw; rules with a slot the positive body never binds
  // stay on the depth-first path.
  auto all_bound = [](const std::vector<CompiledTerm>& terms) {
    for (const CompiledTerm& t : terms) {
      if (!t.is_constant && t.slot < 0) return false;
    }
    return true;
  };
  batch_ok_ = has_rule_ && all_bound(head_terms_);
  for (const std::vector<CompiledTerm>& terms : negated_terms_) {
    if (!all_bound(terms)) batch_ok_ = false;
  }
  compiled_ = true;
}

bool CompiledRule::NeedsReplan(const Database& full,
                               const Database* delta) const {
  if (greedy_ != GreedyJoinOrderingEnabled() ||
      use_index_ != IndexLookupsEnabled() ||
      hints_version_ != JoinOrderHintsVersion()) {
    return true;
  }
  if (!greedy_) return false;  // fixed textual order never changes
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    // Clamp to 1 so empty relations compare on the same log scale
    // instead of always forcing a replan.
    const std::size_t now =
        std::max<std::size_t>(src.relation(step.predicate).size(), 1);
    const std::size_t then = std::max<std::size_t>(step.planned_size, 1);
    if (now >= 4 * then || then >= 4 * now) return true;
  }
  return false;
}

void CompiledRule::Replan(const Database& full, const Database* delta) {
  BuildSchedules(full, delta);
}

void CompiledRule::EnsureIndexes(const Database& full,
                                 const Database* delta) const {
  if (!use_index_) return;  // knob off: Execute only scans
  for (const CompiledAtomStep& step : steps_) {
    const Database& src =
        step.source == AtomSource::kDelta && delta != nullptr ? *delta
                                                              : full;
    const Relation& rel = src.relation(step.predicate);
    if (rel.empty() || rel.arity() != step.arity) continue;
    // Partially bound probes use the index; fully bound probes use set
    // membership except against the old snapshot, which needs row ids
    // (including the zero-arity case, whose degenerate empty-column
    // index maps the empty key to every row). Unbound non-old atoms are
    // full scans and probe nothing.
    const bool fully_bound =
        static_cast<int>(step.key_cols.size()) == step.arity;
    if (fully_bound ? step.source == AtomSource::kOld
                    : !step.key_cols.empty()) {
      rel.EnsureIndex(step.key_cols);
    }
  }
}

bool CompiledRule::NegationHolds(const Database& full, const MatchFrame& frame,
                                 Tuple* scratch) const {
  for (std::size_t i = 0; i < negated_terms_.size(); ++i) {
    FillTerms(negated_terms_[i], frame, scratch);
    if (full.Contains(negated_preds_[i], *scratch)) return false;
  }
  return true;
}

Tuple CompiledRule::InstantiateHeadFromFrame(const MatchFrame& frame) const {
  Tuple tuple;
  FillTerms(head_terms_, frame, &tuple);
  return tuple;
}

bool CompiledRule::ApplyBatch(const Database& full, const Database* delta,
                              const OldLimits* old_limits, Database* out,
                              MatchStats* stats,
                              std::size_t* new_facts) const {
  // Loop-invariant per-depth state, resolved exactly as Execute resolves
  // MatchFrame::DepthSource -- same liveness rule, same limit, same
  // index-preparation condition -- so the two executors probe the same
  // structures in the same order.
  struct BatchSource {
    const Relation* rel = nullptr;
    std::size_t limit = 0;
    bool dead = false;
    bool fully_bound = false;
    Relation::SingleIndexView single_index;
    Relation::MultiIndexView multi_index;
  };
  std::vector<BatchSource> sources(steps_.size());
  for (std::size_t d = 0; d < steps_.size(); ++d) {
    const CompiledAtomStep& step = steps_[d];
    const Database& src =
        step.source == AtomSource::kDelta ? *delta : full;
    const Relation& rel = src.relation(step.predicate);
    BatchSource& bs = sources[d];
    bs.rel = &rel;
    bs.limit = rel.size();
    bs.dead = rel.empty() || rel.arity() != step.arity;
    if (step.source == AtomSource::kOld && !bs.dead) {
      bs.limit = OldLimitFor(old_limits, step.predicate);
      bs.dead = bs.limit == 0;
    }
    // A live row-store relation (constructed before the knob flipped on)
    // has no id columns to scan: bail out before any counter moves and
    // let Apply run the depth-first path instead.
    if (!bs.dead && !rel.columnar()) return false;
    bs.fully_bound =
        static_cast<int>(step.key_cols.size()) == step.arity;
    const bool probes_index =
        use_index_ && (bs.fully_bound ? step.source == AtomSource::kOld
                                      : !step.key_cols.empty());
    if (!bs.dead && probes_index) {
      if (step.key_cols.size() == 1) {
        bs.single_index = rel.PrepareSingleIndex(step.key_cols[0]);
      } else {
        bs.multi_index = rel.PrepareIndex(step.key_cols);
      }
    }
  }

  // The frontier: `cur_count` flat frames of `stride` u32 slots each,
  // expanded one join depth at a time. Frames are appended in the order
  // their parents are visited and, per parent, in the order the depth's
  // rows are visited -- which is exactly the depth-first visit order, so
  // the emit boundary sees complete matches in the same sequence Execute
  // would produce.
  const std::size_t stride = static_cast<std::size_t>(num_slots_);
  std::vector<std::uint32_t> cur(stride, 0u);  // one root frame
  std::size_t cur_count = 1;
  std::vector<std::uint32_t> next;
  std::vector<std::uint32_t> key;

  for (std::size_t d = 0; d < steps_.size() && cur_count != 0; ++d) {
    const CompiledAtomStep& step = steps_[d];
    const BatchSource& bs = sources[d];
    if (bs.dead) {
      // Every parent frame dies here with no counter bump, matching the
      // depth-first early return.
      cur_count = 0;
      break;
    }
    const Relation& rel = *bs.rel;
    const bool old_only = step.source == AtomSource::kOld;
    const std::size_t limit = bs.limit;
    key = step.key_template_ids;  // constants pre-filled
    next.clear();
    std::size_t next_count = 0;

    // The batch try_row: extend parent frame `slots` by candidate row
    // `r` into `next`, dropping it on a repeated-variable mismatch. The
    // checks compare two raw columns of the same row (see id_checks);
    // the writes gather the row's free-variable columns into the child.
    auto emit_row = [&](const std::uint32_t* slots, std::uint32_t r) {
      for (const auto& [first_col, repeat_col] : step.id_checks) {
        if (rel.column(first_col)[r] != rel.column(repeat_col)[r]) return;
      }
      next.resize((next_count + 1) * stride);
      std::uint32_t* dst = next.data() + next_count * stride;
      if (stride != 0) std::copy(slots, slots + stride, dst);
      for (const CompiledAtomStep::SlotRef& w : step.writes) {
        dst[static_cast<std::size_t>(w.slot)] = rel.column(w.col)[r];
      }
      ++next_count;
    };

    for (std::size_t f = 0; f < cur_count; ++f) {
      const std::uint32_t* slots = cur.data() + f * stride;
      if (stats != nullptr) ++stats->index_lookups;
      for (const CompiledAtomStep::KeyFill& kf : step.key_fill) {
        key[static_cast<std::size_t>(kf.key_index)] =
            slots[static_cast<std::size_t>(kf.slot)];
      }

      if (use_index_ && bs.fully_bound) {
        // Fully bound: membership test; the old snapshot additionally
        // needs a matching row below the limit.
        if (stats != nullptr) ++stats->tuples_scanned;
        bool matched = false;
        if (old_only) {
          const std::vector<std::uint32_t>& row_ids =
              step.key_cols.size() == 1 ? bs.single_index.FindId(key[0])
                                        : bs.multi_index.FindIds(key);
          for (std::uint32_t row_id : row_ids) {
            if (row_id < limit) {
              matched = true;
              break;
            }
          }
        } else {
          // key_cols covers every column in order, so `key` is the full
          // id row.
          matched = rel.ContainsIds(key);
        }
        if (matched) {
          // Survives unchanged: a fully bound atom writes no slot.
          next.resize((next_count + 1) * stride);
          if (stride != 0) {
            std::copy(slots, slots + stride,
                      next.data() + next_count * stride);
          }
          ++next_count;
        }
        continue;
      }

      if (step.key_cols.empty()) {
        for (std::size_t i = 0; i < limit; ++i) {
          if (stats != nullptr) ++stats->tuples_scanned;
          emit_row(slots, static_cast<std::uint32_t>(i));
        }
        continue;
      }

      if (!use_index_) {
        for (std::size_t i = 0; i < limit; ++i) {
          if (stats != nullptr) ++stats->tuples_scanned;
          bool matches = true;
          for (std::size_t k = 0; k < step.key_cols.size(); ++k) {
            if (rel.column(step.key_cols[k])[i] != key[k]) {
              matches = false;
              break;
            }
          }
          if (matches) emit_row(slots, static_cast<std::uint32_t>(i));
        }
        continue;
      }

      const std::vector<std::uint32_t>& row_ids =
          step.key_cols.size() == 1 ? bs.single_index.FindId(key[0])
                                    : bs.multi_index.FindIds(key);
      for (std::uint32_t row_id : row_ids) {
        if (old_only && row_id >= limit) continue;
        if (stats != nullptr) ++stats->tuples_scanned;
        emit_row(slots, row_id);
      }
    }

    cur.swap(next);
    cur_count = next_count;
  }

  // Emit boundary: the only place ids meet Values again -- and even here
  // only inside InsertIds for genuinely new rows. Negated literals are
  // probed in id space against `full` (ContainsIds handles a row-store
  // relation, so negation over a predicate the plan never steps through
  // is safe on either backend). Derivations are buffered until the
  // enumeration is fully consumed because `out` may alias `full`.
  std::vector<std::uint32_t> derived_ids;
  std::size_t derived_count = 0;
  const std::size_t head_arity = head_terms_.size();
  std::vector<std::uint32_t> neg_key;
  for (std::size_t f = 0; f < cur_count; ++f) {
    const std::uint32_t* slots = cur.data() + f * stride;
    if (stats != nullptr) ++stats->substitutions;
    bool excluded = false;
    for (std::size_t i = 0; i < negated_terms_.size() && !excluded; ++i) {
      neg_key.clear();
      for (const CompiledTerm& t : negated_terms_[i]) {
        neg_key.push_back(t.is_constant
                              ? t.value_id
                              : slots[static_cast<std::size_t>(t.slot)]);
      }
      if (full.relation(negated_preds_[i]).ContainsIds(neg_key)) {
        excluded = true;
      }
    }
    if (excluded) continue;
    for (const CompiledTerm& t : head_terms_) {
      derived_ids.push_back(t.is_constant
                                ? t.value_id
                                : slots[static_cast<std::size_t>(t.slot)]);
    }
    ++derived_count;
  }

  std::size_t added = 0;
  std::vector<std::uint32_t> row(head_arity);
  Relation& head_rel = out->MutableRelation(head_predicate_);
  if (head_rel.columnar()) head_rel.ReserveRows(derived_count);
  for (std::size_t i = 0; i < derived_count; ++i) {
    for (std::size_t k = 0; k < head_arity; ++k) {
      row[k] = derived_ids[i * head_arity + k];
    }
    if (head_rel.InsertIds(row)) ++added;
  }
  *new_facts = added;
  return true;
}

std::size_t CompiledRule::Apply(const Database& full, const Database* delta,
                                const OldLimits* old_limits, Database* out,
                                MatchStats* stats) const {
  // Vectorized fast path: only when the plan qualifies (batch_ok_), the
  // columnar knob is on, and -- checked inside -- every live relation is
  // columnar. An empty body stays on Execute, whose no-step epilogue
  // already handles it. Counters, derivation order and results are
  // bit-identical between the two paths.
  if (batch_ok_ && !steps_.empty() && ColumnarStorageEnabled()) {
    std::size_t batch_facts = 0;
    if (ApplyBatch(full, delta, old_limits, out, stats, &batch_facts)) {
      return batch_facts;
    }
  }
  // Derived tuples are buffered and inserted only after the enumeration
  // finishes: `out` may alias `full`, and inserting while the matcher is
  // iterating rows/indexes of the same relation would invalidate them.
  std::vector<Tuple> derived;
  MatchFrame frame(*this);
  Tuple scratch;
  Execute(full, delta, old_limits, &frame, stats,
          [&](const MatchFrame& f) {
            if (!NegationHolds(full, f, &scratch)) return true;
            derived.push_back(InstantiateHeadFromFrame(f));
            return true;
          });
  std::size_t new_facts = 0;
  for (Tuple& tuple : derived) {
    if (out->AddFact(head_predicate_, std::move(tuple))) ++new_facts;
  }
  return new_facts;
}

const CompiledRule& CompiledRuleCache::Get(std::size_t rule_index,
                                           const Rule& rule,
                                           std::size_t delta_pos,
                                           bool use_old, const Database& full,
                                           const Database* delta) {
  CompiledRule& plan = plans_[std::make_tuple(rule_index, delta_pos, use_old)];
  if (!plan.compiled()) {
    plan = CompiledRule::Compile(rule, delta_pos, use_old, full, delta);
  } else if (plan.NeedsReplan(full, delta)) {
    plan.Replan(full, delta);
  }
  return plan;
}

}  // namespace datalog
