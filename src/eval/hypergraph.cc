#include "eval/hypergraph.h"

#include <algorithm>
#include <map>
#include <set>

namespace datalog {
namespace {

JoinHypergraph BuildFromVarLists(
    const std::vector<std::vector<VariableId>>& var_lists) {
  JoinHypergraph graph;
  std::map<VariableId, int> vertex_of;
  for (const std::vector<VariableId>& vars : var_lists) {
    std::vector<int> edge;
    for (VariableId v : vars) {
      auto [it, inserted] =
          vertex_of.emplace(v, static_cast<int>(vertex_of.size()));
      edge.push_back(it->second);
    }
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
    graph.edges.push_back(std::move(edge));
  }
  graph.num_vertices = vertex_of.size();
  return graph;
}

std::vector<VariableId> AtomVariables(const Atom& atom) {
  std::vector<VariableId> vars;
  for (const Term& t : atom.args()) {
    if (t.is_variable()) vars.push_back(t.var());
  }
  return vars;
}

/// Live edges as sorted-unique vectors, dropping empty ones up front
/// (a variable-free atom constrains no join variable).
std::vector<std::vector<int>> LiveEdges(const JoinHypergraph& graph) {
  std::vector<std::vector<int>> edges;
  for (const std::vector<int>& e : graph.edges) {
    if (!e.empty()) edges.push_back(e);
  }
  return edges;
}

bool Contains(const std::vector<int>& outer, const std::vector<int>& inner) {
  return std::includes(outer.begin(), outer.end(), inner.begin(), inner.end());
}

}  // namespace

JoinHypergraph BuildJoinHypergraph(const std::vector<PlannedAtom>& atoms) {
  std::vector<std::vector<VariableId>> var_lists;
  var_lists.reserve(atoms.size());
  for (const PlannedAtom& planned : atoms) {
    var_lists.push_back(AtomVariables(planned.atom));
  }
  return BuildFromVarLists(var_lists);
}

JoinHypergraph BuildJoinHypergraph(const std::vector<Atom>& atoms) {
  std::vector<std::vector<VariableId>> var_lists;
  var_lists.reserve(atoms.size());
  for (const Atom& atom : atoms) var_lists.push_back(AtomVariables(atom));
  return BuildFromVarLists(var_lists);
}

JoinHypergraph BuildJoinHypergraph(
    const std::vector<std::vector<VariableId>>& var_lists) {
  return BuildFromVarLists(var_lists);
}

bool GyoAcyclic(const JoinHypergraph& graph) {
  std::vector<std::vector<int>> edges = LiveEdges(graph);
  bool changed = true;
  while (changed && edges.size() > 1) {
    changed = false;
    // Ear vertices: drop every vertex that occurs in exactly one edge.
    std::map<int, int> degree;
    for (const std::vector<int>& e : edges) {
      for (int v : e) ++degree[v];
    }
    for (std::vector<int>& e : edges) {
      const std::size_t before = e.size();
      e.erase(std::remove_if(e.begin(), e.end(),
                             [&](int v) { return degree[v] == 1; }),
              e.end());
      if (e.size() != before) changed = true;
    }
    // Ear edges: drop empty edges and edges contained in another edge
    // (of two equal edges, the later one is the duplicate).
    for (std::size_t i = 0; i < edges.size();) {
      bool drop = edges[i].empty();
      for (std::size_t j = 0; j < edges.size() && !drop; ++j) {
        if (i == j || !Contains(edges[j], edges[i])) continue;
        if (edges[i] != edges[j] || j < i) drop = true;
      }
      if (drop) {
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
      } else {
        ++i;
      }
    }
  }
  return edges.size() <= 1;
}

int EstimateJoinWidth(const JoinHypergraph& graph) {
  const std::vector<std::vector<int>> edges = LiveEdges(graph);
  if (edges.empty()) return 0;
  if (edges.size() == 1 || GyoAcyclic(graph)) return 1;

  // Primal-graph adjacency over the live vertices.
  std::set<int> vertices;
  std::map<int, std::set<int>> adjacent;
  for (const std::vector<int>& e : edges) {
    for (int v : e) {
      vertices.insert(v);
      for (int w : e) {
        if (w != v) adjacent[v].insert(w);
      }
    }
  }

  // Min-degree elimination: each eliminated vertex yields the bag
  // {v} + neighbors(v); cover the bag greedily with hyperedges. The
  // width estimate is the largest cover needed. Ties break toward the
  // smallest vertex index, keeping the estimate deterministic.
  int width = 1;
  while (!vertices.empty()) {
    int best = *vertices.begin();
    std::size_t best_degree = adjacent[best].size();
    for (int v : vertices) {
      if (adjacent[v].size() < best_degree) {
        best = v;
        best_degree = adjacent[v].size();
      }
    }

    std::set<int> bag = adjacent[best];
    bag.insert(best);
    std::set<int> uncovered = bag;
    int cover = 0;
    while (!uncovered.empty()) {
      std::size_t best_gain = 0;
      std::size_t best_edge = edges.size();
      for (std::size_t e = 0; e < edges.size(); ++e) {
        std::size_t gain = 0;
        for (int v : edges[e]) {
          if (uncovered.contains(v)) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_edge = e;
        }
      }
      if (best_edge == edges.size()) break;  // unreachable: every vertex
                                             // lives in some edge
      for (int v : edges[best_edge]) uncovered.erase(v);
      ++cover;
    }
    width = std::max(width, cover);

    // Eliminate: connect the neighbors pairwise, remove the vertex.
    for (int a : adjacent[best]) {
      for (int b : adjacent[best]) {
        if (a != b) adjacent[a].insert(b);
      }
      adjacent[a].erase(best);
    }
    adjacent.erase(best);
    vertices.erase(best);
  }
  return width;
}

bool MultiwayEligibleBody(const std::vector<PlannedAtom>& atoms) {
  if (atoms.size() < 3) return false;
  for (const PlannedAtom& planned : atoms) {
    bool has_variable = false;
    for (const Term& t : planned.atom.args()) {
      if (t.is_variable()) has_variable = true;
    }
    if (!has_variable) return false;
  }
  const JoinHypergraph graph = BuildJoinHypergraph(atoms);
  return !GyoAcyclic(graph) && EstimateJoinWidth(graph) >= 2;
}

}  // namespace datalog
