#ifndef DATALOG_EVAL_NAIVE_H_
#define DATALOG_EVAL_NAIVE_H_

#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"

namespace datalog {

/// Computes P(db) by naive bottom-up iteration (Section III): repeatedly
/// instantiates every rule against the whole database until no new ground
/// atom can be produced. The input database may contain facts for
/// intentional predicates (the IDB-as-input semantics that uniform
/// equivalence is defined over, Section IV).
///
/// The program must be positive and safe; use EvaluateStratified for
/// programs with negation.
Result<EvalStats> EvaluateNaive(const Program& program, Database* db);

/// Applies every rule of `program` exactly once, non-recursively, against
/// a snapshot of `db` (the operator P^n of Section IX). New facts are
/// added to `out` (not to `db`). Returns the number of facts that were new
/// in `out`.
Result<std::size_t> ApplyOnce(const Program& program, const Database& db,
                              Database* out, EvalStats* stats);

}  // namespace datalog

#endif  // DATALOG_EVAL_NAIVE_H_
