#ifndef DATALOG_EVAL_QUERY_H_
#define DATALOG_EVAL_QUERY_H_

#include <vector>

#include "ast/atom.h"
#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"

namespace datalog {

/// How a query is evaluated.
enum class EvalMethod {
  /// Naive fixpoint. Positive programs only.
  kNaive,
  /// Semi-naive fixpoint, evaluated stratum by stratum: also accepts
  /// programs with stratified negation.
  kSemiNaive,
  /// Magic-sets rewrite, then semi-naive on the rewritten program. Uses
  /// the query's constants to restrict intermediate results (the approach
  /// the paper's optimization is complementary to, Section I). Assumes
  /// the input database holds extensional facts only: the rewrite renames
  /// intentional predicates, so initial IDB facts (the uniform-semantics
  /// inputs of Section IV) are not visible to it -- use kSemiNaive or
  /// kTabledTopDown for those.
  kMagicSemiNaive,
  /// Tabled top-down resolution (QSQ/OLDT family): demand-driven like
  /// magic sets, but without a program rewrite. See eval/topdown.h.
  kTabledTopDown,
};

/// Evaluates `query` (an atom, e.g. G(1, x)) over program + database and
/// returns the matching tuples of the query predicate, each with the same
/// arity as the query. `db` is the input EDB (plus any initial IDB facts);
/// it is not modified. `stats`, when non-null, accumulates the evaluation
/// work, which is how the benchmarks compare join counts.
Result<std::vector<Tuple>> AnswerQuery(const Program& program,
                                       const Database& db, const Atom& query,
                                       EvalMethod method,
                                       EvalStats* stats = nullptr);

}  // namespace datalog

#endif  // DATALOG_EVAL_QUERY_H_
