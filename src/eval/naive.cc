#include "eval/naive.h"

#include "ast/validate.h"
#include "eval/compiled_rule.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {

Result<EvalStats> EvaluateNaive(const Program& program, Database* db) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("eval/naive");
  EvalStats stats;
  stats.per_rule.resize(program.NumRules());
  // Plans persist across naive rounds; only cardinality drift replans.
  CompiledRuleCache cache;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.iterations;
    TraceSpan round_span("naive/round");
    round_span.Note("round", static_cast<std::uint64_t>(stats.iterations));
    const std::uint64_t facts_before_round = stats.facts_derived;
    for (std::size_t ri = 0; ri < program.NumRules(); ++ri) {
      const Rule& rule = program.rules()[ri];
      ++stats.rule_applications;
      ++stats.per_rule[ri].applications;
      TraceSpan apply_span("naive/apply");
      MatchStats local;
      std::size_t added = ApplyRule(rule, *db, db, &local, &cache, ri);
      stats.match.Add(local);
      stats.facts_derived += added;
      stats.per_rule[ri].facts += added;
      stats.per_rule[ri].substitutions += local.substitutions;
      if (apply_span.active()) {
        apply_span.Note("rule", ri);
        apply_span.Note("facts", added);
        apply_span.Note("substitutions", local.substitutions);
      }
      if (added > 0) changed = true;
    }
    round_span.Note("facts", stats.facts_derived - facts_before_round);
  }
  span.Note("iterations", static_cast<std::uint64_t>(stats.iterations));
  span.Note("facts", stats.facts_derived);
  RecordEvalStats("naive", stats);
  return stats;
}

Result<std::size_t> ApplyOnce(const Program& program, const Database& db,
                              Database* out, EvalStats* stats) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  std::size_t added = 0;
  for (const Rule& rule : program.rules()) {
    if (stats != nullptr) ++stats->rule_applications;
    added += ApplyRule(rule, db, out,
                       stats != nullptr ? &stats->match : nullptr);
  }
  if (stats != nullptr) stats->facts_derived += added;
  return added;
}

}  // namespace datalog
