#include "eval/naive.h"

#include "ast/validate.h"

namespace datalog {

Result<EvalStats> EvaluateNaive(const Program& program, Database* db) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  EvalStats stats;
  stats.per_rule.resize(program.NumRules());
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.iterations;
    for (std::size_t ri = 0; ri < program.NumRules(); ++ri) {
      const Rule& rule = program.rules()[ri];
      ++stats.rule_applications;
      ++stats.per_rule[ri].applications;
      MatchStats local;
      std::size_t added = ApplyRule(rule, *db, db, &local);
      stats.match.Add(local);
      stats.facts_derived += added;
      stats.per_rule[ri].facts += added;
      stats.per_rule[ri].substitutions += local.substitutions;
      if (added > 0) changed = true;
    }
  }
  return stats;
}

Result<std::size_t> ApplyOnce(const Program& program, const Database& db,
                              Database* out, EvalStats* stats) {
  DATALOG_RETURN_IF_ERROR(ValidateProgram(program));
  std::size_t added = 0;
  for (const Rule& rule : program.rules()) {
    if (stats != nullptr) ++stats->rule_applications;
    added += ApplyRule(rule, db, out,
                       stats != nullptr ? &stats->match : nullptr);
  }
  if (stats != nullptr) stats->facts_derived += added;
  return added;
}

}  // namespace datalog
