#include "eval/provenance.h"

#include <unordered_map>
#include <utility>

#include "ast/pretty_print.h"
#include "ast/validate.h"
#include "eval/rule_matcher.h"
#include "util/hash.h"

namespace datalog {
namespace {

struct FactKey {
  PredicateId predicate;
  Tuple fact;

  friend bool operator==(const FactKey& a, const FactKey& b) {
    return a.predicate == b.predicate && a.fact == b.fact;
  }
};

struct FactKeyHash {
  std::size_t operator()(const FactKey& key) const {
    std::size_t seed = std::hash<PredicateId>{}(key.predicate);
    HashCombine(seed, TupleHash{}(key.fact));
    return seed;
  }
};

using ProvenanceMap =
    std::unordered_map<FactKey, std::shared_ptr<const Derivation>,
                       FactKeyHash>;

}  // namespace

Result<Derivation> ExplainFact(const Program& program, const Database& db,
                               PredicateId predicate, const Tuple& fact) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));

  Database work(db.symbols());
  work.UnionWith(db);
  ProvenanceMap provenance;
  for (PredicateId pred : work.NonEmptyPredicates()) {
    const Relation& rel = work.relation(pred);
    for (const Tuple& row : rel.rows()) {
      auto node = std::make_shared<Derivation>();
      node->predicate = pred;
      node->fact = row;
      provenance.emplace(FactKey{pred, row}, std::move(node));
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t rule_index = 0; rule_index < program.NumRules();
         ++rule_index) {
      const Rule& rule = program.rules()[rule_index];
      std::vector<PlannedAtom> atoms;
      for (const Literal& lit : rule.body()) {
        atoms.push_back(PlannedAtom{lit.atom, AtomSource::kFull});
      }
      // Buffer new conclusions: mutating `work` mid-enumeration would
      // invalidate the matcher's iteration.
      struct Pending {
        Tuple head;
        std::vector<std::shared_ptr<const Derivation>> premises;
      };
      std::vector<Pending> pending;
      MatchAtoms(work, nullptr, atoms,
                 [&](const Binding& binding) {
                   Tuple head = InstantiateHead(rule.head(), binding);
                   if (work.Contains(rule.head().predicate(), head)) {
                     return true;  // already explained
                   }
                   Pending p;
                   p.head = std::move(head);
                   for (const Literal& lit : rule.body()) {
                     Tuple premise = InstantiateHead(lit.atom, binding);
                     p.premises.push_back(provenance.at(
                         FactKey{lit.atom.predicate(), std::move(premise)}));
                   }
                   pending.push_back(std::move(p));
                   return true;
                 },
                 nullptr);
      for (Pending& p : pending) {
        if (!work.AddFact(rule.head().predicate(), p.head)) continue;
        auto node = std::make_shared<Derivation>();
        node->predicate = rule.head().predicate();
        node->fact = p.head;
        node->rule_index = static_cast<int>(rule_index);
        node->premises = std::move(p.premises);
        provenance.emplace(FactKey{rule.head().predicate(), std::move(p.head)},
                           std::move(node));
        changed = true;
      }
    }
  }

  auto it = provenance.find(FactKey{predicate, fact});
  if (it == provenance.end()) {
    return Status::NotFound("fact is not derivable from the given database");
  }
  return *it->second;
}

namespace {

void Render(const Derivation& node, const SymbolTable& symbols, int depth,
            std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  *out += symbols.PredicateName(node.predicate);
  if (!node.fact.empty()) {
    *out += '(';
    for (std::size_t i = 0; i < node.fact.size(); ++i) {
      if (i != 0) *out += ", ";
      *out += ToString(node.fact[i], symbols);
    }
    *out += ')';
  }
  if (node.IsInputFact()) {
    *out += "   [input]\n";
  } else {
    *out += "   [rule " + std::to_string(node.rule_index) + "]\n";
  }
  for (const auto& premise : node.premises) {
    Render(*premise, symbols, depth + 1, out);
  }
}

}  // namespace

std::string ToString(const Derivation& derivation,
                     const SymbolTable& symbols) {
  std::string out;
  Render(derivation, symbols, 0, &out);
  return out;
}

}  // namespace datalog
