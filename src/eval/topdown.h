#ifndef DATALOG_EVAL_TOPDOWN_H_
#define DATALOG_EVAL_TOPDOWN_H_

#include <cstdint>

#include "ast/atom.h"
#include "ast/program.h"
#include "eval/database.h"
#include "util/result.h"

namespace datalog {

/// Work counters for the tabled top-down evaluator.
struct TopDownStats {
  std::size_t subgoals = 0;        // distinct (predicate, binding) goals
  std::size_t iterations = 0;      // outer fixpoint rounds
  std::uint64_t answers = 0;       // table entries produced
  std::uint64_t body_matches = 0;  // complete rule-body matches
};

/// Tabled top-down evaluation (in the QSQ / OLDT family the paper's
/// introduction cites alongside magic sets): starting from the query
/// goal, rules are resolved top-down, intentional subgoals are memoized
/// in per-(predicate, binding-pattern) answer tables, and the tables are
/// iterated to a fixpoint. Like magic sets, only the part of the IDB
/// relevant to the query is computed; unlike magic sets there is no
/// program rewrite -- demand propagation happens at evaluation time.
///
/// `query` may mix constants and variables; returns the matching tuples
/// of the query predicate (same arity). The program must be positive and
/// safe. The EDB is read-only.
Result<std::vector<Tuple>> SolveTopDown(const Program& program,
                                        const Database& edb, const Atom& query,
                                        TopDownStats* stats = nullptr);

}  // namespace datalog

#endif  // DATALOG_EVAL_TOPDOWN_H_
