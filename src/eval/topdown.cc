#include "eval/topdown.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ast/validate.h"
#include "eval/rule_matcher.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// A memoized subgoal: a predicate with a binding pattern (a value per
/// bound position, nullopt per free position). Two query occurrences with
/// the same pattern share one answer table.
struct SubgoalKey {
  PredicateId pred;
  std::vector<std::optional<Value>> pattern;

  friend bool operator<(const SubgoalKey& a, const SubgoalKey& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.pattern < b.pattern;
  }
};

class Solver {
 public:
  Solver(const Program& program, const Database& edb, TopDownStats* stats)
      : program_(program),
        edb_(edb),
        intentional_(program.IntentionalPredicates()),
        stats_(stats) {}

  std::vector<Tuple> Solve(const Atom& query) {
    SubgoalKey root = KeyForAtom(query, /*binding=*/{});
    Register(root);
    do {
      changed_ = false;
      if (stats_ != nullptr) ++stats_->iterations;
      TraceSpan round_span("topdown/round");
      // order_ may grow (and reallocate) while we iterate; index-based
      // loop over a copied key picks up new subgoals within the round.
      for (std::size_t i = 0; i < order_.size(); ++i) {
        SubgoalKey key = order_[i];
        TraceSpan subgoal_span("topdown/subgoal");
        subgoal_span.Note("subgoal", i);
        ProcessSubgoal(key);
      }
      round_span.Note("subgoals", order_.size());
    } while (changed_);

    // Select the root table's rows that honor repeated variables in the
    // query (the pattern alone cannot express them).
    std::vector<Tuple> out;
    for (const Tuple& row : tables_.at(root).rows()) {
      Binding binding;
      if (RowMatchesAtom(query, row, &binding)) out.push_back(row);
    }
    return out;
  }

 private:
  SubgoalKey KeyForAtom(const Atom& atom, const Binding& binding) const {
    SubgoalKey key;
    key.pred = atom.predicate();
    key.pattern.reserve(atom.args().size());
    for (const Term& t : atom.args()) {
      if (t.is_constant()) {
        key.pattern.emplace_back(t.value());
      } else {
        auto it = binding.find(t.var());
        if (it != binding.end()) {
          key.pattern.emplace_back(it->second);
        } else {
          key.pattern.emplace_back(std::nullopt);
        }
      }
    }
    return key;
  }

  void Register(const SubgoalKey& key) {
    auto [it, inserted] = tables_.emplace(
        key, Relation(static_cast<int>(key.pattern.size())));
    if (!inserted) return;
    order_.push_back(key);
    changed_ = true;
    if (stats_ != nullptr) ++stats_->subgoals;
    // Seed with matching input facts: the input database may assign
    // initial relations to intentional predicates (the uniform semantics
    // of Section IV), and those facts answer the subgoal directly.
    for (const Tuple& row : edb_.relation(key.pred).rows()) {
      if (MatchesPattern(key.pattern, row)) {
        it->second.Insert(row);
      }
    }
  }

  static bool MatchesPattern(const std::vector<std::optional<Value>>& pattern,
                             const Tuple& row) {
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i].has_value() && *pattern[i] != row[i]) return false;
    }
    return true;
  }

  /// Extends `binding` so the atom's arguments match `row`; false on a
  /// conflict (constants or repeated variables).
  static bool RowMatchesAtom(const Atom& atom, const Tuple& row,
                             Binding* binding) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const Term& t = atom.args()[i];
      if (t.is_constant()) {
        if (t.value() != row[i]) return false;
        continue;
      }
      auto [it, inserted] = binding->emplace(t.var(), row[i]);
      if (!inserted && it->second != row[i]) return false;
    }
    return true;
  }

  void ProcessSubgoal(const SubgoalKey& key) {
    for (const Rule& rule : program_.rules()) {
      if (rule.head().predicate() != key.pred) continue;
      // Bind head variables from the subgoal's bound positions.
      Binding binding;
      bool applicable = true;
      for (std::size_t i = 0; i < key.pattern.size() && applicable; ++i) {
        if (!key.pattern[i].has_value()) continue;
        const Term& t = rule.head().args()[i];
        if (t.is_constant()) {
          applicable = (t.value() == *key.pattern[i]);
        } else {
          auto [it, inserted] = binding.emplace(t.var(), *key.pattern[i]);
          if (!inserted && it->second != *key.pattern[i]) applicable = false;
        }
      }
      if (!applicable) continue;
      EnumerateBody(rule, key, 0, &binding);
    }
  }

  void EnumerateBody(const Rule& rule, const SubgoalKey& key,
                     std::size_t idx, Binding* binding) {
    if (idx == rule.body().size()) {
      if (stats_ != nullptr) ++stats_->body_matches;
      Tuple head = InstantiateHead(rule.head(), *binding);
      if (tables_.at(key).Insert(std::move(head))) {
        changed_ = true;
        if (stats_ != nullptr) ++stats_->answers;
      }
      return;
    }
    const Atom& atom = rule.body()[idx].atom;

    if (intentional_.contains(atom.predicate())) {
      SubgoalKey sub = KeyForAtom(atom, *binding);
      Register(sub);
      const Relation& table = tables_.at(sub);
      // Snapshot by size: the table can grow (and its row storage
      // reallocate) below us when the rule is recursive, so iterate up to
      // the current size over a copied row; later rows are picked up by
      // the outer fixpoint rounds.
      std::size_t size = table.size();
      for (std::size_t i = 0; i < size; ++i) {
        Tuple row = table.row(i);
        Binding extended = *binding;
        if (RowMatchesAtom(atom, row, &extended)) {
          EnumerateBody(rule, key, idx + 1, &extended);
        }
      }
      return;
    }

    // Extensional atom: probe the EDB through the index on the bound
    // columns.
    const Relation& rel = edb_.relation(atom.predicate());
    std::vector<int> bound_cols;
    Tuple probe;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        probe.push_back(t.value());
      } else {
        auto it = binding->find(t.var());
        if (it != binding->end()) {
          bound_cols.push_back(i);
          probe.push_back(it->second);
        }
      }
    }
    auto try_row = [&](const Tuple& row) {
      Binding extended = *binding;
      if (RowMatchesAtom(atom, row, &extended)) {
        EnumerateBody(rule, key, idx + 1, &extended);
      }
    };
    if (bound_cols.empty()) {
      for (const Tuple& row : rel.rows()) try_row(row);
    } else if (static_cast<int>(bound_cols.size()) == atom.arity()) {
      if (rel.Contains(probe)) try_row(probe);
    } else {
      for (std::uint32_t row_id : rel.Lookup(bound_cols, probe)) {
        try_row(rel.row(row_id));
      }
    }
  }

  const Program& program_;
  const Database& edb_;
  std::set<PredicateId> intentional_;
  TopDownStats* stats_;
  std::map<SubgoalKey, Relation> tables_;
  std::vector<SubgoalKey> order_;
  bool changed_ = false;
};

}  // namespace

Result<std::vector<Tuple>> SolveTopDown(const Program& program,
                                        const Database& edb, const Atom& query,
                                        TopDownStats* stats) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  if (query.arity() !=
      program.symbols()->PredicateArity(query.predicate())) {
    return Status::InvalidArgument("query arity mismatch");
  }
  TraceSpan span("eval/topdown");
  TopDownStats local;
  Solver solver(program, edb, &local);
  std::vector<Tuple> answers = solver.Solve(query);
  span.Note("subgoals", static_cast<std::uint64_t>(local.subgoals));
  span.Note("iterations", static_cast<std::uint64_t>(local.iterations));
  span.Note("answers", local.answers);
  RecordTopDownStats("topdown", local);
  if (stats != nullptr) {
    stats->subgoals += local.subgoals;
    stats->iterations += local.iterations;
    stats->answers += local.answers;
    stats->body_matches += local.body_matches;
  }
  return answers;
}

}  // namespace datalog
