#ifndef DATALOG_EVAL_HYPERGRAPH_H_
#define DATALOG_EVAL_HYPERGRAPH_H_

#include <cstddef>
#include <vector>

#include "eval/rule_matcher.h"

namespace datalog {

/// The join hypergraph of a rule body: one vertex per distinct variable,
/// one hyperedge per positive atom (the set of distinct variables the
/// atom mentions; constants do not appear). Built once per plan by the
/// compiled-rule planner to pick a plan shape, and by the analyzer's
/// binding pass to flag high-width bodies (see docs/multiway_joins.md).
struct JoinHypergraph {
  std::size_t num_vertices = 0;
  /// Sorted distinct vertex lists, one per atom, in atom order. An atom
  /// with no variables contributes an empty edge.
  std::vector<std::vector<int>> edges;
};

JoinHypergraph BuildJoinHypergraph(const std::vector<PlannedAtom>& atoms);
JoinHypergraph BuildJoinHypergraph(const std::vector<Atom>& atoms);
/// Explicit per-atom variable lists; used by the incremental delta joins
/// to analyze the residual body (the variables still unbound after the
/// initial binding is applied).
JoinHypergraph BuildJoinHypergraph(
    const std::vector<std::vector<VariableId>>& var_lists);

/// GYO ear-removal acyclicity test: repeatedly drop vertices that occur
/// in exactly one edge, then edges contained in another edge; the
/// hypergraph is (alpha-)acyclic iff this reduces it to at most one
/// edge. Paths, trees and star-shaped bodies are acyclic; triangles,
/// k-cycles and cliques are not.
bool GyoAcyclic(const JoinHypergraph& graph);

/// A cheap upper-estimate of the body's hypertree width: 1 for acyclic
/// hypergraphs; otherwise a min-degree elimination of the primal graph,
/// covering each elimination bag greedily with hyperedges, and taking
/// the largest cover size. Exact enough for the planner's purposes:
/// triangles and k-cycles estimate 2, the clique K_n estimates
/// ceil(n/2) (monotone in n).
int EstimateJoinWidth(const JoinHypergraph& graph);

/// The two join-plan shapes CompiledRule can build (see
/// eval/compiled_rule.h): the greedy left-deep probe schedule, or the
/// generic worst-case-optimal multiway intersection that iterates
/// variables instead of atoms.
enum class PlanShape { kLeftDeep, kMultiway };

/// Structural half of the plan-shape heuristic, shared by the planner
/// and the binding pass: true when the body has >= 3 positive atoms,
/// every atom mentions at least one variable, and the join hypergraph
/// is cyclic with estimated width >= 2. The planner layers knob and
/// cardinality conditions on top (see CompiledRule::BuildSchedules);
/// bodies with fewer than 3 atoms never qualify.
bool MultiwayEligibleBody(const std::vector<PlannedAtom>& atoms);

}  // namespace datalog

#endif  // DATALOG_EVAL_HYPERGRAPH_H_
