#include "eval/relation.h"

namespace datalog {

bool Relation::Insert(Tuple tuple) {
  auto [it, inserted] = set_.insert(std::move(tuple));
  if (inserted) {
    rows_.push_back(*it);
  }
  return inserted;
}

std::size_t Relation::EraseAll(const std::vector<Tuple>& tuples) {
  std::size_t erased = 0;
  for (const Tuple& tuple : tuples) {
    erased += set_.erase(tuple);
  }
  if (erased == 0) return 0;
  // Compact the row vector to the surviving tuples, preserving their
  // relative order, and invalidate every index: row ids shifted, so the
  // incremental built_up_to watermarks are meaningless now.
  std::vector<Tuple> survivors;
  survivors.reserve(rows_.size() - erased);
  for (Tuple& row : rows_) {
    if (set_.contains(row)) survivors.push_back(std::move(row));
  }
  rows_ = std::move(survivors);
  indexes_.clear();
  single_indexes_.clear();
  return erased;
}

const std::vector<std::uint32_t>& Relation::EmptyRowIds() {
  static const std::vector<std::uint32_t>* const kEmpty =
      new std::vector<std::uint32_t>();
  return *kEmpty;
}

const std::vector<std::uint32_t>& Relation::Lookup(
    const std::vector<int>& columns, const Tuple& key) const {
  if (columns.size() == 1) return Lookup(columns[0], key[0]);
  ColumnIndex& index = indexes_[columns];
  ExtendIndex(columns, &index);
  auto it = index.map.find(key);
  return it == index.map.end() ? EmptyRowIds() : it->second;
}

const std::vector<std::uint32_t>& Relation::Lookup(int column,
                                                   const Value& key) const {
  SingleColumnIndex& index = single_indexes_[column];
  ExtendSingleIndex(column, &index);
  auto it = index.map.find(key);
  return it == index.map.end() ? EmptyRowIds() : it->second;
}

Relation::SingleIndexView Relation::PrepareSingleIndex(int column) const {
  SingleColumnIndex& index = single_indexes_[column];
  ExtendSingleIndex(column, &index);
  return SingleIndexView(&index.map);
}

Relation::MultiIndexView Relation::PrepareIndex(
    const std::vector<int>& columns) const {
  ColumnIndex& index = indexes_[columns];
  ExtendIndex(columns, &index);
  return MultiIndexView(&index.map);
}

void Relation::EnsureIndex(const std::vector<int>& columns) const {
  if (columns.size() == 1) {
    ExtendSingleIndex(columns[0], &single_indexes_[columns[0]]);
    return;
  }
  ExtendIndex(columns, &indexes_[columns]);
}

void Relation::ExtendIndex(const std::vector<int>& columns,
                           ColumnIndex* index) const {
  // Write-free when already current, so concurrent Lookups on an
  // EnsureIndex'd column set never race on built_up_to.
  if (index->built_up_to == rows_.size()) return;
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    Tuple key;
    key.reserve(columns.size());
    for (int c : columns) {
      key.push_back(rows_[i][static_cast<std::size_t>(c)]);
    }
    index->map[std::move(key)].push_back(static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

void Relation::ExtendSingleIndex(int column, SingleColumnIndex* index) const {
  // Write-free when already current (frozen-snapshot contract), like
  // ExtendIndex above.
  if (index->built_up_to == rows_.size()) return;
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    index->map[rows_[i][static_cast<std::size_t>(column)]].push_back(
        static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

}  // namespace datalog
