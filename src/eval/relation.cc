#include "eval/relation.h"

#include <algorithm>

namespace datalog {

namespace {
bool columnar_storage_enabled = true;

/// Reusable id scratch buffers for Value->id key conversion on the
/// columnar probe paths. Thread-local so concurrent frozen-snapshot
/// readers never share them.
std::vector<std::uint32_t>& IdScratch() {
  thread_local std::vector<std::uint32_t> scratch;
  return scratch;
}
}  // namespace

void SetColumnarStorage(bool enabled) { columnar_storage_enabled = enabled; }
bool ColumnarStorageEnabled() { return columnar_storage_enabled; }

bool Relation::RowIdTable::InsertOrFind(const Columns& columns,
                                        const std::vector<std::uint32_t>& ids,
                                        std::uint32_t row_id) {
  if ((size_ + 1) * 4 > slots_.size() * 3) Grow(columns);
  const std::size_t mask = slots_.size() - 1;
  std::size_t h = HashIds(ids) & mask;
  while (slots_[h] != 0) {
    if (RowEquals(columns, slots_[h] - 1, ids)) return false;
    h = (h + 1) & mask;
  }
  slots_[h] = row_id + 1;
  ++size_;
  return true;
}

bool Relation::RowIdTable::Contains(
    const Columns& columns, const std::vector<std::uint32_t>& ids) const {
  if (size_ == 0) return false;
  const std::size_t mask = slots_.size() - 1;
  std::size_t h = HashIds(ids) & mask;
  while (slots_[h] != 0) {
    if (RowEquals(columns, slots_[h] - 1, ids)) return true;
    h = (h + 1) & mask;
  }
  return false;
}

void Relation::RowIdTable::Grow(const Columns& columns) {
  ResizeTo(columns, slots_.empty() ? 16 : slots_.size() * 2);
}

void Relation::RowIdTable::Reserve(const Columns& columns,
                                   std::size_t additional) {
  const std::size_t needed = (size_ + additional) * 4 / 3 + 1;
  std::size_t new_size = slots_.empty() ? 16 : slots_.size();
  while (new_size < needed) new_size *= 2;
  if (new_size > slots_.size()) ResizeTo(columns, new_size);
}

void Relation::RowIdTable::ResizeTo(const Columns& columns,
                                    std::size_t new_size) {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(new_size, 0);
  const std::size_t mask = new_size - 1;
  // Deliberately a local buffer, not IdScratch(): the caller's key may
  // alias the scratch vector while we are mid-insert.
  std::vector<std::uint32_t> ids(columns.size());
  for (std::uint32_t slot : old) {
    if (slot == 0) continue;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      ids[c] = columns[c][slot - 1];
    }
    std::size_t h = HashIds(ids) & mask;
    while (slots_[h] != 0) h = (h + 1) & mask;
    slots_[h] = slot;
  }
}

void Relation::RowIdTable::Rebuild(const Columns& columns,
                                   std::size_t num_rows) {
  slots_.clear();
  size_ = 0;
  if (num_rows == 0) return;
  std::vector<std::uint32_t> ids(columns.size());
  for (std::size_t i = 0; i < num_rows; ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      ids[c] = columns[c][i];
    }
    InsertOrFind(columns, ids, static_cast<std::uint32_t>(i));
  }
}

bool Relation::Insert(Tuple tuple) {
  if (!columnar_) {
    auto [it, inserted] = set_.insert(std::move(tuple));
    if (inserted) {
      rows_.push_back(*it);
    }
    return inserted;
  }
  std::vector<std::uint32_t>& ids = IdScratch();
  ValueDictionary::Global().InternRow(tuple, &ids);
  if (!id_table_.InsertOrFind(columns_, ids,
                              static_cast<std::uint32_t>(rows_.size()))) {
    return false;
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(ids[c]);
  }
  rows_.push_back(std::move(tuple));
  return true;
}

bool Relation::InsertIds(const std::vector<std::uint32_t>& ids) {
  if (!columnar_) {
    ValueDictionary& dict = ValueDictionary::Global();
    Tuple tuple;
    tuple.reserve(ids.size());
    for (std::uint32_t id : ids) tuple.push_back(dict.Resolve(id));
    return Insert(std::move(tuple));
  }
  if (!id_table_.InsertOrFind(columns_, ids,
                              static_cast<std::uint32_t>(rows_.size()))) {
    return false;
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(ids[c]);
  }
  // The Tuple row view is resolved from the dictionary only for rows
  // that are genuinely new -- duplicates never touch a Value.
  ValueDictionary& dict = ValueDictionary::Global();
  Tuple tuple;
  tuple.reserve(ids.size());
  for (std::uint32_t id : ids) tuple.push_back(dict.Resolve(id));
  rows_.push_back(std::move(tuple));
  return true;
}

void Relation::ReserveRows(std::size_t additional) {
  // Grow at least geometrically: reserve(size + additional) verbatim on
  // every bulk copy into the same relation would pin capacity to the
  // exact request each time and degrade repeated appends to O(n^2)
  // element moves.
  const std::size_t want = rows_.size() + additional;
  if (want > rows_.capacity()) {
    rows_.reserve(std::max(want, rows_.capacity() * 2));
  }
  if (!columnar_) return;
  for (auto& col : columns_) {
    if (want > col.capacity()) col.reserve(std::max(want, col.capacity() * 2));
  }
  id_table_.Reserve(columns_, additional);
}

bool Relation::AppendRowFrom(const Relation& src, std::size_t row) {
  std::vector<std::uint32_t>& ids = IdScratch();
  ids.resize(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    ids[c] = src.columns_[c][row];
  }
  if (!id_table_.InsertOrFind(columns_, ids,
                              static_cast<std::uint32_t>(rows_.size()))) {
    return false;
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(ids[c]);
  }
  // Copy src's materialized Tuple view instead of resolving the ids
  // through the dictionary -- the whole point of this entry over
  // InsertIds on the bulk copy path.
  rows_.push_back(src.rows_[row]);
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  if (!columnar_) return set_.contains(tuple);
  if (rows_.empty()) return false;
  std::vector<std::uint32_t>& ids = IdScratch();
  // A tuple containing a value the dictionary has never seen cannot be
  // stored in any columnar relation.
  if (!ValueDictionary::Global().LookupRow(tuple, &ids)) return false;
  return id_table_.Contains(columns_, ids);
}

bool Relation::ContainsIds(const std::vector<std::uint32_t>& ids) const {
  if (columnar_) return id_table_.Contains(columns_, ids);
  if (rows_.empty()) return false;
  ValueDictionary& dict = ValueDictionary::Global();
  Tuple tuple;
  tuple.reserve(ids.size());
  for (std::uint32_t id : ids) tuple.push_back(dict.Resolve(id));
  return set_.contains(tuple);
}

std::size_t Relation::EraseAll(const std::vector<Tuple>& tuples) {
  std::size_t erased = 0;
  if (!columnar_) {
    for (const Tuple& tuple : tuples) {
      erased += set_.erase(tuple);
    }
    if (erased == 0) return 0;
    // Compact the row vector to the surviving tuples, preserving their
    // relative order.
    std::vector<Tuple> survivors;
    survivors.reserve(rows_.size() - erased);
    for (Tuple& row : rows_) {
      if (set_.contains(row)) survivors.push_back(std::move(row));
    }
    rows_ = std::move(survivors);
  } else {
    // Collect the distinct stored rows to remove (erasure is cold: the
    // incremental engine runs it between rounds with exclusive access,
    // so a temporary node-based set here is fine).
    std::unordered_set<std::vector<std::uint32_t>, IdRowHash> doomed;
    std::vector<std::uint32_t>& ids = IdScratch();
    ValueDictionary& dict = ValueDictionary::Global();
    for (const Tuple& tuple : tuples) {
      if (!dict.LookupRow(tuple, &ids)) continue;  // never stored
      if (id_table_.Contains(columns_, ids)) {
        if (doomed.insert(ids).second) ++erased;
      }
    }
    if (erased == 0) return 0;
    std::vector<Tuple> survivors;
    survivors.reserve(rows_.size() - erased);
    ids.resize(columns_.size());
    std::vector<std::vector<std::uint32_t>> new_columns(columns_.size());
    for (auto& col : new_columns) col.reserve(rows_.size() - erased);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        ids[c] = columns_[c][i];
      }
      if (doomed.contains(ids)) continue;
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        new_columns[c].push_back(ids[c]);
      }
      survivors.push_back(std::move(rows_[i]));
    }
    columns_ = std::move(new_columns);
    rows_ = std::move(survivors);
    id_table_.Rebuild(columns_, rows_.size());
  }
  // Invalidate every index: row ids shifted, so the incremental
  // built_up_to watermarks are meaningless now. The entries are emptied
  // in place -- NOT erased -- so any outstanding Prepare{Single,}Index
  // view still points at a live map and finds nothing, instead of
  // dangling into freed nodes (the use-after-free the conformance
  // suite's regression test pins down).
  for (auto& [cols, index] : indexes_) {
    index.map.clear();
    index.built_up_to = 0;
  }
  for (auto& [col, index] : single_indexes_) {
    index.map.clear();
    index.built_up_to = 0;
  }
  for (auto& [cols, index] : id_indexes_) {
    index.map.clear();
    index.built_up_to = 0;
  }
  for (auto& [col, index] : single_id_indexes_) {
    index.map.clear();
    index.built_up_to = 0;
  }
  for (auto& [col, cache] : sorted_keys_) {
    cache.keys.clear();
    cache.built_up_to = 0;
  }
  return erased;
}

const std::vector<std::uint32_t>& Relation::SortedColumnKeys(
    int column) const {
  if (!columnar_) return EmptyRowIds();  // row store: no id columns
  SortedKeyCache& cache = sorted_keys_[column];
  if (cache.built_up_to != rows_.size()) {
    // Appended (or erased-and-compacted) rows since the last build: a
    // merge of the new ids is no cheaper than re-sorting the column, so
    // rebuild from scratch. The fixpoint engines call this once per
    // round per root probe, on relations that grow by whole deltas.
    const std::vector<std::uint32_t>& col =
        columns_[static_cast<std::size_t>(column)];
    cache.keys.assign(col.begin(), col.end());
    std::sort(cache.keys.begin(), cache.keys.end());
    cache.keys.erase(std::unique(cache.keys.begin(), cache.keys.end()),
                     cache.keys.end());
    cache.built_up_to = rows_.size();
  }
  return cache.keys;
}

const std::vector<std::uint32_t>& Relation::EmptyRowIds() {
  static const std::vector<std::uint32_t>* const kEmpty =
      new std::vector<std::uint32_t>();
  return *kEmpty;
}

const std::vector<std::uint32_t>& Relation::SingleIndexView::Find(
    const Value& key) const {
  if (id_map_ != nullptr) {
    const std::uint32_t id = ValueDictionary::Global().LookupId(key);
    if (id == ValueDictionary::kInvalidId) return EmptyRowIds();
    return FindId(id);
  }
  auto it = value_map_->find(key);
  return it == value_map_->end() ? EmptyRowIds() : it->second;
}

const std::vector<std::uint32_t>& Relation::MultiIndexView::Find(
    const Tuple& key) const {
  if (id_map_ != nullptr) {
    std::vector<std::uint32_t>& ids = IdScratch();
    if (!ValueDictionary::Global().LookupRow(key, &ids)) {
      return EmptyRowIds();
    }
    return FindIds(ids);
  }
  auto it = value_map_->find(key);
  return it == value_map_->end() ? EmptyRowIds() : it->second;
}

const std::vector<std::uint32_t>& Relation::Lookup(
    const std::vector<int>& columns, const Tuple& key) const {
  if (columns.size() == 1) return Lookup(columns[0], key[0]);
  return PrepareIndex(columns).Find(key);
}

const std::vector<std::uint32_t>& Relation::Lookup(int column,
                                                   const Value& key) const {
  return PrepareSingleIndex(column).Find(key);
}

Relation::SingleIndexView Relation::PrepareSingleIndex(int column) const {
  if (columnar_) {
    SingleIdColumnIndex& index = single_id_indexes_[column];
    ExtendSingleIdIndex(column, &index);
    return SingleIndexView(&index.map);
  }
  SingleColumnIndex& index = single_indexes_[column];
  ExtendSingleIndex(column, &index);
  return SingleIndexView(&index.map);
}

Relation::MultiIndexView Relation::PrepareIndex(
    const std::vector<int>& columns) const {
  if (columnar_) {
    IdColumnIndex& index = id_indexes_[columns];
    ExtendIdIndex(columns, &index);
    return MultiIndexView(&index.map);
  }
  ColumnIndex& index = indexes_[columns];
  ExtendIndex(columns, &index);
  return MultiIndexView(&index.map);
}

void Relation::EnsureIndex(const std::vector<int>& columns) const {
  if (columns.size() == 1) {
    PrepareSingleIndex(columns[0]);
    return;
  }
  PrepareIndex(columns);
}

void Relation::ExtendIndex(const std::vector<int>& columns,
                           ColumnIndex* index) const {
  // Write-free when already current, so concurrent Lookups on an
  // EnsureIndex'd column set never race on built_up_to.
  if (index->built_up_to == rows_.size()) return;
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    Tuple key;
    key.reserve(columns.size());
    for (int c : columns) {
      key.push_back(rows_[i][static_cast<std::size_t>(c)]);
    }
    index->map[std::move(key)].push_back(static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

void Relation::ExtendSingleIndex(int column, SingleColumnIndex* index) const {
  // Write-free when already current (frozen-snapshot contract), like
  // ExtendIndex above.
  if (index->built_up_to == rows_.size()) return;
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    index->map[rows_[i][static_cast<std::size_t>(column)]].push_back(
        static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

void Relation::ExtendIdIndex(const std::vector<int>& columns,
                             IdColumnIndex* index) const {
  if (index->built_up_to == rows_.size()) return;
  std::vector<std::uint32_t> key(columns.size());
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    for (std::size_t k = 0; k < columns.size(); ++k) {
      key[k] = columns_[static_cast<std::size_t>(columns[k])][i];
    }
    index->map[key].push_back(static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

void Relation::ExtendSingleIdIndex(int column,
                                   SingleIdColumnIndex* index) const {
  if (index->built_up_to == rows_.size()) return;
  const std::vector<std::uint32_t>& col =
      columns_[static_cast<std::size_t>(column)];
  for (std::size_t i = index->built_up_to; i < rows_.size(); ++i) {
    index->map[col[i]].push_back(static_cast<std::uint32_t>(i));
  }
  index->built_up_to = rows_.size();
}

}  // namespace datalog
