#ifndef DATALOG_EVAL_BYTECODE_BYTECODE_H_
#define DATALOG_EVAL_BYTECODE_BYTECODE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ast/value.h"
#include "eval/rule_matcher.h"

namespace datalog {

class CompiledRule;

namespace bytecode {

/// The register-based instruction set compiled join plans lower to (see
/// docs/bytecode_vm.md). Operands address the same flat u32 frame slots
/// the struct executors use, so a bytecode run is bit-for-bit
/// interchangeable with ApplyBatch/ApplyMultiway: same MatchStats bumps,
/// same frontier emission order, same derived facts.
///
/// Generic opcodes pair an *open* (resolve the depth's candidate set,
/// bump index_lookups) with a *next* (advance one candidate row, bump
/// tuples_scanned); FILTER/LOAD ops act on the current row. The fused
/// `...EmitAll` superinstructions run the innermost loop -- candidate
/// iteration, filters, slot writes, negation and head emission -- without
/// per-row dispatch; they are what buys the VM its wall-clock edge over
/// the struct interpreter.
enum class Op : std::uint8_t {
  kHalt = 0,
  // LOAD_KEY: keys[a][b] = slots[c]. Patches a bound-variable position
  // of step a's probe key before the depth's open op runs.
  kLoadKey,
  // SCAN open: dead -> jump t; ++index_lookups; rewind step a's row
  // cursor. LOOP in the ISA doc.
  kLoop,
  // SCAN next (END_LOOP edge): cursor exhausted -> jump t; else advance,
  // ++tuples_scanned.
  kLoopNext,
  // INDEX_PROBE open: dead or no prepared view -> jump t;
  // ++index_lookups; position on the posting list for keys[a].
  kProbe,
  // INDEX_PROBE next: list exhausted -> jump t; skips old-snapshot rows
  // at or past the limit without bumping, else ++tuples_scanned.
  kProbeNext,
  // FILTER_CONST: column b of step a's current row != pool constant c ->
  // jump t (continue the enclosing loop).
  kFilterConst,
  // FILTER_KEY: column b of step a's current row != keys[a][c] -> jump t.
  kFilterKey,
  // FILTER_EQ (repeated variable): columns b and c of step a's current
  // row differ -> jump t.
  kFilterEq,
  // LOAD_COL: slots[c] = column b of step a's current row.
  kLoad,
  // Fully-bound membership against the current state: dead -> jump t;
  // ++index_lookups; ++tuples_scanned; keys[a] not present -> jump t.
  kMember,
  // Fully-bound membership against the old snapshot: as kMember but the
  // matching row must predate the old limit.
  kMemberOld,
  // EMIT: ++substitutions; negated literals absent -> buffer the head
  // row ids; always jump t (the innermost loop's next op, or HALT).
  kEmit,
  kJump,  // unconditional jump to t
  // MULTIWAY_SEEK open: elect the smallest candidate list among mw step
  // a's probes (one index_lookups bump per probe), materialize only the
  // winner's projection, fill the union membership keys.
  kSeek,
  // MULTIWAY_SEEK next: exhausted -> jump t; per candidate id
  // ++tuples_scanned, membership-test the other probes (union-index
  // seeks bump index_lookups, sorted-root probes bump tuples_scanned),
  // bind survivors into the step's slot.
  kSeekNext,
  // Fused superinstructions: open + full candidate loop + emission for
  // the innermost depth, then fall through.
  kLoopEmitAll,   // innermost (filtered) scan
  kProbeEmitAll,  // innermost indexed probe
  kSeekEmitAll,   // innermost multiway intersection
  kNumOps,        // sentinel, not a real opcode
};

inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kNumOps);

const char* OpName(Op op);

/// One instruction: opcode plus three small operands and a jump target
/// (absolute instruction index). Unused fields are zero.
struct Insn {
  Op op = Op::kHalt;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t t = 0;
};

/// Pool-reference sentinel for key-template positions patched per probe
/// by kLoadKey (mirrors ValueDictionary::kInvalidId in the resolved
/// arrays).
inline constexpr std::uint32_t kPatched = 0xFFFFFFFFu;

/// One body atom of the lowered plan: the serializable subset of
/// CompiledAtomStep plus the resolved id arrays the VM reads. Constant
/// key positions reference the program's constant pool so a decoded
/// program re-interns them into the decoding process's dictionary.
struct StepDesc {
  std::uint32_t predicate = 0;
  std::uint32_t arity = 0;
  std::uint8_t source = 0;         // AtomSource
  std::vector<int> key_cols;       // strictly increasing bound columns
  std::vector<std::uint32_t> key_template;  // pool refs; kPatched holes
  // Repeated-variable checks as row-local column pairs, and free-
  // variable writes as (column, slot) pairs -- same layout as
  // CompiledAtomStep::id_checks / writes.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> id_checks;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> writes;
  // Resolved from key_template by ResolveConstants (not serialized).
  std::vector<std::uint32_t> key_template_ids;
};

/// A head or negated-literal argument: pool constant or frame slot.
struct TermDesc {
  bool is_constant = false;
  std::uint32_t index = 0;  // pool index (constant) or slot
  std::uint32_t id = 0;     // resolved constant id (not serialized)
};

struct NegDesc {
  std::uint32_t predicate = 0;
  std::vector<TermDesc> terms;
};

/// Serializable mirror of MultiwayProbe (see eval/compiled_rule.h), with
/// constants as pool references.
struct ProbeDesc {
  std::uint32_t atom = 0;  // index into Program::steps
  std::vector<int> var_cols;
  std::vector<int> bound_cols;  // strictly increasing
  std::vector<std::uint32_t> key_template;  // pool refs; kPatched holes
  std::vector<std::pair<std::uint32_t, std::uint32_t>> key_fill;
  bool unconditional = false;
  std::vector<int> union_cols;  // strictly increasing
  std::vector<std::uint32_t> union_template;  // pool refs; kPatched holes
  std::vector<std::pair<std::uint32_t, std::uint32_t>> union_key_fill;
  std::vector<std::uint32_t> union_var_positions;
  // Resolved by ResolveConstants (not serialized).
  std::vector<std::uint32_t> key_template_ids;
  std::vector<std::uint32_t> union_template_ids;
};

struct MwStepDesc {
  std::uint32_t slot = 0;
  std::vector<ProbeDesc> probes;
};

inline constexpr std::uint32_t kBytecodeMagic = 0x43424c44u;  // "DLBC"
inline constexpr std::uint32_t kBytecodeVersion = 1;

/// A lowered join plan: self-contained (constant pool, step and probe
/// descriptor tables, code) so it can be serialized, shipped, validated
/// and executed without the CompiledRule it came from. Symbol-kind
/// constants reference SymbolTable ids, so cross-process transport
/// additionally requires the processes to share a symbol table (the
/// server's workers do; see docs/bytecode_vm.md).
struct Program {
  std::uint32_t version = kBytecodeVersion;
  std::uint8_t shape = 0;  // 0 = left-deep, 1 = multiway
  bool use_index = true;   // knob snapshot at lowering time
  std::uint32_t num_slots = 0;
  std::vector<Value> const_pool;
  std::vector<StepDesc> steps;
  std::uint32_t head_predicate = 0;
  std::vector<TermDesc> head;
  std::vector<NegDesc> negated;
  std::vector<MwStepDesc> mw_steps;
  std::vector<Insn> code;
  // Pool constants interned into this process's dictionary; parallel to
  // const_pool. Rebuilt by ResolveConstants, never serialized.
  std::vector<std::uint32_t> const_ids;

  bool empty() const { return code.empty(); }

  /// Interns the constant pool into the global ValueDictionary and
  /// fills every resolved id array (const_ids, key_template_ids, term
  /// ids). Must run after construction or Decode, before Run.
  void ResolveConstants();
};

/// Lowers a compiled plan to bytecode. Returns an empty program when the
/// plan does not qualify for id-space execution (not batch_ok, empty
/// body, or compiled without a rule head).
Program Lower(const CompiledRule& plan);

/// Static safety check: operand bounds (pc targets, slots, columns,
/// pool references), descriptor-table consistency (strictly increasing
/// key columns, probe shapes), loop nesting via a row-validity dataflow
/// over the control-flow graph. A program that validates executes
/// without undefined behavior on any database; lowered programs always
/// validate. Returns false and fills `error` (if non-null) on rejection.
bool Validate(const Program& program, std::string* error = nullptr);

/// Versioned binary serialization (format v1, little-endian; see
/// docs/bytecode_vm.md). Decode checks structural well-formedness and
/// re-interns the constant pool, but run Validate before executing a
/// program from an untrusted source.
std::vector<std::uint8_t> Encode(const Program& program);
bool Decode(const std::uint8_t* data, std::size_t size, Program* out,
            std::string* error = nullptr);

/// Per-opcode dispatch tallies for the obs layer (bytecode.dispatch).
using DispatchCounts = std::array<std::uint64_t, kNumOps>;

/// Executes a validated program: enumerates body matches and inserts
/// instantiated heads into `out` (which may alias `full`), mirroring
/// CompiledRule::Apply's batch/multiway executors bump for bump.
/// Returns false -- before bumping any counter or inserting anything --
/// when the program cannot run against these databases (a live relation
/// is not columnar, or a relation's arity contradicts the program), in
/// which case the caller falls back to the struct interpreter. When
/// `dispatch` is non-null every executed instruction is tallied per
/// opcode.
bool Run(const Program& program, const Database& full, const Database* delta,
         const OldLimits* old_limits, Database* out, MatchStats* stats,
         std::size_t* new_facts, DispatchCounts* dispatch = nullptr);

/// Publishes a run's dispatch tallies to the process MetricsRegistry as
/// `bytecode.dispatch{op=...}` counters. No-op when metrics are off.
void PublishDispatchCounts(const DispatchCounts& counts);

}  // namespace bytecode
}  // namespace datalog

#endif  // DATALOG_EVAL_BYTECODE_BYTECODE_H_
