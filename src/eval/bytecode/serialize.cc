#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ast/value.h"
#include "eval/bytecode/bytecode.h"

namespace datalog {
namespace bytecode {
namespace {

// Format v1 (little-endian): magic, version, shape, use_index, num_slots,
// constant pool (kind byte + 8-byte payload each), step table, head
// predicate + terms, negated literals, multiway step table, code. Every
// count is a u32; columns are serialized as u32 even where the in-memory
// type is int (the validator re-checks ranges on the decoded program).

void PutU8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU32Vec(std::vector<std::uint8_t>* out,
               const std::vector<std::uint32_t>& v) {
  PutU32(out, static_cast<std::uint32_t>(v.size()));
  for (std::uint32_t x : v) PutU32(out, x);
}

void PutColVec(std::vector<std::uint8_t>* out, const std::vector<int>& v) {
  PutU32(out, static_cast<std::uint32_t>(v.size()));
  for (int x : v) PutU32(out, static_cast<std::uint32_t>(x));
}

void PutPairVec(
    std::vector<std::uint8_t>* out,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& v) {
  PutU32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto& [a, b] : v) {
    PutU32(out, a);
    PutU32(out, b);
  }
}

void PutTerms(std::vector<std::uint8_t>* out,
              const std::vector<TermDesc>& terms) {
  PutU32(out, static_cast<std::uint32_t>(terms.size()));
  for (const TermDesc& t : terms) {
    PutU8(out, t.is_constant ? 1 : 0);
    PutU32(out, t.index);
  }
}

// Bounds-checked reader; every Get reports failure instead of reading
// past the buffer, and element counts are capped so hostile input cannot
// trigger giant allocations before validation.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool GetU8(std::uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }

  bool GetU32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool GetU64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool GetCount(std::uint32_t* n) {
    if (!GetU32(n)) return false;
    return *n <= (1u << 20);
  }

  bool GetU32Vec(std::vector<std::uint32_t>* v) {
    std::uint32_t n;
    if (!GetCount(&n)) return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!GetU32(&(*v)[i])) return false;
    }
    return true;
  }

  bool GetColVec(std::vector<int>* v) {
    std::uint32_t n;
    if (!GetCount(&n)) return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t x;
      if (!GetU32(&x)) return false;
      (*v)[i] = static_cast<int>(x);
    }
    return true;
  }

  bool GetPairVec(std::vector<std::pair<std::uint32_t, std::uint32_t>>* v) {
    std::uint32_t n;
    if (!GetCount(&n)) return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!GetU32(&(*v)[i].first) || !GetU32(&(*v)[i].second)) return false;
    }
    return true;
  }

  bool GetTerms(std::vector<TermDesc>* terms) {
    std::uint32_t n;
    if (!GetCount(&n)) return false;
    terms->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint8_t is_const;
      if (!GetU8(&is_const) || is_const > 1) return false;
      (*terms)[i].is_constant = is_const == 1;
      if (!GetU32(&(*terms)[i].index)) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> Encode(const Program& p) {
  std::vector<std::uint8_t> out;
  PutU32(&out, kBytecodeMagic);
  PutU32(&out, p.version);
  PutU8(&out, p.shape);
  PutU8(&out, p.use_index ? 1 : 0);
  PutU32(&out, p.num_slots);

  PutU32(&out, static_cast<std::uint32_t>(p.const_pool.size()));
  for (const Value& v : p.const_pool) {
    PutU8(&out, static_cast<std::uint8_t>(v.kind()));
    PutU64(&out, static_cast<std::uint64_t>(v.payload()));
  }

  PutU32(&out, static_cast<std::uint32_t>(p.steps.size()));
  for (const StepDesc& sd : p.steps) {
    PutU32(&out, sd.predicate);
    PutU32(&out, sd.arity);
    PutU8(&out, sd.source);
    PutColVec(&out, sd.key_cols);
    PutU32Vec(&out, sd.key_template);
    PutPairVec(&out, sd.id_checks);
    PutPairVec(&out, sd.writes);
  }

  PutU32(&out, p.head_predicate);
  PutTerms(&out, p.head);

  PutU32(&out, static_cast<std::uint32_t>(p.negated.size()));
  for (const NegDesc& nd : p.negated) {
    PutU32(&out, nd.predicate);
    PutTerms(&out, nd.terms);
  }

  PutU32(&out, static_cast<std::uint32_t>(p.mw_steps.size()));
  for (const MwStepDesc& ms : p.mw_steps) {
    PutU32(&out, ms.slot);
    PutU32(&out, static_cast<std::uint32_t>(ms.probes.size()));
    for (const ProbeDesc& probe : ms.probes) {
      PutU32(&out, probe.atom);
      PutColVec(&out, probe.var_cols);
      PutColVec(&out, probe.bound_cols);
      PutU32Vec(&out, probe.key_template);
      PutPairVec(&out, probe.key_fill);
      PutU8(&out, probe.unconditional ? 1 : 0);
      PutColVec(&out, probe.union_cols);
      PutU32Vec(&out, probe.union_template);
      PutPairVec(&out, probe.union_key_fill);
      PutU32Vec(&out, probe.union_var_positions);
    }
  }

  PutU32(&out, static_cast<std::uint32_t>(p.code.size()));
  for (const Insn& insn : p.code) {
    PutU8(&out, static_cast<std::uint8_t>(insn.op));
    PutU32(&out, insn.a);
    PutU32(&out, insn.b);
    PutU32(&out, insn.c);
    PutU32(&out, insn.t);
  }
  return out;
}

bool Decode(const std::uint8_t* data, std::size_t size, Program* out,
            std::string* error) {
  auto fail = [&](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Reader r(data, size);
  *out = Program{};

  std::uint32_t magic;
  if (!r.GetU32(&magic) || magic != kBytecodeMagic) return fail("bad magic");
  if (!r.GetU32(&out->version) || out->version != kBytecodeVersion) {
    return fail("unsupported version");
  }
  std::uint8_t use_index;
  if (!r.GetU8(&out->shape) || out->shape > 1) return fail("bad shape");
  if (!r.GetU8(&use_index) || use_index > 1) return fail("bad use_index");
  out->use_index = use_index == 1;
  if (!r.GetU32(&out->num_slots)) return fail("truncated header");

  std::uint32_t n;
  if (!r.GetCount(&n)) return fail("bad pool count");
  out->const_pool.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t kind;
    std::uint64_t payload;
    if (!r.GetU8(&kind) || !r.GetU64(&payload)) return fail("truncated pool");
    const auto p64 = static_cast<std::int64_t>(payload);
    const auto p32 = static_cast<std::int32_t>(p64);
    switch (static_cast<ValueKind>(kind)) {
      case ValueKind::kInt:
        out->const_pool.push_back(Value::Int(p64));
        break;
      case ValueKind::kSymbol:
        out->const_pool.push_back(Value::Symbol(p32));
        break;
      case ValueKind::kFrozen:
        out->const_pool.push_back(Value::Frozen(p32));
        break;
      case ValueKind::kNull:
        out->const_pool.push_back(Value::Null(p32));
        break;
      default:
        return fail("bad value kind");
    }
  }

  if (!r.GetCount(&n)) return fail("bad step count");
  out->steps.resize(n);
  for (StepDesc& sd : out->steps) {
    if (!r.GetU32(&sd.predicate) || !r.GetU32(&sd.arity) ||
        !r.GetU8(&sd.source) || !r.GetColVec(&sd.key_cols) ||
        !r.GetU32Vec(&sd.key_template) || !r.GetPairVec(&sd.id_checks) ||
        !r.GetPairVec(&sd.writes)) {
      return fail("truncated step table");
    }
  }

  if (!r.GetU32(&out->head_predicate) || !r.GetTerms(&out->head)) {
    return fail("truncated head");
  }

  if (!r.GetCount(&n)) return fail("bad negation count");
  out->negated.resize(n);
  for (NegDesc& nd : out->negated) {
    if (!r.GetU32(&nd.predicate) || !r.GetTerms(&nd.terms)) {
      return fail("truncated negation table");
    }
  }

  if (!r.GetCount(&n)) return fail("bad multiway step count");
  out->mw_steps.resize(n);
  for (MwStepDesc& ms : out->mw_steps) {
    std::uint32_t num_probes;
    if (!r.GetU32(&ms.slot) || !r.GetCount(&num_probes)) {
      return fail("truncated multiway table");
    }
    ms.probes.resize(num_probes);
    for (ProbeDesc& probe : ms.probes) {
      std::uint8_t unconditional;
      if (!r.GetU32(&probe.atom) || !r.GetColVec(&probe.var_cols) ||
          !r.GetColVec(&probe.bound_cols) ||
          !r.GetU32Vec(&probe.key_template) ||
          !r.GetPairVec(&probe.key_fill) || !r.GetU8(&unconditional) ||
          unconditional > 1 || !r.GetColVec(&probe.union_cols) ||
          !r.GetU32Vec(&probe.union_template) ||
          !r.GetPairVec(&probe.union_key_fill) ||
          !r.GetU32Vec(&probe.union_var_positions)) {
        return fail("truncated probe table");
      }
      probe.unconditional = unconditional == 1;
    }
  }

  if (!r.GetCount(&n)) return fail("bad code count");
  out->code.resize(n);
  for (Insn& insn : out->code) {
    std::uint8_t op;
    if (!r.GetU8(&op) || op >= kNumOps) return fail("bad opcode");
    insn.op = static_cast<Op>(op);
    if (!r.GetU32(&insn.a) || !r.GetU32(&insn.b) || !r.GetU32(&insn.c) ||
        !r.GetU32(&insn.t)) {
      return fail("truncated code");
    }
  }

  if (!r.AtEnd()) return fail("trailing bytes");
  out->ResolveConstants();
  return true;
}

}  // namespace bytecode
}  // namespace datalog
