#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "eval/bytecode/bytecode.h"
#include "eval/database.h"
#include "eval/relation.h"
#include "obs/metrics.h"
#include "util/interning.h"

// Computed-goto dispatch threads each handler directly into the next
// opcode's jump, giving the branch predictor one indirect-branch site per
// opcode instead of one shared site for the whole switch. Define
// DATALOG_BYTECODE_SWITCH_DISPATCH to force the portable switch loop
// (MSVC, or for A/B-ing the dispatch strategies).
#if !defined(DATALOG_BYTECODE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define DATALOG_BYTECODE_COMPUTED_GOTO 1
#else
#define DATALOG_BYTECODE_COMPUTED_GOTO 0
#endif

namespace datalog {
namespace bytecode {

const char* OpName(Op op) {
  switch (op) {
    case Op::kHalt:
      return "halt";
    case Op::kLoadKey:
      return "load_key";
    case Op::kLoop:
      return "loop";
    case Op::kLoopNext:
      return "loop_next";
    case Op::kProbe:
      return "probe";
    case Op::kProbeNext:
      return "probe_next";
    case Op::kFilterConst:
      return "filter_const";
    case Op::kFilterKey:
      return "filter_key";
    case Op::kFilterEq:
      return "filter_eq";
    case Op::kLoad:
      return "load";
    case Op::kMember:
      return "member";
    case Op::kMemberOld:
      return "member_old";
    case Op::kEmit:
      return "emit";
    case Op::kJump:
      return "jump";
    case Op::kSeek:
      return "seek";
    case Op::kSeekNext:
      return "seek_next";
    case Op::kLoopEmitAll:
      return "loop_emit_all";
    case Op::kProbeEmitAll:
      return "probe_emit_all";
    case Op::kSeekEmitAll:
      return "seek_emit_all";
    case Op::kNumOps:
      break;
  }
  return "invalid";
}

void PublishDispatchCounts(const DispatchCounts& counts) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  if (!registry.enabled()) return;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (counts[i] == 0) continue;
    registry.Add("bytecode.dispatch",
                 {{"op", OpName(static_cast<Op>(i))}}, counts[i]);
  }
}

namespace {

// Loop-invariant per-step source state, resolved once per Run with
// exactly ApplyBatch's rules (see eval/compiled_rule.cc): relation,
// old-snapshot limit, liveness, and -- when the step probes an index --
// a direct view. `limit` is clamped to 0 for dead steps so a validated
// but hand-written program that enters a dead step's Next op yields no
// rows instead of touching mismatched columns.
struct StepRt {
  const Relation* rel = nullptr;
  std::size_t limit = 0;
  bool dead = false;
  bool old_only = false;
  bool has_view = false;
  bool single_key = false;
  Relation::SingleIndexView single;
  Relation::MultiIndexView multi;
  // Column bases hoisted out of the fused inner loops: relation columns
  // are append-only for the duration of a Run, so raw data pointers stay
  // valid and spare the loops a columns-vector indirection per access
  // (which the optimizer cannot hoist itself past opaque index calls).
  std::vector<const std::uint32_t*> key_ptrs;
  std::vector<std::pair<const std::uint32_t*, const std::uint32_t*>>
      check_ptrs;
  std::vector<std::pair<const std::uint32_t*, std::uint32_t>> write_ptrs;
};

// Per-step enumeration cursor: the posting list (indexed probes), the
// next position to try, and the current row.
struct IterRt {
  const std::vector<std::uint32_t>* list = nullptr;
  std::size_t pos = 0;
  std::uint32_t row = 0;
};

struct MwProbeRt {
  Relation::SingleIndexView single;
  Relation::MultiIndexView multi;
  Relation::MultiIndexView union_index;
  const std::vector<std::uint32_t>* root = nullptr;
};

// Per-multiway-step scratch, mirroring ApplyMultiway's per-depth state:
// election keys, union membership keys, per-probe candidate lists, the
// winner's materialized projection, and the iteration cursor.
struct MwStepRt {
  std::vector<MwProbeRt> probes;
  std::vector<std::vector<std::uint32_t>> keys;
  std::vector<std::vector<std::uint32_t>> ukeys;
  std::vector<std::vector<std::uint32_t>> proj;
  std::vector<const std::vector<std::uint32_t>*> lists;
  const std::vector<std::uint32_t>* iter = nullptr;
  std::size_t pos = 0;
  std::size_t smallest = 0;
};

struct NegRt {
  const Relation* rel = nullptr;
  bool row_store = false;
};

std::size_t OldLimitFor(const OldLimits* old_limits, PredicateId pred) {
  if (old_limits == nullptr) return 0;
  auto it = old_limits->find(pred);
  return it == old_limits->end() ? 0 : it->second;
}

template <bool kCount>
bool RunImpl(const Program& p, const Database& full, const Database* delta,
             const OldLimits* old_limits, Database* out, MatchStats* stats,
             std::size_t* new_facts, DispatchCounts* dispatch) {
  if (p.code.empty() || p.shape > 1) return false;
  if (p.const_ids.size() != p.const_pool.size()) return false;  // unresolved

  // ---- Guards (no counter bumps, no side effects) -----------------------
  const auto head_pred = static_cast<PredicateId>(p.head_predicate);
  if (head_pred < 0 || head_pred >= out->symbols()->NumPredicates()) {
    return false;
  }
  if (out->symbols()->PredicateArity(head_pred) !=
      static_cast<int>(p.head.size())) {
    return false;
  }
  std::vector<NegRt> negs;
  negs.reserve(p.negated.size());
  for (const NegDesc& nd : p.negated) {
    const Relation& nr =
        full.relation(static_cast<PredicateId>(nd.predicate));
    if (!nr.empty() && nr.arity() != static_cast<int>(nd.terms.size())) {
      return false;
    }
    negs.push_back(NegRt{&nr, !nr.columnar()});
  }

  // ---- Step sources (ApplyBatch's per-depth resolution, verbatim) -------
  const std::size_t nsteps = p.steps.size();
  std::vector<StepRt> srt(nsteps);
  for (std::size_t d = 0; d < nsteps; ++d) {
    const StepDesc& sd = p.steps[d];
    const auto source = static_cast<AtomSource>(sd.source);
    if (source == AtomSource::kDelta && delta == nullptr) return false;
    const Database& src = source == AtomSource::kDelta ? *delta : full;
    const Relation& rel = src.relation(static_cast<PredicateId>(sd.predicate));
    StepRt& rt = srt[d];
    rt.rel = &rel;
    rt.limit = rel.size();
    rt.dead = rel.empty() || rel.arity() != static_cast<int>(sd.arity);
    rt.old_only = source == AtomSource::kOld;
    if (rt.old_only && !rt.dead) {
      rt.limit = OldLimitFor(old_limits, static_cast<PredicateId>(sd.predicate));
      rt.dead = rt.limit == 0;
    }
    if (!rt.dead && !rel.columnar()) return false;
    if (rt.dead) {
      rt.limit = 0;
      continue;
    }
    if (p.shape != 0) continue;  // multiway code never runs left-deep probes
    const bool fully_bound = sd.key_cols.size() == sd.arity;
    const bool probes_index =
        p.use_index &&
        (fully_bound ? rt.old_only : !sd.key_cols.empty());
    if (probes_index) {
      rt.single_key = sd.key_cols.size() == 1;
      if (rt.single_key) {
        rt.single = rel.PrepareSingleIndex(sd.key_cols[0]);
      } else {
        rt.multi = rel.PrepareIndex(sd.key_cols);
      }
      rt.has_view = true;
    }
    rt.key_ptrs.reserve(sd.key_cols.size());
    for (int col : sd.key_cols) rt.key_ptrs.push_back(rel.column(col).data());
    rt.check_ptrs.reserve(sd.id_checks.size());
    for (const auto& [first_col, repeat_col] : sd.id_checks) {
      rt.check_ptrs.emplace_back(
          rel.column(static_cast<int>(first_col)).data(),
          rel.column(static_cast<int>(repeat_col)).data());
    }
    rt.write_ptrs.reserve(sd.writes.size());
    for (const auto& [col, slot] : sd.writes) {
      rt.write_ptrs.emplace_back(rel.column(static_cast<int>(col)).data(),
                                 slot);
    }
  }

  // ---- Multiway probe state (ApplyMultiway's prologue, verbatim) --------
  std::deque<std::vector<std::uint32_t>> owned_roots;
  std::vector<MwStepRt> mrt;
  if (p.shape == 1) {
    if (p.mw_steps.empty()) return false;
    // Any dead atom empties the whole intersection: report zero new facts
    // without touching the head relation, exactly like ApplyMultiway.
    for (const StepRt& rt : srt) {
      if (rt.dead) {
        *new_facts = 0;
        return true;
      }
    }
    mrt.resize(p.mw_steps.size());
    for (std::size_t s = 0; s < p.mw_steps.size(); ++s) {
      const MwStepDesc& ms = p.mw_steps[s];
      if (ms.probes.empty()) return false;
      MwStepRt& mr = mrt[s];
      const std::size_t num_probes = ms.probes.size();
      mr.probes.resize(num_probes);
      mr.keys.resize(num_probes);
      mr.ukeys.resize(num_probes);
      mr.proj.resize(num_probes);
      mr.lists.assign(num_probes, nullptr);
      mr.iter = &Relation::EmptyRowIds();
      for (std::size_t pi = 0; pi < num_probes; ++pi) {
        const ProbeDesc& probe = ms.probes[pi];
        if (probe.atom >= nsteps || probe.var_cols.empty()) return false;
        if (probe.unconditional != probe.bound_cols.empty()) return false;
        const StepRt& at = srt[probe.atom];
        const Relation& rel = *at.rel;
        MwProbeRt& prt = mr.probes[pi];
        // Pre-size the key scratch so a hand-written program that skips
        // the open op still finds correctly-sized buffers.
        mr.keys[pi].assign(probe.key_template_ids.size(), 0);
        mr.ukeys[pi].assign(probe.union_template_ids.size(), 0);
        if (!probe.unconditional) {
          if (probe.bound_cols.size() == 1) {
            prt.single = rel.PrepareSingleIndex(probe.bound_cols[0]);
          } else {
            prt.multi = rel.PrepareIndex(probe.bound_cols);
          }
          prt.union_index = rel.PrepareIndex(probe.union_cols);
          continue;
        }
        if (!at.old_only && probe.var_cols.size() == 1) {
          prt.root = &rel.SortedColumnKeys(probe.var_cols[0]);
          continue;
        }
        // Old snapshot or repeated variable: project the qualifying
        // prefix once per Run, sorted and deduplicated.
        owned_roots.emplace_back();
        std::vector<std::uint32_t>& list = owned_roots.back();
        const std::vector<std::uint32_t>& c0 = rel.column(probe.var_cols[0]);
        for (std::size_t i = 0; i < at.limit; ++i) {
          const std::uint32_t id = c0[i];
          bool ok = true;
          for (std::size_t k = 1; k < probe.var_cols.size(); ++k) {
            if (rel.column(probe.var_cols[k])[i] != id) {
              ok = false;
              break;
            }
          }
          if (ok) list.push_back(id);
        }
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
        prt.root = &list;
      }
    }
  }

  // ---- Mutable machine state --------------------------------------------
  const std::uint32_t dict_size = ValueDictionary::Global().size();
  std::vector<std::uint32_t> slots(p.num_slots, 0);
  std::vector<std::vector<std::uint32_t>> keys(nsteps);
  std::vector<IterRt> iters(nsteps);
  for (std::size_t d = 0; d < nsteps; ++d) {
    keys[d] = p.steps[d].key_template_ids;
    iters[d].list = &Relation::EmptyRowIds();
  }
  MatchStats local;
  std::vector<std::uint32_t> derived;
  std::size_t derived_count = 0;
  const std::size_t head_arity = p.head.size();
  std::vector<std::uint32_t> neg_key;

  // Emit boundary, shared by kEmit and the fused superinstructions:
  // ApplyBatch/ApplyMultiway's per-match tail bump for bump.
  auto emit_match = [&]() {
    ++local.substitutions;
    for (std::size_t ni = 0; ni < negs.size(); ++ni) {
      const NegDesc& nd = p.negated[ni];
      neg_key.clear();
      for (const TermDesc& t : nd.terms) {
        neg_key.push_back(t.is_constant ? t.id : slots[t.index]);
      }
      if (negs[ni].row_store) {
        // Row-store membership resolves ids through the dictionary; an
        // id no value ever interned cannot be in any relation.
        bool ids_ok = true;
        for (std::uint32_t id : neg_key) {
          if (id >= dict_size) {
            ids_ok = false;
            break;
          }
        }
        if (ids_ok && negs[ni].rel->ContainsIds(neg_key)) return;
      } else if (negs[ni].rel->ContainsIds(neg_key)) {
        return;
      }
    }
    for (const TermDesc& t : p.head) {
      derived.push_back(t.is_constant ? t.id : slots[t.index]);
    }
    ++derived_count;
  };

  // Multiway open: elect the smallest candidate list among the step's
  // probes, materialize only the winner's projection, fill the union
  // membership keys of the losers.
  auto seek_open = [&](std::uint32_t s) {
    const MwStepDesc& ms = p.mw_steps[s];
    MwStepRt& mr = mrt[s];
    const std::size_t num_probes = ms.probes.size();
    std::size_t smallest = 0;
    std::size_t smallest_size = std::numeric_limits<std::size_t>::max();
    for (std::size_t pi = 0; pi < num_probes; ++pi) {
      const ProbeDesc& probe = ms.probes[pi];
      const MwProbeRt& prt = mr.probes[pi];
      ++local.index_lookups;
      std::size_t est;
      if (probe.unconditional) {
        mr.lists[pi] = prt.root;
        est = prt.root->size();
      } else {
        std::vector<std::uint32_t>& key = mr.keys[pi];
        key = probe.key_template_ids;
        for (const auto& [key_index, slot] : probe.key_fill) {
          key[key_index] = slots[slot];
        }
        const std::vector<std::uint32_t>& rows =
            probe.bound_cols.size() == 1 ? prt.single.FindId(key[0])
                                         : prt.multi.FindIds(key);
        mr.lists[pi] = &rows;
        est = rows.size();
      }
      if (est < smallest_size) {
        smallest_size = est;
        smallest = pi;
      }
    }
    const ProbeDesc& sp = ms.probes[smallest];
    if (sp.unconditional) {
      mr.iter = mr.lists[smallest];
    } else {
      const StepRt& at = srt[sp.atom];
      const Relation& rel = *at.rel;
      const std::vector<std::uint32_t>& c0 = rel.column(sp.var_cols[0]);
      std::vector<std::uint32_t>& proj = mr.proj[smallest];
      proj.clear();
      for (std::uint32_t row_id : *mr.lists[smallest]) {
        if (at.old_only && row_id >= at.limit) continue;
        ++local.tuples_scanned;
        const std::uint32_t id = c0[row_id];
        bool ok = true;
        for (std::size_t k = 1; k < sp.var_cols.size(); ++k) {
          if (rel.column(sp.var_cols[k])[row_id] != id) {
            ok = false;
            break;
          }
        }
        if (ok) proj.push_back(id);
      }
      std::sort(proj.begin(), proj.end());
      proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
      mr.iter = &proj;
    }
    for (std::size_t pi = 0; pi < num_probes; ++pi) {
      if (pi == smallest || ms.probes[pi].unconditional) continue;
      const ProbeDesc& probe = ms.probes[pi];
      std::vector<std::uint32_t>& ukey = mr.ukeys[pi];
      ukey = probe.union_template_ids;
      for (const auto& [key_index, slot] : probe.union_key_fill) {
        ukey[key_index] = slots[slot];
      }
    }
    mr.pos = 0;
    mr.smallest = smallest;
  };

  // Multiway membership: does every non-winner probe accept `id`?
  auto seek_accept = [&](MwStepRt& mr, const MwStepDesc& ms,
                         std::uint32_t id) {
    const std::size_t num_probes = ms.probes.size();
    for (std::size_t pi = 0; pi < num_probes; ++pi) {
      if (pi == mr.smallest) continue;
      const ProbeDesc& probe = ms.probes[pi];
      const MwProbeRt& prt = mr.probes[pi];
      if (probe.unconditional) {
        ++local.tuples_scanned;
        if (!std::binary_search(prt.root->begin(), prt.root->end(), id)) {
          return false;
        }
        continue;
      }
      ++local.index_lookups;
      std::vector<std::uint32_t>& ukey = mr.ukeys[pi];
      for (std::uint32_t pos : probe.union_var_positions) ukey[pos] = id;
      const std::vector<std::uint32_t>& rows = prt.union_index.FindIds(ukey);
      const StepRt& at = srt[probe.atom];
      if (at.old_only) {
        bool found = false;
        for (std::uint32_t row_id : rows) {
          if (row_id < at.limit) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      } else if (rows.empty()) {
        return false;
      }
    }
    return true;
  };

  // ---- Dispatch ---------------------------------------------------------
  const Insn* const code = p.code.data();
  const Insn* ip = code;

#if DATALOG_BYTECODE_COMPUTED_GOTO
  static const void* const kLabels[kNumOps] = {
      &&lbl_kHalt,        &&lbl_kLoadKey,     &&lbl_kLoop,
      &&lbl_kLoopNext,    &&lbl_kProbe,       &&lbl_kProbeNext,
      &&lbl_kFilterConst, &&lbl_kFilterKey,   &&lbl_kFilterEq,
      &&lbl_kLoad,        &&lbl_kMember,      &&lbl_kMemberOld,
      &&lbl_kEmit,        &&lbl_kJump,        &&lbl_kSeek,
      &&lbl_kSeekNext,    &&lbl_kLoopEmitAll, &&lbl_kProbeEmitAll,
      &&lbl_kSeekEmitAll};
#define VM_DISPATCH()                                          \
  do {                                                         \
    if constexpr (kCount) {                                    \
      ++(*dispatch)[static_cast<std::size_t>(ip->op)];         \
    }                                                          \
    goto* kLabels[static_cast<std::size_t>(ip->op)];           \
  } while (0)
#define VM_CASE(name) lbl_##name:
#define VM_NEXT()   \
  do {              \
    ++ip;           \
    VM_DISPATCH(); \
  } while (0)
#define VM_JUMP(target)  \
  do {                   \
    ip = code + (target); \
    VM_DISPATCH();      \
  } while (0)
  VM_DISPATCH();
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT()         \
  do {                    \
    ++ip;                 \
    goto vm_dispatch;     \
  } while (0)
#define VM_JUMP(target)    \
  do {                     \
    ip = code + (target);  \
    goto vm_dispatch;      \
  } while (0)
vm_dispatch:
  if constexpr (kCount) {
    ++(*dispatch)[static_cast<std::size_t>(ip->op)];
  }
  switch (ip->op) {
#endif

  VM_CASE(kHalt) { goto vm_done; }

  VM_CASE(kLoadKey) {
    keys[ip->a][ip->b] = slots[ip->c];
    VM_NEXT();
  }

  VM_CASE(kLoop) {
    const StepRt& rt = srt[ip->a];
    if (rt.dead) VM_JUMP(ip->t);
    ++local.index_lookups;
    iters[ip->a].pos = 0;
    VM_NEXT();
  }

  VM_CASE(kLoopNext) {
    const StepRt& rt = srt[ip->a];
    IterRt& it = iters[ip->a];
    if (it.pos >= rt.limit) VM_JUMP(ip->t);
    it.row = static_cast<std::uint32_t>(it.pos++);
    ++local.tuples_scanned;
    VM_NEXT();
  }

  VM_CASE(kProbe) {
    const StepRt& rt = srt[ip->a];
    if (rt.dead || !rt.has_view) VM_JUMP(ip->t);
    ++local.index_lookups;
    const std::vector<std::uint32_t>& key = keys[ip->a];
    IterRt& it = iters[ip->a];
    it.list = rt.single_key ? &rt.single.FindId(key[0])
                            : &rt.multi.FindIds(key);
    it.pos = 0;
    VM_NEXT();
  }

  VM_CASE(kProbeNext) {
    const StepRt& rt = srt[ip->a];
    IterRt& it = iters[ip->a];
    const std::vector<std::uint32_t>& list = *it.list;
    for (;;) {
      if (it.pos >= list.size()) VM_JUMP(ip->t);
      const std::uint32_t r = list[it.pos++];
      if (rt.old_only && r >= rt.limit) continue;
      it.row = r;
      break;
    }
    ++local.tuples_scanned;
    VM_NEXT();
  }

  VM_CASE(kFilterConst) {
    if (srt[ip->a].rel->column(static_cast<int>(ip->b))[iters[ip->a].row] !=
        p.const_ids[ip->c]) {
      VM_JUMP(ip->t);
    }
    VM_NEXT();
  }

  VM_CASE(kFilterKey) {
    if (srt[ip->a].rel->column(static_cast<int>(ip->b))[iters[ip->a].row] !=
        keys[ip->a][ip->c]) {
      VM_JUMP(ip->t);
    }
    VM_NEXT();
  }

  VM_CASE(kFilterEq) {
    const Relation& rel = *srt[ip->a].rel;
    const std::uint32_t row = iters[ip->a].row;
    if (rel.column(static_cast<int>(ip->b))[row] !=
        rel.column(static_cast<int>(ip->c))[row]) {
      VM_JUMP(ip->t);
    }
    VM_NEXT();
  }

  VM_CASE(kLoad) {
    slots[ip->c] = srt[ip->a].rel->column(static_cast<int>(ip->b))
        [iters[ip->a].row];
    VM_NEXT();
  }

  VM_CASE(kMember) {
    const StepRt& rt = srt[ip->a];
    if (rt.dead) VM_JUMP(ip->t);
    ++local.index_lookups;
    ++local.tuples_scanned;
    if (!rt.rel->ContainsIds(keys[ip->a])) VM_JUMP(ip->t);
    VM_NEXT();
  }

  VM_CASE(kMemberOld) {
    const StepRt& rt = srt[ip->a];
    if (rt.dead || !rt.has_view) VM_JUMP(ip->t);
    ++local.index_lookups;
    ++local.tuples_scanned;
    const std::vector<std::uint32_t>& key = keys[ip->a];
    const std::vector<std::uint32_t>& list =
        rt.single_key ? rt.single.FindId(key[0]) : rt.multi.FindIds(key);
    bool found = false;
    for (std::uint32_t r : list) {
      if (r < rt.limit) {
        found = true;
        break;
      }
    }
    if (!found) VM_JUMP(ip->t);
    VM_NEXT();
  }

  VM_CASE(kEmit) {
    emit_match();
    VM_JUMP(ip->t);
  }

  VM_CASE(kJump) { VM_JUMP(ip->t); }

  VM_CASE(kSeek) {
    seek_open(ip->a);
    VM_NEXT();
  }

  VM_CASE(kSeekNext) {
    MwStepRt& mr = mrt[ip->a];
    const MwStepDesc& ms = p.mw_steps[ip->a];
    const std::vector<std::uint32_t>& iter = *mr.iter;
    for (;;) {
      if (mr.pos >= iter.size()) VM_JUMP(ip->t);
      const std::uint32_t id = iter[mr.pos++];
      ++local.tuples_scanned;
      if (!seek_accept(mr, ms, id)) continue;
      slots[ms.slot] = id;
      break;
    }
    VM_NEXT();
  }

  VM_CASE(kLoopEmitAll) {
    const StepRt& rt = srt[ip->a];
    if (!rt.dead) {
      ++local.index_lookups;
      const std::vector<std::uint32_t>& key = keys[ip->a];
      const std::size_t limit = rt.limit;
      const std::size_t num_keys = rt.key_ptrs.size();
      local.tuples_scanned += limit;  // every row below the limit is scanned
      for (std::size_t r = 0; r < limit; ++r) {
        bool ok = true;
        for (std::size_t k = 0; k < num_keys; ++k) {
          if (rt.key_ptrs[k][r] != key[k]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const auto& [first, repeat] : rt.check_ptrs) {
          if (first[r] != repeat[r]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const auto& [col, slot] : rt.write_ptrs) slots[slot] = col[r];
        emit_match();
      }
    }
    VM_NEXT();
  }

  VM_CASE(kProbeEmitAll) {
    const StepRt& rt = srt[ip->a];
    if (!rt.dead && rt.has_view) {
      ++local.index_lookups;
      const std::vector<std::uint32_t>& key = keys[ip->a];
      const std::vector<std::uint32_t>& list =
          rt.single_key ? rt.single.FindId(key[0]) : rt.multi.FindIds(key);
      const bool old_only = rt.old_only;
      const std::size_t limit = rt.limit;
      if (!old_only) local.tuples_scanned += list.size();
      for (std::uint32_t r : list) {
        if (old_only) {
          if (r >= limit) continue;
          ++local.tuples_scanned;
        }
        bool ok = true;
        for (const auto& [first, repeat] : rt.check_ptrs) {
          if (first[r] != repeat[r]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const auto& [col, slot] : rt.write_ptrs) slots[slot] = col[r];
        emit_match();
      }
    }
    VM_NEXT();
  }

  VM_CASE(kSeekEmitAll) {
    seek_open(ip->a);
    MwStepRt& mr = mrt[ip->a];
    const MwStepDesc& ms = p.mw_steps[ip->a];
    for (std::uint32_t id : *mr.iter) {
      ++local.tuples_scanned;
      if (!seek_accept(mr, ms, id)) continue;
      slots[ms.slot] = id;
      emit_match();
    }
    VM_NEXT();
  }

#if !DATALOG_BYTECODE_COMPUTED_GOTO
    case Op::kNumOps:
    default:
      goto vm_done;  // validated programs never reach this
  }
#endif

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#if DATALOG_BYTECODE_COMPUTED_GOTO
#undef VM_DISPATCH
#endif

vm_done:
  // Reject derived ids the dictionary has never issued before anything
  // resolves them (possible only for hand-written programs reading
  // never-written slots; lowered programs bind every emitted slot).
  for (std::uint32_t id : derived) {
    if (id >= dict_size) return false;
  }
  Relation& head_rel = out->MutableRelation(head_pred);
  if (head_rel.columnar()) head_rel.ReserveRows(derived_count);
  std::size_t added = 0;
  std::vector<std::uint32_t> row(head_arity);
  for (std::size_t r = 0; r < derived_count; ++r) {
    const std::uint32_t* base = derived.data() + r * head_arity;
    row.assign(base, base + head_arity);
    if (head_rel.InsertIds(row)) ++added;
  }
  *new_facts = added;
  if (stats != nullptr) stats->Add(local);
  return true;
}

}  // namespace

bool Run(const Program& program, const Database& full, const Database* delta,
         const OldLimits* old_limits, Database* out, MatchStats* stats,
         std::size_t* new_facts, DispatchCounts* dispatch) {
  if (dispatch != nullptr) {
    dispatch->fill(0);
    return RunImpl<true>(program, full, delta, old_limits, out, stats,
                         new_facts, dispatch);
  }
  return RunImpl<false>(program, full, delta, old_limits, out, stats,
                        new_facts, nullptr);
}

}  // namespace bytecode
}  // namespace datalog
