#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "eval/bytecode/bytecode.h"
#include "eval/compiled_rule.h"
#include "util/interning.h"

namespace datalog {
namespace bytecode {
namespace {

// Jump-target sentinel meaning "the final kHalt"; the emitter does not
// know that pc until the whole body is laid out, so continuations that
// leave the outermost loop carry it and get patched at the end.
constexpr std::uint32_t kHaltSentinel = 0xFFFFFFFFu;

// Interns plan constants into the program's pool, deduplicating by
// (kind, payload) so a constant reused across steps, head, and negation
// serializes once.
class PoolBuilder {
 public:
  explicit PoolBuilder(Program* program) : program_(program) {}

  std::uint32_t Ref(const Value& v) {
    const std::pair<int, std::int64_t> key(static_cast<int>(v.kind()),
                                           v.payload());
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const auto ref = static_cast<std::uint32_t>(program_->const_pool.size());
    program_->const_pool.push_back(v);
    index_.emplace(key, ref);
    return ref;
  }

  // Pool-interns a value known only by its dictionary id (the multiway
  // schedules drop the Value form at compile time).
  std::uint32_t RefId(std::uint32_t id) {
    return Ref(ValueDictionary::Global().Resolve(id));
  }

 private:
  Program* program_;
  std::map<std::pair<int, std::int64_t>, std::uint32_t> index_;
};

std::vector<TermDesc> LowerTerms(const std::vector<CompiledTerm>& terms,
                                 PoolBuilder* pool) {
  std::vector<TermDesc> out;
  out.reserve(terms.size());
  for (const CompiledTerm& t : terms) {
    TermDesc td;
    td.is_constant = t.is_constant;
    td.index = t.is_constant ? pool->Ref(t.value)
                             : static_cast<std::uint32_t>(t.slot);
    out.push_back(td);
  }
  return out;
}

}  // namespace

Program Lower(const CompiledRule& plan) {
  Program p;
  // Mirror Apply's id-space gating: plans that cannot run the batch or
  // multiway executors stay on the struct/value-space paths, so there is
  // nothing to lower.
  if (!plan.has_rule_ || !plan.batch_ok_ || plan.steps_.empty()) return p;

  p.shape = plan.shape_ == PlanShape::kMultiway ? 1 : 0;
  p.use_index = plan.use_index_;
  p.num_slots = static_cast<std::uint32_t>(plan.num_slots_);
  p.head_predicate = static_cast<std::uint32_t>(plan.head_predicate_);

  PoolBuilder pool(&p);

  // --- Descriptor tables -------------------------------------------------
  p.steps.reserve(plan.steps_.size());
  for (const CompiledAtomStep& cs : plan.steps_) {
    StepDesc sd;
    sd.predicate = static_cast<std::uint32_t>(cs.predicate);
    sd.arity = static_cast<std::uint32_t>(cs.arity);
    sd.source = static_cast<std::uint8_t>(cs.source);
    sd.key_cols = cs.key_cols;
    sd.key_template.reserve(cs.key_template_ids.size());
    for (std::size_t k = 0; k < cs.key_template_ids.size(); ++k) {
      sd.key_template.push_back(cs.key_template_ids[k] ==
                                        ValueDictionary::kInvalidId
                                    ? kPatched
                                    : pool.Ref(cs.key_template[k]));
    }
    for (const auto& [first_col, repeat_col] : cs.id_checks) {
      sd.id_checks.emplace_back(static_cast<std::uint32_t>(first_col),
                                static_cast<std::uint32_t>(repeat_col));
    }
    for (const CompiledAtomStep::SlotRef& w : cs.writes) {
      sd.writes.emplace_back(static_cast<std::uint32_t>(w.col),
                             static_cast<std::uint32_t>(w.slot));
    }
    p.steps.push_back(std::move(sd));
  }

  p.head = LowerTerms(plan.head_terms_, &pool);
  for (std::size_t i = 0; i < plan.negated_preds_.size(); ++i) {
    NegDesc nd;
    nd.predicate = static_cast<std::uint32_t>(plan.negated_preds_[i]);
    nd.terms = LowerTerms(plan.negated_terms_[i], &pool);
    p.negated.push_back(std::move(nd));
  }

  if (p.shape == 1) {
    p.mw_steps.reserve(plan.mw_steps_.size());
    for (const MultiwayStep& ms : plan.mw_steps_) {
      MwStepDesc md;
      md.slot = static_cast<std::uint32_t>(ms.slot);
      md.probes.reserve(ms.probes.size());
      for (const MultiwayProbe& mp : ms.probes) {
        ProbeDesc pd;
        pd.atom = static_cast<std::uint32_t>(mp.atom);
        pd.var_cols = mp.var_cols;
        pd.bound_cols = mp.bound_cols;
        pd.unconditional = mp.unconditional;
        pd.union_cols = mp.union_cols;
        pd.key_template.reserve(mp.key_template_ids.size());
        for (std::uint32_t id : mp.key_template_ids) {
          pd.key_template.push_back(
              id == ValueDictionary::kInvalidId ? kPatched : pool.RefId(id));
        }
        pd.union_template.reserve(mp.union_template_ids.size());
        for (std::uint32_t id : mp.union_template_ids) {
          pd.union_template.push_back(
              id == ValueDictionary::kInvalidId ? kPatched : pool.RefId(id));
        }
        for (const CompiledAtomStep::KeyFill& kf : mp.key_fill) {
          pd.key_fill.emplace_back(static_cast<std::uint32_t>(kf.key_index),
                                   static_cast<std::uint32_t>(kf.slot));
        }
        for (const CompiledAtomStep::KeyFill& kf : mp.union_key_fill) {
          pd.union_key_fill.emplace_back(
              static_cast<std::uint32_t>(kf.key_index),
              static_cast<std::uint32_t>(kf.slot));
        }
        for (int pos : mp.union_var_positions) {
          pd.union_var_positions.push_back(static_cast<std::uint32_t>(pos));
        }
        md.probes.push_back(std::move(pd));
      }
      p.mw_steps.push_back(std::move(md));
    }
  }

  // --- Code emission -----------------------------------------------------
  // One loop per non-membership depth; `loop_next` tracks the pc of each
  // enclosing loop's advance op, so a filter failure or emission continues
  // the innermost loop and an exhausted loop continues the next one out.
  std::vector<std::uint32_t> loop_next;
  auto emit = [&](Op op, std::uint32_t a = 0, std::uint32_t b = 0,
                  std::uint32_t c = 0, std::uint32_t t = 0) {
    p.code.push_back(Insn{op, a, b, c, t});
    return static_cast<std::uint32_t>(p.code.size() - 1);
  };
  auto cont = [&] {
    return loop_next.empty() ? kHaltSentinel : loop_next.back();
  };

  if (p.shape == 0) {
    bool fused = false;
    const std::size_t n = plan.steps_.size();
    for (std::size_t d = 0; d < n; ++d) {
      const CompiledAtomStep& cs = plan.steps_[d];
      const auto da = static_cast<std::uint32_t>(d);
      for (const CompiledAtomStep::KeyFill& kf : cs.key_fill) {
        emit(Op::kLoadKey, da, static_cast<std::uint32_t>(kf.key_index),
             static_cast<std::uint32_t>(kf.slot));
      }
      const bool fully_bound =
          static_cast<int>(cs.key_cols.size()) == cs.arity;
      if (plan.use_index_ && fully_bound) {
        emit(cs.source == AtomSource::kOld ? Op::kMemberOld : Op::kMember,
             da, 0, 0, cont());
        continue;
      }
      const bool indexed = plan.use_index_ && !cs.key_cols.empty();
      if (d + 1 == n) {
        emit(indexed ? Op::kProbeEmitAll : Op::kLoopEmitAll, da);
        fused = true;
        continue;
      }
      const std::uint32_t parent = cont();
      emit(indexed ? Op::kProbe : Op::kLoop, da, 0, 0, parent);
      const std::uint32_t next_pc =
          emit(indexed ? Op::kProbeNext : Op::kLoopNext, da, 0, 0, parent);
      if (!indexed && !cs.key_cols.empty()) {
        // Unindexed filtered scan: compare each bound column against the
        // baked constant or the patched key position, in key order.
        for (std::size_t k = 0; k < cs.key_cols.size(); ++k) {
          const auto col = static_cast<std::uint32_t>(cs.key_cols[k]);
          if (cs.key_template_ids[k] != ValueDictionary::kInvalidId) {
            emit(Op::kFilterConst, da, col, pool.Ref(cs.key_template[k]),
                 next_pc);
          } else {
            emit(Op::kFilterKey, da, col, static_cast<std::uint32_t>(k),
                 next_pc);
          }
        }
      }
      for (const auto& [first_col, repeat_col] : cs.id_checks) {
        emit(Op::kFilterEq, da, static_cast<std::uint32_t>(first_col),
             static_cast<std::uint32_t>(repeat_col), next_pc);
      }
      for (const CompiledAtomStep::SlotRef& w : cs.writes) {
        emit(Op::kLoad, da, static_cast<std::uint32_t>(w.col),
             static_cast<std::uint32_t>(w.slot));
      }
      loop_next.push_back(next_pc);
    }
    if (fused) {
      emit(Op::kJump, 0, 0, 0, cont());
    } else {
      emit(Op::kEmit, 0, 0, 0, cont());
    }
  } else {
    const std::size_t n = p.mw_steps.size();
    for (std::size_t s = 0; s < n; ++s) {
      const auto sa = static_cast<std::uint32_t>(s);
      if (s + 1 == n) {
        emit(Op::kSeekEmitAll, sa);
        emit(Op::kJump, 0, 0, 0, cont());
        continue;
      }
      emit(Op::kSeek, sa);
      loop_next.push_back(emit(Op::kSeekNext, sa, 0, 0, cont()));
    }
  }

  const std::uint32_t halt_pc = emit(Op::kHalt);
  for (Insn& insn : p.code) {
    if (insn.t == kHaltSentinel) insn.t = halt_pc;
  }

  p.ResolveConstants();
  return p;
}

void Program::ResolveConstants() {
  ValueDictionary& dict = ValueDictionary::Global();
  const_ids.resize(const_pool.size());
  for (std::size_t i = 0; i < const_pool.size(); ++i) {
    const_ids[i] = dict.Intern(const_pool[i]);
  }
  auto resolve = [&](const std::vector<std::uint32_t>& refs,
                     std::vector<std::uint32_t>* out) {
    out->assign(refs.size(), ValueDictionary::kInvalidId);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (refs[i] < const_ids.size()) (*out)[i] = const_ids[refs[i]];
    }
  };
  auto resolve_terms = [&](std::vector<TermDesc>* terms) {
    for (TermDesc& t : *terms) {
      if (t.is_constant && t.index < const_ids.size()) {
        t.id = const_ids[t.index];
      }
    }
  };
  for (StepDesc& sd : steps) resolve(sd.key_template, &sd.key_template_ids);
  resolve_terms(&head);
  for (NegDesc& nd : negated) resolve_terms(&nd.terms);
  for (MwStepDesc& ms : mw_steps) {
    for (ProbeDesc& pr : ms.probes) {
      resolve(pr.key_template, &pr.key_template_ids);
      resolve(pr.union_template, &pr.union_template_ids);
    }
  }
}

}  // namespace bytecode
}  // namespace datalog
