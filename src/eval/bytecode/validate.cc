#include <cstdint>
#include <string>
#include <vector>

#include "eval/bytecode/bytecode.h"

namespace datalog {
namespace bytecode {
namespace {

// Size ceilings: far above anything the lowering pass produces, low
// enough that a hostile program cannot make Run allocate unboundedly.
constexpr std::size_t kMaxSlots = 1u << 20;
constexpr std::size_t kMaxPool = 1u << 20;
constexpr std::size_t kMaxCode = 1u << 20;
constexpr std::size_t kMaxTable = 1u << 16;
// The row-validity dataflow tracks one bit per step in a u64 mask.
constexpr std::size_t kMaxSteps = 64;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool StrictlyIncreasingCols(const std::vector<int>& cols, std::size_t arity) {
  int prev = -1;
  for (int c : cols) {
    if (c <= prev || c < 0 || static_cast<std::size_t>(c) >= arity) {
      return false;
    }
    prev = c;
  }
  return true;
}

bool PoolRefsOk(const std::vector<std::uint32_t>& refs,
                std::size_t pool_size) {
  for (std::uint32_t r : refs) {
    if (r != kPatched && r >= pool_size) return false;
  }
  return true;
}

bool TermsOk(const std::vector<TermDesc>& terms, std::size_t pool_size,
             std::size_t num_slots) {
  for (const TermDesc& t : terms) {
    if (t.is_constant ? t.index >= pool_size : t.index >= num_slots) {
      return false;
    }
  }
  return true;
}

// True when executing the op at `pc` can continue at `pc + 1`.
bool FallsThrough(Op op) { return op != Op::kHalt && op != Op::kJump &&
                                  op != Op::kEmit; }

bool UsesTarget(Op op) {
  switch (op) {
    case Op::kLoop:
    case Op::kLoopNext:
    case Op::kProbe:
    case Op::kProbeNext:
    case Op::kFilterConst:
    case Op::kFilterKey:
    case Op::kFilterEq:
    case Op::kMember:
    case Op::kMemberOld:
    case Op::kEmit:
    case Op::kJump:
    case Op::kSeekNext:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool Validate(const Program& p, std::string* error) {
  if (p.version != kBytecodeVersion) return Fail(error, "unknown version");
  if (p.shape > 1) return Fail(error, "unknown plan shape");
  if (p.num_slots > kMaxSlots) return Fail(error, "too many slots");
  if (p.const_pool.size() > kMaxPool) return Fail(error, "pool too large");
  if (p.code.empty()) return Fail(error, "empty code");
  if (p.code.size() > kMaxCode) return Fail(error, "code too large");
  if (p.steps.size() > kMaxSteps) return Fail(error, "too many steps");
  if (p.mw_steps.size() > kMaxTable || p.negated.size() > kMaxTable ||
      p.head.size() > kMaxTable) {
    return Fail(error, "descriptor table too large");
  }

  const std::size_t pool_size = p.const_pool.size();
  const std::size_t num_slots = p.num_slots;

  // ---- Descriptor tables ------------------------------------------------
  for (std::size_t d = 0; d < p.steps.size(); ++d) {
    const StepDesc& sd = p.steps[d];
    if (sd.arity > kMaxTable) return Fail(error, "step arity too large");
    if (sd.source > 2) return Fail(error, "bad atom source");
    if (!StrictlyIncreasingCols(sd.key_cols, sd.arity)) {
      return Fail(error, "step key columns not strictly increasing");
    }
    if (sd.key_template.size() != sd.key_cols.size()) {
      return Fail(error, "step key template size mismatch");
    }
    if (!PoolRefsOk(sd.key_template, pool_size)) {
      return Fail(error, "step key template pool ref out of range");
    }
    for (const auto& [first_col, repeat_col] : sd.id_checks) {
      if (first_col >= sd.arity || repeat_col >= sd.arity) {
        return Fail(error, "id check column out of range");
      }
    }
    for (const auto& [col, slot] : sd.writes) {
      if (col >= sd.arity) return Fail(error, "write column out of range");
      if (slot >= num_slots) return Fail(error, "write slot out of range");
    }
  }

  if (!TermsOk(p.head, pool_size, num_slots)) {
    return Fail(error, "head term out of range");
  }
  for (const NegDesc& nd : p.negated) {
    if (nd.terms.size() > kMaxTable) return Fail(error, "negation too wide");
    if (!TermsOk(nd.terms, pool_size, num_slots)) {
      return Fail(error, "negated term out of range");
    }
  }

  if (p.shape == 0 && !p.mw_steps.empty()) {
    return Fail(error, "left-deep program carries multiway steps");
  }
  if (p.shape == 1 && p.mw_steps.empty()) {
    return Fail(error, "multiway program without multiway steps");
  }
  for (const MwStepDesc& ms : p.mw_steps) {
    if (ms.slot >= num_slots) return Fail(error, "multiway slot out of range");
    if (ms.probes.empty() || ms.probes.size() > kMaxTable) {
      return Fail(error, "bad multiway probe count");
    }
    for (const ProbeDesc& probe : ms.probes) {
      if (probe.atom >= p.steps.size()) {
        return Fail(error, "probe atom out of range");
      }
      const std::size_t arity = p.steps[probe.atom].arity;
      if (probe.var_cols.empty()) return Fail(error, "probe without var cols");
      for (int c : probe.var_cols) {
        if (c < 0 || static_cast<std::size_t>(c) >= arity) {
          return Fail(error, "probe var column out of range");
        }
      }
      if (!StrictlyIncreasingCols(probe.bound_cols, arity) ||
          !StrictlyIncreasingCols(probe.union_cols, arity)) {
        return Fail(error, "probe columns not strictly increasing");
      }
      if (probe.unconditional != probe.bound_cols.empty()) {
        return Fail(error, "probe unconditional flag inconsistent");
      }
      if (probe.key_template.size() != probe.bound_cols.size() ||
          probe.union_template.size() != probe.union_cols.size()) {
        return Fail(error, "probe template size mismatch");
      }
      if (!PoolRefsOk(probe.key_template, pool_size) ||
          !PoolRefsOk(probe.union_template, pool_size)) {
        return Fail(error, "probe pool ref out of range");
      }
      for (const auto& [key_index, slot] : probe.key_fill) {
        if (key_index >= probe.key_template.size() || slot >= num_slots) {
          return Fail(error, "probe key fill out of range");
        }
      }
      for (const auto& [key_index, slot] : probe.union_key_fill) {
        if (key_index >= probe.union_template.size() || slot >= num_slots) {
          return Fail(error, "probe union key fill out of range");
        }
      }
      for (std::uint32_t pos : probe.union_var_positions) {
        if (pos >= probe.union_template.size()) {
          return Fail(error, "probe union var position out of range");
        }
      }
    }
  }

  // ---- Per-instruction operand bounds -----------------------------------
  const std::size_t code_size = p.code.size();
  auto step_ok = [&](std::uint32_t a) { return a < p.steps.size(); };
  for (std::size_t pc = 0; pc < code_size; ++pc) {
    const Insn& insn = p.code[pc];
    if (static_cast<std::size_t>(insn.op) >= kNumOps) {
      return Fail(error, "invalid opcode");
    }
    if (UsesTarget(insn.op) && insn.t >= code_size) {
      return Fail(error, "jump target out of range");
    }
    switch (insn.op) {
      case Op::kLoadKey:
        if (!step_ok(insn.a) ||
            insn.b >= p.steps[insn.a].key_template.size() ||
            insn.c >= num_slots) {
          return Fail(error, "load_key operand out of range");
        }
        break;
      case Op::kLoop:
      case Op::kLoopNext:
      case Op::kProbe:
      case Op::kProbeNext:
      case Op::kMember:
      case Op::kMemberOld:
      case Op::kLoopEmitAll:
      case Op::kProbeEmitAll:
        if (!step_ok(insn.a)) return Fail(error, "step operand out of range");
        break;
      case Op::kFilterConst:
        if (!step_ok(insn.a) || insn.b >= p.steps[insn.a].arity ||
            insn.c >= pool_size) {
          return Fail(error, "filter_const operand out of range");
        }
        break;
      case Op::kFilterKey:
        if (!step_ok(insn.a) || insn.b >= p.steps[insn.a].arity ||
            insn.c >= p.steps[insn.a].key_template.size()) {
          return Fail(error, "filter_key operand out of range");
        }
        break;
      case Op::kFilterEq:
        if (!step_ok(insn.a) || insn.b >= p.steps[insn.a].arity ||
            insn.c >= p.steps[insn.a].arity) {
          return Fail(error, "filter_eq operand out of range");
        }
        break;
      case Op::kLoad:
        if (!step_ok(insn.a) || insn.b >= p.steps[insn.a].arity ||
            insn.c >= num_slots) {
          return Fail(error, "load operand out of range");
        }
        break;
      case Op::kSeek:
      case Op::kSeekNext:
      case Op::kSeekEmitAll:
        if (p.shape != 1 || insn.a >= p.mw_steps.size()) {
          return Fail(error, "seek op outside a multiway program");
        }
        break;
      case Op::kHalt:
      case Op::kEmit:
      case Op::kJump:
        break;
      case Op::kNumOps:
        return Fail(error, "invalid opcode");
    }
  }

  // ---- Row-validity dataflow --------------------------------------------
  // Forward analysis over the CFG with meet = intersection: bit d of the
  // mask means "every path here advanced step d's cursor at least once",
  // i.e. iters[d].row is a valid row of a live relation. FILTER/LOAD ops
  // may only run under that bit; Next ops generate it on fall-through.
  // Fall-through off the end of the code is rejected here too (only for
  // reachable instructions -- unreachable ones never execute).
  const std::uint64_t kTop = ~std::uint64_t{0};
  std::vector<std::uint64_t> in(code_size, kTop);
  std::vector<bool> reached(code_size, false);
  std::vector<std::uint32_t> worklist;
  bool off_end = false;
  auto propagate = [&](std::uint32_t pc, std::uint64_t mask) {
    if (!reached[pc]) {
      reached[pc] = true;
      in[pc] = mask;
      worklist.push_back(pc);
      return;
    }
    const std::uint64_t met = in[pc] & mask;
    if (met != in[pc]) {
      in[pc] = met;
      worklist.push_back(pc);
    }
  };
  propagate(0, 0);
  while (!worklist.empty() && !off_end) {
    const std::uint32_t pc = worklist.back();
    worklist.pop_back();
    const Insn& insn = p.code[pc];
    const std::uint64_t mask = in[pc];
    const std::uint64_t bit = insn.a < 64 ? std::uint64_t{1} << insn.a : 0;
    switch (insn.op) {
      case Op::kFilterConst:
      case Op::kFilterKey:
      case Op::kFilterEq:
      case Op::kLoad:
        if ((mask & bit) == 0) {
          return Fail(error, "filter/load without a current row");
        }
        break;
      default:
        break;
    }
    std::uint64_t fall_mask = mask;
    if (insn.op == Op::kLoopNext || insn.op == Op::kProbeNext) {
      fall_mask |= bit;
    }
    if (FallsThrough(insn.op)) {
      if (pc + 1 >= code_size) {
        off_end = true;
        break;
      }
      propagate(pc + 1, fall_mask);
    }
    if (UsesTarget(insn.op)) propagate(insn.t, mask);
  }
  if (off_end) return Fail(error, "execution can fall off the end");

  return true;
}

}  // namespace bytecode
}  // namespace datalog
