#ifndef DATALOG_EVAL_MAGIC_SETS_H_
#define DATALOG_EVAL_MAGIC_SETS_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace datalog {

/// Sideways-information-passing strategy: the order in which body atoms
/// are visited when adorning a rule, which determines how bindings
/// propagate into magic predicates.
enum class SipStrategy {
  /// The textual body order (the classic presentation).
  kLeftToRight,
  /// Greedy: repeatedly pick the not-yet-visited atom with the most bound
  /// arguments (ties broken textually). Often yields more selective
  /// magic predicates when the rule author did not order the body well.
  kBoundFirst,
};

struct MagicOptions {
  SipStrategy sip = SipStrategy::kLeftToRight;
  /// Generate supplementary predicates (Beeri-Ramakrishnan): each rule's
  /// partial body join is materialized once in a chain of sup_i
  /// predicates that both the magic rules and the modified rule read,
  /// instead of every magic rule re-joining the prefix. Pays off when a
  /// rule has several intentional body atoms.
  bool supplementary = false;
};

/// Output of the magic-sets transformation.
struct MagicProgram {
  /// The rewritten program: adorned rules guarded by magic predicates,
  /// magic rules, and the magic seed fact for the query.
  Program program;
  /// The adorned predicate holding the query answers (same arity as the
  /// query predicate).
  PredicateId answer_predicate;
};

/// The magic-sets transformation of Bancilhon, Maier, Sagiv and Ullman
/// (1986) — the query-evaluation method the paper's introduction positions
/// its optimization as complementary to ("if the query is going to be
/// computed [by] the magic set method, then removing redundant parts can
/// only speed up the computation").
///
/// `query` is an atom over an intentional predicate of `program`; its
/// constant arguments are bound ('b'), its variables free ('f'). Uses the
/// standard left-to-right sideways-information-passing strategy. The input
/// program must be positive and safe.
Result<MagicProgram> MagicSetsTransform(const Program& program,
                                        const Atom& query,
                                        const MagicOptions& options = {});

/// The 'b'/'f' adornment string the transformation derives for `query`.
std::string QueryAdornment(const Atom& query);

/// The order in which a rule's body atoms are visited for adornment under
/// `strategy`, given the variables bound on entry (head variables at 'b'
/// positions). Shared by the magic-sets rewrite and the binding analysis
/// pass, so the analyzer's predictions match what the rewrite will do.
std::vector<std::size_t> SipOrder(const Rule& rule,
                                  const std::set<VariableId>& initially_bound,
                                  SipStrategy strategy);

/// The adornment of `atom` given the set of bound variables: 'b' for a
/// constant or bound-variable argument, 'f' otherwise.
std::string AdornmentFor(const Atom& atom, const std::set<VariableId>& bound);

}  // namespace datalog

#endif  // DATALOG_EVAL_MAGIC_SETS_H_
