#include "eval/query.h"

#include "eval/magic_sets.h"
#include "eval/naive.h"
#include "eval/rule_matcher.h"
#include "eval/seminaive.h"
#include "eval/stratified.h"
#include "eval/topdown.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// Selects the tuples of `pred` in `db` that match the (possibly
/// non-ground) query atom: constant positions must agree, repeated
/// variables must agree.
std::vector<Tuple> SelectMatching(const Database& db, PredicateId pred,
                                  const Atom& query) {
  std::vector<Tuple> out;
  std::vector<PlannedAtom> atoms{
      PlannedAtom{Atom(pred, query.args()), AtomSource::kFull}};
  MatchAtoms(db, /*delta=*/nullptr, atoms,
             [&](const Binding& binding) {
               out.push_back(InstantiateHead(Atom(pred, query.args()), binding));
               return true;
             },
             /*stats=*/nullptr);
  return out;
}

}  // namespace

Result<std::vector<Tuple>> AnswerQuery(const Program& program,
                                       const Database& db, const Atom& query,
                                       EvalMethod method, EvalStats* stats) {
  Database work(db.symbols());
  work.UnionWith(db);

  switch (method) {
    case EvalMethod::kNaive: {
      DATALOG_ASSIGN_OR_RETURN(EvalStats s, EvaluateNaive(program, &work));
      if (stats != nullptr) stats->Add(s);
      return SelectMatching(work, query.predicate(), query);
    }
    case EvalMethod::kSemiNaive: {
      // Stratified evaluation coincides with plain semi-naive on positive
      // programs and additionally accepts stratified negation, so queries
      // work uniformly for both.
      DATALOG_ASSIGN_OR_RETURN(EvalStats s, EvaluateStratified(program, &work));
      if (stats != nullptr) stats->Add(s);
      return SelectMatching(work, query.predicate(), query);
    }
    case EvalMethod::kMagicSemiNaive: {
      TraceSpan span("query/magic");
      DATALOG_ASSIGN_OR_RETURN(MagicProgram magic,
                               MagicSetsTransform(program, query));
      DATALOG_ASSIGN_OR_RETURN(EvalStats s,
                               EvaluateSemiNaive(magic.program, &work));
      span.Note("iterations", static_cast<std::uint64_t>(s.iterations));
      span.Note("facts", s.facts_derived);
      RecordEvalStats("magic", s);
      if (stats != nullptr) stats->Add(s);
      return SelectMatching(work, magic.answer_predicate, query);
    }
    case EvalMethod::kTabledTopDown:
      return SolveTopDown(program, db, query);
  }
  return Status::Internal("unknown evaluation method");
}

}  // namespace datalog
