#include "eval/magic_sets.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/validate.h"
#include "obs/trace.h"

namespace datalog {
namespace {

/// An intentional predicate together with a binding pattern.
using AdornedPred = std::pair<PredicateId, std::string>;

struct AdornedIds {
  PredicateId adorned;  // e.g. g_bf, same arity as the original
  PredicateId magic;    // e.g. m_g_bf, arity = number of 'b's
};

/// The terms of `atom` at the 'b' positions of `adornment`.
std::vector<Term> BoundArgs(const Atom& atom, const std::string& adornment) {
  std::vector<Term> args;
  for (std::size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == 'b') args.push_back(atom.args()[i]);
  }
  return args;
}

}  // namespace

std::string AdornmentFor(const Atom& atom,
                         const std::set<VariableId>& bound) {
  std::string adornment;
  adornment.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    bool is_bound = t.is_constant() || bound.contains(t.var());
    adornment.push_back(is_bound ? 'b' : 'f');
  }
  return adornment;
}

std::vector<std::size_t> SipOrder(const Rule& rule,
                                  const std::set<VariableId>& initially_bound,
                                  SipStrategy strategy) {
  const std::size_t n = rule.body().size();
  std::vector<std::size_t> order(n);
  if (strategy == SipStrategy::kLeftToRight) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    return order;
  }
  // kBoundFirst: greedily pick the unvisited atom with the most bound
  // arguments; ties go to the textually earlier atom.
  std::set<VariableId> bound = initially_bound;
  std::vector<bool> used(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    int best_score = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      int score = 0;
      for (const Term& t : rule.body()[i].atom.args()) {
        if (t.is_constant() || (t.is_variable() && bound.contains(t.var()))) {
          ++score;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = true;
    order[step] = best;
    for (VariableId v : rule.body()[best].atom.Variables()) bound.insert(v);
  }
  return order;
}

std::string QueryAdornment(const Atom& query) {
  return AdornmentFor(query, /*bound=*/{});
}

Result<MagicProgram> MagicSetsTransform(const Program& program,
                                        const Atom& query,
                                        const MagicOptions& options) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("magic/rewrite");
  span.Note("input_rules", program.NumRules());
  SymbolTable* symbols = program.symbols().get();
  std::set<PredicateId> intentional = program.IntentionalPredicates();

  if (!intentional.contains(query.predicate())) {
    return Status::InvalidArgument(
        "magic-sets query predicate must be intentional: " +
        symbols->PredicateName(query.predicate()));
  }

  Program out(program.symbols());

  std::map<AdornedPred, AdornedIds> registry;
  std::deque<AdornedPred> worklist;

  auto register_adorned = [&](PredicateId pred,
                              const std::string& adornment) -> AdornedIds {
    AdornedPred key{pred, adornment};
    auto it = registry.find(key);
    if (it != registry.end()) return it->second;
    // Copy: FreshPredicate below appends to the interner and may
    // invalidate references into it.
    const std::string name = symbols->PredicateName(pred);
    int arity = symbols->PredicateArity(pred);
    int bound_count =
        static_cast<int>(std::count(adornment.begin(), adornment.end(), 'b'));
    AdornedIds ids;
    ids.adorned = symbols->FreshPredicate(name + "_" + adornment, arity);
    ids.magic = symbols->FreshPredicate("m_" + name + "_" + adornment,
                                        bound_count);
    registry.emplace(key, ids);
    worklist.push_back(key);
    return ids;
  };

  const std::string query_adornment = QueryAdornment(query);
  AdornedIds query_ids = register_adorned(query.predicate(), query_adornment);

  // Seed: the magic fact for the query's bound arguments (all constants).
  out.AddRule(Rule(Atom(query_ids.magic, BoundArgs(query, query_adornment)),
                   {}));

  while (!worklist.empty()) {
    auto [head_pred, head_adornment] = worklist.front();
    worklist.pop_front();
    AdornedIds head_ids = registry.at({head_pred, head_adornment});

    for (const Rule& rule : program.rules()) {
      if (rule.head().predicate() != head_pred) continue;

      // Variables bound on entry: head variables at 'b' positions.
      std::set<VariableId> bound;
      for (std::size_t i = 0; i < head_adornment.size(); ++i) {
        const Term& t = rule.head().args()[i];
        if (head_adornment[i] == 'b' && t.is_variable()) {
          bound.insert(t.var());
        }
      }

      Atom magic_head(head_ids.magic, BoundArgs(rule.head(), head_adornment));
      std::vector<std::size_t> order = SipOrder(rule, bound, options.sip);

      // Transforms one body atom: registers the adornment of an
      // intentional atom (given the currently bound variables) and
      // returns the rewritten atom plus, for intentional atoms, the
      // magic head its demand rule must populate.
      auto transform_atom =
          [&](const Atom& atom) -> std::pair<Atom, std::optional<Atom>> {
        if (!intentional.contains(atom.predicate())) {
          return {atom, std::nullopt};
        }
        std::string adornment = AdornmentFor(atom, bound);
        AdornedIds ids = register_adorned(atom.predicate(), adornment);
        return {Atom(ids.adorned, atom.args()),
                Atom(ids.magic, BoundArgs(atom, adornment))};
      };

      if (!options.supplementary) {
        // Classic rewrite: each magic rule re-joins the prefix.
        std::vector<Atom> transformed_prefix;
        for (std::size_t position : order) {
          const Atom& atom = rule.body()[position].atom;
          auto [rewritten, magic_atom] = transform_atom(atom);
          if (magic_atom.has_value()) {
            // Magic rule: m_B_a(bound args of B) :- m_H_a(...), prefix.
            std::vector<Atom> magic_body;
            magic_body.push_back(magic_head);
            for (const Atom& prev : transformed_prefix) {
              magic_body.push_back(prev);
            }
            out.AddRule(Rule::Positive(*magic_atom, magic_body));
          }
          transformed_prefix.push_back(rewritten);
          for (VariableId v : atom.Variables()) bound.insert(v);
        }
        // Modified rule: H_a(args) :- m_H_a(bound args), transformed body.
        std::vector<Atom> new_body;
        new_body.push_back(magic_head);
        for (const Atom& atom : transformed_prefix) new_body.push_back(atom);
        out.AddRule(Rule::Positive(Atom(head_ids.adorned, rule.head().args()),
                                   new_body));
        continue;
      }

      // Supplementary rewrite (Beeri-Ramakrishnan): the prefix join is
      // materialized once, in a chain of sup_i predicates, and each
      // magic rule reads sup_{i-1} instead of re-joining the prefix.
      //
      // Variables still needed after visiting the atom at order step i:
      // head variables plus variables of later atoms.
      std::vector<std::set<VariableId>> needed_after(order.size() + 1);
      needed_after[order.size()] = rule.head().Variables();
      for (std::size_t i = order.size(); i > 0; --i) {
        needed_after[i - 1] = needed_after[i];
        std::set<VariableId> vars =
            rule.body()[order[i - 1]].atom.Variables();
        needed_after[i - 1].insert(vars.begin(), vars.end());
      }
      // needed_after[i] is what must survive AFTER step i-1's atom, i.e.
      // before step i: shift so index i means "after visiting step i".
      // (needed_after[i] currently includes step i's own atom; what sup_i
      // must carry is needed_after[i + 1] intersected with bound vars.)

      Atom current_sup = magic_head;  // sup_0 is the magic predicate itself
      if (order.empty()) {
        out.AddRule(Rule::Positive(Atom(head_ids.adorned, rule.head().args()),
                                   {current_sup}));
        continue;
      }
      for (std::size_t i = 0; i < order.size(); ++i) {
        const Atom& atom = rule.body()[order[i]].atom;
        auto [rewritten, magic_atom] = transform_atom(atom);
        if (magic_atom.has_value()) {
          // Magic rule reads only the materialized prefix.
          out.AddRule(Rule::Positive(*magic_atom, {current_sup}));
        }
        for (VariableId v : atom.Variables()) bound.insert(v);

        if (i + 1 == order.size()) {
          out.AddRule(Rule::Positive(
              Atom(head_ids.adorned, rule.head().args()),
              {current_sup, rewritten}));
          break;
        }
        // sup_{i+1}(V) :- sup_i(...), rewritten-atom, where V = bound
        // variables still needed by later atoms or the head.
        std::vector<Term> sup_args;
        for (VariableId v : needed_after[i + 1]) {
          if (bound.contains(v)) sup_args.push_back(Term::Variable(v));
        }
        PredicateId sup_pred = symbols->FreshPredicate(
            "sup_" + symbols->PredicateName(head_pred) + "_" +
                head_adornment + "_" + std::to_string(i + 1),
            static_cast<int>(sup_args.size()));
        Atom sup_head(sup_pred, sup_args);
        out.AddRule(Rule::Positive(sup_head, {current_sup, rewritten}));
        current_sup = std::move(sup_head);
      }
    }
  }

  MagicProgram result{std::move(out), query_ids.adorned};
  return result;
}

}  // namespace datalog
