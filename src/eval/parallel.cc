#include "eval/parallel.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "ast/dependence_graph.h"
#include "ast/validate.h"
#include "eval/compiled_rule.h"
#include "eval/rule_matcher.h"
#include "eval/seminaive.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Delta relations are split into contiguous row shards so one hot
/// (rule, delta-position) pass -- the whole round, for linear rules like
/// transitive closure -- still decomposes into enough independent tasks
/// to keep every worker busy. The shard count depends only on the delta
/// contents, never on the thread count, so the task list (and therefore
/// the merge order and all derived stats) is identical at any parallelism.
constexpr std::size_t kMinShardRows = 64;
constexpr std::size_t kMaxShards = 16;

std::size_t ShardCount(std::size_t rows) {
  if (rows <= kMinShardRows) return 1;
  return std::min(kMaxShards, rows / kMinShardRows);
}

/// One unit of worker work: apply `rule` with the delta position matched
/// against one shard of the delta, deriving into a task-local buffer.
struct PassTask {
  std::size_t rule_index;
  std::size_t delta_pos;
  const Database* delta_shard;
  Database out;       // task-local derivation buffer
  MatchStats match;   // task-local join counters
  // Compiled plan resolved during prep (null on the legacy-matcher
  // ablation path); shared read-only across all shards of the pass.
  const CompiledRule* plan = nullptr;
};

/// Pre-builds every index the matcher can probe while running this pass,
/// so the parallel phase performs no index construction. PlanJoinOrder is
/// deterministic given the (frozen) relation sizes, and at depth d the
/// matcher's binding holds exactly the variables of atoms 0..d-1 of the
/// order, so the bound column set of every probe is known statically.
/// This is a superset of the probes actually issued: the matcher may
/// abandon a prefix with no matches, but never probes a column set this
/// walk does not cover.
void EnsureIndexesForPass(const Database& full, const Database& delta_shard,
                          const Rule& rule, std::size_t delta_pos) {
  if (!IndexLookupsEnabled()) return;
  std::vector<PlannedAtom> atoms =
      BuildDeltaPassAtoms(rule, delta_pos, /*use_old=*/true);
  std::vector<PlannedAtom> order = PlanJoinOrder(full, &delta_shard, atoms);
  std::unordered_set<VariableId> bound;
  for (const PlannedAtom& planned : order) {
    const Atom& atom = planned.atom;
    const Database& src =
        planned.source == AtomSource::kDelta ? delta_shard : full;
    const Relation& rel = src.relation(atom.predicate());
    if (rel.empty() || rel.arity() != atom.arity()) {
      // Nothing to index; also keeps the shared empty-relation sentinel
      // untouched (the matcher skips empty relations too).
      for (const Term& t : atom.args()) {
        if (t.is_variable()) bound.insert(t.var());
      }
      continue;
    }
    std::vector<int> bound_cols;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant() || (t.is_variable() && bound.contains(t.var()))) {
        bound_cols.push_back(i);
      }
    }
    const bool fully_bound =
        static_cast<int>(bound_cols.size()) == atom.arity();
    // Partially bound probes always use the index; fully bound probes use
    // set membership except against the old snapshot, which needs row ids.
    if (!bound_cols.empty() &&
        (!fully_bound || planned.source == AtomSource::kOld)) {
      rel.EnsureIndex(bound_cols);
    }
    for (const Term& t : atom.args()) {
      if (t.is_variable()) bound.insert(t.var());
    }
  }
}

}  // namespace

EvalStats RunSemiNaiveFixpointParallel(const std::vector<Rule>& rules,
                                       Database* db, ThreadPool* pool) {
  EvalStats stats;
  stats.per_rule.resize(rules.size());

  // Facts contributed by the program itself (rules with empty bodies).
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& rule = rules[ri];
    if (!rule.IsFact()) continue;
    Tuple tuple;
    for (const Term& t : rule.head().args()) tuple.push_back(t.value());
    if (db->AddFact(rule.head().predicate(), std::move(tuple))) {
      ++stats.facts_derived;
      ++stats.per_rule[ri].facts;
    }
  }

  // Round 0: everything already in the database counts as newly
  // discovered, restricted to the predicates some rule body reads (as in
  // the sequential engine).
  std::set<PredicateId> read_preds;
  for (const Rule& rule : rules) {
    for (const Literal& lit : rule.body()) {
      if (!lit.negated) read_preds.insert(lit.atom.predicate());
    }
  }
  Database delta(db->symbols());
  for (PredicateId pred : db->NonEmptyPredicates()) {
    if (!read_preds.contains(pred)) continue;
    const Relation& rel = db->relation(pred);
    delta.AddRowRange(pred, rel, 0, rel.size());
  }

  OldLimits old_limits;

  // Plans are resolved once per (rule, delta position) per round against
  // the WHOLE round delta -- never against an individual shard -- so the
  // plan (and therefore every counter) is a function of the round state
  // alone, identical at any thread count. All shards of a pass share the
  // resolved plan read-only. The cache outlives the rounds, so join
  // orders persist until cardinalities drift >= 4x.
  CompiledRuleCache cache;

  while (!delta.empty()) {
    ++stats.iterations;
    TraceSpan round_span("parallel/round");
    round_span.Note("round", static_cast<std::uint64_t>(stats.iterations));
    Watermarks marks = TakeWatermarks(*db);

    // --- Snapshot preparation (single-threaded). Shard the delta and
    // pre-build every index the round's plans will probe, so the fan-out
    // phase only reads the database, the shards, and the indexes.
    TraceSpan prep_span("parallel/prepare");
    Clock::time_point prep_start = Clock::now();
    std::unordered_map<PredicateId, std::vector<Database>> shards;
    for (PredicateId pred : delta.NonEmptyPredicates()) {
      const Relation& rel = delta.relation(pred);
      const std::size_t num_shards = ShardCount(rel.size());
      std::vector<Database> shard_dbs;
      shard_dbs.reserve(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        const std::size_t begin = s * rel.size() / num_shards;
        const std::size_t end = (s + 1) * rel.size() / num_shards;
        Database shard(db->symbols());
        // Shards are cut in id space on the columnar backend: the shard
        // relation shares the global dictionary, so the copy never
        // hashes a Value.
        shard.AddRowRange(pred, rel, begin, end);
        shard_dbs.push_back(std::move(shard));
      }
      shards.emplace(pred, std::move(shard_dbs));
    }

    // Task list in deterministic (rule, delta position, shard) order; the
    // merge below walks it in the same order.
    std::vector<PassTask> tasks;
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      const Rule& rule = rules[ri];
      if (rule.IsFact()) continue;
      for (std::size_t p = 0; p < rule.body().size(); ++p) {
        const Literal& lit = rule.body()[p];
        if (lit.negated) continue;
        auto it = shards.find(lit.atom.predicate());
        if (it == shards.end()) continue;  // no delta facts for this atom
        ++stats.rule_applications;
        ++stats.per_rule[ri].applications;
        for (const Database& shard : it->second) {
          tasks.push_back(
              PassTask{ri, p, &shard, Database(db->symbols()), MatchStats{}});
        }
      }
    }
    if (CompiledRulePlansEnabled()) {
      for (PassTask& task : tasks) {
        const CompiledRule& plan =
            cache.Get(task.rule_index, rules[task.rule_index], task.delta_pos,
                      /*use_old=*/true, *db, &delta);
        task.plan = &plan;
        // Per-shard index builds still happen here, single-threaded:
        // after this, Execute is read-only on every relation it probes.
        plan.EnsureIndexes(*db, task.delta_shard);
      }
    } else {
      for (const PassTask& task : tasks) {
        EnsureIndexesForPass(*db, *task.delta_shard, rules[task.rule_index],
                             task.delta_pos);
      }
    }
    stats.index_build_ns += ElapsedNs(prep_start);
    prep_span.Note("tasks", tasks.size());
    prep_span.End();

    // --- Parallel phase: every task matches against the frozen snapshot
    // and derives into its own buffer; nothing shared is written. Each
    // task opens its own span from the worker thread that runs it, so the
    // trace shows the per-shard fan-out on separate tracks merging at the
    // round barrier.
    TraceSpan match_span("parallel/match");
    Clock::time_point match_start = Clock::now();
    ++stats.parallel_rounds;
    stats.parallel_tasks += tasks.size();
    const Database& frozen = *db;
    for (PassTask& task : tasks) {
      pool->Submit([&rules, &frozen, &old_limits, &task] {
        TraceSpan task_span("parallel/task");
        if (task.plan != nullptr) {
          task.plan->Apply(frozen, task.delta_shard, &old_limits, &task.out,
                           &task.match);
        } else {
          ApplyRuleWithDelta(rules[task.rule_index], frozen, *task.delta_shard,
                             task.delta_pos, &task.out, &task.match,
                             &old_limits);
        }
        if (task_span.active()) {
          task_span.Note("rule", task.rule_index);
          task_span.Note("delta_pos", task.delta_pos);
          task_span.Note("substitutions", task.match.substitutions);
        }
      });
    }
    pool->Wait();
    stats.parallel_match_ns += ElapsedNs(match_start);
    match_span.End();

    // --- Round barrier: merge buffers single-threaded in task order, so
    // the database contents and all counters come out identical no matter
    // how the tasks were scheduled.
    TraceSpan merge_span("parallel/merge");
    Clock::time_point merge_start = Clock::now();
    const std::uint64_t facts_before_merge = stats.facts_derived;
    for (const PassTask& task : tasks) {
      stats.match.Add(task.match);
      stats.per_rule[task.rule_index].substitutions +=
          task.match.substitutions;
      const Rule& rule = rules[task.rule_index];
      PredicateId head = rule.head().predicate();
      for (const Tuple& row : task.out.relation(head).rows()) {
        if (db->AddFact(head, row)) {
          ++stats.facts_derived;
          ++stats.per_rule[task.rule_index].facts;
        }
      }
    }
    stats.merge_ns += ElapsedNs(merge_start);
    merge_span.Note("facts", stats.facts_derived - facts_before_merge);
    merge_span.End();
    round_span.Note("facts", stats.facts_derived - facts_before_merge);

    old_limits = marks;
    delta = CollectNewFacts(*db, marks);
  }
  return stats;
}

namespace {

std::size_t PoolWorkers(std::size_t num_threads) {
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  return num_threads - 1;  // the calling thread helps at the barrier
}

}  // namespace

Result<EvalStats> EvaluateSemiNaiveParallel(const Program& program,
                                            Database* db,
                                            std::size_t num_threads) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("eval/parallel");
  ThreadPool pool(PoolWorkers(num_threads));
  EvalStats stats = RunSemiNaiveFixpointParallel(program.rules(), db, &pool);
  span.Note("iterations", static_cast<std::uint64_t>(stats.iterations));
  span.Note("facts", stats.facts_derived);
  span.Note("tasks", stats.parallel_tasks);
  RecordEvalStats("parallel", stats);
  return stats;
}

Result<EvalStats> EvaluateSemiNaiveSccParallel(const Program& program,
                                               Database* db,
                                               std::size_t num_threads) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  DependenceGraph graph(program);

  // Same component order as EvaluateSemiNaiveScc: Tarjan gives successor
  // components smaller indices, so dependencies run first by descending
  // index.
  std::map<int, std::vector<std::size_t>, std::greater<int>> groups;
  for (std::size_t i = 0; i < program.NumRules(); ++i) {
    groups[graph.SccIndex(program.rules()[i].head().predicate())].push_back(i);
  }

  TraceSpan span("eval/scc-parallel");
  ThreadPool pool(PoolWorkers(num_threads));
  EvalStats total;
  total.per_rule.resize(program.NumRules());
  for (const auto& [scc, rule_indices] : groups) {
    TraceSpan scc_span("seminaive/scc");
    scc_span.Note("scc", static_cast<std::uint64_t>(scc));
    scc_span.Note("rules", rule_indices.size());
    std::vector<Rule> rules;
    for (std::size_t i : rule_indices) rules.push_back(program.rules()[i]);
    EvalStats group_stats = RunSemiNaiveFixpointParallel(rules, db, &pool);
    std::vector<RuleStats> remapped(program.NumRules());
    for (std::size_t i = 0; i < group_stats.per_rule.size(); ++i) {
      remapped[rule_indices[i]] = group_stats.per_rule[i];
    }
    group_stats.per_rule = std::move(remapped);
    scc_span.Note("facts", group_stats.facts_derived);
    total.Add(group_stats);
  }
  span.Note("iterations", static_cast<std::uint64_t>(total.iterations));
  span.Note("facts", total.facts_derived);
  RecordEvalStats("scc-parallel", total);
  return total;
}

}  // namespace datalog
