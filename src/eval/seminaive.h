#ifndef DATALOG_EVAL_SEMINAIVE_H_
#define DATALOG_EVAL_SEMINAIVE_H_

#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"

namespace datalog {

/// Snapshot of per-predicate row counts. Relations are append-only, so the
/// facts discovered during a round are exactly the rows past the snapshot.
/// Shared by the sequential and parallel semi-naive engines.
using Watermarks = std::unordered_map<PredicateId, std::size_t>;

Watermarks TakeWatermarks(const Database& db);

/// Collects the facts added to `db` since `marks` into a fresh database.
Database CollectNewFacts(const Database& db, const Watermarks& marks);

/// Computes P(db) by semi-naive bottom-up iteration: each round only
/// considers rule instantiations that use at least one fact discovered in
/// the previous round. Produces exactly the same database as EvaluateNaive
/// but with far fewer redundant joins; this is the engine the optimization
/// benchmarks run on.
///
/// The program must be positive and safe; use EvaluateStratified for
/// programs with negation.
Result<EvalStats> EvaluateSemiNaive(const Program& program, Database* db);

/// Runs the semi-naive fixpoint over an explicit rule list without
/// validation. Negated literals are tested against the current database,
/// so the caller must guarantee that the negated predicates are already
/// fully computed (EvaluateStratified runs this stratum by stratum).
EvalStats RunSemiNaiveFixpoint(const std::vector<Rule>& rules, Database* db);

/// Like EvaluateSemiNaive, but evaluates the program one dependence-graph
/// SCC at a time in topological order: rules whose heads lie in earlier
/// components reach their fixpoint before later components start, so
/// their delta passes never re-run. Computes exactly the same database;
/// on programs with several strata of intentional predicates it does
/// strictly less bookkeeping (see bench_engine).
Result<EvalStats> EvaluateSemiNaiveScc(const Program& program, Database* db);

}  // namespace datalog

#endif  // DATALOG_EVAL_SEMINAIVE_H_
