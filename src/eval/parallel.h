#ifndef DATALOG_EVAL_PARALLEL_H_
#define DATALOG_EVAL_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace datalog {

/// Parallel semi-naive evaluation: computes exactly the same database as
/// EvaluateSemiNaive, but fans the (rule, delta-position, delta-shard)
/// passes of each round out across a worker pool. Within a round every
/// worker matches against a frozen read snapshot (the database as of the
/// round start plus the immutable delta, with all needed indexes pre-built
/// single-threaded), derives into a task-local buffer, and the buffers are
/// merged into the database single-threaded at the round barrier in task
/// order -- so the result and every non-timing counter of EvalStats are
/// deterministic, independent of scheduling and of `num_threads`.
/// See docs/parallel_eval.md for the design.
///
/// `num_threads` is the total parallelism including the calling thread
/// (the pool gets num_threads - 1 workers and the caller helps at the
/// barrier); 0 means std::thread::hardware_concurrency(), and 1 is a
/// fully single-threaded execution of the same deterministic schedule.
///
/// The program must be positive and safe, as for EvaluateSemiNaive.
Result<EvalStats> EvaluateSemiNaiveParallel(const Program& program,
                                            Database* db,
                                            std::size_t num_threads);

/// SCC-ordered variant: like EvaluateSemiNaiveScc but each component's
/// fixpoint runs on the parallel engine (one pool is shared across all
/// components). Computes exactly the same database.
Result<EvalStats> EvaluateSemiNaiveSccParallel(const Program& program,
                                               Database* db,
                                               std::size_t num_threads);

/// Runs the parallel semi-naive fixpoint over an explicit rule list
/// without validation, deriving with `pool` (which may have zero workers;
/// the calling thread then runs every task itself). Negated literals are
/// tested against the frozen round snapshot, so -- exactly as with
/// RunSemiNaiveFixpoint -- the caller must guarantee that negated
/// predicates are already fully computed.
EvalStats RunSemiNaiveFixpointParallel(const std::vector<Rule>& rules,
                                       Database* db, ThreadPool* pool);

}  // namespace datalog

#endif  // DATALOG_EVAL_PARALLEL_H_
