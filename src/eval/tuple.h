#ifndef DATALOG_EVAL_TUPLE_H_
#define DATALOG_EVAL_TUPLE_H_

#include <vector>

#include "ast/value.h"
#include "util/hash.h"

namespace datalog {

/// A row of constants. A relation for predicate Q is a set of tuples, each
/// standing for a ground atom of Q (Section III).
using Tuple = std::vector<Value>;

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t seed = t.size();
    for (const Value& v : t) {
      HashCombine(seed, v.Hash());
    }
    return seed;
  }
};

}  // namespace datalog

#endif  // DATALOG_EVAL_TUPLE_H_
