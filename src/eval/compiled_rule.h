#ifndef DATALOG_EVAL_COMPILED_RULE_H_
#define DATALOG_EVAL_COMPILED_RULE_H_

#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/rule.h"
#include "eval/bytecode/bytecode.h"
#include "eval/database.h"
#include "eval/hypergraph.h"
#include "eval/rule_matcher.h"

namespace datalog {

class CompiledRule;

/// One body atom compiled against a fixed join order. Every argument
/// position is classified once, at compile time:
///   - constants sit pre-filled in `key_template`,
///   - variables bound by earlier atoms are key positions patched from
///     the frame per probe (`key_fill`),
///   - the first occurrence of a free variable writes its frame slot
///     (`writes`),
///   - repeated occurrences within the same atom compare against the
///     slot written moments earlier (`checks`).
/// The enumeration loop therefore does no per-row classification, no
/// hash-map binding churn, and no per-probe key allocation.
struct CompiledAtomStep {
  struct KeyFill {
    int key_index;  // position in the key buffer
    int slot;       // frame slot providing the value
  };
  struct SlotRef {
    int col;   // column of the matched row
    int slot;  // frame slot written (writes) or compared (checks)
  };

  PredicateId predicate = 0;
  int arity = 0;
  AtomSource source = AtomSource::kFull;
  std::vector<int> key_cols;  // strictly increasing bound columns
  Tuple key_template;         // constants filled, bound positions patched
  std::vector<KeyFill> key_fill;
  std::vector<SlotRef> writes;
  std::vector<SlotRef> checks;
  std::size_t planned_size = 0;  // source relation size at plan time

  // Columnar batch-probe mirrors of the schedules above, precomputed at
  // compile time so the batch executor never touches a Value:
  // `key_template_ids` is `key_template` with constants interned to
  // dictionary ids (patched positions hold kInvalidId until key_fill
  // overwrites them per probe), and `id_checks` lowers each repeated-
  // variable check to a row-local column pair (first-occurrence column,
  // repeat column) compared directly on the raw id arrays.
  std::vector<std::uint32_t> key_template_ids;
  std::vector<std::pair<int, int>> id_checks;
};

/// One (variable, atom) probe of the multiway plan shape: how to compute
/// the candidate ids atom `atom` (an index into the plan's step list,
/// which doubles as the multiway atom list) offers for the variable
/// bound at this step. `bound_cols` are the atom's columns already fixed
/// when the step runs -- constants plus variables bound by earlier
/// steps; `var_cols` are the columns holding the step's variable
/// (usually one; repeated occurrences must agree row-locally). A probe
/// with no bound columns is `unconditional`: its candidate list is the
/// atom's sorted distinct column ids, computed once per Apply.
struct MultiwayProbe {
  std::size_t atom = 0;
  std::vector<int> var_cols;
  std::vector<int> bound_cols;  // strictly increasing
  // Parallel to bound_cols: constants interned (patched positions hold
  // kInvalidId until key_fill overwrites them from the u32 frame).
  std::vector<std::uint32_t> key_template_ids;
  std::vector<CompiledAtomStep::KeyFill> key_fill;
  bool unconditional = false;
  // The union of bound_cols and var_cols (strictly increasing), with its
  // own key template/fill plus the key positions that receive the
  // candidate id. The executor materializes only the smallest probe's
  // candidate list and membership-tests the rest through the index on
  // these columns -- the seek that makes the intersection worst-case
  // optimal instead of paying every probe's full posting size.
  std::vector<int> union_cols;
  std::vector<std::uint32_t> union_template_ids;
  std::vector<CompiledAtomStep::KeyFill> union_key_fill;
  std::vector<int> union_var_positions;
};

/// One variable of the multiway plan's fixed variable order: intersect
/// the candidate lists of every atom containing the variable, bind the
/// survivors into `slot`, recurse.
struct MultiwayStep {
  int slot = -1;
  std::vector<MultiwayProbe> probes;
};

/// A head or negated-literal argument: a constant, or a frame slot. A
/// negative slot marks a variable the positive body never binds; using it
/// throws, exactly like the legacy Binding::at would on a match.
struct CompiledTerm {
  bool is_constant = false;
  Value value;
  int slot = -1;
  // Dictionary id of `value` (constants only), interned at compile time
  // so the batch path instantiates heads and negation keys in id space.
  std::uint32_t value_id = 0;
};

/// Per-enumeration mutable state: the flat variable frame plus one
/// reusable key buffer per join depth. Constructing (or Reset-ing) a
/// frame is the only allocation a compiled enumeration performs; the
/// inner loop is allocation-free.
struct MatchFrame {
  MatchFrame() = default;
  explicit MatchFrame(const CompiledRule& plan) { Reset(plan); }
  void Reset(const CompiledRule& plan);

  /// Loop-invariant per-depth source state, resolved once per Execute
  /// instead of once per visit: the relation pointer (a hash lookup in
  /// Database), the scan limit, whether the depth can match at all, and
  /// -- for indexed probes -- a direct view of the index, skipping the
  /// per-probe index-map find inside Relation::Lookup.
  struct DepthSource {
    const Relation* rel = nullptr;
    std::size_t limit = 0;
    bool dead = false;
    Relation::SingleIndexView single_index;
    Relation::MultiIndexView multi_index;
  };

  std::vector<Value> slots;
  std::vector<Tuple> keys;  // keys[d] belongs to join depth d
  std::vector<DepthSource> sources;
};

/// A rule body compiled to slot-addressed join schedules: the
/// (rule, delta position, use_old) variant of the legacy Matcher, planned
/// once and executed many times. Immutable while executing; Replan (and
/// the cache's Get) may rebuild the schedules between executions.
///
/// Thread safety: compiling and Replan-ing require exclusive access.
/// Execute/Apply are read-only on the plan and on the databases provided
/// EnsureIndexes ran since the last insert (the same frozen-snapshot
/// contract as Relation::Lookup; see docs/join_compilation.md), so one
/// plan can serve many worker threads concurrently.
class CompiledRule {
 public:
  CompiledRule() = default;

  /// Compiles the delta-pass variant of `rule` (see BuildDeltaPassAtoms).
  static CompiledRule Compile(const Rule& rule, std::size_t delta_pos,
                              bool use_old, const Database& full,
                              const Database* delta);

  /// Compiles a bare atom list (the MatchAtoms adapter): no head, no
  /// negated literals.
  static CompiledRule CompileAtoms(std::vector<PlannedAtom> atoms,
                                   const Database& full,
                                   const Database* delta);

  bool compiled() const { return compiled_; }

  /// True when the cached join order should be recomputed: an ablation
  /// knob changed, or some participating relation's cardinality moved by
  /// >= 4x since planning -- one step of the greedy planner's own
  /// selectivity granularity (cost /= 4 per bound column), below which a
  /// new plan could not change the order anyway.
  bool NeedsReplan(const Database& full, const Database* delta) const;

  /// Recomputes the join order and all schedules against current sizes.
  void Replan(const Database& full, const Database* delta);

  /// Pre-builds every index Execute can probe, making a subsequent
  /// Execute/Apply read-only on the relations (frozen-snapshot contract).
  void EnsureIndexes(const Database& full, const Database* delta) const;

  /// Enumerates body matches and inserts instantiated heads into `out`
  /// (negated literals are tested against `full`). Derived tuples are
  /// buffered until the enumeration finishes, so `out` may alias `full`.
  /// Returns the number of facts new in `out`. Only valid for plans
  /// compiled from a Rule.
  ///
  /// When the columnar storage knob is on and every relation the plan
  /// touches is columnar, Apply dispatches to the vectorized batch-probe
  /// executor (ApplyBatch): level-at-a-time enumeration over flat u32
  /// frames with branch-light filters on the raw column arrays. The
  /// batch path visits candidate rows in exactly the depth-first order
  /// Execute does, replicates MatchStats bump for bump, and inserts
  /// derived facts in the same order, so the two executors are
  /// bit-for-bit interchangeable (tests/integration enforces this).
  std::size_t Apply(const Database& full, const Database* delta,
                    const OldLimits* old_limits, Database* out,
                    MatchStats* stats) const;

  /// Enumerates every complete match into `sink` (called with the frame;
  /// return false to stop early). Counter semantics are identical to the
  /// legacy Matcher, row for row.
  template <typename Sink>
  void Execute(const Database& full, const Database* delta,
               const OldLimits* old_limits, MatchFrame* frame,
               MatchStats* stats, Sink&& sink) const {
    if (steps_.empty()) {
      if (stats != nullptr) ++stats->substitutions;
      sink(*frame);
      return;
    }
    // Resolve each depth's relation, scan limit, and viability once: all
    // three are invariant for the whole enumeration (no insert happens
    // while matching), and resolving them per visit would cost a hash
    // lookup per parent row per depth. A dead depth still lets shallower
    // depths run -- and count -- exactly as the legacy matcher's early
    // returns do.
    for (std::size_t d = 0; d < steps_.size(); ++d) {
      const CompiledAtomStep& step = steps_[d];
      const Database& src =
          step.source == AtomSource::kDelta ? *delta : full;
      const Relation& rel = src.relation(step.predicate);
      MatchFrame::DepthSource& ds = frame->sources[d];
      ds.rel = &rel;
      ds.limit = rel.size();
      ds.dead = rel.empty() || rel.arity() != step.arity;
      if (step.source == AtomSource::kOld && !ds.dead) {
        ds.limit = OldLimitFor(old_limits, step.predicate);
        ds.dead = ds.limit == 0;
      }
      // Prepare index views for exactly the probes Step will issue (the
      // same condition EnsureIndexes pre-builds for): partially bound
      // indexed probes, and fully bound ones on the old snapshot -- where
      // "fully bound" includes the zero-arity case, whose degenerate
      // empty-column index maps the empty key to every row, exactly as
      // the legacy matcher's Lookup did. The current-state membership
      // test uses Contains and needs no view.
      const bool fully_bound =
          static_cast<int>(step.key_cols.size()) == step.arity;
      const bool probes_index =
          use_index_ && (fully_bound ? step.source == AtomSource::kOld
                                     : !step.key_cols.empty());
      if (!ds.dead && probes_index) {
        if (step.key_cols.size() == 1) {
          ds.single_index = rel.PrepareSingleIndex(step.key_cols[0]);
        } else {
          ds.multi_index = rel.PrepareIndex(step.key_cols);
        }
      }
    }
    Step(0, *frame, stats, sink);
  }

  /// Materializes the frame into a Binding (the MatchAtoms adapter).
  /// Every complete match binds the same variable set, so repeated calls
  /// overwrite in place and allocate only on the first match.
  void FillBinding(const MatchFrame& frame, Binding* binding) const {
    for (const auto& [var, slot] : var_slots_) {
      (*binding)[var] = frame.slots[static_cast<std::size_t>(slot)];
    }
  }

  int num_slots() const { return num_slots_; }
  std::size_t num_steps() const { return steps_.size(); }
  const std::vector<CompiledAtomStep>& steps() const { return steps_; }
  PredicateId head_predicate() const { return head_predicate_; }

  /// The plan shape BuildSchedules selected (see docs/multiway_joins.md):
  /// kMultiway when the body's join hypergraph is cyclic with estimated
  /// width >= 2, the multiway and index knobs are on, every
  /// participating relation is non-empty, and the plan qualifies for
  /// id-space emission (batch_ok). Replan re-decides, so a >= 4x
  /// cardinality drift can flip the shape between rounds.
  PlanShape shape() const { return shape_; }
  const std::vector<MultiwayStep>& multiway_steps() const {
    return mw_steps_;
  }

  /// The plan lowered to register-based bytecode (empty when the plan
  /// does not qualify for id-space execution). Rebuilt by every
  /// BuildSchedules, so Replan keeps it in sync with the struct
  /// schedules. Apply executes it -- via the computed-goto VM in
  /// eval/bytecode -- when the bytecode and columnar knobs are on; see
  /// docs/bytecode_vm.md.
  const bytecode::Program& bytecode_program() const { return bc_; }

  /// True if every negated literal is absent from `full` under the frame.
  bool NegationHolds(const Database& full, const MatchFrame& frame,
                     Tuple* scratch) const;

  Tuple InstantiateHeadFromFrame(const MatchFrame& frame) const;

 private:
  friend struct MatchFrame;
  friend bytecode::Program bytecode::Lower(const CompiledRule& plan);

  void BuildSchedules(const Database& full, const Database* delta);

  /// Vectorized executor behind Apply: per join depth, expand the whole
  /// frontier of candidate frames at once against the raw id columns.
  /// Returns false -- before bumping any counter or inserting anything --
  /// when some live relation is not columnar (a knob flipped mid-stream),
  /// in which case Apply falls back to the depth-first Execute path.
  bool ApplyBatch(const Database& full, const Database* delta,
                  const OldLimits* old_limits, Database* out,
                  MatchStats* stats, std::size_t* new_facts) const;

  /// Builds the multiway variable order and per-step probe schedules
  /// (called by BuildSchedules after it selects PlanShape::kMultiway).
  /// `order` is the planned atom list steps_ was built from -- probe
  /// atom indexes refer to it -- and `slot_of` the left-deep slot
  /// assignment, reused so head and negation terms address the same
  /// frame under either shape.
  void BuildMultiwaySchedules(
      const std::vector<PlannedAtom>& order,
      const std::unordered_map<VariableId, int>& slot_of);

  /// Generic worst-case-optimal executor behind Apply when the plan
  /// shape is kMultiway: iterates variables in the plan's fixed order,
  /// intersecting sorted candidate-id lists contributed by every atom
  /// containing the variable. Returns false -- before bumping any
  /// counter or inserting anything -- when some live relation is not
  /// columnar, in which case Apply falls back to the left-deep path.
  bool ApplyMultiway(const Database& full, const Database* delta,
                     const OldLimits* old_limits, Database* out,
                     MatchStats* stats, std::size_t* new_facts) const;

  static std::size_t OldLimitFor(const OldLimits* old_limits,
                                 PredicateId pred) {
    if (old_limits == nullptr) return 0;
    auto it = old_limits->find(pred);
    return it == old_limits->end() ? 0 : it->second;
  }

  static void FillTerms(const std::vector<CompiledTerm>& terms,
                        const MatchFrame& frame, Tuple* out) {
    out->clear();
    out->reserve(terms.size());
    for (const CompiledTerm& t : terms) {
      if (t.is_constant) {
        out->push_back(t.value);
      } else {
        if (t.slot < 0) throw std::out_of_range("unbound rule variable");
        out->push_back(frame.slots[static_cast<std::size_t>(t.slot)]);
      }
    }
  }

  template <typename Sink>
  bool Step(std::size_t depth, MatchFrame& frame, MatchStats* stats,
            Sink& sink) const {
    if (depth == steps_.size()) {
      if (stats != nullptr) ++stats->substitutions;
      return sink(frame);
    }
    const MatchFrame::DepthSource& ds = frame.sources[depth];
    if (ds.dead) {
      // Empty relation, arity mismatch, or an exhausted old snapshot: no
      // matches, and no counter bump (matching the legacy early returns).
      return true;
    }
    const CompiledAtomStep& step = steps_[depth];
    const Relation& rel = *ds.rel;
    const bool old_only = step.source == AtomSource::kOld;
    const std::size_t limit = ds.limit;
    if (stats != nullptr) ++stats->index_lookups;

    Tuple& key = frame.keys[depth];
    for (const CompiledAtomStep::KeyFill& kf : step.key_fill) {
      key[static_cast<std::size_t>(kf.key_index)] =
          frame.slots[static_cast<std::size_t>(kf.slot)];
    }

    if (use_index_ &&
        static_cast<int>(step.key_cols.size()) == step.arity) {
      // Fully bound: membership test. The old snapshot additionally
      // needs the matching row to predate the limit.
      if (stats != nullptr) ++stats->tuples_scanned;
      if (old_only) {
        const std::vector<std::uint32_t>& row_ids =
            step.key_cols.size() == 1 ? ds.single_index.Find(key[0])
                                      : ds.multi_index.Find(key);
        for (std::uint32_t row_id : row_ids) {
          if (row_id < limit) {
            return Step(depth + 1, frame, stats, sink);
          }
        }
        return true;
      }
      if (rel.Contains(key)) {
        return Step(depth + 1, frame, stats, sink);
      }
      return true;
    }

    auto try_row = [&](const Tuple& row) -> bool {
      for (const CompiledAtomStep::SlotRef& w : step.writes) {
        frame.slots[static_cast<std::size_t>(w.slot)] =
            row[static_cast<std::size_t>(w.col)];
      }
      for (const CompiledAtomStep::SlotRef& c : step.checks) {
        if (frame.slots[static_cast<std::size_t>(c.slot)] !=
            row[static_cast<std::size_t>(c.col)]) {
          return true;  // repeated variable mismatch; keep enumerating
        }
      }
      return Step(depth + 1, frame, stats, sink);
    };

    if (step.key_cols.empty()) {
      for (std::size_t i = 0; i < limit; ++i) {
        if (stats != nullptr) ++stats->tuples_scanned;
        if (!try_row(rel.row(i))) return false;
      }
      return true;
    }

    if (!use_index_) {
      for (std::size_t i = 0; i < limit; ++i) {
        const Tuple& row = rel.row(i);
        if (stats != nullptr) ++stats->tuples_scanned;
        bool matches = true;
        for (std::size_t k = 0; k < step.key_cols.size(); ++k) {
          if (row[static_cast<std::size_t>(step.key_cols[k])] != key[k]) {
            matches = false;
            break;
          }
        }
        if (matches && !try_row(row)) return false;
      }
      return true;
    }

    const std::vector<std::uint32_t>& row_ids =
        step.key_cols.size() == 1 ? ds.single_index.Find(key[0])
                                  : ds.multi_index.Find(key);
    for (std::uint32_t row_id : row_ids) {
      if (old_only && row_id >= limit) continue;
      if (stats != nullptr) ++stats->tuples_scanned;
      if (!try_row(rel.row(row_id))) return false;
    }
    return true;
  }

  bool compiled_ = false;
  bool has_rule_ = false;
  bool greedy_ = true;     // knob snapshot at plan time
  bool use_index_ = true;  // knob snapshot at plan time
  bool multiway_ = true;   // knob snapshot at plan time
  std::uint64_t hints_version_ = 0;  // knob snapshot at plan time
  PlanShape shape_ = PlanShape::kLeftDeep;
  // Structural (size-independent) multiway candidacy: >= 3 atoms, cyclic,
  // width >= 2, not hinted. Decides whether cardinality drift can flip
  // the shape and hence whether NeedsReplan watches sizes at all.
  bool mw_candidate_ = false;
  std::vector<MultiwayStep> mw_steps_;
  // True when every head/negated term is a constant or a bound slot, so
  // the batch executor can run without the unbound-variable throw path.
  bool batch_ok_ = false;
  bytecode::Program bc_;  // rebuilt by BuildSchedules; empty if unlowered
  std::vector<PlannedAtom> atoms_;  // original order; Replan re-sorts
  std::vector<CompiledAtomStep> steps_;
  int num_slots_ = 0;
  std::vector<std::pair<VariableId, int>> var_slots_;
  PredicateId head_predicate_ = 0;
  Atom head_;
  std::vector<CompiledTerm> head_terms_;
  std::vector<Atom> negated_;
  std::vector<PredicateId> negated_preds_;
  std::vector<std::vector<CompiledTerm>> negated_terms_;
};

/// Owns one CompiledRule per (rule index, delta position, use_old)
/// variant, compiled on first use and revalidated on every Get: a
/// changed ablation knob recompiles, a >= 4x cardinality drift replans.
/// Engines keep one cache per fixpoint so join orders persist across
/// rounds instead of being recomputed per rule application.
///
/// Not thread-safe: call Get only from single-threaded phases (the
/// parallel evaluator resolves all plans during snapshot preparation and
/// hands workers const pointers). Returned references stay valid for the
/// cache's lifetime; Get never invalidates other entries.
class CompiledRuleCache {
 public:
  const CompiledRule& Get(std::size_t rule_index, const Rule& rule,
                          std::size_t delta_pos, bool use_old,
                          const Database& full, const Database* delta);

  std::size_t size() const { return plans_.size(); }

 private:
  std::map<std::tuple<std::size_t, std::size_t, bool>, CompiledRule> plans_;
};

}  // namespace datalog

#endif  // DATALOG_EVAL_COMPILED_RULE_H_
