#include "eval/rule_matcher.h"

#include <algorithm>
#include <limits>

#include "eval/compiled_rule.h"

namespace datalog {

namespace {
bool greedy_join_ordering_enabled = true;
bool index_lookups_enabled = true;
bool compiled_rule_plans_enabled = true;
bool multiway_joins_enabled = true;
bool bytecode_execution_enabled = true;
const JoinOrderHints* join_order_hints = nullptr;
std::uint64_t join_order_hints_version = 0;
}  // namespace

void SetGreedyJoinOrdering(bool enabled) {
  greedy_join_ordering_enabled = enabled;
}
bool GreedyJoinOrderingEnabled() { return greedy_join_ordering_enabled; }
void SetIndexLookups(bool enabled) { index_lookups_enabled = enabled; }
bool IndexLookupsEnabled() { return index_lookups_enabled; }
void SetCompiledRulePlans(bool enabled) {
  compiled_rule_plans_enabled = enabled;
}
bool CompiledRulePlansEnabled() { return compiled_rule_plans_enabled; }
void SetMultiwayJoins(bool enabled) { multiway_joins_enabled = enabled; }
bool MultiwayJoinsEnabled() { return multiway_joins_enabled; }
void SetBytecodeExecution(bool enabled) {
  bytecode_execution_enabled = enabled;
}
bool BytecodeExecutionEnabled() { return bytecode_execution_enabled; }

void SetJoinOrderHints(const JoinOrderHints* hints) {
  join_order_hints = hints;
  ++join_order_hints_version;
}
const JoinOrderHints* InstalledJoinOrderHints() { return join_order_hints; }
std::uint64_t JoinOrderHintsVersion() { return join_order_hints_version; }

std::uint64_t BodyFingerprint(const std::vector<PlannedAtom>& atoms) {
  std::size_t seed = 0xda7a106u;
  for (const PlannedAtom& planned : atoms) {
    HashCombine(seed, std::hash<int>{}(planned.atom.predicate()));
  }
  return seed;
}

namespace {

/// Recursive backtracking join over the planned atoms.
class Matcher {
 public:
  Matcher(const Database& full, const Database* delta,
          const std::vector<PlannedAtom>& atoms,
          const std::function<bool(const Binding&)>& callback,
          MatchStats* stats, const OldLimits* old_limits = nullptr)
      : full_(full),
        delta_(delta),
        callback_(callback),
        stats_(stats),
        old_limits_(old_limits) {
    order_ = PlanJoinOrder(full, delta, atoms);
  }

  void Run() {
    if (order_.empty()) {
      // Empty body: exactly one (empty) match.
      if (stats_ != nullptr) ++stats_->substitutions;
      callback_(binding_);
      return;
    }
    Enumerate(0);
  }

 private:
  const Database& SourceDb(AtomSource source) const {
    return source == AtomSource::kDelta ? *delta_ : full_;
  }

  /// Rows [0, OldLimit(pred)) of the full relation form the old snapshot.
  std::size_t OldLimit(PredicateId pred) const {
    if (old_limits_ == nullptr) return 0;
    auto it = old_limits_->find(pred);
    return it == old_limits_->end() ? 0 : it->second;
  }

  bool Enumerate(std::size_t depth) {
    if (depth == order_.size()) {
      if (stats_ != nullptr) ++stats_->substitutions;
      return callback_(binding_);
    }
    const PlannedAtom& planned = order_[depth];
    const Atom& atom = planned.atom;
    const Relation& rel = SourceDb(planned.source).relation(atom.predicate());
    if (rel.empty()) {
      // No rows, no matches. Returning before any Lookup also keeps the
      // shared empty-relation sentinel write-free, which the parallel
      // evaluator's frozen-snapshot contract relies on.
      return true;
    }
    if (rel.arity() != atom.arity()) {
      return true;  // arity mismatch cannot match (defensive; validated earlier)
    }
    const bool old_only = planned.source == AtomSource::kOld;
    const std::size_t old_limit =
        old_only ? OldLimit(atom.predicate()) : rel.size();
    if (old_only && old_limit == 0) return true;  // no old rows at all

    // Split argument positions into bound (constant / bound variable) and
    // free.
    std::vector<int> bound_cols;
    Tuple key;
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.args()[static_cast<std::size_t>(i)];
      if (t.is_constant()) {
        bound_cols.push_back(i);
        key.push_back(t.value());
      } else {
        auto it = binding_.find(t.var());
        if (it != binding_.end()) {
          bound_cols.push_back(i);
          key.push_back(it->second);
        }
      }
    }

    if (stats_ != nullptr) ++stats_->index_lookups;

    // The membership fast path below uses Lookup/Contains, so it must
    // honor the index-lookups ablation knob too; with the knob off a
    // fully bound atom falls through to the scan-and-filter loop like
    // any other bound atom.
    if (IndexLookupsEnabled() &&
        static_cast<int>(bound_cols.size()) == atom.arity()) {
      // Fully bound: membership test. The old snapshot additionally needs
      // the matching row to predate the limit.
      if (stats_ != nullptr) ++stats_->tuples_scanned;
      if (old_only) {
        for (std::uint32_t row_id : rel.Lookup(bound_cols, key)) {
          if (row_id < old_limit) return Enumerate(depth + 1);
        }
        return true;
      }
      if (rel.Contains(key)) {
        return Enumerate(depth + 1);
      }
      return true;
    }

    auto try_row = [&](const Tuple& row) {
      std::vector<VariableId> newly_bound;
      bool ok = true;
      for (int i = 0; i < atom.arity() && ok; ++i) {
        const Term& t = atom.args()[static_cast<std::size_t>(i)];
        if (t.is_constant()) continue;
        auto [it, inserted] =
            binding_.emplace(t.var(), row[static_cast<std::size_t>(i)]);
        if (inserted) {
          newly_bound.push_back(t.var());
        } else if (it->second != row[static_cast<std::size_t>(i)]) {
          ok = false;  // repeated variable with conflicting values
        }
      }
      bool keep_going = true;
      if (ok) keep_going = Enumerate(depth + 1);
      for (VariableId v : newly_bound) binding_.erase(v);
      return keep_going;
    };

    if (bound_cols.empty()) {
      for (std::size_t i = 0; i < old_limit; ++i) {
        if (stats_ != nullptr) ++stats_->tuples_scanned;
        if (!try_row(rel.row(i))) return false;
      }
      return true;
    }

    if (!IndexLookupsEnabled()) {
      for (std::size_t i = 0; i < old_limit; ++i) {
        const Tuple& row = rel.row(i);
        if (stats_ != nullptr) ++stats_->tuples_scanned;
        bool matches = true;
        for (std::size_t k = 0; k < bound_cols.size(); ++k) {
          if (row[static_cast<std::size_t>(bound_cols[k])] != key[k]) {
            matches = false;
            break;
          }
        }
        if (matches && !try_row(row)) return false;
      }
      return true;
    }

    for (std::uint32_t row_id : rel.Lookup(bound_cols, key)) {
      if (old_only && row_id >= old_limit) continue;
      if (stats_ != nullptr) ++stats_->tuples_scanned;
      if (!try_row(rel.row(row_id))) return false;
    }
    return true;
  }

  const Database& full_;
  const Database* delta_;
  // Stored by value: callers commonly pass a temporary std::function
  // constructed from a lambda at the call site.
  std::function<bool(const Binding&)> callback_;
  MatchStats* stats_;
  const OldLimits* old_limits_;
  std::vector<PlannedAtom> order_;
  Binding binding_;
};

/// True if every negated literal of `rule` is absent from `full` under
/// `binding` (safety guarantees the literal is fully bound).
bool NegationHolds(const Rule& rule, const Database& full,
                   const Binding& binding) {
  for (const Literal& lit : rule.body()) {
    if (!lit.negated) continue;
    Tuple tuple = InstantiateHead(lit.atom, binding);
    if (full.Contains(lit.atom.predicate(), tuple)) return false;
  }
  return true;
}

std::size_t ApplyRuleImpl(const Rule& rule, const Database& full,
                          const Database* delta,
                          std::size_t delta_pos,  // or npos
                          Database* out, MatchStats* stats,
                          const OldLimits* old_limits,
                          CompiledRuleCache* cache, std::size_t rule_index) {
  const bool use_old = old_limits != nullptr;
  if (CompiledRulePlansEnabled()) {
    if (cache != nullptr) {
      const CompiledRule& plan =
          cache->Get(rule_index, rule, delta_pos, use_old, full, delta);
      return plan.Apply(full, delta, old_limits, out, stats);
    }
    CompiledRule plan =
        CompiledRule::Compile(rule, delta_pos, use_old, full, delta);
    return plan.Apply(full, delta, old_limits, out, stats);
  }

  std::vector<PlannedAtom> atoms =
      BuildDeltaPassAtoms(rule, delta_pos, use_old);

  // Derived tuples are buffered and inserted only after the enumeration
  // finishes: `out` may alias `full`, and inserting while the matcher is
  // iterating rows/indexes of the same relation would invalidate them.
  std::vector<Tuple> derived;
  auto on_match = [&](const Binding& binding) {
    if (!NegationHolds(rule, full, binding)) return true;
    derived.push_back(InstantiateHead(rule.head(), binding));
    return true;
  };
  Matcher matcher(full, delta, atoms, on_match, stats, old_limits);
  matcher.Run();

  std::size_t new_facts = 0;
  for (Tuple& tuple : derived) {
    if (out->AddFact(rule.head().predicate(), std::move(tuple))) {
      ++new_facts;
    }
  }
  return new_facts;
}

}  // namespace

void MatchAtoms(const Database& full, const Database* delta,
                const std::vector<PlannedAtom>& atoms,
                const std::function<bool(const Binding&)>& callback,
                MatchStats* stats) {
  if (CompiledRulePlansEnabled()) {
    // Thin adapter over the compiled path: the enumeration runs on the
    // flat frame and a Binding is materialized only per complete match
    // (overwritten in place, so buckets are allocated once).
    const CompiledRule plan = CompiledRule::CompileAtoms(atoms, full, delta);
    MatchFrame frame(plan);
    Binding binding;
    plan.Execute(full, delta, /*old_limits=*/nullptr, &frame, stats,
                 [&](const MatchFrame& f) {
                   plan.FillBinding(f, &binding);
                   return callback(binding);
                 });
    return;
  }
  Matcher matcher(full, delta, atoms, callback, stats);
  matcher.Run();
}

std::vector<PlannedAtom> BuildDeltaPassAtoms(const Rule& rule,
                                             std::size_t delta_pos,
                                             bool use_old) {
  std::vector<PlannedAtom> atoms;
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    const Literal& lit = rule.body()[i];
    if (lit.negated) continue;
    AtomSource source;
    if (i == delta_pos) {
      source = AtomSource::kDelta;
    } else if (i < delta_pos && use_old) {
      source = AtomSource::kOld;
    } else {
      source = AtomSource::kFull;
    }
    atoms.push_back(PlannedAtom{lit.atom, source});
  }
  return atoms;
}

/// Greedy join order: repeatedly pick the atom with the cheapest
/// estimated probe given the variables bound so far (more bound columns
/// and smaller relations first).
std::vector<PlannedAtom> PlanJoinOrder(const Database& full,
                                       const Database* delta,
                                       const std::vector<PlannedAtom>& atoms) {
  // An installed hint overrides the greedy planner when it is a valid
  // permutation of the body; anything malformed falls through, so hints
  // affect join order only, never results.
  if (join_order_hints != nullptr && !atoms.empty()) {
    auto it = join_order_hints->order.find(BodyFingerprint(atoms));
    if (it != join_order_hints->order.end() &&
        it->second.size() == atoms.size()) {
      std::vector<bool> seen(atoms.size(), false);
      bool valid = true;
      for (std::size_t idx : it->second) {
        if (idx >= atoms.size() || seen[idx]) {
          valid = false;
          break;
        }
        seen[idx] = true;
      }
      if (valid) {
        std::vector<PlannedAtom> order;
        order.reserve(atoms.size());
        for (std::size_t idx : it->second) order.push_back(atoms[idx]);
        return order;
      }
    }
  }
  if (!GreedyJoinOrderingEnabled()) return atoms;
  auto source_db = [&](AtomSource source) -> const Database& {
    return source == AtomSource::kDelta ? *delta : full;
  };
  std::vector<PlannedAtom> order;
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> bound_vars;  // indexed by variable id, grown on demand
  auto is_bound = [&bound_vars](VariableId v) {
    return static_cast<std::size_t>(v) < bound_vars.size() &&
           bound_vars[static_cast<std::size_t>(v)];
  };
  auto mark_bound = [&bound_vars](VariableId v) {
    if (static_cast<std::size_t>(v) >= bound_vars.size()) {
      bound_vars.resize(static_cast<std::size_t>(v) + 1, false);
    }
    bound_vars[static_cast<std::size_t>(v)] = true;
  };

  for (std::size_t step = 0; step < atoms.size(); ++step) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best = atoms.size();
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      const Atom& atom = atoms[i].atom;
      int bound = 0;
      for (const Term& t : atom.args()) {
        if (t.is_constant() || (t.is_variable() && is_bound(t.var()))) {
          ++bound;
        }
      }
      double rel_size = static_cast<double>(
          source_db(atoms[i].source).relation(atom.predicate()).size());
      double cost = rel_size;
      for (int b = 0; b < bound; ++b) cost /= 4.0;  // crude selectivity
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(atoms[best]);
    for (const Term& t : atoms[best].atom.args()) {
      if (t.is_variable()) mark_bound(t.var());
    }
  }
  return order;
}

Tuple InstantiateHead(const Atom& atom, const Binding& binding) {
  Tuple tuple;
  tuple.reserve(atom.args().size());
  for (const Term& t : atom.args()) {
    if (t.is_constant()) {
      tuple.push_back(t.value());
    } else {
      tuple.push_back(binding.at(t.var()));
    }
  }
  return tuple;
}

std::size_t ApplyRule(const Rule& rule, const Database& full, Database* out,
                      MatchStats* stats, CompiledRuleCache* cache,
                      std::size_t rule_index) {
  return ApplyRuleImpl(rule, full, /*delta=*/nullptr,
                       /*delta_pos=*/std::numeric_limits<std::size_t>::max(),
                       out, stats, /*old_limits=*/nullptr, cache, rule_index);
}

std::size_t ApplyRuleWithDelta(const Rule& rule, const Database& full,
                               const Database& delta, std::size_t delta_pos,
                               Database* out, MatchStats* stats,
                               const OldLimits* old_limits,
                               CompiledRuleCache* cache,
                               std::size_t rule_index) {
  return ApplyRuleImpl(rule, full, &delta, delta_pos, out, stats, old_limits,
                       cache, rule_index);
}

}  // namespace datalog
