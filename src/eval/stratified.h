#ifndef DATALOG_EVAL_STRATIFIED_H_
#define DATALOG_EVAL_STRATIFIED_H_

#include "ast/program.h"
#include "eval/database.h"
#include "eval/eval_stats.h"
#include "util/result.h"

namespace datalog {

/// Evaluates a program with stratified negation (the extension the paper
/// announces in Section XII): predicates are grouped into strata so that
/// negation never crosses into the same or a higher stratum, and each
/// stratum is computed to a semi-naive fixpoint before any stratum that
/// negates it. Fails with InvalidArgument when the program is unsafe or
/// not stratifiable.
///
/// For positive programs this computes exactly EvaluateSemiNaive.
Result<EvalStats> EvaluateStratified(const Program& program, Database* db);

}  // namespace datalog

#endif  // DATALOG_EVAL_STRATIFIED_H_
