#include "eval/seminaive.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "ast/dependence_graph.h"
#include "ast/validate.h"
#include "eval/compiled_rule.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace datalog {

Watermarks TakeWatermarks(const Database& db) {
  Watermarks marks;
  for (PredicateId pred : db.NonEmptyPredicates()) {
    marks[pred] = db.relation(pred).size();
  }
  return marks;
}

Database CollectNewFacts(const Database& db, const Watermarks& marks) {
  Database delta(db.symbols());
  for (PredicateId pred : db.NonEmptyPredicates()) {
    const Relation& rel = db.relation(pred);
    auto it = marks.find(pred);
    std::size_t from = it == marks.end() ? 0 : it->second;
    // Id-space copy when both relations are columnar: no Value hashing.
    delta.AddRowRange(pred, rel, from, rel.size());
  }
  return delta;
}

EvalStats RunSemiNaiveFixpoint(const std::vector<Rule>& rules, Database* db) {
  EvalStats stats;
  stats.per_rule.resize(rules.size());

  // Facts contributed by the program itself (rules with empty bodies).
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& rule = rules[ri];
    if (!rule.IsFact()) continue;
    Tuple tuple;
    for (const Term& t : rule.head().args()) tuple.push_back(t.value());
    if (db->AddFact(rule.head().predicate(), std::move(tuple))) {
      ++stats.facts_derived;
      ++stats.per_rule[ri].facts;
    }
  }

  // Round 0: everything already in the database counts as newly
  // discovered. This uniformly covers EDB facts, program facts, and
  // IDB-as-input facts (the uniform semantics of Section IV). Facts of
  // predicates no rule body reads can never gate a match, so the delta
  // is restricted to the read set -- this is what keeps SCC-ordered
  // evaluation from re-paying a full round 0 per component.
  std::set<PredicateId> read_preds;
  for (const Rule& rule : rules) {
    for (const Literal& lit : rule.body()) {
      if (!lit.negated) read_preds.insert(lit.atom.predicate());
    }
  }
  Database delta(db->symbols());
  for (PredicateId pred : db->NonEmptyPredicates()) {
    if (!read_preds.contains(pred)) continue;
    const Relation& rel = db->relation(pred);
    delta.AddRowRange(pred, rel, 0, rel.size());
  }

  // The snapshot from which the current delta was cut: rows below these
  // limits are "old". Round 0 has no old rows (everything is new).
  OldLimits old_limits;

  // One compiled plan per (rule, delta position), reused across rounds;
  // join orders are replanned only on >= 4x cardinality drift.
  CompiledRuleCache cache;

  while (!delta.empty()) {
    ++stats.iterations;
    TraceSpan round_span("seminaive/round");
    round_span.Note("round", static_cast<std::uint64_t>(stats.iterations));
    const std::uint64_t facts_before_round = stats.facts_derived;
    Watermarks marks = TakeWatermarks(*db);
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      const Rule& rule = rules[ri];
      if (rule.IsFact()) continue;
      // One pass per positive body position whose predicate gained facts
      // last round (the old/delta/full scheme): position p is matched
      // against the delta, earlier positions against the old snapshot,
      // later positions against the full database. Every derivation that
      // uses at least one delta fact is found in exactly one pass -- the
      // one where p is its first delta position.
      for (std::size_t p = 0; p < rule.body().size(); ++p) {
        const Literal& lit = rule.body()[p];
        if (lit.negated) continue;
        if (delta.relation(lit.atom.predicate()).empty()) continue;
        ++stats.rule_applications;
        ++stats.per_rule[ri].applications;
        TraceSpan apply_span("seminaive/apply");
        MatchStats local;
        std::size_t added = ApplyRuleWithDelta(rule, *db, delta, p, db,
                                               &local, &old_limits, &cache, ri);
        stats.match.Add(local);
        stats.facts_derived += added;
        stats.per_rule[ri].facts += added;
        stats.per_rule[ri].substitutions += local.substitutions;
        if (apply_span.active()) {
          apply_span.Note("rule", ri);
          apply_span.Note("delta_pos", p);
          apply_span.Note("facts", added);
          apply_span.Note("substitutions", local.substitutions);
        }
      }
    }
    round_span.Note("facts", stats.facts_derived - facts_before_round);
    old_limits = marks;
    delta = CollectNewFacts(*db, marks);
  }
  return stats;
}

Result<EvalStats> EvaluateSemiNaive(const Program& program, Database* db) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  TraceSpan span("eval/semi-naive");
  EvalStats stats = RunSemiNaiveFixpoint(program.rules(), db);
  span.Note("iterations", static_cast<std::uint64_t>(stats.iterations));
  span.Note("facts", stats.facts_derived);
  RecordEvalStats("semi-naive", stats);
  return stats;
}

Result<EvalStats> EvaluateSemiNaiveScc(const Program& program, Database* db) {
  DATALOG_RETURN_IF_ERROR(ValidatePositiveProgram(program));
  DependenceGraph graph(program);

  // Group rules by the SCC of their head predicate and order the groups
  // topologically. Tarjan assigns SMALLER indices to successor
  // components (for a cross edge u -> v, scc[v] < scc[u]); dependencies
  // must run first, so the groups are processed in DESCENDING index
  // order.
  std::map<int, std::vector<std::size_t>, std::greater<int>> groups;
  for (std::size_t i = 0; i < program.NumRules(); ++i) {
    groups[graph.SccIndex(program.rules()[i].head().predicate())].push_back(i);
  }

  TraceSpan span("eval/scc-semi-naive");
  EvalStats total;
  total.per_rule.resize(program.NumRules());
  for (const auto& [scc, rule_indices] : groups) {
    TraceSpan scc_span("seminaive/scc");
    scc_span.Note("scc", static_cast<std::uint64_t>(scc));
    scc_span.Note("rules", rule_indices.size());
    std::vector<Rule> rules;
    for (std::size_t i : rule_indices) rules.push_back(program.rules()[i]);
    EvalStats group_stats = RunSemiNaiveFixpoint(rules, db);
    std::vector<RuleStats> remapped(program.NumRules());
    for (std::size_t i = 0; i < group_stats.per_rule.size(); ++i) {
      remapped[rule_indices[i]] = group_stats.per_rule[i];
    }
    group_stats.per_rule = std::move(remapped);
    scc_span.Note("facts", group_stats.facts_derived);
    total.Add(group_stats);
  }
  span.Note("iterations", static_cast<std::uint64_t>(total.iterations));
  span.Note("facts", total.facts_derived);
  RecordEvalStats("scc-semi-naive", total);
  return total;
}

}  // namespace datalog
