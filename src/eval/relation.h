#ifndef DATALOG_EVAL_RELATION_H_
#define DATALOG_EVAL_RELATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eval/tuple.h"

namespace datalog {

/// A set of tuples of fixed arity with insertion-order iteration and lazy
/// hash indexes on column subsets. Rows are append-only, which lets indexes
/// extend incrementally and lets callers treat a row-count watermark as a
/// stable snapshot boundary (used by semi-naive evaluation).
///
/// Thread safety: mutation (Insert) requires exclusive access, and Lookup
/// lazily builds indexes, so it is not a pure read in general. Concurrent
/// access from multiple threads is safe only under the frozen-snapshot
/// contract: no Insert is in flight, and every column set that will be
/// probed has been EnsureIndex'd since the last Insert. Under that
/// contract Lookup, Contains, rows(), row() and size() are all read-only
/// (see docs/parallel_eval.md).
class Relation {
 public:
  explicit Relation(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts `tuple`; returns true if it was not already present.
  bool Insert(Tuple tuple);

  /// Erases every tuple of `tuples` that is present; returns how many
  /// were removed. Removal compacts the row vector (later rows shift
  /// down) and drops every index, which is rebuilt lazily on the next
  /// Lookup -- so erasure breaks the append-only watermark contract and
  /// must never run concurrently with readers. The incremental
  /// materialization engine calls this between evaluation rounds, when
  /// it has exclusive access (see docs/incremental_eval.md).
  std::size_t EraseAll(const std::vector<Tuple>& tuples);

  bool Contains(const Tuple& tuple) const { return set_.contains(tuple); }

  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(std::size_t i) const { return rows_[i]; }

  /// Returns the row indices whose projection onto `columns` equals `key`
  /// (`key[i]` corresponds to `columns[i]`). `columns` must be strictly
  /// increasing and non-empty. Builds/extends the index on first use.
  /// Single-column probes are routed to the Value-keyed fast path below.
  const std::vector<std::uint32_t>& Lookup(const std::vector<int>& columns,
                                           const Tuple& key) const;

  /// Single-column fast path: the index is keyed directly on Value, so
  /// neither the probe nor the per-row index entries allocate a
  /// one-element Tuple. Agrees exactly with Lookup({column}, {key}).
  const std::vector<std::uint32_t>& Lookup(int column, const Value& key) const;

  /// Builds (or extends to cover all current rows) the index on
  /// `columns`, making subsequent Lookup calls on that column set pure
  /// reads until the next Insert. The parallel evaluator calls this for
  /// every column set its plans will probe before fanning out.
  void EnsureIndex(const std::vector<int>& columns) const;

  /// Direct handles onto a built index, skipping the per-probe index-map
  /// find and extend check that Lookup pays. Valid until the next Insert
  /// or EraseAll; the compiled matcher prepares one per join depth per
  /// enumeration (the relation is frozen while matching).
  class SingleIndexView {
   public:
    SingleIndexView() = default;
    bool valid() const { return map_ != nullptr; }
    const std::vector<std::uint32_t>& Find(const Value& key) const {
      auto it = map_->find(key);
      return it == map_->end() ? EmptyRowIds() : it->second;
    }

   private:
    friend class Relation;
    explicit SingleIndexView(
        const std::unordered_map<Value, std::vector<std::uint32_t>,
                                 ValueHash>* map)
        : map_(map) {}
    const std::unordered_map<Value, std::vector<std::uint32_t>, ValueHash>*
        map_ = nullptr;
  };
  class MultiIndexView {
   public:
    MultiIndexView() = default;
    bool valid() const { return map_ != nullptr; }
    const std::vector<std::uint32_t>& Find(const Tuple& key) const {
      auto it = map_->find(key);
      return it == map_->end() ? EmptyRowIds() : it->second;
    }

   private:
    friend class Relation;
    explicit MultiIndexView(
        const std::unordered_map<Tuple, std::vector<std::uint32_t>,
                                 TupleHash>* map)
        : map_(map) {}
    const std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash>*
        map_ = nullptr;
  };

  /// Build/extend the index on `column` (resp. `columns`, size >= 2) and
  /// return a view of it. Same laziness and thread-safety contract as
  /// Lookup: write-free when the index already covers all rows.
  SingleIndexView PrepareSingleIndex(int column) const;
  MultiIndexView PrepareIndex(const std::vector<int>& columns) const;

  static const std::vector<std::uint32_t>& EmptyRowIds();

 private:
  struct ColumnIndex {
    std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash> map;
    std::size_t built_up_to = 0;  // rows_[0, built_up_to) are indexed
  };
  struct SingleColumnIndex {
    std::unordered_map<Value, std::vector<std::uint32_t>, ValueHash> map;
    std::size_t built_up_to = 0;  // rows_[0, built_up_to) are indexed
  };

  void ExtendIndex(const std::vector<int>& columns, ColumnIndex* index) const;
  void ExtendSingleIndex(int column, SingleColumnIndex* index) const;

  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> set_;
  // Ordered maps keyed by column list (or single column); indexes are
  // created lazily by Lookup and extended incrementally as rows are
  // appended.
  mutable std::map<std::vector<int>, ColumnIndex> indexes_;
  mutable std::map<int, SingleColumnIndex> single_indexes_;
};

}  // namespace datalog

#endif  // DATALOG_EVAL_RELATION_H_
