#ifndef DATALOG_EVAL_RELATION_H_
#define DATALOG_EVAL_RELATION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eval/tuple.h"
#include "util/interning.h"

namespace datalog {

/// Storage-backend knob (an ablation/differential switch like the ones in
/// eval/rule_matcher.h): when enabled -- the default -- relations
/// constructed afterwards use the columnar backend (contiguous u32 id
/// columns over the global ValueDictionary, id-keyed dedup set and
/// id-keyed postings indexes); when disabled they use the legacy row
/// store (Value tuples, Value/Tuple-keyed indexes). Both backends are
/// bit-identical through every public API; the conformance suite in
/// tests/eval/relation_conformance_test.cc runs against both. Not
/// thread-safe; flip only between evaluations.
void SetColumnarStorage(bool enabled);
bool ColumnarStorageEnabled();

/// A set of tuples of fixed arity with insertion-order iteration and lazy
/// hash indexes on column subsets. Rows are append-only, which lets indexes
/// extend incrementally and lets callers treat a row-count watermark as a
/// stable snapshot boundary (used by semi-naive evaluation).
///
/// Two storage backends (chosen per relation at construction from the
/// SetColumnarStorage knob; see docs/columnar_storage.md):
///
///  - Row store (legacy): rows are `Tuple`s, dedup and membership go
///    through a Tuple-keyed hash set, and indexes key on `Value`/`Tuple`.
///  - Columnar: every inserted value is interned to a dense u32 id in the
///    global ValueDictionary and each column is a contiguous
///    `std::vector<std::uint32_t>`; dedup, membership and the postings
///    indexes all key on ids, so probes compare 4-byte integers. The
///    insertion-ordered `rows()` Tuple view is still maintained (it is
///    the API every engine iterates), assembled from the dictionary at
///    insert time; the columns are the substrate the compiled batch
///    probe path scans (eval/compiled_rule.cc).
///
/// Thread safety: mutation (Insert) requires exclusive access, and Lookup
/// lazily builds indexes, so it is not a pure read in general. Concurrent
/// access from multiple threads is safe only under the frozen-snapshot
/// contract: no Insert is in flight, and every column set that will be
/// probed has been EnsureIndex'd since the last Insert. Under that
/// contract Lookup, Contains, rows(), row(), column() and size() are all
/// read-only (see docs/parallel_eval.md).
class Relation {
 public:
  explicit Relation(int arity = 0)
      : arity_(arity), columnar_(ColumnarStorageEnabled()) {
    if (columnar_) {
      columns_.resize(static_cast<std::size_t>(arity));
    }
  }

  int arity() const { return arity_; }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// True when this relation uses the columnar backend (decided at
  /// construction; a later knob flip does not migrate existing storage).
  bool columnar() const { return columnar_; }

  /// Inserts `tuple`; returns true if it was not already present.
  bool Insert(Tuple tuple);

  /// Columnar-backend insert by dictionary ids (`ids.size()` must equal
  /// arity()); returns true if the row was new. The Tuple row view is
  /// assembled from the dictionary only for rows that are actually new,
  /// which is what lets the batch probe path derive and dedup entirely
  /// in id space. Falls back to Insert (resolving the ids) on a
  /// row-store relation, so callers need not check the backend.
  bool InsertIds(const std::vector<std::uint32_t>& ids);

  /// Pre-sizes storage (columns, row views, and the dedup table) for
  /// `additional` more rows, so bulk copies pay one table resize instead
  /// of a doubling cascade. Purely an optimization; inserting more or
  /// fewer rows than reserved is fine.
  void ReserveRows(std::size_t additional);

  /// Copies row `row` of `src` into this relation (both must be columnar
  /// and share an arity); returns true if it was new. Unlike InsertIds
  /// this reuses src's already-materialized Tuple view instead of
  /// resolving ids through the dictionary -- the fast path under
  /// Database::AddRowRange.
  bool AppendRowFrom(const Relation& src, std::size_t row);

  /// Erases every tuple of `tuples` that is present; returns how many
  /// were removed. Removal compacts the row vector (later rows shift
  /// down) and invalidates every index -- including any outstanding
  /// Prepare{Single,}Index views, which keep pointing at live (now
  /// empty) index maps rather than freed memory -- so erasure breaks the
  /// append-only watermark contract and must never run concurrently with
  /// readers. The incremental materialization engine calls this between
  /// evaluation rounds, when it has exclusive access (see
  /// docs/incremental_eval.md).
  std::size_t EraseAll(const std::vector<Tuple>& tuples);

  bool Contains(const Tuple& tuple) const;

  /// Columnar membership by dictionary ids; agrees with Contains on the
  /// resolved tuple. Works on either backend (row store resolves the ids
  /// and probes the Tuple set).
  bool ContainsIds(const std::vector<std::uint32_t>& ids) const;

  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(std::size_t i) const { return rows_[i]; }

  /// The id column for `c` (columnar backend only): column(c)[i] is the
  /// dictionary id of row(i)[c]. Contiguous, insertion-ordered, append-
  /// only between erasures -- the batch probe path's scan substrate.
  const std::vector<std::uint32_t>& column(int c) const {
    return columns_[static_cast<std::size_t>(c)];
  }

  /// Returns the row indices whose projection onto `columns` equals `key`
  /// (`key[i]` corresponds to `columns[i]`). `columns` must be strictly
  /// increasing and non-empty. Builds/extends the index on first use.
  /// Single-column probes are routed to the single-column fast path below.
  const std::vector<std::uint32_t>& Lookup(const std::vector<int>& columns,
                                           const Tuple& key) const;

  /// Single-column fast path: the index is keyed directly on the value
  /// (its dictionary id on the columnar backend), so neither the probe
  /// nor the per-row index entries allocate a one-element Tuple. Agrees
  /// exactly with Lookup({column}, {key}).
  const std::vector<std::uint32_t>& Lookup(int column, const Value& key) const;

  /// Builds (or extends to cover all current rows) the index on
  /// `columns`, making subsequent Lookup calls on that column set pure
  /// reads until the next Insert. The parallel evaluator calls this for
  /// every column set its plans will probe before fanning out.
  void EnsureIndex(const std::vector<int>& columns) const;

  /// Hashes an id row / id key the same way TupleHash hashes a Tuple.
  struct IdRowHash {
    std::size_t operator()(const std::vector<std::uint32_t>& ids) const {
      std::size_t seed = ids.size();
      for (std::uint32_t id : ids) {
        HashCombine(seed, std::hash<std::uint32_t>{}(id));
      }
      return seed;
    }
  };

  /// Direct handles onto a built index, skipping the per-probe index-map
  /// find and extend check that Lookup pays. Valid until the next Insert;
  /// EraseAll empties the underlying maps in place, so a stale view
  /// safely finds nothing instead of dangling. The compiled matcher
  /// prepares one per join depth per enumeration (the relation is frozen
  /// while matching). On a columnar relation the view wraps the id-keyed
  /// index: Find converts the key through the dictionary, FindId probes
  /// directly (the batch path's access).
  class SingleIndexView {
   public:
    SingleIndexView() = default;
    bool valid() const { return value_map_ != nullptr || id_map_ != nullptr; }
    const std::vector<std::uint32_t>& Find(const Value& key) const;
    const std::vector<std::uint32_t>& FindId(std::uint32_t id) const {
      auto it = id_map_->find(id);
      return it == id_map_->end() ? EmptyRowIds() : it->second;
    }

   private:
    friend class Relation;
    using ValueMap =
        std::unordered_map<Value, std::vector<std::uint32_t>, ValueHash>;
    using IdMap = std::unordered_map<std::uint32_t,
                                     std::vector<std::uint32_t>>;
    explicit SingleIndexView(const ValueMap* map) : value_map_(map) {}
    explicit SingleIndexView(const IdMap* map) : id_map_(map) {}
    const ValueMap* value_map_ = nullptr;
    const IdMap* id_map_ = nullptr;
  };
  class MultiIndexView {
   public:
    MultiIndexView() = default;
    bool valid() const { return value_map_ != nullptr || id_map_ != nullptr; }
    const std::vector<std::uint32_t>& Find(const Tuple& key) const;
    const std::vector<std::uint32_t>& FindIds(
        const std::vector<std::uint32_t>& key) const {
      auto it = id_map_->find(key);
      return it == id_map_->end() ? EmptyRowIds() : it->second;
    }

   private:
    friend class Relation;
    using ValueMap =
        std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash>;
    using IdMap = std::unordered_map<std::vector<std::uint32_t>,
                                     std::vector<std::uint32_t>, IdRowHash>;
    explicit MultiIndexView(const ValueMap* map) : value_map_(map) {}
    explicit MultiIndexView(const IdMap* map) : id_map_(map) {}
    const ValueMap* value_map_ = nullptr;
    const IdMap* id_map_ = nullptr;
  };

  /// Build/extend the index on `column` (resp. `columns`, any size >= 0;
  /// the degenerate empty-column index maps the empty key to every row)
  /// and return a view of it. Same laziness and thread-safety contract
  /// as Lookup: write-free when the index already covers all rows.
  SingleIndexView PrepareSingleIndex(int column) const;
  MultiIndexView PrepareIndex(const std::vector<int>& columns) const;

  /// The sorted distinct dictionary ids stored in `column` (columnar
  /// backend only): the root candidate list the multiway-intersection
  /// plan shape intersects against (see docs/multiway_joins.md). Built
  /// lazily and rebuilt when rows were appended since the last call;
  /// same thread-safety contract as Lookup (write-free when current, so
  /// EnsureSortedKeys before a parallel fan-out makes it a pure read).
  /// EraseAll invalidates the cache in place, like the indexes above.
  const std::vector<std::uint32_t>& SortedColumnKeys(int column) const;
  void EnsureSortedKeys(int column) const { SortedColumnKeys(column); }

  static const std::vector<std::uint32_t>& EmptyRowIds();

 private:
  /// Open-addressing dedup/membership table for the columnar backend.
  /// Slots store row_id + 1 (0 marks an empty slot); the keys are the id
  /// rows already sitting in columns_, so neither insert nor probe ever
  /// allocates per row, and growth just re-scatters u32 indices --
  /// unlike a node-based hash set of id vectors, which pays a node and a
  /// vector allocation per row and re-links every node on rehash.
  class RowIdTable {
   public:
    using Columns = std::vector<std::vector<std::uint32_t>>;

    /// Appends `ids` (about to become row `row_id` of `columns`) unless
    /// an equal row is already present; returns true if inserted. The
    /// caller appends to `columns` after a true return; probing only
    /// ever dereferences rows below `row_id`.
    bool InsertOrFind(const Columns& columns,
                      const std::vector<std::uint32_t>& ids,
                      std::uint32_t row_id);
    bool Contains(const Columns& columns,
                  const std::vector<std::uint32_t>& ids) const;
    /// Drops every entry and re-inserts rows [0, num_rows) of `columns`
    /// (used after EraseAll compacts the columns).
    void Rebuild(const Columns& columns, std::size_t num_rows);

    /// Resizes the slot array once so `additional` more rows fit under
    /// the 3/4 load factor (no-op when they already do).
    void Reserve(const Columns& columns, std::size_t additional);

   private:
    static std::size_t HashIds(const std::vector<std::uint32_t>& ids) {
      std::size_t seed = ids.size();
      for (std::uint32_t id : ids) {
        HashCombine(seed, std::hash<std::uint32_t>{}(id));
      }
      // Finalizer (murmur3 fmix64). HashCombine alone leaves dictionary
      // ids -- dense, sequential -- poorly mixed in the low bits, and the
      // table masks with a power of two, so without this the linear
      // probes cluster into long runs on chain-shaped workloads.
      seed ^= seed >> 33;
      seed *= 0xff51afd7ed558ccdULL;
      seed ^= seed >> 33;
      seed *= 0xc4ceb9fe1a85ec53ULL;
      seed ^= seed >> 33;
      return seed;
    }
    static bool RowEquals(const Columns& columns, std::uint32_t row,
                          const std::vector<std::uint32_t>& ids) {
      for (std::size_t c = 0; c < ids.size(); ++c) {
        if (columns[c][row] != ids[c]) return false;
      }
      return true;
    }
    void Grow(const Columns& columns);
    void ResizeTo(const Columns& columns, std::size_t new_size);

    std::vector<std::uint32_t> slots_;  // power-of-two size; 0 = empty
    std::size_t size_ = 0;
  };

  struct ColumnIndex {
    std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash> map;
    std::size_t built_up_to = 0;  // rows_[0, built_up_to) are indexed
  };
  struct SingleColumnIndex {
    std::unordered_map<Value, std::vector<std::uint32_t>, ValueHash> map;
    std::size_t built_up_to = 0;  // rows_[0, built_up_to) are indexed
  };
  struct IdColumnIndex {
    std::unordered_map<std::vector<std::uint32_t>,
                       std::vector<std::uint32_t>, IdRowHash>
        map;
    std::size_t built_up_to = 0;
  };
  struct SingleIdColumnIndex {
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> map;
    std::size_t built_up_to = 0;
  };
  struct SortedKeyCache {
    std::vector<std::uint32_t> keys;  // sorted distinct ids
    std::size_t built_up_to = 0;      // rows_[0, built_up_to) contributed
  };

  void ExtendIndex(const std::vector<int>& columns, ColumnIndex* index) const;
  void ExtendSingleIndex(int column, SingleColumnIndex* index) const;
  void ExtendIdIndex(const std::vector<int>& columns,
                     IdColumnIndex* index) const;
  void ExtendSingleIdIndex(int column, SingleIdColumnIndex* index) const;

  int arity_;
  bool columnar_;
  // Insertion-ordered materialized rows: the iteration API of both
  // backends. On the columnar backend this is the Value view assembled
  // at insert time; columns_ is the probe substrate.
  std::vector<Tuple> rows_;
  // Row-store dedup/membership set (row backend only).
  std::unordered_set<Tuple, TupleHash> set_;
  // Columnar backend: one contiguous id vector per column, plus the
  // allocation-free open-addressing dedup table over those columns.
  std::vector<std::vector<std::uint32_t>> columns_;
  RowIdTable id_table_;
  // Ordered maps keyed by column list (or single column); indexes are
  // created lazily by Lookup and extended incrementally as rows are
  // appended. The row backend fills the Value/Tuple-keyed families, the
  // columnar backend the id-keyed ones. EraseAll empties entries in
  // place (instead of erasing the nodes) so outstanding index views stay
  // safely dereferenceable.
  mutable std::map<std::vector<int>, ColumnIndex> indexes_;
  mutable std::map<int, SingleColumnIndex> single_indexes_;
  mutable std::map<std::vector<int>, IdColumnIndex> id_indexes_;
  mutable std::map<int, SingleIdColumnIndex> single_id_indexes_;
  // Sorted distinct per-column id lists for the multiway plan shape
  // (columnar backend only); same in-place invalidation as the indexes.
  mutable std::map<int, SortedKeyCache> sorted_keys_;
};

}  // namespace datalog

#endif  // DATALOG_EVAL_RELATION_H_
