#include "workload/graph_gen.h"

#include "ast/parser.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

PredicateId Edge(const std::shared_ptr<SymbolTable>& symbols) {
  return symbols->InternPredicate("e", 2).value();
}

TEST(GraphGenTest, Chain) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId e = Edge(symbols);
  AddGraphFacts({GraphShape::kChain, 5}, e, &db);
  EXPECT_EQ(db.relation(e).size(), 4u);
  EXPECT_TRUE(db.Contains(e, {Value::Int(0), Value::Int(1)}));
  EXPECT_TRUE(db.Contains(e, {Value::Int(3), Value::Int(4)}));
}

TEST(GraphGenTest, Cycle) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId e = Edge(symbols);
  AddGraphFacts({GraphShape::kCycle, 5}, e, &db);
  EXPECT_EQ(db.relation(e).size(), 5u);
  EXPECT_TRUE(db.Contains(e, {Value::Int(4), Value::Int(0)}));
}

TEST(GraphGenTest, BinaryTree) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId e = Edge(symbols);
  AddGraphFacts({GraphShape::kBinaryTree, 7}, e, &db);
  EXPECT_EQ(db.relation(e).size(), 6u);  // complete binary tree, 7 nodes
  EXPECT_TRUE(db.Contains(e, {Value::Int(0), Value::Int(1)}));
  EXPECT_TRUE(db.Contains(e, {Value::Int(2), Value::Int(6)}));
}

TEST(GraphGenTest, Grid) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId e = Edge(symbols);
  AddGraphFacts({GraphShape::kGrid, 9}, e, &db);
  // 3x3 grid: 2*3 right + 2*3 down = 12 edges.
  EXPECT_EQ(db.relation(e).size(), 12u);
}

TEST(GraphGenTest, RandomIsSeededDeterministically) {
  auto s1 = MakeSymbols();
  auto s2 = MakeSymbols();
  Database d1(s1), d2(s2);
  GraphOptions options{GraphShape::kRandom, 10, 25, 99};
  AddGraphFacts(options, Edge(s1), &d1);
  AddGraphFacts(options, Edge(s2), &d2);
  EXPECT_EQ(d1.ToString(), d2.ToString());
  EXPECT_LE(d1.relation(Edge(s1)).size(), 25u);  // duplicates collapse
  EXPECT_GT(d1.relation(Edge(s1)).size(), 0u);
}

TEST(GraphGenTest, SameGenerationTree) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId up = symbols->InternPredicate("up", 2).value();
  PredicateId flat = symbols->InternPredicate("flat", 2).value();
  PredicateId down = symbols->InternPredicate("down", 2).value();
  std::size_t nodes =
      AddSameGenerationFacts({.depth = 3, .fanout = 2}, up, flat, down, &db);
  EXPECT_EQ(nodes, 7u);  // 1 + 2 + 4
  EXPECT_EQ(db.relation(up).size(), 6u);    // every non-root has a parent
  EXPECT_EQ(db.relation(down).size(), 6u);
  // flat: 1 sibling link on level 1, 3 on level 2.
  EXPECT_EQ(db.relation(flat).size(), 4u);
  EXPECT_TRUE(db.Contains(up, {Value::Int(1), Value::Int(0)}));
  EXPECT_TRUE(db.Contains(down, {Value::Int(0), Value::Int(2)}));
}

TEST(GraphGenTest, SameGenerationSemantics) {
  // Two siblings are in the same generation.
  auto symbols = MakeSymbols();
  Parser parser(symbols);
  Program p = parser
                  .ParseProgram(
                      "sg(x, y) :- flat(x, y).\n"
                      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n")
                  .value();
  Database db(symbols);
  PredicateId up = symbols->LookupPredicate("up").value();
  PredicateId flat = symbols->LookupPredicate("flat").value();
  PredicateId down = symbols->LookupPredicate("down").value();
  AddSameGenerationFacts({.depth = 3, .fanout = 2}, up, flat, down, &db);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  PredicateId sg = symbols->LookupPredicate("sg").value();
  // Leaves 3 and 5 are cousins: same generation via the recursive rule.
  EXPECT_TRUE(db.Contains(sg, {Value::Int(3), Value::Int(5)}));
  // A node is not in the same generation as its parent.
  EXPECT_FALSE(db.Contains(sg, {Value::Int(1), Value::Int(0)}));
}

TEST(GraphGenTest, UnaryFactsSampleWithoutReplacement) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId c = symbols->InternPredicate("c", 1).value();
  AddUnaryFacts(10, 6, 1, c, &db);
  EXPECT_EQ(db.relation(c).size(), 6u);
  AddUnaryFacts(4, 100, 1, c, &db);  // count > nodes is clamped
  EXPECT_LE(db.relation(c).size(), 10u);
}

}  // namespace
}  // namespace datalog
