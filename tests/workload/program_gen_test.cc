#include "workload/program_gen.h"

#include "ast/pretty_print.h"
#include "ast/validate.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

TEST(ProgramGenTest, GeneratedProgramIsValid) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto symbols = MakeSymbols();
    PlantedProgramOptions options;
    options.seed = seed;
    Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
    ASSERT_TRUE(planted.ok());
    EXPECT_TRUE(ValidatePositiveProgram(planted->program).ok())
        << ToString(planted->program);
  }
}

TEST(ProgramGenTest, PlantedCountsReported) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.planted_atoms = 3;
  options.planted_rules = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  EXPECT_LE(planted->planted_atoms, 3u);
  EXPECT_LE(planted->planted_rules, 2u);
  // The base structure: one base rule + chain_rules per intentional pred,
  // plus the planted rules.
  EXPECT_EQ(planted->program.NumRules(),
            2 * (1 + options.chain_rules) + planted->planted_rules);
}

TEST(ProgramGenTest, PlantedAtomIsUniformlyRedundant) {
  // Every planted atom is a freshly-renamed copy; the program with the
  // plant must be uniformly equivalent to one without. Spot-check by
  // minimizing: see minimize_program_test. Here: the planted rule count
  // increases body literals.
  auto symbols = MakeSymbols();
  PlantedProgramOptions with_plants;
  with_plants.seed = 5;
  with_plants.planted_atoms = 4;
  with_plants.planted_rules = 0;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, with_plants);
  ASSERT_TRUE(planted.ok());

  auto symbols2 = MakeSymbols();
  PlantedProgramOptions without;
  without.seed = 5;
  without.planted_atoms = 0;
  without.planted_rules = 0;
  Result<PlantedProgram> clean = MakePlantedProgram(symbols2, without);
  ASSERT_TRUE(clean.ok());

  EXPECT_EQ(planted->program.TotalBodyLiterals(),
            clean->program.TotalBodyLiterals() + planted->planted_atoms);
}

TEST(ProgramGenTest, DeterministicForSeed) {
  auto s1 = MakeSymbols();
  auto s2 = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 77;
  Result<PlantedProgram> a = MakePlantedProgram(s1, options);
  Result<PlantedProgram> b = MakePlantedProgram(s2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToString(a->program), ToString(b->program));
}

TEST(ProgramGenTest, DuplicateRuleIsUniformlyRedundant) {
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = 3;
  options.planted_atoms = 0;
  options.planted_rules = 1;  // first plant is a renamed duplicate
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  ASSERT_EQ(planted->planted_rules, 1u);
  // The last rule is the planted duplicate: removing it preserves uniform
  // equivalence.
  std::size_t last = planted->program.NumRules() - 1;
  Program without = planted->program.WithoutRule(last);
  Result<bool> contained =
      UniformlyContainsRule(without, planted->program.rules()[last]);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

}  // namespace
}  // namespace datalog
