#include "core/relevance.h"

#include "eval/query.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

TEST(RelevanceTest, KeepsOnlyReachableRules) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "unrelated(x) :- b(x).\n"
                                "alsodead(x) :- unrelated(x).\n");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Program> restricted = RestrictToQuery(p, g);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->NumRules(), 2u);
  for (const Rule& rule : restricted->rules()) {
    EXPECT_EQ(rule.head().predicate(), g);
  }
}

TEST(RelevanceTest, KeepsTransitiveDependencies) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "top(x) :- mid(x).\n"
                                "mid(x) :- bottom(x).\n"
                                "bottom(x) :- e(x).\n"
                                "dead(x) :- e(x).\n");
  PredicateId top = symbols->LookupPredicate("top").value();
  Result<Program> restricted = RestrictToQuery(p, top);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->NumRules(), 3u);
}

TEST(RelevanceTest, RelevantPredicatesIncludeExtensional) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "h(x) :- b(x).\n");
  PredicateId g = symbols->LookupPredicate("g").value();
  PredicateId a = symbols->LookupPredicate("a").value();
  PredicateId b = symbols->LookupPredicate("b").value();
  std::set<PredicateId> relevant = RelevantPredicates(p, g);
  EXPECT_TRUE(relevant.contains(g));
  EXPECT_TRUE(relevant.contains(a));
  EXPECT_FALSE(relevant.contains(b));
}

TEST(RelevanceTest, QueryAnswersUnchanged) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "noise(x, y) :- a(x, y), a(y, x).\n"
                                "more(x) :- noise(x, y).\n");
  PredicateId g = symbols->LookupPredicate("g").value();
  Result<Program> restricted = RestrictToQuery(p, g);
  ASSERT_TRUE(restricted.ok());
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 1). a(2, 3).");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  auto full = AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  auto cut = AnswerQuery(restricted.value(), edb, query,
                         EvalMethod::kSemiNaive);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(std::set<Tuple>(full->begin(), full->end()),
            std::set<Tuple>(cut->begin(), cut->end()));
}

TEST(RelevanceTest, InvalidPredicateRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x) :- a(x).\n");
  EXPECT_FALSE(RestrictToQuery(p, 999).ok());
}

TEST(RelevanceTest, SelfQueryOnExtensionalKeepsNothing) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x) :- a(x).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Result<Program> restricted = RestrictToQuery(p, a);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->NumRules(), 0u);
}

}  // namespace
}  // namespace datalog
