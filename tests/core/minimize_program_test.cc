#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;

TEST(MinimizeProgramTest, RedundantRuleRemoved) {
  // The linear recursive rule is uniformly contained in the doubly
  // recursive program (Example 6), so adding it to P1 leaves it redundant.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 2u) << ToString(minimized.value());
  EXPECT_EQ(report.rules_removed, 1u);
}

TEST(MinimizeProgramTest, NothingToRemove) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value(), p);
  EXPECT_EQ(report.atoms_removed, 0u);
  EXPECT_EQ(report.rules_removed, 0u);
}

TEST(MinimizeProgramTest, AtomRedundantOnlyWithWholeProgram) {
  // g(x,z) :- a(x,z), b(x,z) is subsumed by g(x,z) :- a(x,z): phase 1 of
  // Fig. 2 removes b(x,z) from the longer rule (the atom is redundant
  // w.r.t. P though not w.r.t. the rule alone), after which phase 2
  // removes the now-duplicate rule.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, z), b(x, z).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 1u) << ToString(minimized.value());
  EXPECT_EQ(report.atoms_removed, 1u);
  EXPECT_EQ(report.rules_removed, 1u);
}

TEST(MinimizeProgramTest, ReportRecordsWhatWasRemoved) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z), a(x, q).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "g(u, w) :- a(u, v), g(v, w).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  ASSERT_EQ(report.removed_atoms.size(), 1u);
  EXPECT_EQ(report.removed_atoms[0].rule_index, 0u);
  EXPECT_EQ(report.removed_atoms[0].atom, p.rules()[0].body()[1].atom);
  ASSERT_EQ(report.removed_rules.size(), 1u);
  // One of the two renamed-duplicate recursive rules went; whichever it
  // was, it is recorded verbatim.
  EXPECT_EQ(report.removed_rules[0].body().size(), 2u);
  EXPECT_EQ(report.atoms_removed, report.removed_atoms.size());
  EXPECT_EQ(report.rules_removed, report.removed_rules.size());
}

TEST(MinimizeProgramTest, DuplicateRuleModuloRenamingRemoved) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "g(u, w) :- a(u, v), g(v, w).\n"
                                "g(x, z) :- a(x, z).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 2u);
}

TEST(MinimizeProgramTest, FactsInteractWithRules) {
  // The fact h(1,2) is derivable from g(1,2) via the copy rule, so it is
  // redundant.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(1, 2).\n"
                                "h(x, y) :- g(x, y).\n"
                                "h(1, 2).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 2u) << ToString(minimized.value());
}

TEST(MinimizeProgramTest, ResultIsUniformlyEquivalent) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- g(x, y), g(y, z), g(y, w).\n"
      "g(x, z) :- a(x, y), g(y, z).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  Result<bool> eq = UniformlyEquivalent(p, minimized.value());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value()) << ToString(minimized.value());
}

TEST(MinimizeProgramTest, Idempotent) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- g(x, y), g(y, z), g(y, w).\n"
      "g(x, z) :- a(x, y), g(y, z).\n");
  Result<Program> once = MinimizeProgram(p);
  ASSERT_TRUE(once.ok());
  Result<Program> twice = MinimizeProgram(once.value());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once.value(), twice.value());
}

TEST(MinimizeProgramTest, ResultGenuinelyDependsOnOrder) {
  // Section VII: "the final result of the algorithm is not necessarily
  // unique (i.e., it may depend upon the order in which atoms and rules
  // are considered)". With a and b mutually derivable, the g-rule keeps
  // exactly one of its two atoms -- which one depends on the order.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x) :- a(x), b(x).\n"
                                "a(x) :- b(x).\n"
                                "b(x) :- a(x).\n");
  std::set<std::string> shapes;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    MinimizeOptions options;
    options.shuffle_seed = seed;
    Result<Program> minimized = MinimizeProgram(p, nullptr, options);
    ASSERT_TRUE(minimized.ok());
    // Every outcome is uniformly equivalent to the input...
    Result<bool> eq = UniformlyEquivalent(p, minimized.value());
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value()) << "seed " << seed;
    // ...and the g-rule kept exactly one atom.
    ASSERT_EQ(minimized->rules()[0].body().size(), 1u);
    shapes.insert(ToString(minimized.value()));
  }
  // Both minimal forms (g :- a and g :- b) are reachable.
  EXPECT_EQ(shapes.size(), 2u);
}

TEST(MinimizeProgramTest, RejectsNegation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- a(x), not b(x).\n");
  Result<Program> minimized = MinimizeProgram(p);
  EXPECT_FALSE(minimized.ok());
  EXPECT_EQ(minimized.status().code(), StatusCode::kInvalidArgument);
}

class PlantedMinimizationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlantedMinimizationTest, RemovesAtLeastPlantedRedundancy) {
  // Property: on generated programs with known-redundant parts, Fig. 2
  // removes at least the planted redundancy and the result is uniformly
  // equivalent to the input.
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.planted_atoms = 2;
  options.planted_rules = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());

  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(planted->program, &report);
  ASSERT_TRUE(minimized.ok()) << ToString(planted->program);

  EXPECT_GE(report.atoms_removed + report.rules_removed,
            planted->planted_atoms + planted->planted_rules)
      << "program:\n"
      << ToString(planted->program) << "minimized:\n"
      << ToString(minimized.value());

  Result<bool> eq = UniformlyEquivalent(planted->program, minimized.value());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedMinimizationTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace datalog
