#include "core/equivalence_optimizer.h"

#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

TEST(CandidateTgdsTest, Example18CandidateIsGenerated) {
  // For G(x,z) :- G(x,y), G(y,z), A(y,w), the §XI properties admit (among
  // others) the tgd G(y,z) -> A(y,w).
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z), a(y, w).");
  std::vector<Tgd> candidates = CandidateTgds(rule, {});
  Tgd expected = testing::ParseTgdOrDie(symbols, "g(y, z) -> a(y, w).");
  bool found = false;
  for (const Tgd& tgd : candidates) {
    if (tgd == expected) found = true;
  }
  EXPECT_TRUE(found) << candidates.size() << " candidates generated";
}

TEST(CandidateTgdsTest, PropertyTwoEnforced) {
  // In g(x,z) :- g(x,y), a(y,w), b(w,z)... w also appears in b(w,z), and
  // z is in the head, so {a(y,w)} alone is not a valid RHS (property 2).
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), a(y, w), b(w, z).");
  std::vector<Tgd> candidates = CandidateTgds(rule, {});
  for (const Tgd& tgd : candidates) {
    if (tgd.rhs().size() == 1 &&
        tgd.rhs()[0] == rule.body()[1].atom) {
      FAIL() << "RHS {a(y,w)} violates property 2 but was generated";
    }
  }
}

TEST(CandidateTgdsTest, PropertyThreeEnforced) {
  // In g(x, w) :- g(x, y), a(y, w): w is in the head, so no candidate may
  // have w as an RHS-only variable.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, w) :- g(x, y), a(y, w).");
  std::vector<Tgd> candidates = CandidateTgds(rule, {});
  for (const Tgd& tgd : candidates) {
    std::set<VariableId> lhs_vars;
    for (const Atom& a : tgd.lhs()) {
      auto vars = a.Variables();
      lhs_vars.insert(vars.begin(), vars.end());
    }
    for (const Atom& a : tgd.rhs()) {
      for (VariableId v : a.Variables()) {
        if (!lhs_vars.contains(v)) {
          EXPECT_FALSE(rule.head().ContainsVariable(v))
              << "property 3 violated";
        }
      }
    }
  }
}

TEST(CandidateTgdsTest, NoHeadPredicateInBodyMeansNoCandidates) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, y), b(y, z).");
  EXPECT_TRUE(CandidateTgds(rule, {}).empty());
}

TEST(OptimizeUnderEquivalenceTest, PaperExample18Automatic) {
  // The optimizer must discover on its own that A(y,w) is removable.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  Program expected = ParseProgramOrDie(symbols,
                                       "g(x, z) :- a(x, z).\n"
                                       "g(x, z) :- g(x, y), g(y, z).\n");
  EXPECT_EQ(result->program, expected) << ToString(result->program);
  ASSERT_EQ(result->removals.size(), 1u);
  EXPECT_EQ(result->removals[0].rule_index, 1u);
  EXPECT_EQ(result->removals[0].removed.size(), 1u);
}

TEST(OptimizeUnderEquivalenceTest, PaperExample19Automatic) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z), c(z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  Program expected = ParseProgramOrDie(symbols,
                                       "g(x, z) :- a(x, z), c(z).\n"
                                       "g(x, z) :- a(x, y), g(y, z).\n");
  EXPECT_EQ(result->program, expected) << ToString(result->program);
}

TEST(OptimizeUnderEquivalenceTest, MinimalProgramUntouched) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program, p);
  EXPECT_TRUE(result->removals.empty());
}

TEST(OptimizeUnderEquivalenceTest, UniformRedundancyBeyondReach) {
  // Example 7's redundancy IS uniform; the equivalence optimizer's §XI
  // heuristic only proposes tgds whose LHS predicate matches the head,
  // and the deletion there is provable too -- but a body with no
  // head-predicate atom yields no candidates, leaving uniform redundancy
  // to MinimizeProgram. Composition of the two passes handles both.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "h(x, z) :- a(x, z), a(x, w).\n");
  Result<EquivalenceOptimizeResult> eq_result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(eq_result.ok());
  EXPECT_EQ(eq_result->program, p);  // no candidates: h not in body
  Result<Program> minimized = MinimizeProgram(eq_result->program);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->rules()[0].body().size(), 1u);
}

TEST(OptimizeUnderEquivalenceTest, ResultEquivalentOnRandomEdbs) {
  // Property: the optimized Example 18 program computes the same output
  // as the original on plain EDBs (equivalence, the notion being
  // preserved).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  PredicateId a = symbols->LookupPredicate("a").value();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Database d1(symbols), d2(symbols);
    GraphOptions options{GraphShape::kRandom, 9, 16, seed};
    AddGraphFacts(options, a, &d1);
    AddGraphFacts(options, a, &d2);
    ASSERT_TRUE(EvaluateSemiNaive(p, &d1).ok());
    ASSERT_TRUE(EvaluateSemiNaive(result->program, &d2).ok());
    EXPECT_EQ(d1, d2) << "seed " << seed;
  }
}

TEST(OptimizeUnderEquivalenceTest, CountsCandidates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Result<EquivalenceOptimizeResult> result = OptimizeUnderEquivalence(p);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->candidates_tried, 0u);
}

}  // namespace
}  // namespace datalog
