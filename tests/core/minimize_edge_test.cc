// Harder minimization scenarios: constants, facts, mutual recursion,
// budget-free determinism.

#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

TEST(MinimizeEdgeTest, ConstantsBlockFolding) {
  // a(x, 1) and a(x, 2) are NOT mutually redundant.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- a(x, 1), a(x, 2).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body().size(), 2u);
}

TEST(MinimizeEdgeTest, ConstantsEnableFolding) {
  // a(x, 1) subsumes a(x, w) with w local.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- a(x, 1), a(x, w).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  Rule expected = ParseRuleOrDie(symbols, "p(x) :- a(x, 1).");
  EXPECT_EQ(minimized.value(), expected);
}

TEST(MinimizeEdgeTest, HeadConstantRule) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "alarm(99) :- event(x), event(y).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  // event(y) folds onto event(x).
  EXPECT_EQ(minimized->body().size(), 1u);
}

TEST(MinimizeEdgeTest, MutuallyRecursivePredicates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "even(x) :- zero(x).\n"
                                "even(x) :- succ(y, x), odd(y), succ(y, q).\n"
                                "odd(x) :- succ(y, x), even(y).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  // succ(y, q) duplicates succ(y, x) up to the local q.
  EXPECT_EQ(report.atoms_removed, 1u);
  Result<bool> eq = UniformlyEquivalent(p, minimized.value());
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(MinimizeEdgeTest, FactSubsumedByMoreGeneralRuleIsNotRemoved) {
  // h(1,2) is NOT redundant next to h(x,y) :- g(x,y) unless g(1,2) is
  // guaranteed -- under uniform semantics it is not.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "h(1, 2).\n"
                                "h(x, y) :- g(x, y).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 2u);
}

TEST(MinimizeEdgeTest, DuplicateFactRemoved) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "h(1, 2).\n"
                                "h(1, 2).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 1u);
}

TEST(MinimizeEdgeTest, EmptyProgram) {
  auto symbols = MakeSymbols();
  Program p(symbols);
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 0u);
}

TEST(MinimizeEdgeTest, SingleAtomBodiesSurvive) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value(), p);
}

TEST(MinimizeEdgeTest, ZeroAryPredicates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "alert :- sensor_a, sensor_a.\n"
                                "alert :- sensor_b.\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(report.atoms_removed, 1u);  // duplicate sensor_a
  EXPECT_EQ(minimized->NumRules(), 2u);
}

TEST(MinimizeEdgeTest, ChainOfImplicationsAmongRules) {
  // r3 ⊆ᵘ r2 ⊆ᵘ r1: both specializations must go.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, z), b(z).\n"
      "g(x, z) :- a(x, z), b(z), c(x).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 1u) << ToString(minimized.value());
}

TEST(MinimizeEdgeTest, OrderIndependentSizeOnThisFamily) {
  // For the specialization-chain family the minimal form is unique; all
  // shuffle seeds must land on it.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, z), b(z).\n"
      "g(x, z) :- a(x, y), g(y, z).\n");
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    MinimizeOptions options;
    options.shuffle_seed = seed;
    Result<Program> minimized = MinimizeProgram(p, nullptr, options);
    ASSERT_TRUE(minimized.ok());
    EXPECT_EQ(minimized->NumRules(), 2u) << "seed " << seed;
  }
}

TEST(MinimizeEdgeTest, SelfRecursiveSingleRuleProgramUntouchable) {
  // p(x) :- p(x) is safe (if odd); it derives nothing new, and deleting
  // its only atom would make it unsafe, so Fig. 1 leaves it alone. Fig. 2
  // CAN drop the whole rule: it is uniformly contained in the empty
  // program (its frozen head is its frozen body).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- p(x).\n");
  Result<Program> minimized = MinimizeProgram(p);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->NumRules(), 0u);
}

}  // namespace
}  // namespace datalog
