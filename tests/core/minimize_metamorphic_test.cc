// Metamorphic fuzzing of the Fig. 2 minimizer, in the spirit of queryFuzz
// (Mansur, Christakis, Wuestholz): generate programs with planted
// redundancy from fixed seeds and hold MinimizeProgram to the relations
// that make it correct, without knowing the expected output program:
//
//  1. Equivalence: minimize(P) ≡u P, checked in BOTH directions with the
//     independent uniform-containment oracle (freezing, Corollary 2).
//  2. Idempotence: minimize(minimize(P)) == minimize(P) -- a second pass
//     finds nothing left to remove.
//  3. Monotone size: the minimized program never has more rules, and no
//     rule gained atoms.
//  4. Semantic ground truth: P and minimize(P) compute identical IDB
//     fixpoints over concrete random EDBs (uniform equivalence implies
//     agreement on every database, so any divergence is a real bug).
//  5. Completeness floor: at least the planted redundant atoms/rules are
//     gone (the generator's lower bound on removable parts).

#include <cstdint>
#include <string>

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

struct GeneratedCase {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  std::size_t planted_atoms = 0;
  std::size_t planted_rules = 0;
  std::size_t num_extensional = 0;
  std::size_t num_intentional = 0;

  GeneratedCase() : symbols(MakeSymbols()) {}
};

/// Derives program structure from the seed alone, sweeping rule counts,
/// chain lengths, recursion density, and the amount of planted redundancy.
GeneratedCase MakeCase(std::uint64_t seed) {
  GeneratedCase c;
  PlantedProgramOptions options;
  options.seed = seed * 6151 + 3;
  options.num_extensional = 1 + seed % 3;
  options.num_intentional = 1 + (seed / 2) % 3;
  options.chain_rules = 1 + seed % 3;
  options.chain_length = 2 + (seed / 3) % 3;
  options.recursion_percent = 15 + static_cast<int>(seed % 6) * 14;
  options.planted_atoms = seed % 4;
  options.planted_rules = (seed / 4) % 3;
  Result<PlantedProgram> planted = MakePlantedProgram(c.symbols, options);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  c.program = std::move(planted->program);
  c.planted_atoms = planted->planted_atoms;
  c.planted_rules = planted->planted_rules;
  c.num_extensional = options.num_extensional;
  c.num_intentional = options.num_intentional;
  return c;
}

std::size_t TotalBodyAtoms(const Program& program) {
  std::size_t atoms = 0;
  for (const Rule& rule : program.rules()) atoms += rule.body().size();
  return atoms;
}

class MinimizeMetamorphicTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeMetamorphicTest, MinimizedProgramIsUniformlyEquivalent) {
  GeneratedCase c = MakeCase(GetParam());
  Result<Program> minimized = MinimizeProgram(c.program);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();

  // Both directions through the independent containment oracle. The
  // minimizer only ever uses "P contains candidate", so the reverse
  // direction is a genuine cross-check.
  Result<bool> forward = UniformlyContains(c.program, *minimized);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  EXPECT_TRUE(*forward) << "minimize(P) not contained in P, seed "
                        << GetParam();
  Result<bool> backward = UniformlyContains(*minimized, c.program);
  ASSERT_TRUE(backward.ok()) << backward.status().ToString();
  EXPECT_TRUE(*backward) << "P not contained in minimize(P), seed "
                         << GetParam();
}

TEST_P(MinimizeMetamorphicTest, MinimizationIsIdempotentAndMonotone) {
  GeneratedCase c = MakeCase(GetParam());
  MinimizeReport first_report;
  Result<Program> once = MinimizeProgram(c.program, &first_report);
  ASSERT_TRUE(once.ok()) << once.status().ToString();

  // Monotone: no rule count or body size increase.
  EXPECT_LE(once->NumRules(), c.program.NumRules());
  EXPECT_LE(TotalBodyAtoms(*once), TotalBodyAtoms(c.program));

  // Completeness floor: everything the generator planted must be gone.
  EXPECT_GE(first_report.atoms_removed + first_report.rules_removed,
            c.planted_atoms + c.planted_rules)
      << "planted redundancy survived, seed " << GetParam();

  // Idempotent: a second pass removes nothing and returns the same text.
  MinimizeReport second_report;
  Result<Program> twice = MinimizeProgram(*once, &second_report);
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  EXPECT_EQ(second_report.atoms_removed, 0u)
      << "second minimize pass removed atoms, seed " << GetParam();
  EXPECT_EQ(second_report.rules_removed, 0u)
      << "second minimize pass removed rules, seed " << GetParam();
  EXPECT_EQ(ToString(*twice), ToString(*once))
      << "second minimize pass changed the program, seed " << GetParam();
}

TEST_P(MinimizeMetamorphicTest, MinimizedProgramComputesTheSameFixpoint) {
  const std::uint64_t seed = GetParam();
  GeneratedCase c = MakeCase(seed);
  Result<Program> minimized = MinimizeProgram(c.program);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();

  // Two EDB shapes per seed: uniform equivalence promises agreement on
  // every database, so concrete disagreement is a hard bug regardless of
  // what the containment oracle said.
  const GraphShape shapes[] = {GraphShape::kChain, GraphShape::kCycle,
                               GraphShape::kBinaryTree, GraphShape::kRandom};
  for (int variant = 0; variant < 2; ++variant) {
    Database edb(c.symbols);
    for (std::size_t i = 0; i < c.num_extensional; ++i) {
      PredicateId pred =
          c.symbols->LookupPredicate("e" + std::to_string(i)).value();
      GraphOptions graph;
      graph.shape = shapes[(seed + i + static_cast<std::size_t>(variant)) % 4];
      graph.num_nodes = 4 + (seed + 2 * i) % 5;
      graph.num_edges = 6 + (seed + 3 * i + static_cast<std::size_t>(variant)) % 8;
      graph.seed = seed * 97 + i + static_cast<std::size_t>(variant) * 13;
      AddGraphFacts(graph, pred, &edb);
    }

    Database original_db = edb;
    Database minimized_db = edb;
    ASSERT_TRUE(EvaluateSemiNaive(c.program, &original_db).ok());
    ASSERT_TRUE(EvaluateSemiNaive(*minimized, &minimized_db).ok());
    EXPECT_EQ(original_db, minimized_db)
        << "fixpoints diverge after minimization, seed " << seed
        << " variant " << variant << "\noriginal program:\n"
        << ToString(c.program) << "\nminimized:\n"
        << ToString(*minimized);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeMetamorphicTest,
                         ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace datalog
