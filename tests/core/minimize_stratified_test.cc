#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "eval/stratified.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

constexpr const char* kBomLike =
    "subpart(p, c) :- component(p, c), component(p, d).\n"  // redundant dup
    "subpart(p, c) :- component(p, q), subpart(q, c).\n"
    "assembled(p) :- component(p, c).\n"
    "basicpart(p) :- part(p), not assembled(p).\n"
    "uses(p, c) :- subpart(p, c), basicpart(c).\n";

TEST(MinimizeStratifiedTest, MinimizesPositiveCoreOnly) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kBomLike);
  MinimizeReport report;
  Result<Program> minimized = MinimizeStratifiedProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(report.atoms_removed, 1u);  // component(p, d)
  EXPECT_EQ(minimized->NumRules(), p.NumRules());
  // The negation rule survives verbatim.
  bool has_negation = false;
  for (const Rule& rule : minimized->rules()) {
    if (!rule.IsPositive()) has_negation = true;
  }
  EXPECT_TRUE(has_negation);
}

TEST(MinimizeStratifiedTest, PreservesStratifiedSemantics) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kBomLike);
  Result<Program> minimized = MinimizeStratifiedProgram(p);
  ASSERT_TRUE(minimized.ok());

  Database edb = ParseDatabaseOrDie(symbols,
                                    "component(1, 2). component(1, 3)."
                                    "component(2, 4). component(4, 5)."
                                    "part(1). part(2). part(3). part(4)."
                                    "part(5).");
  Database d1(symbols), d2(symbols);
  d1.UnionWith(edb);
  d2.UnionWith(edb);
  ASSERT_TRUE(EvaluateStratified(p, &d1).ok());
  ASSERT_TRUE(EvaluateStratified(minimized.value(), &d2).ok());
  EXPECT_EQ(d1, d2) << ToString(minimized.value());
}

TEST(MinimizeStratifiedTest, RedundancyAcrossStrataIsReplayable) {
  // The deleted rule c(x) :- a(x) re-derives through b in a LOWER
  // stratum than c (c also depends on a negation above b); the minimal
  // derivation replays stratum by stratum.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "b(x) :- a(x).\n"
                                "c(x) :- b(x).\n"
                                "c(x) :- a(x).\n"  // redundant
                                "flag(x) :- c(x), not blocked(x).\n");
  MinimizeReport report;
  Result<Program> minimized = MinimizeStratifiedProgram(p, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(report.rules_removed, 1u);

  Database edb = ParseDatabaseOrDie(symbols, "a(1). a(2). blocked(2).");
  Database d1(symbols), d2(symbols);
  d1.UnionWith(edb);
  d2.UnionWith(edb);
  ASSERT_TRUE(EvaluateStratified(p, &d1).ok());
  ASSERT_TRUE(EvaluateStratified(minimized.value(), &d2).ok());
  EXPECT_EQ(d1, d2);
  PredicateId flag = symbols->LookupPredicate("flag").value();
  EXPECT_TRUE(d2.Contains(flag, {Value::Int(1)}));
  EXPECT_FALSE(d2.Contains(flag, {Value::Int(2)}));
}

TEST(MinimizeStratifiedTest, PurelyPositiveProgramMatchesFig2) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z), a(x, q).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Result<Program> fig2 = MinimizeProgram(p);
  Result<Program> stratified = MinimizeStratifiedProgram(p);
  ASSERT_TRUE(fig2.ok());
  ASSERT_TRUE(stratified.ok());
  EXPECT_EQ(fig2.value(), stratified.value());
}

class StratifiedMinimizeSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StratifiedMinimizeSweep, SemanticsPreservedOnRandomEdbs) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "reach(x, z) :- e(x, z), e(x, w).\n"       // redundant guard
      "reach(x, z) :- e(x, y), reach(y, z).\n"
      "node(x) :- e(x, y).\n"
      "node(y) :- e(x, y).\n"
      "sink(x) :- node(x), not src(x).\n"
      "src(x) :- e(x, y).\n");
  Result<Program> minimized = MinimizeStratifiedProgram(p);
  ASSERT_TRUE(minimized.ok());

  PredicateId e = symbols->LookupPredicate("e").value();
  Database d1(symbols), d2(symbols);
  GraphOptions options{GraphShape::kRandom, 9, 15, GetParam()};
  AddGraphFacts(options, e, &d1);
  AddGraphFacts(options, e, &d2);
  ASSERT_TRUE(EvaluateStratified(p, &d1).ok());
  ASSERT_TRUE(EvaluateStratified(minimized.value(), &d2).ok());
  EXPECT_EQ(d1, d2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedMinimizeSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace datalog
