#include "core/uniform_containment.h"

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

// P1 of Examples 1/4/6: doubly recursive transitive closure.
constexpr const char* kP1 =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

// P2 of Examples 4/6: linear transitive closure.
constexpr const char* kP2 =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- a(x, y), g(y, z).\n";

TEST(UniformContainmentTest, PaperExample6Forward) {
  // Example 6 shows P2 subseteq^u P1 ...
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Program p2 = ParseProgramOrDie(symbols, kP2);
  Result<bool> contained = UniformlyContains(p1, p2);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

TEST(UniformContainmentTest, PaperExample6Backward) {
  // ... and P1 not subseteq^u P2 (the rule G(x,z) :- G(x,y), G(y,z) is the
  // witness).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Program p2 = ParseProgramOrDie(symbols, kP2);
  Result<bool> contained = UniformlyContains(p2, p1);
  ASSERT_TRUE(contained.ok());
  EXPECT_FALSE(contained.value());

  // The witness rule itself.
  Rule s = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  Result<bool> rule_contained = UniformlyContainsRule(p2, s);
  ASSERT_TRUE(rule_contained.ok());
  EXPECT_FALSE(rule_contained.value());
}

TEST(UniformContainmentTest, PaperExample4NotUniformlyEquivalent) {
  // Example 4: the two TC programs are equivalent but not uniformly
  // equivalent.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Program p2 = ParseProgramOrDie(symbols, kP2);
  Result<bool> eq = UniformlyEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());
}

TEST(UniformContainmentTest, PaperExample5SupersetProgram) {
  // Example 5: P2 = P1 + {a(x,z) :- a(x,y), g(y,z)} uniformly contains P1.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n"
                                 "a(x, z) :- a(x, y), g(y, z).\n");
  Result<bool> contained = UniformlyContains(p2, p1);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
  // The converse fails: the extra rule is not uniformly contained in P1.
  Result<bool> converse = UniformlyContains(p1, p2);
  ASSERT_TRUE(converse.ok());
  EXPECT_FALSE(converse.value());
}

TEST(UniformContainmentTest, ProgramUniformlyContainsItself) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Result<bool> contained = UniformlyContains(p1, p1);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

TEST(UniformContainmentTest, Example7RuleContainment) {
  // Example 7: the 4-atom rule's program uniformly contains the 5-atom
  // rule's program and vice versa (they are uniformly equivalent).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).\n");
  Program p2 = ParseProgramOrDie(
      symbols, "g(x, y, z) :- g(x, w, z), a(w, z), a(z, z), a(z, y).\n");
  Result<bool> forward = UniformlyContains(p1, p2);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(forward.value());  // P2 subseteq^u P1 (needs two applications)
  Result<bool> backward = UniformlyContains(p2, p1);
  ASSERT_TRUE(backward.ok());
  EXPECT_TRUE(backward.value());  // body subset: trivial direction
  Result<bool> eq = UniformlyEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(UniformContainmentTest, FactRuleContainment) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(1, 2).\n"
                                "h(x, y) :- g(x, y).\n");
  Rule fact = ParseRuleOrDie(symbols, "h(1, 2).");
  Result<bool> contained = UniformlyContainsRule(p, fact);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
  Rule other = ParseRuleOrDie(symbols, "h(2, 1).");
  Result<bool> not_contained = UniformlyContainsRule(p, other);
  ASSERT_TRUE(not_contained.ok());
  EXPECT_FALSE(not_contained.value());
}

TEST(UniformContainmentTest, ConstantInRuleHeadAndBody) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, 0) :- a(x).\n");
  Rule specialized = ParseRuleOrDie(symbols, "g(7, 0) :- a(7).");
  Result<bool> contained = UniformlyContainsRule(p, specialized);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

TEST(UniformContainmentTest, DifferentVocabulariesAllowed) {
  // Section IV: the programs need not have the same predicates.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- b(x, z).\n");
  Program p2 = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Result<bool> contained = UniformlyContains(p1, p2);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

TEST(UniformContainmentWitnessTest, NoWitnessWhenContained) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Rule r = ParseRuleOrDie(symbols, "g(x, z) :- a(x, y), g(y, z).");
  Result<std::optional<UniformContainmentWitness>> witness =
      RefuteUniformContainment(p1, r);
  ASSERT_TRUE(witness.ok());
  EXPECT_FALSE(witness->has_value());
}

TEST(UniformContainmentWitnessTest, WitnessIsARealCounterexample) {
  // Example 6's refutation: feeding the witness input to both sides must
  // actually separate them.
  auto symbols = MakeSymbols();
  Program p2 = ParseProgramOrDie(symbols, kP2);
  Rule s = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  Result<std::optional<UniformContainmentWitness>> witness =
      RefuteUniformContainment(p2, s);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->has_value());
  const UniformContainmentWitness& w = witness->value();
  EXPECT_EQ(w.input.NumFacts(), 2u);  // the two frozen G atoms

  // P2 over the witness input does not contain the missing fact...
  Database via_p2(symbols);
  via_p2.UnionWith(w.input);
  ASSERT_TRUE(EvaluateSemiNaive(p2, &via_p2).ok());
  EXPECT_FALSE(via_p2.Contains(w.missing_pred, w.missing_fact));

  // ...while the single-rule program {s} does.
  Program rule_only(symbols);
  rule_only.AddRule(s);
  Database via_rule(symbols);
  via_rule.UnionWith(w.input);
  ASSERT_TRUE(EvaluateSemiNaive(rule_only, &via_rule).ok());
  EXPECT_TRUE(via_rule.Contains(w.missing_pred, w.missing_fact));
}

TEST(UniformContainmentTest, UniformContainmentImpliesContainmentSpotCheck) {
  // Proposition 1 spot check: P2 subseteq^u P1 from Example 6, so on a
  // plain EDB the outputs satisfy P2(d) subseteq P1(d).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kP1);
  Program p2 = ParseProgramOrDie(symbols, kP2);
  Database d1 = testing::ParseDatabaseOrDie(symbols, "a(1,2). a(2,3). a(3,1).");
  Database d2(symbols);
  d2.UnionWith(d1);
  ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
  EXPECT_TRUE(d2.IsSubsetOf(d1));
}

}  // namespace
}  // namespace datalog
