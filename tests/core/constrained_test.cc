#include "core/constrained.h"

#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "core/tgd.h"
#include "core/uniform_containment.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseTgdsOrDie;

// Example 11's pair again: under T = {G(x,z) -> A(x,w)} the guard atom is
// removable even UNIFORMLY relative to SAT(T).
constexpr const char* kGuardedTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z), a(y, w).\n";
constexpr const char* kPlainTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(ConstrainedContainmentTest, Example11RelativeContainment) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  // P2 ⊆ᵘ_SAT(T) P1 (the containment Example 11 establishes) ...
  Result<ProofOutcome> forward =
      UniformContainmentUnderConstraints(p1, p2, tgds);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(forward.value(), ProofOutcome::kProved);
  // ... and the absolute uniform containment fails (Example 6/11): the
  // relative notion is strictly weaker.
  Result<bool> absolute = UniformlyContains(p1, p2);
  ASSERT_TRUE(absolute.ok());
  EXPECT_FALSE(absolute.value());
}

TEST(ConstrainedContainmentTest, RelativeEquivalence) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> eq = UniformEquivalenceUnderConstraints(p1, p2, tgds);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq.value(), ProofOutcome::kProved);
}

TEST(ConstrainedContainmentTest, SemanticSpotCheckOnConstrainedInputs) {
  // On mixed inputs that SATISFY the tgd, the two programs agree -- even
  // with IDB facts (this is where relative uniform equivalence bites).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  // g-facts with their required a-witnesses.
  Database d1 = ParseDatabaseOrDie(
      symbols, "g(1, 2). g(2, 3). a(1, 9). a(2, 9). a(5, 6).");
  ASSERT_TRUE(SatisfiesAll(d1, tgds));
  Database d2(symbols);
  d2.UnionWith(d1);
  ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
  EXPECT_EQ(d1, d2) << d1.ToString() << "\nvs\n" << d2.ToString();
}

TEST(ConstrainedContainmentTest, DisprovedWhenPreservationHoldsButModelsFail) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kPlainTc);
  Program stronger = ParseProgramOrDie(symbols,
                                       "g(x, z) :- a(x, z).\n"
                                       "g(x, z) :- g(x, y), g(y, z).\n"
                                       "g(x, x) :- b(x).\n");
  // T talks about b only; plain TC preserves it vacuously... b never
  // appears in p1, so preservation holds; the model containment of the
  // b-rule fails definitively.
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "b(x) -> c(x).");
  Result<ProofOutcome> outcome =
      UniformContainmentUnderConstraints(p1, stronger, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

TEST(ConstrainedContainmentTest, EmptyTgdsMatchesPlainUniformContainment) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kPlainTc);
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- a(x, y), g(y, z).\n");
  Result<ProofOutcome> relative =
      UniformContainmentUnderConstraints(p1, p2, {});
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative.value(), ProofOutcome::kProved);
  Result<ProofOutcome> reverse =
      UniformContainmentUnderConstraints(p2, p1, {});
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse.value(), ProofOutcome::kDisproved);
}

TEST(ConstrainedMinimizeTest, RemovesTheGuardUnderConstraints) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  MinimizeReport report;
  Result<Program> minimized =
      MinimizeProgramUnderConstraints(p1, tgds, {}, &report);
  ASSERT_TRUE(minimized.ok());
  Program expected = ParseProgramOrDie(symbols, kPlainTc);
  EXPECT_EQ(minimized.value(), expected) << ToString(minimized.value());
  EXPECT_EQ(report.atoms_removed, 1u);
}

TEST(ConstrainedMinimizeTest, EmptyTgdsReducesToFig2) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z), a(x, q).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n"
                                "g(u, w) :- a(u, v), g(v, w).\n");
  Result<Program> fig2 = MinimizeProgram(p);
  Result<Program> constrained = MinimizeProgramUnderConstraints(p, {});
  ASSERT_TRUE(fig2.ok());
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(fig2.value(), constrained.value());
}

TEST(ConstrainedMinimizeTest, KeepsAtomWhenTgdIrrelevant) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "c(x) -> d(x).");
  Result<Program> minimized = MinimizeProgramUnderConstraints(p1, tgds);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value(), p1);
}

TEST(AtomAdditionTest, RedundantAtomCanBeAdded) {
  // Section I's dual: in g(x,z) :- a(x,z), adding a second occurrence
  // a(x,w) (w fresh) is sound -- it is exactly the planted-redundancy
  // shape in reverse.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Parser parser(symbols);
  Rule probe = parser.ParseRule("probe(x, w) :- a(x, w).").value();
  const Atom& atom = probe.body()[0].atom;  // a(x, w)
  Result<bool> sound = AtomAdditionIsSound(p, 0, atom);
  ASSERT_TRUE(sound.ok());
  EXPECT_TRUE(sound.value());
}

TEST(AtomAdditionTest, RestrictiveAtomCannotBeAdded) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Parser parser(symbols);
  Rule probe = parser.ParseRule("probe(z) :- c(z).").value();
  const Atom& atom = probe.body()[0].atom;  // c(z): genuinely restricts
  Result<bool> sound = AtomAdditionIsSound(p, 0, atom);
  ASSERT_TRUE(sound.ok());
  EXPECT_FALSE(sound.value());
}

TEST(AtomAdditionTest, AdditionThenMinimizationRoundTrips) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Parser parser(symbols);
  Rule probe = parser.ParseRule("probe(x, q) :- a(x, q).").value();
  Result<bool> sound = AtomAdditionIsSound(p, 1, probe.body()[0].atom);
  ASSERT_TRUE(sound.ok());
  ASSERT_TRUE(sound.value());
  Rule strengthened = p.rules()[1];
  strengthened.mutable_body().push_back(
      Literal{probe.body()[0].atom, false});
  Program bigger = p.WithRuleReplaced(1, strengthened);
  Result<Program> back = MinimizeProgram(bigger);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), p);
}

}  // namespace
}  // namespace datalog
