#include "core/minimize.h"

#include "ast/pretty_print.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(MinimizeRuleTest, PaperExample8) {
  // Examples 7/8: the atom A(w, y) is redundant in
  //   G(x,y,z) :- G(x,w,z), A(w,y), A(w,z), A(z,z), A(z,y).
  // and the algorithm of Fig. 1 must end with the 4-atom rule.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  MinimizeReport report;
  Result<Rule> minimized = MinimizeRule(rule, symbols, &report);
  ASSERT_TRUE(minimized.ok());
  Rule expected = ParseRuleOrDie(
      symbols, "g(x, y, z) :- g(x, w, z), a(w, z), a(z, z), a(z, y).");
  EXPECT_EQ(minimized.value(), expected)
      << ToString(minimized.value(), *symbols);
  EXPECT_EQ(report.atoms_removed, 1u);
}

TEST(MinimizeRuleTest, MinimalRuleUnchanged) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols, "g(x, y, z) :- g(x, w, z), a(w, z), a(z, z), a(z, y).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value(), rule);
}

TEST(MinimizeRuleTest, DuplicateAtomRemoved) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z), a(x, z).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body().size(), 1u);
}

TEST(MinimizeRuleTest, RenamedCopyRemoved) {
  // a(x, w) with fresh w is subsumed by a(x, z).
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z), a(x, w).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  Rule expected = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  EXPECT_EQ(minimized.value(), expected);
}

TEST(MinimizeRuleTest, SafetyPreventsDeletion) {
  // The only atom binding z cannot be removed even though a looser test
  // might suggest it.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, x), b(x, z).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->body().size(), 2u);
}

TEST(MinimizeRuleTest, ResultIsUniformlyEquivalent) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  Program original(symbols);
  original.AddRule(rule);
  Program small(symbols);
  small.AddRule(minimized.value());
  Result<bool> eq = UniformlyEquivalent(original, small);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(MinimizeRuleTest, NoRedundantAtomRemains) {
  // Post-condition of Fig. 1: no single atom of the result can be deleted
  // while preserving uniform equivalence.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  Result<Rule> minimized = MinimizeRule(rule, symbols);
  ASSERT_TRUE(minimized.ok());
  Program single(symbols);
  single.AddRule(minimized.value());
  for (std::size_t i = 0; i < minimized->body().size(); ++i) {
    Rule candidate = minimized->WithoutBodyLiteral(i);
    if (!candidate.IsSafe()) continue;
    Result<bool> contained = UniformlyContainsRule(single, candidate);
    ASSERT_TRUE(contained.ok());
    EXPECT_FALSE(contained.value())
        << "atom " << i << " still redundant in "
        << ToString(minimized.value(), *symbols);
  }
}

TEST(MinimizeRuleTest, RecursiveChaseBeyondOneStep) {
  // Deleting a(w, y) in Example 7 needs TWO applications of the rule; a
  // pure homomorphism test would miss it. This guards the chase-based
  // semantics.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  MinimizeReport report;
  Result<Rule> minimized = MinimizeRule(rule, symbols, &report);
  ASSERT_TRUE(minimized.ok());
  EXPECT_LT(minimized->body().size(), rule.body().size());
}

TEST(MinimizeRuleTest, ShuffledOrderStillSound) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    MinimizeOptions options;
    options.shuffle_seed = seed;
    Result<Rule> minimized = MinimizeRule(rule, symbols, nullptr, options);
    ASSERT_TRUE(minimized.ok());
    Program original(symbols);
    original.AddRule(rule);
    Program small(symbols);
    small.AddRule(minimized.value());
    Result<bool> eq = UniformlyEquivalent(original, small);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace datalog
