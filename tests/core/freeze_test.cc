#include "core/freeze.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(FreezeTest, PoolIsConsistentPerVariable) {
  FrozenConstantPool pool;
  Value a = pool.For(1);
  Value b = pool.For(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.For(1), a);
  EXPECT_TRUE(a.is_frozen());
}

TEST(FreezeTest, FreshNeverRepeats) {
  FrozenConstantPool pool;
  EXPECT_NE(pool.Fresh(), pool.Fresh());
}

TEST(FreezeTest, FreezeRuleSharedVariables) {
  // Freezing g(x, z) :- g(x, y), g(y, z): the shared y freezes to the same
  // constant in both body atoms; the head uses x's and z's constants.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  Result<FrozenRule> frozen = FreezeRule(rule, symbols);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->body.NumFacts(), 2u);
  PredicateId g = symbols->LookupPredicate("g").value();
  const Relation& rel = frozen->body.relation(g);
  ASSERT_EQ(rel.size(), 2u);
  const Tuple& first = rel.row(0);
  const Tuple& second = rel.row(1);
  EXPECT_EQ(first[1], second[0]);  // shared y
  EXPECT_EQ(frozen->head_tuple[0], first[0]);
  EXPECT_EQ(frozen->head_tuple[1], second[1]);
  EXPECT_NE(first[0], first[1]);  // distinct constants for distinct vars
}

TEST(FreezeTest, ConstantsPassThrough) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, 3) :- a(x, 3).");
  Result<FrozenRule> frozen = FreezeRule(rule, symbols);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->head_tuple[1], Value::Int(3));
  PredicateId a = symbols->LookupPredicate("a").value();
  EXPECT_EQ(frozen->body.relation(a).row(0)[1], Value::Int(3));
}

TEST(FreezeTest, FactFreezesToEmptyBody) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(1, 2).");
  Result<FrozenRule> frozen = FreezeRule(rule, symbols);
  ASSERT_TRUE(frozen.ok());
  EXPECT_TRUE(frozen->body.empty());
  EXPECT_EQ(frozen->head_tuple, (Tuple{Value::Int(1), Value::Int(2)}));
}

TEST(FreezeTest, DuplicateBodyAtomsCollapseInDatabase) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z), a(x, z).");
  Result<FrozenRule> frozen = FreezeRule(rule, symbols);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->body.NumFacts(), 1u);  // a DB is a set of ground atoms
}

TEST(FreezeTest, NegatedRuleRejected) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- q(x), not r(x).");
  EXPECT_FALSE(FreezeRule(rule, symbols).ok());
}

}  // namespace
}  // namespace datalog
