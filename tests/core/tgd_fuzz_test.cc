// Randomized invariants over the chase machinery: tgds are generated
// from planted-program bodies, so they are syntactically arbitrary but
// arity-correct. Every invariant below is a theorem; a failure is a bug
// in the chase, the preservation procedure, or the containment tests.

#include <random>

#include "ast/pretty_print.h"
#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;

/// Builds a random tgd over the planted-program vocabulary (binary e*/i*
/// predicates), with `lhs_atoms` left atoms and `rhs_atoms` right atoms.
Tgd RandomTgd(SymbolTable* symbols, std::mt19937_64* rng,
              std::size_t lhs_atoms, std::size_t rhs_atoms) {
  std::vector<PredicateId> preds;
  for (const char* name : {"e0", "e1", "i0", "i1"}) {
    preds.push_back(symbols->InternPredicate(name, 2).value());
  }
  std::uniform_int_distribution<std::size_t> pred_dist(0, preds.size() - 1);
  std::uniform_int_distribution<int> var_dist(0, 4);
  auto atom = [&]() {
    return Atom(preds[pred_dist(*rng)],
                {Term::Variable(symbols->InternVariable(
                     "f" + std::to_string(var_dist(*rng)))),
                 Term::Variable(symbols->InternVariable(
                     "f" + std::to_string(var_dist(*rng))))});
  };
  std::vector<Atom> lhs, rhs;
  for (std::size_t i = 0; i < lhs_atoms; ++i) lhs.push_back(atom());
  for (std::size_t i = 0; i < rhs_atoms; ++i) rhs.push_back(atom());
  return Tgd(std::move(lhs), std::move(rhs));
}

class TgdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TgdFuzz, SelfModelContainmentAlwaysProved) {
  // SAT(T) ∩ M(P) ⊆ M(P) holds for every T: each rule of P derives its
  // own frozen head in one application, so the bounded chase must prove
  // it regardless of what the tgds do.
  std::mt19937_64 rng(GetParam());
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(RandomTgd(symbols.get(), &rng, 1 + i % 2, 1 + (i + 1) % 2));
  }
  ChaseBudget budget;
  budget.max_rounds = 16;  // the goal appears in round 1; keep runs short
  Result<ProofOutcome> outcome =
      ModelContainment(planted->program, tgds, planted->program, budget);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved)
      << ToString(planted->program);
}

TEST_P(TgdFuzz, ChaseFixpointSatisfiesEverything) {
  std::mt19937_64 rng(GetParam() * 7 + 1);
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.planted_atoms = 0;
  options.planted_rules = 0;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  std::vector<Tgd> tgds{RandomTgd(symbols.get(), &rng, 1, 1)};

  PredicateId e0 = symbols->InternPredicate("e0", 2).value();
  Database db(symbols);
  std::uniform_int_distribution<int> node(0, 3);
  for (int i = 0; i < 4; ++i) {
    db.AddFact(e0, {Value::Int(node(rng)), Value::Int(node(rng))});
  }
  ChaseBudget budget;
  budget.max_rounds = 64;
  Result<ChaseResult> chase = Chase(planted->program, tgds, &db, budget);
  ASSERT_TRUE(chase.ok());
  if (chase->status == ChaseStatus::kFixpoint) {
    EXPECT_TRUE(SatisfiesAll(db, tgds)) << db.ToString();
    Database extra(symbols);
    ASSERT_TRUE(ApplyOnce(planted->program, db, &extra, nullptr).ok());
    EXPECT_TRUE(extra.IsSubsetOf(db));
  } else {
    EXPECT_EQ(chase->status, ChaseStatus::kBudgetExhausted);
  }
}

TEST_P(TgdFuzz, PreservationIsDeterministicAndNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 13 + 5);
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  options.chain_rules = 2;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  std::vector<Tgd> tgds{RandomTgd(symbols.get(), &rng, 1, 1),
                        RandomTgd(symbols.get(), &rng, 2, 1)};
  ChaseBudget budget;
  budget.max_rounds = 8;
  Result<ProofOutcome> first =
      PreservesNonRecursively(planted->program, tgds, budget);
  Result<ProofOutcome> second =
      PreservesNonRecursively(planted->program, tgds, budget);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST_P(TgdFuzz, ConstrainedSelfContainmentNeverDisproved) {
  // P ⊆ᵘ_SAT(T) P is a tautology; the bounded procedure may say kProved
  // or kUnknown (preservation can be unprovable in budget) but a
  // kDisproved would be a soundness bug.
  std::mt19937_64 rng(GetParam() * 3 + 11);
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.seed = GetParam();
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok());
  std::vector<Tgd> tgds{RandomTgd(symbols.get(), &rng, 1, 2)};
  ChaseBudget budget;
  budget.max_rounds = 8;
  Result<ProofOutcome> outcome = UniformContainmentUnderConstraints(
      planted->program, planted->program, tgds, budget);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome.value(), ProofOutcome::kDisproved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TgdFuzz, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace datalog
