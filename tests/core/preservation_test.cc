#include "core/preservation.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseTgdsOrDie;

TEST(PreservationTest, PaperExample13SingleRule) {
  // Example 13: the rule G(x,z) :- G(x,y), G(y,z), A(y,w) preserves
  // G(x,z) -> A(x,w) non-recursively.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, PaperExample14WholeProgram) {
  // Example 14: the whole guarded-TC program P1 preserves the tgd (both
  // the initialization rule and the recursive rule check out).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p1, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, PaperExample15MultiAtomLhs) {
  // Example 15: the same rule preserves G(x,y) & G(y,z) -> A(y,w); the
  // proof enumerates four combinations (rule/trivial × rule/trivial).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds =
      ParseTgdsOrDie(symbols, "g(x, y), g(y, z) -> a(y, w).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, PaperExample16) {
  // Example 16: G(x,z) :- A(x,y), G(y,z), G(y,w), C(w) preserves
  // G(y,z) -> G(y,w) & C(w).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols, "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  std::vector<Tgd> tgds =
      ParseTgdsOrDie(symbols, "g(y, z) -> g(y, w), c(w).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, PlainTcDoesNotPreserveTheGuardTgd) {
  // The unguarded TC program does NOT preserve G(x,z) -> A(x,w): from
  // d = {G(a,b), G(b,c), A(a,_), A(b,_)} (chased), P^n derives G(a,c),
  // but nothing guarantees A(a,...) for new pairs... actually A(a,_) is
  // present; the violating case is the initialization rule: d = {A(u,v)}
  // gives G(u,v) in P^n(d) and d need not contain any A(u,_) besides
  // A(u,v) itself -- which satisfies the tgd. The genuinely violating
  // combination: G(x,z) produced by the recursive rule from G-facts put
  // in d by trivial rules; chasing d with T then provides A(x, null), so
  // it IS preserved. A tgd the program really breaks:
  // G(x,z) -> B(x): nothing ever derives B.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> b(x).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  // The initialization rule violates: d = {a(u,v)} satisfies T (no g
  // facts), yet <d, P^n(d)> contains g(u,v) with no b(u).
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

TEST(PreservationTest, FullTgdPreservation) {
  // p(x) :- q(x) preserves the full tgd p(x) -> q(x)? No: putting p(x0)
  // into d via the trivial rule and chasing d with the tgd gives q(x0),
  // then P^n adds p-facts only from q-facts already in d, so the LHS
  // instantiation p(x0) has its witness q(x0) -- preserved. For the rule
  // head produced by the real rule, d contains q(x0) directly. Both
  // combinations safe.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- q(x).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "p(x) -> q(x).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, ViolationThroughCopyRule) {
  // p(x) :- q(x) does NOT preserve q(x) -> r(x)? d = {q(x0)} must satisfy
  // the tgd, so chasing adds r(x0); P^n(d) = {p(x0)}; the tgd's LHS is
  // q(x0), already in d, no new q facts appear -- preserved vacuously.
  // By contrast p(x) -> r(x) is violated: d = {q(x0)} satisfies T (no p
  // facts), P^n(d) = {p(x0)}, and no r(x0) exists.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- q(x).\n");
  std::vector<Tgd> violated = ParseTgdsOrDie(symbols, "p(x) -> r(x).");
  Result<ProofOutcome> bad = PreservesNonRecursively(p, violated);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value(), ProofOutcome::kDisproved);

  std::vector<Tgd> vacuous = ParseTgdsOrDie(symbols, "q(x) -> r(x).");
  Result<ProofOutcome> good = PreservesNonRecursively(p, vacuous);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, RepeatedHeadVariableHandledByUnification)
{
  // diag(x, x) :- u(x). The tgd diag(x, z) -> e(x, z) is NOT preserved:
  // the canonical case merges x and z (forced by the head diag(x,x)),
  // giving d = {u(x0)}, P^n = {diag(x0,x0)}, and no e(x0,x0). Freezing
  // before unification (the naive reading of Fig. 3) would miss this
  // case entirely; the MGU-based construction must catch it.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "diag(x, x) :- u(x).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "diag(x, z) -> e(x, z).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

TEST(PreservationTest, PreservedWithRepeatedHeadVariable) {
  // Same rule, but the tgd only asks for something the rule provides.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "diag(x, x) :- u(x).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "diag(x, z) -> u(x).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreservationTest, InterleavedChaseNeedsMultipleRounds) {
  // The witness for tau only appears after TWO tgd rounds when the tgds
  // are applied in the order given (rho before sigma): round one adds
  // c(x0) via sigma, round two adds a(x0, ~n) via rho. This exercises the
  // interleaved loop the paper describes after Fig. 3.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- h(x, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols,
                                         "g(x, z) -> a(x, w).\n"   // tau
                                         "c(x) -> a(x, w).\n"      // rho
                                         "h(x, z) -> c(x).\n");    // sigma
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);

  // With a one-round budget the same proof cannot finish: kUnknown, never
  // a spurious kDisproved.
  ChaseBudget tiny;
  tiny.max_rounds = 1;
  Result<ProofOutcome> bounded = PreservesNonRecursively(p, tgds, tiny);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded.value(), ProofOutcome::kUnknown);
}

TEST(PreservationTest, InitializationRulesExtraction) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n"
                                "h(1).\n");
  std::vector<Rule> init = InitializationRules(p);
  ASSERT_EQ(init.size(), 2u);  // the a-rule and the fact
  EXPECT_EQ(init[0], p.rules()[0]);
  EXPECT_EQ(init[1], p.rules()[2]);
}

TEST(PreliminaryDbTest, PaperExample18Step) {
  // Example 18: the preliminary DB of the guarded-TC program satisfies
  // T = {G(x,z) -> A(x,w)} (unifying G(x0,z0) with the initialization
  // rule head yields d = {A(x0,z0)}, and A(x0,z0) is the witness).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = PreliminaryDbSatisfies(p1, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreliminaryDbTest, ViolatedWhenInitRuleCannotSupply) {
  // With initialization rule g(x,z) :- a(x,z), the tgd g(x,z) -> a(z,q)
  // is NOT satisfied by all preliminary DBs (d = {a(x0,z0)} has no
  // a(z0, ...)).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(z, q).");
  Result<ProofOutcome> outcome = PreliminaryDbSatisfies(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

TEST(PreliminaryDbTest, IntentionalLhsWithoutInitRuleIsVacuous) {
  // h never appears in an initialization rule head, so no preliminary DB
  // contains h facts: tgds over h hold vacuously.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "h(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "h(x, z) -> b(x).");
  Result<ProofOutcome> outcome = PreliminaryDbSatisfies(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(PreliminaryDbTest, ExtensionalLhsAtomsAreArbitrary) {
  // An EDB is arbitrary, so a tgd with an extensional LHS and an
  // unsatisfiable RHS fails on preliminary DBs.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "a(x, z) -> b(x).");
  Result<ProofOutcome> outcome = PreliminaryDbSatisfies(p, tgds);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

}  // namespace
}  // namespace datalog
