#include "core/cq.h"

#include "ast/pretty_print.h"
#include "core/minimize.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseRuleOrDie;

TEST(CqContainmentTest, IdentityMapping) {
  auto symbols = MakeSymbols();
  Rule q = ParseRuleOrDie(symbols, "p(x, z) :- a(x, y), a(y, z).");
  Result<bool> hom = HasContainmentMapping(q, q);
  ASSERT_TRUE(hom.ok());
  EXPECT_TRUE(hom.value());
}

TEST(CqContainmentTest, MoreRestrictiveIsContained) {
  // q2 = p(x,z) :- a(x,y), a(y,z), b(y) is contained in
  // q1 = p(x,z) :- a(x,y), a(y,z) (hom from q1 to q2).
  auto symbols = MakeSymbols();
  Rule q1 = ParseRuleOrDie(symbols, "p(x, z) :- a(x, y), a(y, z).");
  Rule q2 = ParseRuleOrDie(symbols, "p(x, z) :- a(x, y), a(y, z), b(y).");
  Result<bool> hom = HasContainmentMapping(q1, q2);
  ASSERT_TRUE(hom.ok());
  EXPECT_TRUE(hom.value());
  Result<bool> reverse = HasContainmentMapping(q2, q1);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse.value());  // q1 has no b atom to map b(y) to
}

TEST(CqContainmentTest, FoldingHomomorphism) {
  // p(x) :- a(x,y), a(x,z): fold y and z together into
  // p(x) :- a(x,y).
  auto symbols = MakeSymbols();
  Rule big = ParseRuleOrDie(symbols, "p(x) :- a(x, y), a(x, z).");
  Rule small = ParseRuleOrDie(symbols, "p(x) :- a(x, y).");
  Result<bool> hom = HasContainmentMapping(big, small);
  ASSERT_TRUE(hom.ok());
  EXPECT_TRUE(hom.value());
}

TEST(CqContainmentTest, ConstantsMustMapToThemselves) {
  auto symbols = MakeSymbols();
  Rule q1 = ParseRuleOrDie(symbols, "p(x) :- a(x, 3).");
  Rule q2 = ParseRuleOrDie(symbols, "p(x) :- a(x, 4).");
  Result<bool> hom = HasContainmentMapping(q1, q2);
  ASSERT_TRUE(hom.ok());
  EXPECT_FALSE(hom.value());
  Rule q3 = ParseRuleOrDie(symbols, "p(x) :- a(x, y).");
  // q1 is less restrictive than... no: q3's a(x,y) maps constants freely;
  // hom from q3 to q1 maps y -> 3.
  Result<bool> hom2 = HasContainmentMapping(q3, q1);
  ASSERT_TRUE(hom2.ok());
  EXPECT_TRUE(hom2.value());
}

TEST(CqContainmentTest, HeadMismatchIsError) {
  auto symbols = MakeSymbols();
  Rule q1 = ParseRuleOrDie(symbols, "p(x) :- a(x, y).");
  Rule q2 = ParseRuleOrDie(symbols, "q(x) :- a(x, y).");
  EXPECT_FALSE(HasContainmentMapping(q1, q2).ok());
}

TEST(CqMinimizeTest, ClassicTriangleFold) {
  // p(x) :- a(x,y), a(x,z), b(y,w), b(z,w) minimizes to
  // p(x) :- a(x,y), b(y,w).
  auto symbols = MakeSymbols();
  Rule q = ParseRuleOrDie(symbols,
                          "p(x) :- a(x, y), a(x, z), b(y, w), b(z, w).");
  Result<Rule> core = MinimizeCq(q, symbols);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->body().size(), 2u) << ToString(core.value(), *symbols);
}

TEST(CqMinimizeTest, AlreadyMinimal) {
  auto symbols = MakeSymbols();
  Rule q = ParseRuleOrDie(symbols, "p(x, z) :- a(x, y), a(y, z).");
  Result<Rule> core = MinimizeCq(q, symbols);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core.value(), q);
}

TEST(CqMinimizeTest, HeadVariablesPinTheCore) {
  // p(x, y) :- a(x, y), a(x, z): a(x, z) folds into a(x, y); but
  // p(x, z)'s own atoms cannot fold if both vars are in the head.
  auto symbols = MakeSymbols();
  Rule q = ParseRuleOrDie(symbols, "p(x, y) :- a(x, y), a(x, z).");
  Result<Rule> core = MinimizeCq(q, symbols);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->body().size(), 1u);
}

TEST(CqMinimizeTest, AgreesWithFig1OnNonRecursiveRules) {
  // For non-recursive rules, uniform equivalence coincides with CQ
  // equivalence: MinimizeRule (chase-based) and MinimizeCq
  // (homomorphism-based) must produce bodies of the same size.
  auto symbols = MakeSymbols();
  const char* cases[] = {
      "p1(x) :- a(x, y), a(x, z), b(y, w), b(z, w).",
      "p2(x, z) :- a(x, y), a(y, z).",
      "p3(x) :- a(x, y), a(y, y), a(y, u).",
      "p4(x) :- a(x, x), a(x, y).",
      "p5(u) :- e(u, v), e(v, w), e(w, u), e(u, u).",
  };
  for (const char* text : cases) {
    Rule q = ParseRuleOrDie(symbols, text);
    Result<Rule> core = MinimizeCq(q, symbols);
    Result<Rule> fig1 = MinimizeRule(q, symbols);
    ASSERT_TRUE(core.ok()) << text;
    ASSERT_TRUE(fig1.ok()) << text;
    EXPECT_EQ(core->body().size(), fig1->body().size())
        << text << "\ncq:   " << ToString(core.value(), *symbols)
        << "\nfig1: " << ToString(fig1.value(), *symbols);
  }
}

TEST(CqMinimizeTest, WeakerThanFig1OnRecursiveRules) {
  // Example 7's deletion needs two chase steps; the single-step
  // homomorphism test cannot justify it.
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(
      symbols,
      "g(x, y, z) :- g(x, w, z), a(w, y), a(w, z), a(z, z), a(z, y).");
  Result<Rule> core = MinimizeCq(rule, symbols);
  Result<Rule> fig1 = MinimizeRule(rule, symbols);
  ASSERT_TRUE(core.ok());
  ASSERT_TRUE(fig1.ok());
  EXPECT_EQ(core->body().size(), 5u);   // hom test finds nothing
  EXPECT_EQ(fig1->body().size(), 4u);   // chase removes a(w, y)
}

TEST(CqMinimizeTest, CoreIsUniformlyEquivalentForNonRecursive) {
  auto symbols = MakeSymbols();
  Rule q = ParseRuleOrDie(symbols,
                          "p(x) :- a(x, y), a(x, z), b(y, w), b(z, w).");
  Result<Rule> core = MinimizeCq(q, symbols);
  ASSERT_TRUE(core.ok());
  Program original(symbols);
  original.AddRule(q);
  Program minimized(symbols);
  minimized.AddRule(core.value());
  Result<bool> eq = UniformlyEquivalent(original, minimized);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

}  // namespace
}  // namespace datalog
