#include "core/model_containment.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;
using testing::ParseTgdsOrDie;

// Example 11's programs: P1 is transitive closure guarded by A(y, w); P2
// drops the guard.
constexpr const char* kGuardedTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z), a(y, w).\n";
constexpr const char* kPlainTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(ModelContainmentTest, PaperExample11) {
  // SAT(T) ∩ M(P1) ⊆ M(P2) with T = {G(x,z) -> A(x,w)}.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = ModelContainment(p1, tgds, p2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(ModelContainmentTest, FailsWithoutTheTgd) {
  // Without T, M(P1) ⊄ M(P2): the chase reaches a fixpoint that is a
  // counterexample (the guarded rule cannot fire without an A fact).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  Result<ProofOutcome> outcome = ModelContainment(p1, {}, p2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kDisproved);
}

TEST(ModelContainmentTest, EmptyTgdsDecidesUniformContainment) {
  // With no tgds the test is exactly Corollary 2: P2 ⊆ᵘ P1 iff
  // M(P1) ⊆ M(P2); it never reports kUnknown.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kPlainTc);
  Program linear = ParseProgramOrDie(symbols,
                                     "g(x, z) :- a(x, z).\n"
                                     "g(x, z) :- a(x, y), g(y, z).\n");
  Result<ProofOutcome> forward = ModelContainment(p1, {}, linear);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(forward.value(), ProofOutcome::kProved);  // linear ⊆ᵘ P1
  Result<ProofOutcome> backward = ModelContainment(linear, {}, p1);
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(backward.value(), ProofOutcome::kDisproved);
}

TEST(ModelContainmentTest, SingleRuleHelper) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Rule r = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  Result<ProofOutcome> outcome = ModelContainmentForRule(p1, tgds, r);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kProved);
}

TEST(ModelContainmentTest, BudgetExhaustionReportsUnknown) {
  // A tgd that chases forever and a rule the chase cannot prove: the
  // bounded run must answer kUnknown, never hang.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, "h(x) :- q(x).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> g(y, w).");
  Rule r = ParseRuleOrDie(symbols, "h(x) :- g(x, y).");
  ChaseBudget budget;
  budget.max_rounds = 5;
  Result<ProofOutcome> outcome = ModelContainmentForRule(p1, tgds, r, budget);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kUnknown);
}

}  // namespace
}  // namespace datalog
