#include "core/pipeline.h"

#include "eval/query.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

constexpr const char* kMessyProgram =
    "g(x, z) :- a(x, z), a(x, q).\n"          // uniform redundancy
    "g(x, z) :- a(x, y), g(y, z).\n"
    "noise(x) :- b(x).\n"                      // irrelevant to g
    "g2(x, z) :- g(x, z), g(x, w).\n";         // depends on g, redundant atom

TEST(PipelineTest, StagesComposeAsDocumented) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kMessyProgram);
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  Result<QueryPlan> plan = PlanQuery(p, query);
  ASSERT_TRUE(plan.ok());
  // Relevance drops noise(x) and g2 (not on a path to g).
  EXPECT_EQ(plan->restricted.NumRules(), 2u);
  // Fig. 2 removes a(x, q).
  EXPECT_EQ(plan->report.atoms_removed, 1u);
  EXPECT_EQ(plan->optimized.TotalBodyLiterals(), 3u);
  // The magic program answers the query.
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). b(7).");
  Database work(symbols);
  work.UnionWith(edb);
  ASSERT_TRUE(EvaluateSemiNaive(plan->magic.program, &work).ok());
  std::size_t query_answers = 0;
  for (const Tuple& t :
       work.relation(plan->magic.answer_predicate).rows()) {
    if (t[0] == Value::Int(1)) ++query_answers;
  }
  EXPECT_EQ(query_answers, 2u);
}

TEST(PipelineTest, AnswersMatchUnoptimizedEvaluation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kMessyProgram);
  Atom query = ParseQueryOrDie(symbols, "?- g2(1, x).");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). b(7).");

  Result<QueryPlan> plan = PlanQuery(p, query);
  ASSERT_TRUE(plan.ok());
  Database work(symbols);
  work.UnionWith(edb);
  ASSERT_TRUE(EvaluateSemiNaive(plan->magic.program, &work).ok());

  Result<std::vector<Tuple>> reference =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  ASSERT_TRUE(reference.ok());
  std::set<Tuple> expected(reference->begin(), reference->end());
  std::set<Tuple> actual;
  for (const Tuple& t :
       work.relation(plan->magic.answer_predicate).rows()) {
    if (t[0] == Value::Int(1)) actual.insert(t);
  }
  EXPECT_EQ(actual, expected);
}

TEST(PipelineTest, EquivalencePassComposes) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  PlanOptions options;
  options.equivalence_pass = true;
  Result<QueryPlan> plan = PlanQuery(p, query, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->optimized.TotalBodyLiterals(), 3u);  // a(y,w) gone
  EXPECT_EQ(plan->report.atoms_removed, 1u);
}

TEST(PipelineTest, SipStrategyPropagates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols, "g(x, z) :- big(y, z), a(x, y).\n");  // badly ordered body
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  PlanOptions bound_first;
  bound_first.magic.sip = SipStrategy::kBoundFirst;
  Result<QueryPlan> plan = PlanQuery(p, query, bound_first);
  ASSERT_TRUE(plan.ok());
  // With bound-first SIP, a(x, y) (x bound) is visited before big(y, z).
  // The modified rule's body order reflects it: find the rewritten rule.
  bool found = false;
  PredicateId a = symbols->LookupPredicate("a").value();
  for (const Rule& rule : plan->magic.program.rules()) {
    if (rule.body().size() == 3) {  // magic guard + two atoms
      EXPECT_EQ(rule.body()[1].atom.predicate(), a);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace datalog
