#include "core/equivalence.h"

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseTgdsOrDie;

// Example 18's pair: the guard atom A(y,w) is redundant under equivalence
// but not under uniform equivalence.
constexpr const char* kGuardedTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z), a(y, w).\n";
constexpr const char* kPlainTc =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(EquivalenceTest, PaperExample18FullRecipe) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");

  Result<ContainmentProof> proof = ProveContainmentWithTgds(p1, p2, tgds);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->model_containment, ProofOutcome::kProved);
  EXPECT_EQ(proof->preservation, ProofOutcome::kProved);
  EXPECT_EQ(proof->preliminary_db, ProofOutcome::kProved);
  EXPECT_EQ(proof->overall, ProofOutcome::kProved);

  Result<EquivalenceProof> eq = ProveEquivalentWithTgds(p1, p2, tgds);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->uniform_forward);
  EXPECT_EQ(eq->overall, ProofOutcome::kProved);
}

TEST(EquivalenceTest, Example18SemanticSpotCheck) {
  // The proved equivalence must hold on concrete EDBs (though NOT on
  // mixed EDB+IDB inputs -- that is exactly the uniform/ordinary gap).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  PredicateId a = symbols->LookupPredicate("a").value();
  for (auto shape : {GraphShape::kChain, GraphShape::kCycle,
                     GraphShape::kRandom}) {
    Database d1(symbols), d2(symbols);
    GraphOptions options{shape, 12, 20, 3};
    AddGraphFacts(options, a, &d1);
    AddGraphFacts(options, a, &d2);
    ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
    ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
    EXPECT_EQ(d1, d2);
  }
}

TEST(EquivalenceTest, Example18GapOnIdbInputs) {
  // On an input with IDB facts the two programs differ: that is why the
  // A(y,w) atom is NOT redundant under uniform equivalence.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  Database d1 = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  Database d2 = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
  EXPECT_NE(d1, d2);  // p2 derives g(1,3); p1 cannot (no a facts)
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(d2.Contains(g, {Value::Int(1), Value::Int(3)}));
  EXPECT_FALSE(d1.Contains(g, {Value::Int(1), Value::Int(3)}));
}

TEST(EquivalenceTest, WrongTgdDoesNotProve) {
  // A tgd that P1 does not preserve leaves the verdict at kUnknown (the
  // recipe is sufficient-only; it never claims inequivalence).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kGuardedTc);
  Program p2 = ParseProgramOrDie(symbols, kPlainTc);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> b(x).");
  Result<ContainmentProof> proof = ProveContainmentWithTgds(p1, p2, tgds);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->overall, ProofOutcome::kUnknown);
  EXPECT_NE(proof->preliminary_db, ProofOutcome::kProved);
}

TEST(EquivalenceTest, EmptyTgdSetReducesToUniformContainment) {
  // With T = {}, condition (1) is plain uniform containment and (2)/(3')
  // hold vacuously; the recipe then proves exactly the uniform cases.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, kPlainTc);
  Program linear = ParseProgramOrDie(symbols,
                                     "g(x, z) :- a(x, z).\n"
                                     "g(x, z) :- a(x, y), g(y, z).\n");
  // linear ⊆ᵘ p1, so p1 ⊇ linear is provable with no tgds.
  Result<ContainmentProof> proof = ProveContainmentWithTgds(p1, linear, {});
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->overall, ProofOutcome::kProved);
}

TEST(EquivalenceTest, PaperExample19Conditions) {
  // Example 19: P1 = G(x,z):-A(x,z),C(z); G(x,z):-A(x,y),G(y,z),G(y,w),C(w).
  // Deleting G(y,w),C(w) is justified by tau: G(y,z) -> G(y,w) & C(w).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z), c(z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z), c(z).\n"
                                 "g(x, z) :- a(x, y), g(y, z).\n");
  std::vector<Tgd> tgds =
      ParseTgdsOrDie(symbols, "g(y, z) -> g(y, w), c(w).");
  Result<EquivalenceProof> proof = ProveEquivalentWithTgds(p1, p2, tgds);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->uniform_forward);
  EXPECT_EQ(proof->backward.model_containment, ProofOutcome::kProved);
  EXPECT_EQ(proof->backward.preservation, ProofOutcome::kProved);
  EXPECT_EQ(proof->backward.preliminary_db, ProofOutcome::kProved);
  EXPECT_EQ(proof->overall, ProofOutcome::kProved);
}

TEST(EquivalenceTest, Example19SemanticSpotCheck) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z), c(z).\n"
      "g(x, z) :- a(x, y), g(y, z), g(y, w), c(w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z), c(z).\n"
                                 "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  PredicateId c = symbols->LookupPredicate("c").value();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Database d1(symbols), d2(symbols);
    GraphOptions options{GraphShape::kRandom, 10, 18, seed};
    AddGraphFacts(options, a, &d1);
    AddGraphFacts(options, a, &d2);
    AddUnaryFacts(10, 5, seed, c, &d1);
    AddUnaryFacts(10, 5, seed, c, &d2);
    ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
    ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
    EXPECT_EQ(d1, d2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace datalog
