// Failure injection: every semi-decidable procedure must degrade to
// kUnknown (and optimizers to "no change") when starved of budget --
// never hang, never report a wrong definite answer.

#include "datalog.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseTgdsOrDie;

ChaseBudget Starved() {
  ChaseBudget budget;
  budget.max_rounds = 0;
  return budget;
}

TEST(BudgetTest, ChaseWithZeroRounds) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = testing::ParseDatabaseOrDie(symbols, "a(1, 2).");
  Result<ChaseResult> r = Chase(p, {}, &db, Starved());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kBudgetExhausted);
  EXPECT_EQ(db.NumFacts(), 1u);  // nothing ran
}

TEST(BudgetTest, ModelContainmentStarvedIsUnknownNotWrong) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = ModelContainment(p1, tgds, p2, Starved());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), ProofOutcome::kUnknown);
}

TEST(BudgetTest, PreservationStarvedIsUnknown) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> outcome = PreservesNonRecursively(p, tgds, Starved());
  ASSERT_TRUE(outcome.ok());
  // The canonical d already contains a witness for one combination, so
  // some combinations prove instantly even with no chase rounds; the
  // ones that need chasing go kUnknown. Never kDisproved.
  EXPECT_NE(outcome.value(), ProofOutcome::kDisproved);
}

TEST(BudgetTest, RecipeStarvedIsUnknown) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ContainmentProof> proof =
      ProveContainmentWithTgds(p1, p2, tgds, Starved());
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->overall, ProofOutcome::kUnknown);
}

TEST(BudgetTest, OptimizerStarvedLeavesProgramUnchanged) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  EquivalenceOptimizerOptions options;
  options.budget = Starved();
  Result<EquivalenceOptimizeResult> result =
      OptimizeUnderEquivalence(p, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->program, p);
  EXPECT_TRUE(result->removals.empty());
  EXPECT_GT(result->candidates_tried, 0u);
}

TEST(BudgetTest, ConstrainedMinimizeStarvedLeavesProgramUnchanged) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<Program> minimized =
      MinimizeProgramUnderConstraints(p, tgds, Starved());
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized.value(), p);
}

TEST(BudgetTest, NullBudgetCapsEmbeddedChase) {
  auto symbols = MakeSymbols();
  Program empty(symbols);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> g(y, w).");
  Database db = testing::ParseDatabaseOrDie(symbols, "g(1, 2).");
  ChaseBudget budget;
  budget.max_nulls = 3;
  Result<ChaseResult> r = Chase(empty, tgds, &db, budget);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kBudgetExhausted);
}

TEST(BudgetTest, FactBudgetCapsChase) {
  auto symbols = MakeSymbols();
  Program empty(symbols);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> g(y, w).");
  Database db = testing::ParseDatabaseOrDie(symbols, "g(1, 2).");
  ChaseBudget budget;
  budget.max_facts = 4;
  Result<ChaseResult> r = Chase(empty, tgds, &db, budget);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kBudgetExhausted);
}

}  // namespace
}  // namespace datalog
