#include "core/tgd.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseTgdOrDie;

TEST(TgdOpsTest, PaperExample9Violated) {
  // Example 9: the DB of Example 2 does not satisfy
  // G(x,y) -> A(y,z) & A(z,x) (x=4, y=2 exhibits a violation).
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4). a(4, 1)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(y, z), a(z, x).");
  EXPECT_FALSE(SatisfiesTgd(db, tgd));
}

TEST(TgdOpsTest, PaperExample9Satisfied) {
  // Example 9: the same DB satisfies G(x,y) -> G(x,z) & A(z,y).
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4). a(4, 1)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> g(x, z), a(z, y).");
  EXPECT_TRUE(SatisfiesTgd(db, tgd));
}

TEST(TgdOpsTest, EmptyDatabaseSatisfiesEverything) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(y, z).");
  EXPECT_TRUE(SatisfiesTgd(db, tgd));
}

TEST(TgdOpsTest, FullTgdApplication) {
  // A full tgd acts like a rule: a(x, y) -> b(y, x).
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  Tgd tgd = ParseTgdOrDie(symbols, "a(x, y) -> b(y, x).");
  NullPool pool;
  std::size_t added = ApplyTgdRound(tgd, &db, &pool);
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(pool.allocated(), 0);  // full tgds introduce no nulls
  PredicateId b = symbols->LookupPredicate("b").value();
  EXPECT_TRUE(db.Contains(b, {Value::Int(2), Value::Int(1)}));
  // Now satisfied: a second round adds nothing.
  EXPECT_EQ(ApplyTgdRound(tgd, &db, &pool), 0u);
  EXPECT_TRUE(SatisfiesTgd(db, tgd));
}

TEST(TgdOpsTest, EmbeddedTgdIntroducesNulls) {
  // Section VIII's example: applying G(x,y) -> A(x,w) & G(w,y) to
  // {G(3,2)} adds A(3, n) and G(n, 2) with a fresh null n.
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "g(3, 2).");
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(x, w), g(w, y).");
  NullPool pool;
  std::size_t added = ApplyTgdRound(tgd, &db, &pool);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(pool.allocated(), 1);
  PredicateId a = symbols->LookupPredicate("a").value();
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(a, {Value::Int(3), Value::Null(0)}));
  EXPECT_TRUE(db.Contains(g, {Value::Null(0), Value::Int(2)}));
}

TEST(TgdOpsTest, NoFiringWhenWitnessExists) {
  // The tgd must not fire when an extension already satisfies the RHS.
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "g(3, 2). a(3, 7). g(7, 2).");
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(x, w), g(w, y).");
  NullPool pool;
  // The instantiation x=3,y=2 is satisfied by w=7. But x=7,y=2 (from
  // G(7,2)) is violated, so one application happens for it.
  std::size_t added = ApplyTgdRound(tgd, &db, &pool);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(pool.allocated(), 1);
}

TEST(TgdOpsTest, MultiAtomLhsBindsSharedVariables) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  // Example 15's tgd: G(x,y) & G(y,z) -> A(y,w).
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y), g(y, z) -> a(y, w).");
  EXPECT_FALSE(SatisfiesTgd(db, tgd));
  NullPool pool;
  ApplyTgdRound(tgd, &db, &pool);
  PredicateId a = symbols->LookupPredicate("a").value();
  // The only joinable instantiation is x=1,y=2,z=3: adds a(2, n).
  EXPECT_EQ(db.relation(a).size(), 1u);
  EXPECT_EQ(db.relation(a).row(0)[0], Value::Int(2));
  EXPECT_TRUE(db.relation(a).row(0)[1].is_null());
  EXPECT_TRUE(SatisfiesTgd(db, tgd));
}

TEST(TgdOpsTest, LhsInstantiationSatisfiedChecksOneBinding) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2). a(1, 5).");
  Tgd tgd = ParseTgdOrDie(symbols, "g(x, y) -> a(x, w).");
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  Binding good{{x, Value::Int(1)}, {y, Value::Int(2)}};
  EXPECT_TRUE(LhsInstantiationSatisfied(db, tgd, good));
  Binding bad{{x, Value::Int(2)}, {y, Value::Int(1)}};
  EXPECT_FALSE(LhsInstantiationSatisfied(db, tgd, bad));
}

TEST(TgdOpsTest, SatisfiesAll) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). b(2, 1).");
  std::vector<Tgd> tgds = testing::ParseTgdsOrDie(
      symbols, "a(x, y) -> b(y, x). b(x, y) -> a(y, x).");
  EXPECT_TRUE(SatisfiesAll(db, tgds));
  Database partial = ParseDatabaseOrDie(symbols, "a(3, 4).");
  EXPECT_FALSE(SatisfiesAll(partial, tgds));
}

}  // namespace
}  // namespace datalog
