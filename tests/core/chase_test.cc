#include "core/chase.h"

#include <random>

#include "core/tgd.h"
#include "eval/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseTgdsOrDie;

TEST(ChaseTest, RulesOnlyReachFixpoint) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Result<ChaseResult> r = Chase(p, {}, &db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kFixpoint);
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(3)}));
}

TEST(ChaseTest, PaperExample11SecondRule) {
  // Example 11: chasing {G(x0,y0), G(y0,z0)} with [P1, T] where
  // T = {G(x,z) -> A(x,w)} derives G(x0,z0).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  // Frozen body: use two distinct integers standing for x0, y0, z0.
  Database db = ParseDatabaseOrDie(symbols, "g(101, 102). g(102, 103).");
  PredicateId g = symbols->LookupPredicate("g").value();
  ChaseGoal goal{g, {Value::Int(101), Value::Int(103)}};
  Result<ChaseResult> r = Chase(p1, tgds, &db, {}, goal);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kGoalReached);
}

TEST(ChaseTest, GoalAlreadyPresent) {
  auto symbols = MakeSymbols();
  Program p(symbols);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  PredicateId a = symbols->LookupPredicate("a").value();
  Result<ChaseResult> r =
      Chase(p, {}, &db, {}, ChaseGoal{a, {Value::Int(1), Value::Int(2)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kGoalReached);
  EXPECT_EQ(r->rounds, 0u);
}

TEST(ChaseTest, NonTerminatingTgdExhaustsBudget) {
  // G(x, y) -> G(y, w): every new null spawns another violation; the
  // chase can run forever (the paper's Section VIII caveat). The budget
  // must stop it.
  auto symbols = MakeSymbols();
  Program p(symbols);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> g(y, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2).");
  ChaseBudget budget;
  budget.max_rounds = 10;
  Result<ChaseResult> r = Chase(p, tgds, &db, budget);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kBudgetExhausted);
  EXPECT_GT(r->nulls_introduced, 0);
}

TEST(ChaseTest, NullBudgetRespected) {
  auto symbols = MakeSymbols();
  Program p(symbols);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> g(y, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2).");
  ChaseBudget budget;
  budget.max_nulls = 5;
  Result<ChaseResult> r = Chase(p, tgds, &db, budget);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kBudgetExhausted);
  EXPECT_LE(r->nulls_introduced, 7);  // one fair round may overshoot slightly
}

TEST(ChaseTest, TerminatingEmbeddedTgd) {
  // G(x, y) -> A(x, w): one null per G fact; terminates.
  auto symbols = MakeSymbols();
  Program p(symbols);
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> a(x, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2). g(3, 4).");
  Result<ChaseResult> r = Chase(p, tgds, &db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kFixpoint);
  EXPECT_EQ(r->nulls_introduced, 2);
  PredicateId a = symbols->LookupPredicate("a").value();
  EXPECT_EQ(db.relation(a).size(), 2u);
}

TEST(ChaseTest, RulesOperateOnNullsAsConstants) {
  // The paper: atoms with nulls are treated as ordinary ground atoms by
  // subsequent rule applications.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "b(x) :- a(x, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, y) -> a(x, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2).");
  Result<ChaseResult> r = Chase(p, tgds, &db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kFixpoint);
  PredicateId b = symbols->LookupPredicate("b").value();
  EXPECT_TRUE(db.Contains(b, {Value::Int(1)}));
}

TEST(ChaseTest, TranscriptNarratesExample11) {
  // The transcript must show the paper's Example 11 narrative: the tgd
  // supplies the guard atoms, then the rules derive the goal.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Database db = ParseDatabaseOrDie(symbols, "g(101, 102). g(102, 103).");
  PredicateId g = symbols->LookupPredicate("g").value();
  ChaseTranscript transcript;
  Result<ChaseResult> r =
      Chase(p1, tgds, &db, {}, ChaseGoal{g, {Value::Int(101), Value::Int(103)}},
            &transcript);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, ChaseStatus::kGoalReached);
  ASSERT_GE(transcript.steps.size(), 2u);
  // A tgd step adds the a-atoms with nulls; a rules step adds g(101,103).
  bool saw_tgd_step = false, saw_goal = false;
  for (const ChaseStep& step : transcript.steps) {
    if (step.kind == ChaseStep::Kind::kTgd) saw_tgd_step = true;
    for (const auto& [pred, tuple] : step.added) {
      if (pred == g && tuple == Tuple{Value::Int(101), Value::Int(103)}) {
        EXPECT_EQ(step.kind, ChaseStep::Kind::kRules);
        saw_goal = true;
      }
    }
  }
  EXPECT_TRUE(saw_tgd_step);
  EXPECT_TRUE(saw_goal);
  std::string rendered = transcript.ToString(*symbols, tgds);
  EXPECT_NE(rendered.find("tgd 0"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("rules derived:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("~n"), std::string::npos) << rendered;  // a null
}

TEST(ChaseTest, EmptyTranscriptWhenNothingHappens) {
  auto symbols = MakeSymbols();
  Program p(symbols);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  ChaseTranscript transcript;
  Result<ChaseResult> r = Chase(p, {}, &db, {}, std::nullopt, &transcript);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(transcript.steps.empty());
}

class ChaseFixpointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaseFixpointSweep, FixpointIsAModelInSatT) {
  // Property (the definition of [P,T](d), Section VIII): when the chase
  // reports kFixpoint, the database satisfies every tgd AND no rule can
  // add a fact.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols,
                                         "g(x, z) -> a(x, w).\n"
                                         "a(x, y) -> b(x).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  PredicateId g = symbols->LookupPredicate("g").value();
  Database db(symbols);
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> node(0, 5);
  for (int i = 0; i < 6; ++i) {
    db.AddFact(a, {Value::Int(node(rng)), Value::Int(node(rng))});
    db.AddFact(g, {Value::Int(node(rng)), Value::Int(node(rng))});
  }

  Result<ChaseResult> r = Chase(p, tgds, &db);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, ChaseStatus::kFixpoint);
  EXPECT_TRUE(SatisfiesAll(db, tgds)) << db.ToString();
  Database extra(symbols);
  ASSERT_TRUE(ApplyOnce(p, db, &extra, nullptr).ok());
  EXPECT_TRUE(extra.IsSubsetOf(db)) << "fixpoint is not a model of P";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseFixpointSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(ChaseTest, ResultCountsFacts) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Result<ChaseResult> r = Chase(p, {}, &db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->facts_added, 2u);
}

}  // namespace
}  // namespace datalog
