#include "core/unfold.h"

#include "ast/pretty_print.h"
#include "core/preservation.h"
#include "core/uniform_containment.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;
using testing::ParseTgdsOrDie;

TEST(UnfoldTest, BasicResolution) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- g(x, y), b(y, z).");
  Rule definition = ParseRuleOrDie(symbols, "g(u, v) :- a(u, v), c(v).");
  Result<Rule> unfolded = UnfoldAtom(rule, 0, definition, symbols.get());
  ASSERT_TRUE(unfolded.ok());
  // h(x, z) :- a(x, y), c(y), b(y, z)  (up to variable names).
  EXPECT_EQ(unfolded->body().size(), 3u);
  EXPECT_EQ(unfolded->head().predicate(), rule.head().predicate());
  // Shared variable y must connect the unfolded atoms.
  EXPECT_EQ(unfolded->body()[0].atom.args()[1],
            unfolded->body()[1].atom.args()[0]);
  EXPECT_EQ(unfolded->body()[1].atom.args()[0],
            unfolded->body()[2].atom.args()[0]);
}

TEST(UnfoldTest, ConstantsPropagateThroughUnification) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "h(x) :- g(x, 3).");
  Rule definition = ParseRuleOrDie(symbols, "g(u, v) :- a(u, v).");
  Result<Rule> unfolded = UnfoldAtom(rule, 0, definition, symbols.get());
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->body()[0].atom.args()[1], Term::Int(3));
}

TEST(UnfoldTest, NonUnifiableConstantsFail) {
  auto symbols = MakeSymbols();
  Rule rule = ParseRuleOrDie(symbols, "h(x) :- g(x, 3).");
  Rule definition = ParseRuleOrDie(symbols, "g(u, 4) :- a(u).");
  Result<Rule> unfolded = UnfoldAtom(rule, 0, definition, symbols.get());
  ASSERT_FALSE(unfolded.ok());
  EXPECT_EQ(unfolded.status().code(), StatusCode::kNotFound);
}

TEST(UnfoldTest, UnfoldedRuleIsUniformlyContained) {
  // Unfolding is sound: the unfolded rule is uniformly contained in the
  // two-rule program it came from.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(u, v) :- a(u, v).\n"
                                "h(x, z) :- g(x, y), g(y, z).\n");
  Result<Rule> unfolded =
      UnfoldAtom(p.rules()[1], 0, p.rules()[0], symbols.get());
  ASSERT_TRUE(unfolded.ok());
  Result<bool> contained = UniformlyContainsRule(p, unfolded.value());
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(contained.value());
}

TEST(ExpandRulesTest, DepthOneIsInitializationRules) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  std::vector<Rule> expanded = ExpandRules(p, {.max_depth = 1});
  std::vector<Rule> init = InitializationRules(p);
  EXPECT_EQ(expanded, init);
}

TEST(ExpandRulesTest, DepthTwoUnfoldsRecursion) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  std::vector<Rule> expanded = ExpandRules(p, {.max_depth = 2});
  // Depth 1: g(x,z) :- a(x,z). Depth 2: g(x,z) :- a(x,y), a(y,z).
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[1].body().size(), 2u);
  for (const Literal& lit : expanded[1].body()) {
    EXPECT_EQ(lit.atom.predicate(), symbols->LookupPredicate("a").value());
  }
}

TEST(ExpandRulesTest, DeduplicatesAlphaEquivalentExpansions) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(u, w) :- a(u, v), g(v, w).\n");
  std::vector<Rule> d2 = ExpandRules(p, {.max_depth = 2});
  std::vector<Rule> d3 = ExpandRules(p, {.max_depth = 3});
  // Depth 3 adds exactly one new expansion (the 3-step chain); the
  // depth-2 chain is not duplicated.
  EXPECT_EQ(d2.size(), 2u);
  EXPECT_EQ(d3.size(), 3u);
}

TEST(ExpandRulesTest, TruncationIsReported) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- b(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  bool truncated = false;
  std::vector<Rule> expanded =
      ExpandRules(p, {.max_depth = 4, .max_rules = 6}, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_LE(expanded.size(), 6u);
}

TEST(PreliminaryUnfoldedTest, DepthTwoProvesWhatDepthOneCannot) {
  // The Section X final-paragraph generalization. With
  //   g(x, z) :- a(x, z).      h(x, z) :- g(x, z).
  // and tau: g(x,z) -> h(x,z), the 1-round preliminary DB violates tau
  // (h is not initialized yet), but the 2-round preliminary DB satisfies
  // it.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "h(x, z) :- g(x, z).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> h(x, z).");

  Result<ProofOutcome> depth1 = PreliminaryDbSatisfies(p, tgds);
  ASSERT_TRUE(depth1.ok());
  EXPECT_EQ(depth1.value(), ProofOutcome::kDisproved);

  Result<ProofOutcome> depth2 =
      PreliminaryDbSatisfiesUnfolded(p, tgds, {.max_depth = 2});
  ASSERT_TRUE(depth2.ok());
  EXPECT_EQ(depth2.value(), ProofOutcome::kProved);
}

TEST(PreliminaryUnfoldedTest, DepthOneMatchesLegacyEntryPoint) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  std::vector<Tgd> tgds = ParseTgdsOrDie(symbols, "g(x, z) -> a(x, w).");
  Result<ProofOutcome> legacy = PreliminaryDbSatisfies(p, tgds);
  Result<ProofOutcome> unfolded =
      PreliminaryDbSatisfiesUnfolded(p, tgds, {.max_depth = 1});
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(legacy.value(), unfolded.value());
}

}  // namespace
}  // namespace datalog
