#include "ast/pretty_print.h"
#include "core/cq.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

TEST(CqUnionTest, MemberwiseContainment) {
  auto symbols = MakeSymbols();
  std::vector<Rule> u1 = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y)."),
      ParseRuleOrDie(symbols, "p(x) :- b(x, y)."),
  };
  std::vector<Rule> u2 = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), a(y, z)."),  // ⊆ first
      ParseRuleOrDie(symbols, "p(x) :- b(x, x)."),           // ⊆ second
  };
  Result<bool> contains = CqUnionContains(u1, u2);
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(contains.value());
  // The converse fails: p(x) :- a(x, y) is not contained in the union of
  // the more restrictive queries.
  Result<bool> converse = CqUnionContains(u2, u1);
  ASSERT_TRUE(converse.ok());
  EXPECT_FALSE(converse.value());
}

TEST(CqUnionTest, MemberNotCoveredByAnySingleMember) {
  // The Sagiv-Yannakakis criterion is member-wise: a query contained in
  // the union only "jointly" does not arise for CQs (set semantics), so
  // the test below must fail.
  auto symbols = MakeSymbols();
  std::vector<Rule> u1 = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), c(y)."),
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), d(y)."),
  };
  std::vector<Rule> u2 = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y)."),
  };
  Result<bool> contains = CqUnionContains(u1, u2);
  ASSERT_TRUE(contains.ok());
  EXPECT_FALSE(contains.value());
}

TEST(CqUnionTest, EmptyUnions) {
  auto symbols = MakeSymbols();
  std::vector<Rule> some = {ParseRuleOrDie(symbols, "p(x) :- a(x, y).")};
  EXPECT_TRUE(CqUnionContains(some, {}).value());
  EXPECT_FALSE(CqUnionContains({}, some).value());
  EXPECT_TRUE(CqUnionContains({}, {}).value());
}

TEST(CqUnionMinimizeTest, DropsSubsumedMembers) {
  auto symbols = MakeSymbols();
  std::vector<Rule> queries = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), a(y, z)."),
      ParseRuleOrDie(symbols, "p(x) :- a(x, y)."),
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), b(y)."),
  };
  Result<std::vector<Rule>> minimized = MinimizeCqUnion(queries, symbols);
  ASSERT_TRUE(minimized.ok());
  // Both specializations are subsumed by the middle member.
  ASSERT_EQ(minimized->size(), 1u);
  EXPECT_EQ((*minimized)[0], queries[1]);
}

TEST(CqUnionMinimizeTest, KeepsIncomparableMembersAndMinimizesEach) {
  auto symbols = MakeSymbols();
  std::vector<Rule> queries = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y), a(x, z)."),  // core: 1 atom
      ParseRuleOrDie(symbols, "p(x) :- b(x, y)."),
  };
  Result<std::vector<Rule>> minimized = MinimizeCqUnion(queries, symbols);
  ASSERT_TRUE(minimized.ok());
  ASSERT_EQ(minimized->size(), 2u);
  EXPECT_EQ((*minimized)[0].body().size(), 1u);
  EXPECT_EQ((*minimized)[1], queries[1]);
}

TEST(CqUnionMinimizeTest, IdenticalMembersCollapseToOne) {
  auto symbols = MakeSymbols();
  std::vector<Rule> queries = {
      ParseRuleOrDie(symbols, "p(x) :- a(x, y)."),
      ParseRuleOrDie(symbols, "p(u) :- a(u, v)."),  // same up to renaming
  };
  Result<std::vector<Rule>> minimized = MinimizeCqUnion(queries, symbols);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->size(), 1u);
}

TEST(InitEquivalenceTest, SectionXCondition3) {
  // Two recursive programs with the same initialization rules modulo
  // renaming and a redundant atom: condition (3) holds.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- g(x, y), g(y, z), a(y, w).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "g(u, v) :- a(u, v).\n"
                                 "g(x, z) :- g(x, y), g(y, z).\n");
  Result<bool> eq = InitializationProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(InitEquivalenceTest, DifferentInitializationsDetected) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Program p2 = ParseProgramOrDie(symbols, "g(x, z) :- a(z, x).\n");
  Result<bool> eq = InitializationProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());
}

TEST(InitEquivalenceTest, RedundantInitMemberTolerated) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "g(x, z) :- a(x, z), b(z).\n");
  Program p2 = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Result<bool> eq = InitializationProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(InitEquivalenceTest, MissingHeadOnOneSide) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "g(x, z) :- a(x, z).\n"
                                 "h(x) :- b(x).\n");
  Program p2 = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Result<bool> eq = InitializationProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());
}

}  // namespace
}  // namespace datalog
