#include "core/cq.h"
#include "core/uniform_containment.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;

TEST(NonRecursiveEquivalenceTest, IdenticalPrograms) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "b(x) :- a(x).\n"
                                "c(x, z) :- a(x), e(x, z).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p, p);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(NonRecursiveEquivalenceTest, BeyondUniform) {
  // The multi-layer gap: P1 routes c through b, P2 defines c directly.
  // Equivalent on every EDB, NOT uniformly equivalent (feed a b-fact).
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(x) :- a(x).\n"
                                 "c(x) :- b(x).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "b(x) :- a(x).\n"
                                 "c(x) :- a(x).\n");
  Result<bool> uniform = UniformlyEquivalent(p1, p2);
  ASSERT_TRUE(uniform.ok());
  EXPECT_FALSE(uniform.value());

  Result<bool> equivalent = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(equivalent.value());
}

TEST(NonRecursiveEquivalenceTest, DetectsRealDifference) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(x) :- a(x).\n"
                                 "c(x) :- b(x).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "b(x) :- a(x).\n"
                                 "c(x) :- d(x).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());
}

TEST(NonRecursiveEquivalenceTest, UnionsAcrossLayers) {
  // c = a-pairs joined one way in P1; P2 writes the same union after
  // distributing the join over the two b rules.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(x, y) :- a1(x, y).\n"
                                 "b(x, y) :- a2(x, y).\n"
                                 "c(x, z) :- b(x, y), b(y, z).\n");
  Program p2 = ParseProgramOrDie(
      symbols,
      "b(x, y) :- a1(x, y).\n"
      "b(x, y) :- a2(x, y).\n"
      "c(x, z) :- a1(x, y), a1(y, z).\n"
      "c(x, z) :- a1(x, y), a2(y, z).\n"
      "c(x, z) :- a2(x, y), a1(y, z).\n"
      "c(x, z) :- a2(x, y), a2(y, z).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST(NonRecursiveEquivalenceTest, MissingLayerDetected) {
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(x) :- a(x).\n"
                                 "c(x) :- b(x).\n");
  Program p2 = ParseProgramOrDie(symbols, "b(x) :- a(x).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq.value());  // p2 never derives c
}

TEST(NonRecursiveEquivalenceTest, RecursiveProgramRejected) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p, p);
  ASSERT_FALSE(eq.ok());
  EXPECT_EQ(eq.status().code(), StatusCode::kInvalidArgument);
}

TEST(NonRecursiveEquivalenceTest, VerdictMatchesEvaluationOnRandomEdbs) {
  // The decision procedure's positive verdict must hold semantically.
  auto symbols = MakeSymbols();
  Program p1 = ParseProgramOrDie(symbols,
                                 "b(x, y) :- a(x, y).\n"
                                 "c(x) :- b(x, y), b(x, z).\n");
  Program p2 = ParseProgramOrDie(symbols,
                                 "b(x, y) :- a(x, y).\n"
                                 "c(x) :- a(x, y).\n");
  Result<bool> eq = NonRecursiveProgramsEquivalent(p1, p2);
  ASSERT_TRUE(eq.ok());
  ASSERT_TRUE(eq.value());  // b(x,z) folds onto b(x,y)
  PredicateId a = symbols->LookupPredicate("a").value();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Database d1(symbols), d2(symbols);
    GraphOptions options{GraphShape::kRandom, 8, 14, seed};
    AddGraphFacts(options, a, &d1);
    AddGraphFacts(options, a, &d2);
    ASSERT_TRUE(EvaluateSemiNaive(p1, &d1).ok());
    ASSERT_TRUE(EvaluateSemiNaive(p2, &d2).ok());
    EXPECT_EQ(d1, d2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace datalog
