#include "analysis/diagnostic.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace datalog {
namespace {

Diagnostic Sample() {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.pass = "redundancy";
  d.code = "redundant-atom";
  d.message = "atom 'g(y, z)' is redundant";
  d.span = SourceSpan{2, 21, 2, 28};
  d.note = "deleting it preserves the meaning";
  d.rule_index = 1;
  return d;
}

TEST(DiagnosticTest, ToTextIncludesSpanSeverityPassCodeAndNote) {
  EXPECT_EQ(Sample().ToText(),
            "2:21-2:28: warning: [redundancy/redundant-atom] atom 'g(y, z)' "
            "is redundant\n  note: deleting it preserves the meaning");
}

TEST(DiagnosticTest, ToTextOmitsUnknownSpanAndEmptyNote) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.pass = "safety";
  d.code = "unsafe-rule";
  d.message = "head variable 'y' is unbound";
  EXPECT_EQ(d.ToText(),
            "error: [safety/unsafe-rule] head variable 'y' is unbound");
}

TEST(DiagnosticTest, ToStatusIsInvalidArgumentWithFullText) {
  Status status = Sample().ToStatus();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("redundancy/redundant-atom"),
            std::string::npos);
}

TEST(DiagnosticTest, SeverityNames) {
  EXPECT_EQ(ToString(Severity::kError), "error");
  EXPECT_EQ(ToString(Severity::kWarning), "warning");
  EXPECT_EQ(ToString(Severity::kInfo), "info");
}

TEST(DiagnosticTest, CountBySeverityTallies) {
  std::vector<Diagnostic> diags(5);
  diags[0].severity = Severity::kError;
  diags[1].severity = Severity::kWarning;
  diags[2].severity = Severity::kWarning;
  diags[3].severity = Severity::kInfo;
  diags[4].severity = Severity::kInfo;
  DiagnosticCounts counts = CountBySeverity(diags);
  EXPECT_EQ(counts.errors, 1u);
  EXPECT_EQ(counts.warnings, 2u);
  EXPECT_EQ(counts.infos, 2u);
}

TEST(DiagnosticTest, JsonCarriesSpanRuleIndexAndSummary) {
  std::string json = DiagnosticsToJson({Sample()}, "example.dl",
                                       /*budget_exhausted=*/true);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"example.dl\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2, \"col\": 21"), std::string::npos);
  EXPECT_NE(json.find("\"ruleIndex\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"budgetExhausted\": true"), std::string::npos);
}

TEST(DiagnosticTest, JsonEscapesMessageContent) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.pass = "parse";
  d.code = "syntax-error";
  d.message = "unexpected '\"' at\nline break";
  std::string json = DiagnosticsToJson({d}, "a\\b.dl",
                                       /*budget_exhausted=*/false);
  EXPECT_NE(json.find("unexpected '\\\"' at\\nline break"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"a\\\\b.dl\""), std::string::npos);
}

TEST(DiagnosticTest, SarifMapsInfoToNoteLevel) {
  Diagnostic d = Sample();
  d.severity = Severity::kInfo;
  std::string sarif = DiagnosticsToSarif({d}, "example.dl");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"redundancy/redundant-atom\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
}

TEST(DiagnosticTest, SarifOmitsRegionForUnknownSpans) {
  Diagnostic d = Sample();
  d.span = SourceSpan{};
  std::string sarif = DiagnosticsToSarif({d}, "example.dl");
  EXPECT_EQ(sarif.find("\"region\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
}

}  // namespace
}  // namespace datalog
