// Data-driven analyzer regressions: every tests/analysis/cases/*.dl file
// is parsed with source spans and run through the default analyzer
// configuration (AnalyzeParsed, which adopts the file's `?- ...` query
// when present). Expected diagnostics are annotated in the file itself as
//
//   % expect: SEVERITY PASS/CODE @LINE:COL
//   % expect: SEVERITY PASS/CODE @none
//
// and the comparison is exact in both directions: every annotation must
// be emitted and every emitted diagnostic must be annotated, so a pass
// that starts over- or under-reporting fails the corpus. The directory
// path is injected by CMake.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "ast/parser.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

#ifndef DATALOG_ANALYSIS_CASES_DIR
#define DATALOG_ANALYSIS_CASES_DIR "tests/analysis/cases"
#endif

std::vector<std::string> CaseNames() {
  std::vector<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(DATALOG_ANALYSIS_CASES_DIR)) {
    std::string filename = entry.path().filename().string();
    const std::string suffix = ".dl";
    if (filename.size() > suffix.size() &&
        filename.substr(filename.size() - suffix.size()) == suffix) {
      names.push_back(filename.substr(0, filename.size() - suffix.size()));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A diagnostic reduced to what the golden annotations pin down:
/// "severity pass/code @line:col" (or "@none" for spanless diagnostics).
std::string Key(std::string_view severity, std::string_view pass,
                std::string_view code, int line, int col) {
  std::string key(severity);
  key += ' ';
  key += pass;
  key += '/';
  key += code;
  key += " @";
  if (line == 0) {
    key += "none";
  } else {
    key += std::to_string(line) + ":" + std::to_string(col);
  }
  return key;
}

std::vector<std::string> ExpectedKeys(const std::string& text) {
  std::vector<std::string> keys;
  std::istringstream lines(text);
  std::string line;
  const std::string marker = "% expect: ";
  while (std::getline(lines, line)) {
    if (line.rfind(marker, 0) != 0) continue;
    keys.push_back(line.substr(marker.size()));
  }
  return keys;
}

class GoldenDiagnosticsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenDiagnosticsTest, DiagnosticsMatchAnnotations) {
  const std::string path = std::string(DATALOG_ANALYSIS_CASES_DIR) + "/" +
                           GetParam() + ".dl";
  const std::string text = ReadFile(path);

  Parser parser(testing::MakeSymbols());
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  AnalysisResult result = AnalyzeParsed(*parsed);
  std::vector<std::string> got;
  for (const Diagnostic& d : result.diagnostics) {
    got.push_back(Key(ToString(d.severity), d.pass, d.code, d.span.line,
                      d.span.col));
  }
  std::vector<std::string> want = ExpectedKeys(text);
  ASSERT_FALSE(want.empty()) << path << " has no % expect: annotations";

  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "diagnostics drifted for " << path << "\nfull:\n"
                       << DiagnosticsToText(result.diagnostics);
}

TEST_P(GoldenDiagnosticsTest, SpansPointIntoTheSource) {
  // Every diagnostic with a location must point at a real position of the
  // file: 1 <= line <= line count, and the column within that line.
  const std::string path = std::string(DATALOG_ANALYSIS_CASES_DIR) + "/" +
                           GetParam() + ".dl";
  const std::string text = ReadFile(path);
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);

  Parser parser(testing::MakeSymbols());
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(text);
  ASSERT_TRUE(parsed.ok());
  AnalysisResult result = AnalyzeParsed(*parsed);
  for (const Diagnostic& d : result.diagnostics) {
    if (!d.span.valid()) continue;
    ASSERT_GE(d.span.line, 1);
    ASSERT_LE(static_cast<std::size_t>(d.span.line), lines.size())
        << d.ToText();
    EXPECT_LE(static_cast<std::size_t>(d.span.col),
              lines[static_cast<std::size_t>(d.span.line) - 1].size() + 1)
        << d.ToText();
    EXPECT_GE(d.span.end_line, d.span.line) << d.ToText();
    if (d.span.end_line == d.span.line) {
      EXPECT_GE(d.span.end_col, d.span.col) << d.ToText();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, GoldenDiagnosticsTest,
                         ::testing::ValuesIn(CaseNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace datalog
