#include "analysis/analyzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "ast/dependence_graph.h"
#include "ast/parser.h"
#include "eval/database.h"
#include "eval/rule_matcher.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

std::size_t CountCode(const std::vector<Diagnostic>& diags,
                      std::string_view code) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

TEST(AnalyzerTest, CleanProgramHasNoErrorsOrWarnings) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "path(x, z) :- edge(x, z).\n"
                                      "path(x, z) :- path(x, y), edge(y, z).");
  AnalysisResult result = Analyze(program);
  EXPECT_FALSE(result.HasErrors());
  DiagnosticCounts counts = CountBySeverity(result.diagnostics);
  EXPECT_EQ(counts.errors, 0u);
  EXPECT_EQ(counts.warnings, 0u);
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(AnalyzerTest, PassTogglesSelectWhichDiagnosticsAppear) {
  auto symbols = MakeSymbols();
  // Unsafe (head var y unbound) AND redundant (duplicated atom).
  Program program = ParseProgramOrDie(symbols,
                                      "g(x, y) :- a(x, z), a(x, z).");
  AnalysisResult all = Analyze(program);
  EXPECT_GE(CountCode(all.diagnostics, "unsafe-rule"), 1u);

  AnalyzerOptions no_safety;
  no_safety.safety = false;
  AnalysisResult rest = Analyze(program, no_safety);
  EXPECT_EQ(CountCode(rest.diagnostics, "unsafe-rule"), 0u);

  AnalyzerOptions only_safety;
  only_safety.stratification = only_safety.dead_code = only_safety.redundancy =
      only_safety.binding = false;
  AnalysisResult safety = Analyze(program, only_safety);
  for (const Diagnostic& d : safety.diagnostics) {
    EXPECT_EQ(d.pass, "safety") << d.ToText();
  }
}

TEST(AnalyzerTest, RedundancySkippedWhileProgramIsInvalid) {
  // The minimizer requires a safe positive program; with a safety error
  // present the redundancy pass must not run (and not crash).
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "g(x, y) :- a(x, z), a(x, z).");
  AnalysisResult result = Analyze(program);
  EXPECT_TRUE(result.HasErrors());
  EXPECT_EQ(CountCode(result.diagnostics, "redundant-atom"), 0u);
}

TEST(AnalyzerTest, AnalyzeParsedAdoptsTheFirstQuery) {
  Parser parser(MakeSymbols());
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(
      "path(x, z) :- edge(x, z).\n"
      "island(x) :- sea(x).\n"
      "?- path(1, w).");
  ASSERT_TRUE(parsed.ok());
  AnalysisResult result = AnalyzeParsed(*parsed);
  EXPECT_EQ(CountCode(result.diagnostics, "irrelevant-rule"), 1u);
  // Diagnostics carry exact token spans from the source map.
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == "irrelevant-rule") {
      EXPECT_EQ(d.span.line, 2);
      EXPECT_EQ(d.rule_index, 1u);
    }
  }
}

TEST(AnalyzerTest, ExplicitQueryOverridesTheParsedOne) {
  Parser parser(MakeSymbols());
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(
      "path(x, z) :- edge(x, z).\n"
      "island(x) :- sea(x).\n"
      "?- path(1, w).");
  ASSERT_TRUE(parsed.ok());
  AnalyzerOptions options;
  options.query = ParseQueryOrDie(parsed->program.symbols(), "?- island(3).");
  AnalysisResult result = AnalyzeParsed(*parsed, options);
  // Now the path rule is the irrelevant one.
  ASSERT_EQ(CountCode(result.diagnostics, "irrelevant-rule"), 1u);
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == "irrelevant-rule") {
      EXPECT_EQ(d.rule_index, 0u);
    }
  }
}

TEST(AnalyzerTest, ExtensionalQueryGetsItsOwnWarning) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x).");
  AnalyzerOptions options;
  options.query = ParseQueryOrDie(symbols, "?- e(1).");
  AnalysisResult result = Analyze(program, options);
  EXPECT_EQ(CountCode(result.diagnostics, "extensional-query"), 1u);
  // The blanket warning subsumes per-rule irrelevance reports.
  EXPECT_EQ(CountCode(result.diagnostics, "irrelevant-rule"), 0u);
}

TEST(AnalyzerTest, RedundancyBudgetStopsEarlyAndSaysSo) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "g(x, z) :- a(x, z).\n"
                                      "g(x, z) :- g(x, y), g(y, z), g(y, z).");
  AnalyzerOptions tight;
  tight.budget = 1;  // one containment test, nowhere near enough
  tight.binding = false;
  AnalysisResult result = Analyze(program, tight);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GE(CountCode(result.diagnostics, "budget-exhausted"), 1u);

  AnalyzerOptions roomy;
  roomy.budget = 0;  // unlimited
  AnalysisResult full = Analyze(program, roomy);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(CountCode(full.diagnostics, "redundant-atom"), 1u);
}

TEST(AnalyzerTest, PlantedRedundancyIsReportedWithoutMutatingTheProgram) {
  // The generator plants provably redundant atoms and rules; the
  // redundancy pass must report at least that many findings, while the
  // program object itself stays untouched (the pass is report-only).
  auto symbols = MakeSymbols();
  PlantedProgramOptions options;
  options.planted_atoms = 2;
  options.planted_rules = 1;
  options.seed = 7;
  Result<PlantedProgram> planted = MakePlantedProgram(symbols, options);
  ASSERT_TRUE(planted.ok()) << planted.status().ToString();
  const Program copy = planted->program;

  AnalyzerOptions analyzer_options;
  analyzer_options.budget = 0;
  AnalysisResult result = Analyze(planted->program, analyzer_options);
  EXPECT_GE(CountCode(result.diagnostics, "redundant-atom") +
                CountCode(result.diagnostics, "redundant-rule"),
            planted->planted_atoms + planted->planted_rules);
  EXPECT_EQ(planted->program, copy);
}

TEST(AnalyzerTest, DiagnosticsAreSortedBySourcePosition) {
  Parser parser(MakeSymbols());
  Result<ParsedProgram> parsed = parser.ParseProgramWithSource(
      "fact(x).\n"
      "g(x, y) :- a(x, z).\n");
  ASSERT_TRUE(parsed.ok());
  AnalysisResult result = AnalyzeParsed(*parsed);
  int last_line = 0;
  bool seen_invalid = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (!d.span.valid()) {
      seen_invalid = true;
      continue;
    }
    EXPECT_FALSE(seen_invalid) << "located diagnostic after spanless one";
    EXPECT_GE(d.span.line, last_line);
    last_line = d.span.line;
  }
}

TEST(NegativeCycleWitnessTest, FindsACycleThroughTheNegativeEdge) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "p(x) :- e(x), not q(x).\n"
                                      "q(x) :- r(x).\n"
                                      "r(x) :- p(x).");
  DependenceGraph graph(program);
  ASSERT_FALSE(graph.Stratify().ok());
  std::vector<PredicateId> cycle = graph.NegativeCycleWitness();
  ASSERT_EQ(cycle.size(), 3u);
  // The first edge of the cycle is the negative one: cycle[0] is the
  // negated predicate, cycle[1] the head of the rule negating it, and the
  // rest closes the loop back to cycle[0].
  EXPECT_EQ(symbols->PredicateName(cycle[0]), "q");
  EXPECT_EQ(symbols->PredicateName(cycle[1]), "p");
  EXPECT_EQ(symbols->PredicateName(cycle[2]), "r");
}

TEST(NegativeCycleWitnessTest, EmptyOnStratifiablePrograms) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "p(x) :- e(x), not q(x).\n"
                                      "q(x) :- r(x).");
  DependenceGraph graph(program);
  ASSERT_TRUE(graph.Stratify().ok());
  EXPECT_TRUE(graph.NegativeCycleWitness().empty());
}

TEST(JoinOrderHintsTest, InstallBumpsVersionAndIsVisible) {
  const std::uint64_t before = JoinOrderHintsVersion();
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols, "g(x, z) :- g(x, y), a(y, z).\ng(x, z) :- a(x, z).");
  JoinOrderHints hints = StaticJoinHints(program);
  SetJoinOrderHints(&hints);
  EXPECT_EQ(InstalledJoinOrderHints(), &hints);
  EXPECT_GT(JoinOrderHintsVersion(), before);
  SetJoinOrderHints(nullptr);
  EXPECT_EQ(InstalledJoinOrderHints(), nullptr);
}

TEST(JoinOrderHintsTest, EvaluationIsIdenticalWithHintsInstalled) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- g(x, y), a(y, z).\n"
      "h(x, z) :- a(x, y), g(y, z), a(z, w).");
  Database edb(symbols);
  PredicateId a = symbols->InternPredicate("a", 2).value();
  AddGraphFacts(GraphOptions{GraphShape::kRandom, 8, 14, 3}, a, &edb);

  Database reference = edb;
  ASSERT_TRUE(EvaluateSemiNaive(program, &reference).ok());

  JoinOrderHints hints = StaticJoinHints(program);
  SetJoinOrderHints(&hints);
  Database hinted = edb;
  Result<EvalStats> stats = EvaluateSemiNaive(program, &hinted);
  SetJoinOrderHints(nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(hinted, reference);
}

TEST(JoinOrderHintsTest, MalformedHintsAreIgnoredNotObeyed) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols, "h(x, z) :- a(x, y), b(y, z).");
  Database edb(symbols);
  PredicateId a = symbols->InternPredicate("a", 2).value();
  PredicateId b = symbols->InternPredicate("b", 2).value();
  AddGraphFacts(GraphOptions{GraphShape::kChain, 6, 5, 1}, a, &edb);
  AddGraphFacts(GraphOptions{GraphShape::kChain, 6, 5, 2}, b, &edb);

  Database reference = edb;
  ASSERT_TRUE(EvaluateSemiNaive(program, &reference).ok());

  // Duplicate position, wrong size, out of range: all fall back to the
  // default planner instead of corrupting the join.
  std::vector<PlannedAtom> body;
  for (const Literal& lit : program.rules()[0].body()) {
    body.push_back(PlannedAtom{lit.atom, AtomSource::kFull});
  }
  const std::uint64_t key = BodyFingerprint(body);
  for (const std::vector<std::size_t>& bogus :
       {std::vector<std::size_t>{0, 0}, std::vector<std::size_t>{0},
        std::vector<std::size_t>{1, 2}}) {
    JoinOrderHints hints;
    hints.order.emplace(key, bogus);
    SetJoinOrderHints(&hints);
    Database db = edb;
    Result<EvalStats> stats = EvaluateSemiNaive(program, &db);
    SetJoinOrderHints(nullptr);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(db, reference);
  }
}

TEST(JoinOrderHintsTest, BindingPassEmitsHintsForTheQuery) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(
      symbols, "g(x, z) :- b(z, w), a(x, z).");
  AnalyzerOptions options;
  options.query = ParseQueryOrDie(symbols, "?- g(1, y).");
  AnalysisResult result = Analyze(program, options);
  // With x bound, bound-first SIP visits a(x, z) before b(z, w): a
  // non-identity order over the planned atoms, so a hint is produced.
  EXPECT_EQ(result.join_hints.order.size(), 1u);
  EXPECT_GE(CountCode(result.diagnostics, "join-order"), 1u);
}

}  // namespace
}  // namespace datalog
