// Property fuzzing for the analyzer, 50 seeds:
//
//  1. Analyzer-clean implies engines agree: on generated programs where
//     the analyzer reports no errors, naive, semi-naive, and the parallel
//     engine reach the same fixpoint. (The generator only emits safe
//     positive programs, so "no errors" must hold for every seed -- a
//     spurious error would itself be a bug worth this test failing on.)
//  2. Hints are semantics-free: evaluation with the analyzer's join-order
//     hints installed is bit-identical to evaluation without them, and
//     the hinted run performs the same number of complete body matches.
//
// Together these pin the analyzer's contract: it may only describe the
// program, never change what evaluation computes.

#include <cstdint>
#include <string>

#include "analysis/analyzer.h"
#include "eval/database.h"
#include "eval/naive.h"
#include "eval/parallel.h"
#include "eval/rule_matcher.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"
#include "workload/program_gen.h"

namespace datalog {
namespace {

struct GeneratedCase {
  std::shared_ptr<SymbolTable> symbols;
  Program program;
  Database edb;

  explicit GeneratedCase(std::shared_ptr<SymbolTable> s)
      : symbols(std::move(s)), edb(symbols) {}
};

GeneratedCase MakeCase(std::uint64_t seed) {
  GeneratedCase c(testing::MakeSymbols());
  PlantedProgramOptions options;
  options.seed = seed * 6271 + 5;
  options.num_extensional = 1 + seed % 3;
  options.num_intentional = 1 + (seed / 2) % 3;
  options.chain_rules = 2 + seed % 3;
  options.chain_length = 2 + (seed / 3) % 3;
  options.recursion_percent = 25 + static_cast<int>(seed % 4) * 15;
  options.planted_atoms = seed % 3;
  options.planted_rules = seed % 2;
  Result<PlantedProgram> planted = MakePlantedProgram(c.symbols, options);
  EXPECT_TRUE(planted.ok()) << planted.status().ToString();
  c.program = std::move(planted->program);

  const GraphShape shapes[] = {GraphShape::kChain, GraphShape::kCycle,
                               GraphShape::kBinaryTree, GraphShape::kRandom};
  for (std::size_t i = 0; i < options.num_extensional; ++i) {
    PredicateId pred =
        c.symbols->LookupPredicate("e" + std::to_string(i)).value();
    GraphOptions graph;
    graph.shape = shapes[(seed + i) % 4];
    graph.num_nodes = 5 + (seed + i) % 4;
    graph.num_edges = 7 + (seed + 2 * i) % 8;
    graph.seed = seed * 17 + i;
    AddGraphFacts(graph, pred, &c.edb);
  }
  return c;
}

class AnalyzerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerFuzzTest, AnalyzerCleanProgramsEvaluateConsistently) {
  GeneratedCase c = MakeCase(GetParam());

  AnalyzerOptions options;
  options.budget = 0;  // unlimited: verdicts must be exact, not truncated
  AnalysisResult analysis = Analyze(c.program, options);
  ASSERT_FALSE(analysis.HasErrors())
      << "generator emitted a program the analyzer rejects, seed "
      << GetParam() << "\n"
      << DiagnosticsToText(analysis.diagnostics);

  Database reference = c.edb;
  ASSERT_TRUE(EvaluateNaive(c.program, &reference).ok());

  Database seminaive = c.edb;
  ASSERT_TRUE(EvaluateSemiNaive(c.program, &seminaive).ok());
  EXPECT_EQ(seminaive, reference)
      << "semi-naive diverges on analyzer-clean seed " << GetParam();

  Database parallel = c.edb;
  ASSERT_TRUE(EvaluateSemiNaiveParallel(c.program, &parallel, 2).ok());
  EXPECT_EQ(parallel, reference)
      << "parallel x2 diverges on analyzer-clean seed " << GetParam();
}

TEST_P(AnalyzerFuzzTest, JoinOrderHintsNeverChangeTheFixpoint) {
  GeneratedCase c = MakeCase(GetParam());

  Database reference = c.edb;
  Result<EvalStats> plain = EvaluateSemiNaive(c.program, &reference);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  JoinOrderHints hints = StaticJoinHints(c.program);
  SetJoinOrderHints(&hints);
  Database hinted = c.edb;
  Result<EvalStats> stats = EvaluateSemiNaive(c.program, &hinted);
  SetJoinOrderHints(nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(hinted, reference)
      << "hints changed the fixpoint on seed " << GetParam();
  // A join order changes the work done, never the set of complete body
  // matches: substitutions must be identical.
  EXPECT_EQ(stats->match.substitutions, plain->match.substitutions)
      << "hints changed the substitution count on seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace datalog
