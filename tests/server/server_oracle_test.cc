// Snapshot-isolation differential oracle for the Datalog server.
//
// For every QUERY response (epoch E, body B) observed by any client under a
// randomized interleaved schedule, the oracle fetches epoch E's base facts
// via DUMPBASE (served from the same pin, so guaranteed to be the same
// epoch), re-evaluates that base from scratch offline with a fresh
// SymbolTable, and requires the offline answers to be bit-identical to B.
// Any torn read, index race, or cross-epoch leak shows up as a mismatch.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "eval/stratified.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "server/snapshot_query.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

constexpr char kProgram[] =
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n";
constexpr char kBase[] = "edge(0, 1). edge(1, 2).";

/// Deterministic 64-bit LCG so every seed replays the same schedule.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  std::uint64_t Below(std::uint64_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

std::string OracleSocketPath(int seed) {
  return ::testing::TempDir() + "dlorc_" + std::to_string(::getpid()) + "_" +
         std::to_string(seed) + ".sock";
}

/// From-scratch evaluation of `base_text`, answering `query_text` the same
/// way the server does. A fresh SymbolTable per call keeps the oracle
/// independent of any interning the live server performed.
std::string OfflineAnswers(const std::string& base_text,
                           const std::string& query_text) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, kProgram);
  Database db = ParseDatabaseOrDie(symbols, base_text);
  Result<EvalStats> eval = EvaluateStratified(program, &db);
  EXPECT_TRUE(eval.ok()) << eval.status().ToString();
  Parser parser(symbols);
  Result<Atom> pattern = parser.ParseQuery("?- " + query_text + ".");
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  if (!pattern.ok()) return "<parse error>";
  Result<std::vector<Tuple>> answers = QuerySnapshot(db, *pattern);
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  if (!answers.ok()) return "<query error>";
  return RenderAnswers(pattern->predicate(), *answers, *symbols);
}

/// One client thread's share of a schedule: a random mix of inserts,
/// retracts, commits, and oracle-checked queries over a small value domain.
void RunClientSchedule(const std::string& socket_path, std::uint64_t seed,
                       int num_ops, int* queries_checked) {
  Result<DatalogClient> client = DatalogClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Lcg rng(seed);
  for (int i = 0; i < num_ops; ++i) {
    const std::uint64_t roll = rng.Below(10);
    if (roll < 3) {  // insert a random edge
      const std::string fact = "edge(" + std::to_string(rng.Below(8)) + ", " +
                               std::to_string(rng.Below(8)) + ").";
      Result<Reply> r = client->Insert(fact);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE((*r).ok) << (*r).body;
    } else if (roll < 5) {  // retract a random (possibly absent) edge
      const std::string fact = "edge(" + std::to_string(rng.Below(8)) + ", " +
                               std::to_string(rng.Below(8)) + ").";
      Result<Reply> r = client->Retract(fact);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE((*r).ok) << (*r).body;
    } else if (roll < 7) {  // commit whatever is buffered (maybe nothing)
      Result<Reply> r = client->Commit();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE((*r).ok) << (*r).body;
    } else {  // query, then cross-check against the offline oracle
      std::string query;
      if (rng.Below(2) == 0) {
        query = "path(" + std::to_string(rng.Below(8)) + ", x)";
      } else {
        query = "path(x, y)";
      }
      Result<Reply> answer = client->Query(query);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      ASSERT_TRUE((*answer).ok) << (*answer).body;
      Result<Reply> base = client->DumpBase();
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      ASSERT_TRUE((*base).ok) << (*base).body;
      // Both requests are served from the connection's pin: same epoch.
      ASSERT_EQ((*answer).epoch, (*base).epoch);
      const std::string expected = OfflineAnswers((*base).body, query);
      ASSERT_EQ((*answer).body, expected)
          << "snapshot-isolation violation at epoch " << (*answer).epoch
          << " for query " << query << "\nbase:\n"
          << (*base).body;
      ++*queries_checked;
    }
  }
}

TEST(ServerOracleTest, RandomSchedulesMatchOfflineEvaluationAcrossSeeds) {
  constexpr int kSeeds = 50;
  constexpr std::size_t kWorkerChoices[] = {1, 2, 4};
  int total_queries_checked = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    auto symbols = MakeSymbols();
    Program program = ParseProgramOrDie(symbols, kProgram);
    Database db = ParseDatabaseOrDie(symbols, kBase);
    ServerOptions options;
    options.socket_path = OracleSocketPath(seed);
    options.num_workers = kWorkerChoices[seed % 3];
    Result<std::unique_ptr<DatalogServer>> server =
        DatalogServer::Start(std::move(program), std::move(db), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    const int num_clients = 2 + seed % 2;  // 2 or 3 parallel clients
    std::vector<std::thread> threads;
    std::vector<int> checked(static_cast<std::size_t>(num_clients), 0);
    for (int c = 0; c < num_clients; ++c) {
      const std::uint64_t client_seed =
          static_cast<std::uint64_t>(seed) * 97 + static_cast<std::uint64_t>(c);
      threads.emplace_back([&options, client_seed, &checked, c] {
        RunClientSchedule(options.socket_path, client_seed, /*num_ops=*/15,
                          &checked[static_cast<std::size_t>(c)]);
      });
    }
    for (std::thread& t : threads) t.join();
    for (int c : checked) total_queries_checked += c;
    (*server)->Stop();
    ASSERT_TRUE((*server)->stopped());
  }
  // The schedules are deterministic, so the oracle exercised a fixed,
  // nonzero number of checked queries. Guard against a refactor silently
  // draining the query arm of the schedule.
  EXPECT_GT(total_queries_checked, kSeeds);
}

TEST(ServerOracleTest, SequentialCommitsAlwaysReadTheirOwnWrites) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, kProgram);
  Database db = ParseDatabaseOrDie(symbols, kBase);
  ServerOptions options;
  options.socket_path = OracleSocketPath(9999);
  options.num_workers = 2;
  Result<std::unique_ptr<DatalogServer>> server =
      DatalogServer::Start(std::move(program), std::move(db), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<DatalogClient> client = DatalogClient::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  Lcg rng(42);
  for (int i = 0; i < 20; ++i) {
    const std::string fact = "edge(" + std::to_string(rng.Below(6)) + ", " +
                             std::to_string(rng.Below(6)) + ").";
    ASSERT_TRUE(client->Insert(fact).ok());
    Result<Reply> committed = client->Commit();
    ASSERT_TRUE(committed.ok());
    ASSERT_TRUE((*committed).ok) << (*committed).body;
    Result<Reply> answer = client->Query("path(x, y)");
    ASSERT_TRUE(answer.ok());
    Result<Reply> base = client->DumpBase();
    ASSERT_TRUE(base.ok());
    ASSERT_EQ((*answer).epoch, (*base).epoch);
    ASSERT_EQ((*answer).body, OfflineAnswers((*base).body, "path(x, y)"));
  }
  (*server)->Stop();
}

}  // namespace
}  // namespace datalog
