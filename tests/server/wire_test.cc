#include "server/wire.h"

#include <cstdint>
#include <string>

#include "gtest/gtest.h"

namespace datalog {
namespace {

TEST(WireTest, EncodeFrameLayout) {
  const std::string frame = EncodeFrame(0x02, "abc");
  ASSERT_EQ(frame.size(), 8u);  // 4 length + 1 tag + 3 payload
  // length = tag + payload = 4, little-endian
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 4u);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[4]), 0x02u);
  EXPECT_EQ(frame.substr(5), "abc");
}

TEST(WireTest, RoundTripSingleFrame) {
  const std::string frame = EncodeFrame(7, "hello world");
  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  std::uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 7u);
  EXPECT_EQ(payload, "hello world");
  EXPECT_FALSE(reader.Next(&tag, &payload));
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, EmptyPayloadRoundTrips) {
  const std::string frame = EncodeFrame(3, "");
  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  std::uint8_t tag = 0;
  std::string payload = "stale";
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 3u);
  EXPECT_EQ(payload, "");
}

TEST(WireTest, ReassemblesFrameFedOneByteAtATime) {
  const std::string frame = EncodeFrame(5, "split across many reads");
  FrameReader reader;
  std::uint8_t tag = 0;
  std::string payload;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Append(&frame[i], 1);
    EXPECT_FALSE(reader.Next(&tag, &payload)) << "at byte " << i;
  }
  reader.Append(&frame[frame.size() - 1], 1);
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 5u);
  EXPECT_EQ(payload, "split across many reads");
}

TEST(WireTest, DecodesMultipleFramesFromOneAppend) {
  std::string bytes = EncodeFrame(1, "first");
  bytes += EncodeFrame(2, "second");
  bytes += EncodeFrame(3, "third");
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  std::uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 1u);
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 2u);
  EXPECT_EQ(payload, "second");
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 3u);
  EXPECT_EQ(payload, "third");
  EXPECT_FALSE(reader.Next(&tag, &payload));
}

TEST(WireTest, ZeroLengthFrameIsAPermanentError) {
  FrameReader reader;
  const char zeros[4] = {0, 0, 0, 0};
  reader.Append(zeros, sizeof(zeros));
  std::uint8_t tag = 0;
  std::string payload;
  EXPECT_FALSE(reader.Next(&tag, &payload));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.error().empty());
  // Even appending a valid frame afterwards cannot clear the error.
  const std::string frame = EncodeFrame(1, "x");
  reader.Append(frame.data(), frame.size());
  EXPECT_FALSE(reader.Next(&tag, &payload));
  EXPECT_FALSE(reader.ok());
}

TEST(WireTest, OversizedFrameIsRejectedBeforeAllocation) {
  // A length prefix just above the cap must error out immediately, without
  // waiting for (or buffering) 16 MiB of payload.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  char header[5];
  header[0] = static_cast<char>(huge & 0xff);
  header[1] = static_cast<char>((huge >> 8) & 0xff);
  header[2] = static_cast<char>((huge >> 16) & 0xff);
  header[3] = static_cast<char>((huge >> 24) & 0xff);
  header[4] = 1;  // tag
  FrameReader reader;
  reader.Append(header, sizeof(header));
  std::uint8_t tag = 0;
  std::string payload;
  EXPECT_FALSE(reader.Next(&tag, &payload));
  EXPECT_FALSE(reader.ok());
}

TEST(WireTest, MaxSizeFrameIsAccepted) {
  const std::string payload_in(kMaxFrameBytes - 1, 'x');
  const std::string frame = EncodeFrame(9, payload_in);
  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  std::uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(tag, 9u);
  EXPECT_EQ(payload.size(), payload_in.size());
}

TEST(WireTest, U64RoundTrips) {
  for (std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x0123456789abcdef},
        ~std::uint64_t{0}}) {
    std::string bytes;
    AppendU64(&bytes, value);
    ASSERT_EQ(bytes.size(), 8u);
    EXPECT_EQ(ReadU64(bytes), value);
  }
}

TEST(WireTest, BufferedReportsUnconsumedBytes) {
  const std::string frame = EncodeFrame(1, "abcdef");
  FrameReader reader;
  reader.Append(frame.data(), 3);  // partial header
  EXPECT_EQ(reader.buffered(), 3u);
  std::uint8_t tag = 0;
  std::string payload;
  EXPECT_FALSE(reader.Next(&tag, &payload));
  reader.Append(frame.data() + 3, frame.size() - 3);
  ASSERT_TRUE(reader.Next(&tag, &payload));
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace datalog
