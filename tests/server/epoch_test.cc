#include "server/epoch.h"

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/snapshot_query.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseQueryOrDie;

TEST(EpochManagerTest, StartsAtEpochZero) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2).");
  EpochManager epochs(db, db, CommitStats{});
  EXPECT_EQ(epochs.head_id(), 0u);
  EXPECT_EQ(epochs.epochs_published(), 1u);
  EXPECT_EQ(epochs.LiveEpochs(), 1u);
  EXPECT_EQ(epochs.head()->db.NumFacts(), 1u);
}

TEST(EpochManagerTest, PublishAdvancesTheHead) {
  auto symbols = MakeSymbols();
  Database db0 = ParseDatabaseOrDie(symbols, "e(1, 2).");
  EpochManager epochs(db0, db0, CommitStats{});
  Database db1 = ParseDatabaseOrDie(symbols, "e(1, 2). e(2, 3).");
  auto snap = epochs.Publish(db1, db1, CommitStats{});
  EXPECT_EQ(snap->id, 1u);
  EXPECT_EQ(epochs.head_id(), 1u);
  EXPECT_EQ(epochs.head()->db.NumFacts(), 2u);
  EXPECT_EQ(epochs.epochs_published(), 2u);
}

TEST(EpochManagerTest, PinnedEpochSurvivesNewerCommits) {
  auto symbols = MakeSymbols();
  Database db0 = ParseDatabaseOrDie(symbols, "e(1, 2).");
  EpochManager epochs(db0, db0, CommitStats{});
  // A reader pins epoch 0...
  std::shared_ptr<const EpochSnapshot> pinned = epochs.head();
  // ...while three newer epochs are published.
  for (int i = 0; i < 3; ++i) {
    Database next = ParseDatabaseOrDie(symbols, "e(9, " + std::to_string(i) +
                                                    ").");
    epochs.Publish(next, next, CommitStats{});
  }
  EXPECT_EQ(epochs.head_id(), 3u);
  // The pinned snapshot still holds its original state bit-for-bit.
  EXPECT_EQ(pinned->id, 0u);
  EXPECT_EQ(pinned->db.NumFacts(), 1u);
  EXPECT_TRUE(pinned->db.Contains(
      pinned->db.symbols()->InternPredicate("e", 2).value(),
      Tuple{Value::Int(1), Value::Int(2)}));
  // Epochs 1 and 2 had no pins and were reclaimed; 0 (pinned) and 3 (head)
  // remain.
  EXPECT_EQ(epochs.LiveEpochs(), 2u);
  pinned.reset();
  EXPECT_EQ(epochs.LiveEpochs(), 1u);
}

TEST(EpochManagerTest, DroppingTheLastPinReclaimsTheEpoch) {
  auto symbols = MakeSymbols();
  Database db0 = ParseDatabaseOrDie(symbols, "e(1, 1).");
  EpochManager epochs(db0, db0, CommitStats{});
  std::weak_ptr<const EpochSnapshot> observer;
  {
    std::shared_ptr<const EpochSnapshot> pin = epochs.head();
    observer = pin;
    Database db1 = ParseDatabaseOrDie(symbols, "e(2, 2).");
    epochs.Publish(db1, db1, CommitStats{});
    EXPECT_FALSE(observer.expired());  // pin keeps epoch 0 alive
  }
  EXPECT_TRUE(observer.expired());  // last pin gone -> reclaimed
  EXPECT_EQ(epochs.LiveEpochs(), 1u);
}

TEST(EpochManagerTest, PreparedSnapshotAnswersQueriesWithoutIndexBuilds) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2). e(1, 3). e(2, 3).");
  EpochManager epochs(db, db, CommitStats{});
  auto snap = epochs.head();
  // Bound first column -> prebuilt index probe.
  Atom q1 = ParseQueryOrDie(symbols, "?- e(1, x).");
  Result<std::vector<Tuple>> r1 = QuerySnapshot(snap->db, q1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 2u);
  // Bound second column -> that index is prebuilt too.
  Atom q2 = ParseQueryOrDie(symbols, "?- e(x, 3).");
  Result<std::vector<Tuple>> r2 = QuerySnapshot(snap->db, q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);
  // All-variable pattern -> full scan.
  Atom q3 = ParseQueryOrDie(symbols, "?- e(x, y).");
  Result<std::vector<Tuple>> r3 = QuerySnapshot(snap->db, q3);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 3u);
}

TEST(EpochManagerTest, ConcurrentReadersOnOneSnapshotAgree) {
  auto symbols = MakeSymbols();
  std::string facts;
  for (int i = 0; i < 64; ++i) {
    facts += "e(" + std::to_string(i % 8) + ", " + std::to_string(i) + "). ";
  }
  Database db = ParseDatabaseOrDie(symbols, facts);
  EpochManager epochs(db, db, CommitStats{});
  auto snap = epochs.head();
  Atom query = ParseQueryOrDie(symbols, "?- e(3, x).");
  std::vector<std::thread> readers;
  std::vector<std::size_t> counts(8, 0);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    readers.emplace_back([&snap, &query, &counts, t] {
      for (int i = 0; i < 50; ++i) {
        Result<std::vector<Tuple>> r = QuerySnapshot(snap->db, query);
        ASSERT_TRUE(r.ok());
        counts[t] = r->size();
      }
    });
  }
  for (std::thread& t : readers) t.join();
  for (std::size_t c : counts) EXPECT_EQ(c, 8u);
}

TEST(EpochManagerTest, ConcurrentPinsAndPublishesAreSafe) {
  auto symbols = MakeSymbols();
  Database db0 = ParseDatabaseOrDie(symbols, "e(0, 0).");
  auto epochs = std::make_unique<EpochManager>(db0, db0, CommitStats{});
  std::vector<Database> versions;
  for (int i = 1; i <= 20; ++i) {
    versions.push_back(
        ParseDatabaseOrDie(symbols, "e(" + std::to_string(i) + ", 0)."));
  }
  std::thread writer([&epochs, &versions] {
    for (const Database& v : versions) {
      epochs->Publish(v, v, CommitStats{});
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&epochs] {
      for (int i = 0; i < 200; ++i) {
        auto snap = epochs->head();
        // Snapshot invariants hold no matter when the pin happened.
        ASSERT_EQ(snap->db.NumFacts(), 1u);
        ASSERT_LE(snap->id, 20u);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(epochs->head_id(), 20u);
  EXPECT_EQ(epochs->epochs_published(), 21u);
}

}  // namespace
}  // namespace datalog
