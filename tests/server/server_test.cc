// In-process tests of the Datalog server: wire round trips through a real
// AF_UNIX socket, snapshot pinning, commit/publish, error handling, and
// concurrent clients. The differential snapshot-isolation oracle lives in
// server_oracle_test.cc.

#include "server/server.h"

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

std::string SocketPath(const std::string& name) {
  return ::testing::TempDir() + "dlsrv_" + std::to_string(::getpid()) + "_" +
         name + ".sock";
}

/// Starts a transitive-closure server (path over edge) on a fresh socket.
std::unique_ptr<DatalogServer> StartPathServer(const std::string& name,
                                               std::size_t workers,
                                               const std::string& edb =
                                                   "edge(1, 2). edge(2, 3).") {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols,
                                      "path(x, y) :- edge(x, y).\n"
                                      "path(x, z) :- path(x, y), edge(y, z).\n");
  Database db = ParseDatabaseOrDie(symbols, edb);
  ServerOptions options;
  options.socket_path = SocketPath(name);
  options.num_workers = workers;
  Result<std::unique_ptr<DatalogServer>> server =
      DatalogServer::Start(std::move(program), std::move(db), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(server).value() : nullptr;
}

Reply CallOrDie(DatalogClient* client, Opcode op, std::string_view payload) {
  Result<Reply> reply = client->Call(op, payload);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  return reply.ok() ? std::move(reply).value() : Reply{};
}

TEST(ServerTest, PingReportsHeadEpoch) {
  auto server = StartPathServer("ping", 2);
  ASSERT_NE(server, nullptr);
  Result<DatalogClient> client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Reply reply = CallOrDie(&*client, Opcode::kPing, "");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.epoch, 0u);
  EXPECT_EQ(reply.body, "pong");
  server->Stop();
}

TEST(ServerTest, QueryAnswersAgainstInitialMaterialization) {
  auto server = StartPathServer("query", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply reply = CallOrDie(&*client, Opcode::kQuery, "path(1, x)");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.epoch, 0u);
  EXPECT_EQ(reply.body, "path(1, 2).\npath(1, 3).\n");
  // Queries accept the `?- atom.` form too, identically.
  Reply reply2 = CallOrDie(&*client, Opcode::kQuery, "?- path(1, x).");
  EXPECT_EQ(reply2.body, reply.body);
  server->Stop();
}

TEST(ServerTest, CommitPublishesANewEpochVisibleToTheCommitter) {
  auto server = StartPathServer("commit", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply buffered = CallOrDie(&*client, Opcode::kInsert, "edge(3, 4).");
  EXPECT_TRUE(buffered.ok);
  Reply committed = CallOrDie(&*client, Opcode::kCommit, "");
  EXPECT_TRUE(committed.ok);
  EXPECT_EQ(committed.epoch, 1u);
  Reply reply = CallOrDie(&*client, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(reply.epoch, 1u);
  EXPECT_EQ(reply.body, "path(1, 2).\npath(1, 3).\npath(1, 4).\n");
  EXPECT_EQ(server->head_epoch(), 1u);
  server->Stop();
}

TEST(ServerTest, ReaderKeepsItsSnapshotWhileWritersCommit) {
  auto server = StartPathServer("isolation", 2);
  ASSERT_NE(server, nullptr);
  auto reader = DatalogClient::Connect(server->socket_path());
  auto writer = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(writer.ok());
  // Reader pins epoch 0 with its first query.
  Reply before = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(before.epoch, 0u);
  // Writer commits a change; head moves to epoch 1.
  CallOrDie(&*writer, Opcode::kInsert, "edge(3, 4).");
  Reply committed = CallOrDie(&*writer, Opcode::kCommit, "");
  EXPECT_EQ(committed.epoch, 1u);
  // The reader still sees epoch 0, bit-identically.
  Reply after = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(after.epoch, 0u);
  EXPECT_EQ(after.body, before.body);
  // An empty commit re-pins the reader to the newest epoch.
  Reply repin = CallOrDie(&*reader, Opcode::kCommit, "");
  EXPECT_EQ(repin.epoch, 1u);
  Reply fresh = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(fresh.epoch, 1u);
  EXPECT_EQ(fresh.body, "path(1, 2).\npath(1, 3).\npath(1, 4).\n");
  server->Stop();
}

TEST(ServerTest, EpochLifetimeReaderPinsAcrossThreeCommitsAndReclaim) {
  auto server = StartPathServer("lifetime", 2);
  ASSERT_NE(server, nullptr);
  auto reader = DatalogClient::Connect(server->socket_path());
  auto writer = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(writer.ok());
  Reply pin = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(pin.epoch, 0u);
  const std::string pinned_body = pin.body;
  // Three newer epochs publish while the reader holds epoch 0.
  for (int i = 4; i <= 6; ++i) {
    CallOrDie(&*writer, Opcode::kInsert,
              "edge(" + std::to_string(i - 1) + ", " + std::to_string(i) +
                  ").");
    Reply committed = CallOrDie(&*writer, Opcode::kCommit, "");
    EXPECT_EQ(committed.epoch, static_cast<std::uint64_t>(i - 3));
  }
  EXPECT_EQ(server->head_epoch(), 3u);
  // Reclamation: epoch 0 (reader pin), epoch 3 (head), and possibly the
  // writer's most recent pin remain -- the middle epochs are gone.
  EXPECT_LE(server->live_epochs(), 3u);
  EXPECT_GE(server->live_epochs(), 2u);
  // The reader's snapshot is untouched by three rounds of maintenance.
  for (int i = 0; i < 10; ++i) {
    Reply again = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
    EXPECT_EQ(again.epoch, 0u);
    EXPECT_EQ(again.body, pinned_body);
  }
  // Dropping the pin (re-pin to head) lets epoch 0 be reclaimed.
  CallOrDie(&*reader, Opcode::kCommit, "");
  writer->Close();
  Reply head_view = CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");
  EXPECT_EQ(head_view.epoch, 3u);
  EXPECT_EQ(head_view.body,
            "path(1, 2).\npath(1, 3).\npath(1, 4).\npath(1, 5).\npath(1, "
            "6).\n");
  server->Stop();
}

TEST(ServerTest, RetractionsNetAgainstInsertsLastOpWins) {
  auto server = StartPathServer("netting", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  // Insert then retract the same fact in one transaction: net no-op.
  CallOrDie(&*client, Opcode::kInsert, "edge(7, 8).");
  CallOrDie(&*client, Opcode::kRetract, "edge(7, 8).");
  // Retract then re-insert an existing fact: net insert (already present).
  CallOrDie(&*client, Opcode::kRetract, "edge(1, 2).");
  CallOrDie(&*client, Opcode::kInsert, "edge(1, 2).");
  Reply committed = CallOrDie(&*client, Opcode::kCommit, "");
  EXPECT_TRUE(committed.ok) << committed.body;
  Reply reply = CallOrDie(&*client, Opcode::kQuery, "path(x, y)");
  EXPECT_EQ(reply.body,
            "path(1, 2).\npath(1, 3).\npath(2, 3).\n");
  server->Stop();
}

TEST(ServerTest, MalformedQueryReturnsErrorAndConnectionSurvives) {
  auto server = StartPathServer("badquery", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply bad = CallOrDie(&*client, Opcode::kQuery, "path(1, ");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.body.empty());
  // Arity mismatch is a server-side error, not a crash.
  Reply arity = CallOrDie(&*client, Opcode::kQuery, "path(1, 2, 3)");
  EXPECT_FALSE(arity.ok);
  // The connection keeps working.
  Reply good = CallOrDie(&*client, Opcode::kQuery, "path(1, x)");
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.body, "path(1, 2).\npath(1, 3).\n");
  server->Stop();
}

TEST(ServerTest, NonGroundInsertIsRejectedAtBufferTime) {
  auto server = StartPathServer("nonground", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply bad = CallOrDie(&*client, Opcode::kInsert, "edge(1, x).");
  EXPECT_FALSE(bad.ok);
  // Nothing was buffered; the commit is a no-op that re-pins.
  Reply committed = CallOrDie(&*client, Opcode::kCommit, "");
  EXPECT_TRUE(committed.ok);
  EXPECT_EQ(committed.epoch, 0u);
  server->Stop();
}

TEST(ServerTest, QueryOnUnknownPredicateReturnsNoAnswers) {
  auto server = StartPathServer("unknown", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply reply = CallOrDie(&*client, Opcode::kQuery, "nosuch(x, y)");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.body, "");
  server->Stop();
}

TEST(ServerTest, StatsCountsRequestsAndEpochs) {
  auto server = StartPathServer("stats", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  CallOrDie(&*client, Opcode::kPing, "");
  CallOrDie(&*client, Opcode::kQuery, "path(1, x)");
  CallOrDie(&*client, Opcode::kInsert, "edge(3, 4).");
  CallOrDie(&*client, Opcode::kCommit, "");
  Reply stats = CallOrDie(&*client, Opcode::kStats, "");
  EXPECT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("\"pings\": 1"), std::string::npos) << stats.body;
  EXPECT_NE(stats.body.find("\"queries\": 1"), std::string::npos);
  EXPECT_NE(stats.body.find("\"commits\": 1"), std::string::npos);
  EXPECT_NE(stats.body.find("\"head_epoch\": 1"), std::string::npos);
  ServerStats s = server->Stats();
  EXPECT_EQ(s.pings, 1u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.connections_accepted, 1u);
  server->Stop();
}

TEST(ServerTest, DumpBaseReturnsThePinnedEpochsBase) {
  auto server = StartPathServer("base", 2);
  ASSERT_NE(server, nullptr);
  auto reader = DatalogClient::Connect(server->socket_path());
  auto writer = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(writer.ok());
  CallOrDie(&*reader, Opcode::kQuery, "path(1, x)");  // pin epoch 0
  CallOrDie(&*writer, Opcode::kInsert, "edge(9, 9).");
  CallOrDie(&*writer, Opcode::kCommit, "");
  Reply base = CallOrDie(&*reader, Opcode::kDumpBase, "");
  EXPECT_EQ(base.epoch, 0u);
  EXPECT_EQ(base.body, "edge(1, 2).\nedge(2, 3).\n");
  Reply writer_base = CallOrDie(&*writer, Opcode::kDumpBase, "");
  EXPECT_EQ(writer_base.epoch, 1u);
  EXPECT_NE(writer_base.body.find("edge(9, 9).\n"), std::string::npos);
  server->Stop();
}

TEST(ServerTest, ShutdownFrameStopsTheServer) {
  auto server = StartPathServer("shutdown", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply bye = CallOrDie(&*client, Opcode::kShutdown, "");
  EXPECT_TRUE(bye.ok);
  EXPECT_EQ(bye.body, "bye");
  server->WaitUntilStopped();
  EXPECT_TRUE(server->stopped());
  server->Stop();
  // The socket file is gone; new connections fail.
  Result<DatalogClient> late = DatalogClient::Connect(server->socket_path());
  EXPECT_FALSE(late.ok());
}

TEST(ServerTest, StopWithConnectedClientsIsClean) {
  auto server = StartPathServer("stopbusy", 2);
  ASSERT_NE(server, nullptr);
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  CallOrDie(&*client, Opcode::kQuery, "path(1, x)");
  server->Stop();  // connection dropped server-side; no hang, no crash
  Result<Reply> reply = client->Call(Opcode::kPing, "");
  EXPECT_FALSE(reply.ok());  // server is gone
}

TEST(ServerTest, ManyConcurrentClientsMixedReadWrite) {
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto server =
        StartPathServer("mixed_w" + std::to_string(workers), workers);
    ASSERT_NE(server, nullptr);
    constexpr int kClients = 6;
    constexpr int kOpsPerClient = 12;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&server, c] {
        auto client = DatalogClient::Connect(server->socket_path());
        ASSERT_TRUE(client.ok());
        for (int i = 0; i < kOpsPerClient; ++i) {
          if (c % 2 == 0) {  // writer: grow a private chain, then commit
            const int node = 100 * (c + 1) + i;
            Result<Reply> r = client->Insert(
                "edge(" + std::to_string(node) + ", " +
                std::to_string(node + 1) + ").");
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            ASSERT_TRUE((*r).ok) << (*r).body;
            r = client->Commit();
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            ASSERT_TRUE((*r).ok) << (*r).body;
          } else {  // reader: pinned-snapshot queries stay self-consistent
            Result<Reply> r = client->Query("path(1, x)");
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            ASSERT_TRUE((*r).ok) << (*r).body;
            ASSERT_EQ((*r).body, "path(1, 2).\npath(1, 3).\n");
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    ServerStats stats = server->Stats();
    EXPECT_EQ(stats.commits, 3u * kOpsPerClient);
    EXPECT_EQ(stats.head_epoch, 3u * kOpsPerClient);
    EXPECT_EQ(stats.connections_accepted, kClients);
    server->Stop();
  }
}

TEST(ServerTest, PipelinedFramesAreAnsweredInOrder) {
  auto server = StartPathServer("pipeline", 2);
  ASSERT_NE(server, nullptr);
  // Hand-roll a client that writes three frames back to back before
  // reading any response; the server must answer them FIFO.
  auto client = DatalogClient::Connect(server->socket_path());
  ASSERT_TRUE(client.ok());
  Reply a = CallOrDie(&*client, Opcode::kPing, "");
  Reply b = CallOrDie(&*client, Opcode::kQuery, "path(2, x)");
  Reply c = CallOrDie(&*client, Opcode::kPing, "");
  EXPECT_EQ(a.body, "pong");
  EXPECT_EQ(b.body, "path(2, 3).\n");
  EXPECT_EQ(c.body, "pong");
  server->Stop();
}

TEST(ServerTest, SocketPathTooLongFailsToStart) {
  auto symbols = MakeSymbols();
  Program program = ParseProgramOrDie(symbols, "p(x) :- e(x).\n");
  Database db = ParseDatabaseOrDie(symbols, "e(1).");
  ServerOptions options;
  options.socket_path = "/tmp/" + std::string(200, 'x') + ".sock";
  Result<std::unique_ptr<DatalogServer>> server =
      DatalogServer::Start(std::move(program), std::move(db), options);
  EXPECT_FALSE(server.ok());
}

}  // namespace
}  // namespace datalog
