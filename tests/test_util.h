#ifndef DATALOG_TESTS_TEST_UTIL_H_
#define DATALOG_TESTS_TEST_UTIL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "ast/parser.h"
#include "ast/program.h"
#include "ast/tgd.h"
#include "eval/database.h"
#include "gtest/gtest.h"

namespace datalog {
namespace testing {

inline std::shared_ptr<SymbolTable> MakeSymbols() {
  return std::make_shared<SymbolTable>();
}

/// Parses a program, failing the test on parse errors.
inline Program ParseProgramOrDie(std::shared_ptr<SymbolTable> symbols,
                                 std::string_view text) {
  Parser parser(std::move(symbols));
  Result<Program> result = parser.ParseProgram(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nwhile parsing:\n"
                           << text;
  return result.ok() ? std::move(result).value() : Program();
}

inline Rule ParseRuleOrDie(std::shared_ptr<SymbolTable> symbols,
                           std::string_view text) {
  Parser parser(std::move(symbols));
  Result<Rule> result = parser.ParseRule(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Rule();
}

inline Tgd ParseTgdOrDie(std::shared_ptr<SymbolTable> symbols,
                         std::string_view text) {
  Parser parser(std::move(symbols));
  Result<Tgd> result = parser.ParseTgd(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Tgd();
}

inline std::vector<Tgd> ParseTgdsOrDie(std::shared_ptr<SymbolTable> symbols,
                                       std::string_view text) {
  Parser parser(std::move(symbols));
  Result<std::vector<Tgd>> result = parser.ParseTgds(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Tgd>();
}

inline Database ParseDatabaseOrDie(std::shared_ptr<SymbolTable> symbols,
                                   std::string_view text) {
  Result<Database> result = ParseDatabase(symbols, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Database(symbols);
}

inline Atom ParseQueryOrDie(std::shared_ptr<SymbolTable> symbols,
                            std::string_view text) {
  Parser parser(std::move(symbols));
  Result<Atom> result = parser.ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Atom();
}

}  // namespace testing
}  // namespace datalog

#endif  // DATALOG_TESTS_TEST_UTIL_H_
