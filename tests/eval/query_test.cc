#include "eval/query.h"

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

class QueryMethodTest : public ::testing::TestWithParam<EvalMethod> {};

TEST_P(QueryMethodTest, SameGirlfriendAnswersAcrossMethods) {
  // Same-generation: a classic bound-query workload.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "up(1, 11). up(2, 12). up(11, 21)."
                                    "up(12, 21). flat(21, 21). flat(11, 12)."
                                    "down(21, 13). down(13, 3). down(12, 4).");
  Atom query = ParseQueryOrDie(symbols, "?- sg(1, y).");
  Result<std::vector<Tuple>> r = AnswerQuery(p, edb, query, GetParam());
  ASSERT_TRUE(r.ok());
  std::set<Tuple> answers(r->begin(), r->end());

  // Reference: naive evaluation.
  Result<std::vector<Tuple>> ref =
      AnswerQuery(p, edb, query, EvalMethod::kNaive);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(answers, std::set<Tuple>(ref->begin(), ref->end()));
  EXPECT_FALSE(answers.empty());
}

INSTANTIATE_TEST_SUITE_P(Methods, QueryMethodTest,
                         ::testing::Values(EvalMethod::kNaive,
                                           EvalMethod::kSemiNaive,
                                           EvalMethod::kMagicSemiNaive));

TEST(QueryTest, InputDatabaseNotModified) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  ASSERT_TRUE(AnswerQuery(p, edb, query, EvalMethod::kSemiNaive).ok());
  EXPECT_EQ(edb.NumFacts(), 2u);
}

TEST(QueryTest, RepeatedVariableInQuery) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 1). a(2, 3).");
  // g(x, x): the nodes on cycles.
  Atom query = ParseQueryOrDie(symbols, "?- g(x, x).");
  Result<std::vector<Tuple>> r =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  ASSERT_TRUE(r.ok());
  std::set<Tuple> answers(r->begin(), r->end());
  EXPECT_EQ(answers.size(), 2u);  // g(1,1) and g(2,2)
}

TEST(QueryTest, StratifiedNegationThroughSemiNaiveMethod) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "reach(y) :- source(x), a(x, y).\n"
      "reach(y) :- reach(x), a(x, y).\n"
      "unreached(x) :- node(x), not reach(x).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "source(1). a(1, 2). a(3, 4)."
                                    "node(1). node(2). node(3). node(4).");
  Atom query = ParseQueryOrDie(symbols, "?- unreached(x).");
  Result<std::vector<Tuple>> r =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<Tuple> answers(r->begin(), r->end());
  // 1 is the source (not reached FROM anything... reach holds targets:
  // reach = {2}; unreached = {1, 3, 4}).
  EXPECT_EQ(answers, (std::set<Tuple>{{Value::Int(1)},
                                      {Value::Int(3)},
                                      {Value::Int(4)}}));
}

TEST(QueryTest, StatsAccumulate) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database edb(symbols);
  AddGraphFacts({GraphShape::kChain, 32}, a, &edb);
  Atom query = ParseQueryOrDie(symbols, "?- g(0, x).");
  EvalStats stats;
  ASSERT_TRUE(AnswerQuery(p, edb, query, EvalMethod::kSemiNaive, &stats).ok());
  EXPECT_GT(stats.facts_derived, 0u);
  EXPECT_GT(stats.match.substitutions, 0u);
}

}  // namespace
}  // namespace datalog
