#include "eval/rule_matcher.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseRuleOrDie;

std::size_t CountMatches(const Database& db, const std::vector<Atom>& atoms) {
  std::vector<PlannedAtom> planned;
  for (const Atom& a : atoms) planned.push_back({a, AtomSource::kFull});
  std::size_t count = 0;
  MatchAtoms(db, nullptr, planned,
             [&count](const Binding&) {
               ++count;
               return true;
             },
             nullptr);
  return count;
}

TEST(RuleMatcherTest, SingleAtomAllFree) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  EXPECT_EQ(CountMatches(db, {Atom(a, {Term::Variable(x), Term::Variable(y)})}),
            3u);
}

TEST(RuleMatcherTest, ConstantRestriction) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 3). a(2, 3).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId y = symbols->InternVariable("y");
  EXPECT_EQ(CountMatches(db, {Atom(a, {Term::Int(1), Term::Variable(y)})}), 2u);
  EXPECT_EQ(CountMatches(db, {Atom(a, {Term::Int(9), Term::Variable(y)})}), 0u);
}

TEST(RuleMatcherTest, RepeatedVariableWithinAtom) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 1). a(1, 2). a(3, 3).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  // a(x, x) matches only the diagonal tuples.
  EXPECT_EQ(CountMatches(db, {Atom(a, {Term::Variable(x), Term::Variable(x)})}),
            2u);
}

TEST(RuleMatcherTest, JoinAcrossAtoms) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  VariableId z = symbols->InternVariable("z");
  // a(x, y), a(y, z): the two-step paths 1-2-3 and 2-3-4.
  EXPECT_EQ(CountMatches(db, {Atom(a, {Term::Variable(x), Term::Variable(y)}),
                              Atom(a, {Term::Variable(y), Term::Variable(z)})}),
            2u);
}

TEST(RuleMatcherTest, EmptyBodyYieldsOneMatch) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  EXPECT_EQ(CountMatches(db, {}), 1u);
}

TEST(RuleMatcherTest, CallbackCanStopEnumeration) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  std::size_t seen = 0;
  MatchAtoms(db, nullptr,
             {{Atom(a, {Term::Variable(x), Term::Variable(y)}),
               AtomSource::kFull}},
             [&seen](const Binding&) {
               ++seen;
               return false;
             },
             nullptr);
  EXPECT_EQ(seen, 1u);
}

TEST(RuleMatcherTest, ApplyRuleDerivesHeads) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, z).");
  MatchStats stats;
  std::size_t added = ApplyRule(rule, db, &db, &stats);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(stats.substitutions, 2u);
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(2)}));
}

TEST(RuleMatcherTest, ApplyRuleIntoAliasedDatabaseIsNonRecursive) {
  // Applying g(x,z) :- g(x,y), g(y,z) once must not chain into facts
  // derived within the same application.
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3). g(3, 4).");
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- g(x, y), g(y, z).");
  ApplyRule(rule, db, &db, nullptr);
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(3)}));
  EXPECT_TRUE(db.Contains(g, {Value::Int(2), Value::Int(4)}));
  // 1 -> 4 needs two applications.
  EXPECT_FALSE(db.Contains(g, {Value::Int(1), Value::Int(4)}));
}

TEST(RuleMatcherTest, ApplyRuleWithConstantInHead) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  Rule rule = ParseRuleOrDie(symbols, "g(x, 99) :- a(x, y).");
  ApplyRule(rule, db, &db, nullptr);
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(99)}));
}

TEST(RuleMatcherTest, NegatedLiteralFiltersMatches) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1). a(2). b(2).");
  Rule rule = ParseRuleOrDie(symbols, "p(x) :- a(x), not b(x).");
  ApplyRule(rule, db, &db, nullptr);
  PredicateId p = symbols->LookupPredicate("p").value();
  EXPECT_TRUE(db.Contains(p, {Value::Int(1)}));
  EXPECT_FALSE(db.Contains(p, {Value::Int(2)}));
}

TEST(RuleMatcherTest, DeltaRestrictsOnePosition) {
  auto symbols = MakeSymbols();
  Database full = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 3).");
  Database delta(symbols);
  PredicateId g = symbols->LookupPredicate("g").value();
  delta.AddFact(g, {Value::Int(2), Value::Int(3)});
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- g(x, y), g(y, z).");
  Database out(symbols);
  // Position 0 in delta: g(2,3) as first atom needs g(3,z) - none.
  EXPECT_EQ(ApplyRuleWithDelta(rule, full, delta, 0, &out, nullptr), 0u);
  // Position 1 in delta: g(x,2) joined with delta g(2,3): h(1,3).
  EXPECT_EQ(ApplyRuleWithDelta(rule, full, delta, 1, &out, nullptr), 1u);
  PredicateId h = symbols->LookupPredicate("h").value();
  EXPECT_TRUE(out.Contains(h, {Value::Int(1), Value::Int(3)}));
}

TEST(RuleMatcherTest, StatsCountWork) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Rule rule = ParseRuleOrDie(symbols, "g(x, z) :- a(x, y), a(y, z).");
  MatchStats stats;
  ApplyRule(rule, db, &db, &stats);
  EXPECT_EQ(stats.substitutions, 2u);
  EXPECT_GT(stats.index_lookups, 0u);
  EXPECT_GT(stats.tuples_scanned, 0u);
}

}  // namespace
}  // namespace datalog
