// The compiled-plan layer (eval/compiled_rule.h) must be a drop-in
// replacement for the legacy row-at-a-time Matcher: identical fixpoints,
// identical MatchStats row for row on a single application (where both
// sides plan from the same relation sizes), plus the caching behavior
// that is the point of the layer -- join orders persist across rounds and
// replan only on >= 4x cardinality drift or an ablation-knob flip.

#include "eval/compiled_rule.h"

#include <algorithm>
#include <set>
#include <vector>

#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseRuleOrDie;

struct KnobGuard {
  ~KnobGuard() {
    SetGreedyJoinOrdering(true);
    SetIndexLookups(true);
    SetCompiledRulePlans(true);
  }
};

TEST(CompiledRuleTest, CompiledPlansDefaultOn) {
  EXPECT_TRUE(CompiledRulePlansEnabled());
}

/// One ApplyRule call plans from identical sizes on both paths, so every
/// counter -- not just substitutions -- must agree bit for bit.
TEST(CompiledRuleTest, SingleApplicationStatsMatchLegacyExactly) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "e(1, 2). e(2, 3). e(3, 4). e(4, 1). e(2, 5). t(1, 1).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, z) :- e(x, y), e(y, z).");

  for (bool greedy : {true, false}) {
    for (bool indexed : {true, false}) {
      SetGreedyJoinOrdering(greedy);
      SetIndexLookups(indexed);

      SetCompiledRulePlans(true);
      Database out1(symbols);
      MatchStats compiled;
      std::size_t added1 = ApplyRule(rule, db, &out1, &compiled);

      SetCompiledRulePlans(false);
      Database out2(symbols);
      MatchStats legacy;
      std::size_t added2 = ApplyRule(rule, db, &out2, &legacy);

      EXPECT_EQ(added1, added2) << "greedy=" << greedy << " idx=" << indexed;
      EXPECT_EQ(out1, out2);
      EXPECT_EQ(compiled.substitutions, legacy.substitutions);
      EXPECT_EQ(compiled.index_lookups, legacy.index_lookups);
      EXPECT_EQ(compiled.tuples_scanned, legacy.tuples_scanned);
    }
  }
}

/// Repeated variables within one atom and a fully bound membership atom:
/// the schedule classification (writes vs checks vs key) must reproduce
/// the legacy semantics, including with index lookups ablated (the
/// membership path then scans and filters, honoring the knob).
TEST(CompiledRuleTest, RepeatedVarsAndFullyBoundAtomAgreeAcrossKnobs) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols,
      "e(1, 2). e(2, 1). e(2, 3). e(3, 3). e(1, 1). s(1). s(3).");
  Rule loop = ParseRuleOrDie(symbols, "h(x) :- e(x, x), s(x).");
  Rule back = ParseRuleOrDie(symbols, "p(x, y) :- e(x, y), e(y, x).");

  for (const Rule& rule : {loop, back}) {
    for (bool indexed : {true, false}) {
      SetIndexLookups(indexed);

      SetCompiledRulePlans(true);
      Database out1(symbols);
      MatchStats compiled;
      ApplyRule(rule, db, &out1, &compiled);

      SetCompiledRulePlans(false);
      Database out2(symbols);
      MatchStats legacy;
      ApplyRule(rule, db, &out2, &legacy);

      EXPECT_EQ(out1, out2) << "idx=" << indexed;
      EXPECT_EQ(compiled.substitutions, legacy.substitutions);
      EXPECT_EQ(compiled.index_lookups, legacy.index_lookups);
      EXPECT_EQ(compiled.tuples_scanned, legacy.tuples_scanned);
    }
  }
}

/// The MatchAtoms adapter materializes a Binding per complete match; the
/// enumerated binding sets must be identical to the legacy matcher's.
TEST(CompiledRuleTest, MatchAtomsAdapterEnumeratesSameBindings) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 1).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  VariableId z = symbols->InternVariable("z");
  std::vector<PlannedAtom> atoms = {
      {Atom(a, {Term::Variable(x), Term::Variable(y)}), AtomSource::kFull},
      {Atom(a, {Term::Variable(y), Term::Variable(z)}), AtomSource::kFull}};

  auto collect = [&] {
    std::set<std::vector<std::pair<VariableId, Value>>> seen;
    MatchStats stats;
    MatchAtoms(db, nullptr, atoms,
               [&](const Binding& b) {
                 std::vector<std::pair<VariableId, Value>> sorted(b.begin(),
                                                                  b.end());
                 std::sort(sorted.begin(), sorted.end(),
                           [](const auto& l, const auto& r) {
                             return l.first < r.first;
                           });
                 seen.insert(std::move(sorted));
                 return true;
               },
               &stats);
    return std::make_pair(seen, stats.substitutions);
  };

  SetCompiledRulePlans(true);
  auto [compiled, compiled_subs] = collect();
  SetCompiledRulePlans(false);
  auto [legacy, legacy_subs] = collect();

  EXPECT_EQ(compiled, legacy);
  EXPECT_EQ(compiled_subs, legacy_subs);
  EXPECT_EQ(compiled.size(), 3u);  // the three chained pairs
}

/// Early exit must propagate through the compiled enumeration.
TEST(CompiledRuleTest, MatchAtomsCallbackCanStopEnumeration) {
  KnobGuard guard;
  SetCompiledRulePlans(true);
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  PredicateId a = symbols->LookupPredicate("a").value();
  VariableId x = symbols->InternVariable("x");
  VariableId y = symbols->InternVariable("y");
  std::vector<PlannedAtom> atoms = {
      {Atom(a, {Term::Variable(x), Term::Variable(y)}), AtomSource::kFull}};
  int count = 0;
  MatchAtoms(db, nullptr, atoms,
             [&](const Binding&) {
               ++count;
               return false;  // stop after the first match
             },
             nullptr);
  EXPECT_EQ(count, 1);
}

TEST(CompiledRuleTest, CacheReplansOnlyOnFourfoldDrift) {
  KnobGuard guard;
  SetCompiledRulePlans(true);
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2). e(2, 3). s(1).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, y) :- e(x, y), s(x).");
  PredicateId e = symbols->LookupPredicate("e").value();

  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  EXPECT_FALSE(plan.NeedsReplan(db, nullptr));

  // Under 4x growth (2 -> 7 rows is < 4x): the cached order stands.
  for (std::int64_t i = 0; i < 5; ++i) {
    db.AddFact(e, {Value::Int(10 + i), Value::Int(11 + i)});
  }
  EXPECT_FALSE(plan.NeedsReplan(db, nullptr));

  // Crossing 4x (2 -> 8) invalidates.
  db.AddFact(e, {Value::Int(90), Value::Int(91)});
  EXPECT_TRUE(plan.NeedsReplan(db, nullptr));
  plan.Replan(db, nullptr);
  EXPECT_FALSE(plan.NeedsReplan(db, nullptr));
}

TEST(CompiledRuleTest, CacheInvalidatesOnKnobFlip) {
  KnobGuard guard;
  SetCompiledRulePlans(true);
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2). s(1).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, y) :- e(x, y), s(x).");
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  EXPECT_FALSE(plan.NeedsReplan(db, nullptr));
  SetGreedyJoinOrdering(false);
  EXPECT_TRUE(plan.NeedsReplan(db, nullptr));
  SetGreedyJoinOrdering(true);
  SetIndexLookups(false);
  EXPECT_TRUE(plan.NeedsReplan(db, nullptr));
}

/// With greedy planning off the order is textual and fixed, so pure
/// growth must NOT trigger replanning (nothing about the plan depends on
/// sizes).
TEST(CompiledRuleTest, FixedOrderPlansNeverReplanOnGrowth) {
  KnobGuard guard;
  SetCompiledRulePlans(true);
  SetGreedyJoinOrdering(false);
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "e(1, 2). s(1).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, y) :- e(x, y), s(x).");
  PredicateId e = symbols->LookupPredicate("e").value();
  CompiledRule plan = CompiledRule::Compile(
      rule, /*delta_pos=*/std::size_t(-1), /*use_old=*/false, db, nullptr);
  for (std::int64_t i = 0; i < 64; ++i) {
    db.AddFact(e, {Value::Int(100 + i), Value::Int(101 + i)});
  }
  EXPECT_FALSE(plan.NeedsReplan(db, nullptr));
}

/// Full engine run: the cached-plan path must produce the same fixpoint
/// and the same substitution count as the legacy matcher (substitutions
/// are join-order independent, so they survive the cache's deliberately
/// lazier replanning).
TEST(CompiledRuleTest, SemiNaiveFixpointMatchesLegacy) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  PredicateId a = symbols->LookupPredicate("a").value();
  Database base(symbols);
  AddGraphFacts({GraphShape::kRandom, 24, 48, 11}, a, &base);

  SetCompiledRulePlans(true);
  Database d1(symbols);
  d1.UnionWith(base);
  EvalStats compiled = EvaluateSemiNaive(p, &d1).value();

  SetCompiledRulePlans(false);
  Database d2(symbols);
  d2.UnionWith(base);
  EvalStats legacy = EvaluateSemiNaive(p, &d2).value();

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(compiled.match.substitutions, legacy.match.substitutions);
  EXPECT_EQ(compiled.facts_derived, legacy.facts_derived);
  EXPECT_EQ(compiled.iterations, legacy.iterations);
}

/// Negated literals are tested against the full database after the
/// positive part binds, on both paths.
TEST(CompiledRuleTest, NegationAgreesWithLegacy) {
  KnobGuard guard;
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(
      symbols, "e(1, 2). e(2, 3). e(3, 1). blocked(2).");
  Rule rule = ParseRuleOrDie(symbols, "h(x, y) :- e(x, y), not blocked(y).");

  SetCompiledRulePlans(true);
  Database out1(symbols);
  MatchStats s1;
  std::size_t added1 = ApplyRule(rule, db, &out1, &s1);

  SetCompiledRulePlans(false);
  Database out2(symbols);
  MatchStats s2;
  std::size_t added2 = ApplyRule(rule, db, &out2, &s2);

  EXPECT_EQ(added1, 2u);
  EXPECT_EQ(added1, added2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(s1.substitutions, s2.substitutions);
}

}  // namespace
}  // namespace datalog
