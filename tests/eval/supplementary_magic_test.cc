#include "ast/pretty_print.h"
#include "eval/magic_sets.h"
#include "eval/query.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

std::set<Tuple> MagicAnswers(const Program& p, const Database& edb,
                             const Atom& query, const MagicOptions& options,
                             EvalStats* stats = nullptr) {
  Result<MagicProgram> magic = MagicSetsTransform(p, query, options);
  EXPECT_TRUE(magic.ok()) << magic.status().ToString();
  Database work(p.symbols());
  work.UnionWith(edb);
  Result<EvalStats> s = EvaluateSemiNaive(magic->program, &work);
  EXPECT_TRUE(s.ok());
  if (stats != nullptr && s.ok()) stats->Add(*s);
  std::set<Tuple> out;
  // Filter to the query's own bindings.
  std::vector<PlannedAtom> atoms{
      PlannedAtom{Atom(magic->answer_predicate, query.args()),
                  AtomSource::kFull}};
  MatchAtoms(work, nullptr, atoms,
             [&](const Binding& binding) {
               out.insert(InstantiateHead(
                   Atom(magic->answer_predicate, query.args()), binding));
               return true;
             },
             nullptr);
  return out;
}

TEST(SupplementaryMagicTest, SameGenerationAnswersAgree) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  Database edb(symbols);
  PredicateId up = symbols->LookupPredicate("up").value();
  PredicateId flat = symbols->LookupPredicate("flat").value();
  PredicateId down = symbols->LookupPredicate("down").value();
  AddSameGenerationFacts({.depth = 4, .fanout = 2}, up, flat, down, &edb);
  // 13 has a next sibling (flat is directional), so the query is
  // satisfiable.
  Atom query = ParseQueryOrDie(symbols, "?- sg(13, y).");

  std::set<Tuple> classic = MagicAnswers(p, edb, query, {});
  std::set<Tuple> supplementary =
      MagicAnswers(p, edb, query, {.supplementary = true});
  EXPECT_EQ(classic, supplementary);
  EXPECT_FALSE(classic.empty());
}

TEST(SupplementaryMagicTest, MultiIntentionalBodyAgrees) {
  // Two intentional atoms per body: the case supplementary predicates
  // exist for (the classic rewrite would join the prefix twice).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, y), g(y, w), g(w, z).\n");
  Database edb = ParseDatabaseOrDie(
      symbols, "a(1, 2). a(2, 3). a(3, 4). a(4, 5). a(9, 1).");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, z).");

  EvalStats classic_stats, sup_stats;
  std::set<Tuple> classic = MagicAnswers(p, edb, query, {}, &classic_stats);
  std::set<Tuple> supplementary = MagicAnswers(
      p, edb, query, {.supplementary = true}, &sup_stats);
  EXPECT_EQ(classic, supplementary);

  // Reference semantics.
  Result<std::vector<Tuple>> reference =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(classic, std::set<Tuple>(reference->begin(), reference->end()));
}

TEST(SupplementaryMagicTest, SupPredicatesAppearOnlyWhenRequested) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- a(x, z).\n"
      "g(x, z) :- a(x, y), g(y, w), g(w, z).\n");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, z).");
  Result<MagicProgram> classic = MagicSetsTransform(p, query, {});
  Result<MagicProgram> sup =
      MagicSetsTransform(p, query, {.supplementary = true});
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(sup.ok());
  auto has_sup_rule = [&](const MagicProgram& magic) {
    for (const Rule& rule : magic.program.rules()) {
      const std::string& name =
          magic.program.symbols()->PredicateName(rule.head().predicate());
      if (name.rfind("sup_", 0) == 0) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_sup_rule(*classic));
  EXPECT_TRUE(has_sup_rule(*sup));
  // Every rewritten rule body in supplementary mode has at most two
  // atoms (sup chain + one body atom) -- the materialization property.
  for (const Rule& rule : sup->program.rules()) {
    EXPECT_LE(rule.body().size(), 2u) << ToString(rule, *symbols);
  }
}

TEST(SupplementaryMagicTest, AllRulesSafe) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  Atom query = ParseQueryOrDie(symbols, "?- sg(1, y).");
  Result<MagicProgram> sup =
      MagicSetsTransform(p, query, {.supplementary = true});
  ASSERT_TRUE(sup.ok());
  for (const Rule& rule : sup->program.rules()) {
    EXPECT_TRUE(rule.IsSafe()) << ToString(rule, *symbols);
  }
}

class SupplementarySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupplementarySweep, AgreesWithClassicOnRandomGraphs) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "g(x, z) :- e(x, z).\n"
      "g(x, z) :- e(x, y), g(y, w), g(w, z).\n"
      "h(x, z) :- g(x, y), g(y, z).\n");
  PredicateId e = symbols->LookupPredicate("e").value();
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, 8, 12, GetParam()}, e, &edb);
  Atom query = ParseQueryOrDie(symbols, "?- h(0, z).");
  std::set<Tuple> classic = MagicAnswers(p, edb, query, {});
  std::set<Tuple> supplementary =
      MagicAnswers(p, edb, query, {.supplementary = true});
  EXPECT_EQ(classic, supplementary) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupplementarySweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace datalog
