#include "eval/database.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;

TEST(DatabaseTest, ParseAndContains) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). a(4, 1).");
  PredicateId a = symbols->LookupPredicate("a").value();
  EXPECT_EQ(db.NumFacts(), 3u);
  EXPECT_TRUE(db.Contains(a, {Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(db.Contains(a, {Value::Int(2), Value::Int(1)}));
}

TEST(DatabaseTest, AddFactDeduplicates) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2).");
  PredicateId a = symbols->LookupPredicate("a").value();
  EXPECT_FALSE(db.AddFact(a, {Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(db.AddFact(a, {Value::Int(7), Value::Int(8)}));
  EXPECT_EQ(db.NumFacts(), 2u);
}

TEST(DatabaseTest, AddAtomRejectsVariables) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId p = symbols->InternPredicate("p", 1).value();
  Status s = db.AddAtom(Atom(p, {Term::Variable(0)}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, UnionWith) {
  auto symbols = MakeSymbols();
  Database d1 = ParseDatabaseOrDie(symbols, "a(1, 2). b(3).");
  Database d2 = ParseDatabaseOrDie(symbols, "a(1, 2). c(4).");
  std::size_t added = d1.UnionWith(d2);
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(d1.NumFacts(), 3u);
}

TEST(DatabaseTest, SubsetAndEquality) {
  auto symbols = MakeSymbols();
  Database d1 = ParseDatabaseOrDie(symbols, "a(1, 2).");
  Database d2 = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3).");
  EXPECT_TRUE(d1.IsSubsetOf(d2));
  EXPECT_FALSE(d2.IsSubsetOf(d1));
  EXPECT_NE(d1, d2);
  Database d3 = ParseDatabaseOrDie(symbols, "a(2, 3). a(1, 2).");
  EXPECT_EQ(d2, d3);  // set semantics, order-independent
}

TEST(DatabaseTest, EmptyDatabase) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  EXPECT_TRUE(db.empty());
  EXPECT_TRUE(db.NonEmptyPredicates().empty());
}

TEST(DatabaseTest, RelationForUnknownPredicateIsEmpty) {
  auto symbols = MakeSymbols();
  Database db(symbols);
  PredicateId p = symbols->InternPredicate("p", 2).value();
  EXPECT_TRUE(db.relation(p).empty());
}

TEST(DatabaseTest, ToStringIsSortedAndParsable) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "b(2). a(1, 2).");
  EXPECT_EQ(db.ToString(), "a(1, 2).\nb(2).\n");
  Database reparsed = ParseDatabaseOrDie(symbols, db.ToString());
  EXPECT_EQ(db, reparsed);
}

TEST(DatabaseTest, ZeroArityFacts) {
  auto symbols = MakeSymbols();
  Database db = ParseDatabaseOrDie(symbols, "ready.");
  PredicateId ready = symbols->LookupPredicate("ready").value();
  EXPECT_TRUE(db.Contains(ready, {}));
}

}  // namespace
}  // namespace datalog
