#include "eval/topdown.h"

#include "eval/query.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/graph_gen.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

TEST(TopDownTest, LinearTcBoundQuery) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(5, 6).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."));
  ASSERT_TRUE(answers.ok());
  std::set<Tuple> set(answers->begin(), answers->end());
  EXPECT_EQ(set, (std::set<Tuple>{{Value::Int(1), Value::Int(2)},
                                  {Value::Int(1), Value::Int(3)}}));
}

TEST(TopDownTest, DoublyRecursiveTc) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);
}

TEST(TopDownTest, CyclicGraphTerminates) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 1).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // g(1,1) and g(1,2)
}

TEST(TopDownTest, IdbFactsInInputAnswerSubgoals) {
  // The uniform semantics: g-facts given as input count.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 9).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."));
  ASSERT_TRUE(answers.ok());
  std::set<Tuple> set(answers->begin(), answers->end());
  EXPECT_TRUE(set.contains(Tuple{Value::Int(1), Value::Int(9)}));
}

TEST(TopDownTest, RepeatedVariableInQuery) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 1). a(2, 3).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(x, x)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // g(1,1), g(2,2)
}

TEST(TopDownTest, ExtensionalQueryWorks) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "g(x, z) :- a(x, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 3). a(2, 4).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- a(1, x)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
}

TEST(TopDownTest, StatsCountSubgoals) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  TopDownStats stats;
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."), &stats);
  ASSERT_TRUE(answers.ok());
  // One subgoal per reachable node binding: g(1,_), g(2,_), g(3,_),
  // g(4,_).
  EXPECT_GE(stats.subgoals, 4u);
  EXPECT_GT(stats.answers, 0u);
  EXPECT_GE(stats.iterations, 1u);
}

TEST(TopDownTest, DemandRestriction) {
  // Two disjoint components: the bound query must never create subgoals
  // for the second one.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(
      symbols, "a(1, 2). a(2, 3). a(100, 101). a(101, 102). a(102, 103).");
  TopDownStats stats;
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- g(1, x)."), &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
  // Subgoals: g(1,_), g(2,_), g(3,_) only.
  EXPECT_LE(stats.subgoals, 3u);
}

TEST(TopDownTest, RejectsNegation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- a(x), not b(x).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1).");
  Result<std::vector<Tuple>> answers =
      SolveTopDown(p, edb, ParseQueryOrDie(symbols, "?- p(1)."));
  EXPECT_FALSE(answers.ok());
}

class TopDownAgreementSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TopDownAgreementSweep, AgreesWithAllOtherMethods) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  PredicateId up = symbols->InternPredicate("up", 2).value();
  PredicateId down = symbols->InternPredicate("down", 2).value();
  PredicateId flat = symbols->InternPredicate("flat", 2).value();
  Database edb(symbols);
  AddGraphFacts({GraphShape::kRandom, 8, 12, GetParam()}, up, &edb);
  AddGraphFacts({GraphShape::kRandom, 8, 12, GetParam() + 100}, down, &edb);
  AddGraphFacts({GraphShape::kRandom, 8, 8, GetParam() + 200}, flat, &edb);

  Atom query = ParseQueryOrDie(symbols, "?- sg(0, y).");
  Result<std::vector<Tuple>> semi =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  Result<std::vector<Tuple>> top =
      AnswerQuery(p, edb, query, EvalMethod::kTabledTopDown);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(top.ok());
  std::set<Tuple> reference(semi->begin(), semi->end());
  EXPECT_EQ(std::set<Tuple>(magic->begin(), magic->end()), reference);
  EXPECT_EQ(std::set<Tuple>(top->begin(), top->end()), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopDownAgreementSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace datalog
