#include "eval/naive.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;

constexpr const char* kTransitiveClosure =
    "g(x, z) :- a(x, z).\n"
    "g(x, z) :- g(x, y), g(y, z).\n";

TEST(NaiveTest, PaperExample2) {
  // Example 2: EDB {A(1,2), A(1,4), A(4,1)}; the output is the EDB plus
  // the transitive closure of A as G.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). a(4, 1).");
  ASSERT_TRUE(EvaluateNaive(p, &db).ok());
  Database expected = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4). a(4, 1)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  EXPECT_EQ(db, expected) << db.ToString();
}

TEST(NaiveTest, PaperExample3IdbAsInput) {
  // Example 3: input {A(1,2), A(1,4), G(4,1)} gives the Example 2 output
  // minus the ground atom A(4,1).
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(1, 4). g(4, 1).");
  ASSERT_TRUE(EvaluateNaive(p, &db).ok());
  Database expected = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). a(1, 4)."
      "g(1, 2). g(1, 4). g(4, 1). g(1, 1). g(4, 4). g(4, 2).");
  EXPECT_EQ(db, expected) << db.ToString();
}

TEST(NaiveTest, OutputContainsInput) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). g(5, 6).");
  Database input(symbols);
  input.UnionWith(db);
  ASSERT_TRUE(EvaluateNaive(p, &db).ok());
  EXPECT_TRUE(input.IsSubsetOf(db));
}

TEST(NaiveTest, ProgramFactsAreDerived) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "a(1, 2).\n"
                                "g(x, z) :- a(x, z).\n");
  Database db(symbols);
  ASSERT_TRUE(EvaluateNaive(p, &db).ok());
  PredicateId g = symbols->LookupPredicate("g").value();
  EXPECT_TRUE(db.Contains(g, {Value::Int(1), Value::Int(2)}));
}

TEST(NaiveTest, RejectsNegation) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, "p(x) :- a(x), not b(x).\n");
  Database db(symbols);
  Result<EvalStats> r = EvaluateNaive(p, &db);
  EXPECT_FALSE(r.ok());
}

TEST(NaiveTest, StatsReportIterations) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Result<EvalStats> stats = EvaluateNaive(p, &db);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->iterations, 2);
  EXPECT_EQ(stats->facts_derived, 6u);  // the 6 tuples of the closure
}

TEST(ApplyOnceTest, PaperExample12) {
  // Example 12: P applied non-recursively to {A(1,2), G(2,3), G(3,4)}
  // yields exactly {G(1,2), G(2,4)}.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database d = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3). g(3, 4).");
  Database out(symbols);
  Result<std::size_t> added = ApplyOnce(p, d, &out, nullptr);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 2u);
  Database expected = ParseDatabaseOrDie(symbols, "g(1, 2). g(2, 4).");
  EXPECT_EQ(out, expected) << out.ToString();
}

TEST(ApplyOnceTest, FullEvaluationOfExample12) {
  // For contrast, P(d) in Example 12 contains the full closure of the
  // mixed input.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols, kTransitiveClosure);
  Database db = ParseDatabaseOrDie(symbols, "a(1, 2). g(2, 3). g(3, 4).");
  ASSERT_TRUE(EvaluateNaive(p, &db).ok());
  Database expected = ParseDatabaseOrDie(
      symbols,
      "a(1, 2). g(2, 3). g(3, 4). g(1, 2). g(1, 3). g(2, 4). g(1, 4).");
  EXPECT_EQ(db, expected) << db.ToString();
}

}  // namespace
}  // namespace datalog
