// Harder magic-sets scenarios: mutual recursion, multiple adornments of
// one predicate, constants in rule heads, non-binary predicates.

#include "eval/magic_sets.h"

#include "ast/pretty_print.h"
#include "eval/query.h"
#include "eval/seminaive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace datalog {
namespace {

using testing::MakeSymbols;
using testing::ParseDatabaseOrDie;
using testing::ParseProgramOrDie;
using testing::ParseQueryOrDie;

void ExpectSameAnswers(const Program& p, const Database& edb,
                       const Atom& query) {
  Result<std::vector<Tuple>> plain =
      AnswerQuery(p, edb, query, EvalMethod::kSemiNaive);
  Result<std::vector<Tuple>> magic =
      AnswerQuery(p, edb, query, EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(std::set<Tuple>(plain->begin(), plain->end()),
            std::set<Tuple>(magic->begin(), magic->end()));
}

TEST(MagicSetsEdgeTest, MutualRecursionEvenOdd) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "even(x) :- zero(x).\n"
                                "even(x) :- succ(y, x), odd(y).\n"
                                "odd(x) :- succ(y, x), even(y).\n");
  Database edb = ParseDatabaseOrDie(
      symbols,
      "zero(0). succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- even(4)."));
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- odd(4)."));
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- even(x)."));
}

TEST(MagicSetsEdgeTest, TwoAdornmentsOfOnePredicate) {
  // same-generation queried with sg(1, y) needs sg^bf; the inner
  // occurrence after up/down swaps may demand another adornment.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n"
      "pair(x, y) :- sg(x, y), sg(y, x).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "flat(1, 2). flat(2, 1). up(1, 3)."
                                    "down(3, 2). flat(3, 3). up(2, 3).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- pair(1, y)."));
}

TEST(MagicSetsEdgeTest, ConstantInRuleHead) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "status(x, 1) :- up_host(x).\n"
                                "status(x, 0) :- down_host(x).\n"
                                "flag(x) :- status(x, 1).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "up_host(10). down_host(11). up_host(12).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- flag(10)."));
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- flag(x)."));
}

TEST(MagicSetsEdgeTest, TernaryPredicate) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "path(x, y, c) :- edge(x, y, c).\n"
      "path(x, z, c) :- edge(x, y, c), path(y, z, c).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "edge(1, 2, 7). edge(2, 3, 7)."
                                    "edge(1, 2, 9). edge(3, 4, 9).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- path(1, x, 7)."));
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- path(1, 3, c)."));
}

TEST(MagicSetsEdgeTest, QueryConstantNotInDatabase) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2).");
  Result<std::vector<Tuple>> magic = AnswerQuery(
      p, edb, ParseQueryOrDie(symbols, "?- g(42, x)."),
      EvalMethod::kMagicSemiNaive);
  ASSERT_TRUE(magic.ok());
  EXPECT_TRUE(magic->empty());
}

TEST(MagicSetsEdgeTest, RepeatedVariableInQuery) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 1). a(2, 3).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- g(x, x)."));
}

TEST(MagicSetsEdgeTest, IntermediateIntentionalPredicate) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "hop(x, y) :- a(x, y).\n"
      "hop(x, y) :- b(x, y).\n"
      "reach(x, y) :- hop(x, y).\n"
      "reach(x, z) :- hop(x, y), reach(y, z).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "a(1, 2). b(2, 3). a(3, 4). b(9, 9).");
  ExpectSameAnswers(p, edb, ParseQueryOrDie(symbols, "?- reach(1, x)."));
}

TEST(MagicSetsEdgeTest, SipStrategiesAgreeOnAnswers) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(
      symbols,
      "sg(x, y) :- flat(x, y).\n"
      "sg(x, y) :- up(x, u), sg(u, v), down(v, y).\n");
  Database edb = ParseDatabaseOrDie(symbols,
                                    "up(1, 11). up(2, 12). up(11, 21)."
                                    "flat(21, 21). flat(11, 12)."
                                    "down(21, 13). down(12, 4).");
  Atom query = ParseQueryOrDie(symbols, "?- sg(1, y).");

  Result<MagicProgram> ltr = MagicSetsTransform(
      p, query, MagicOptions{SipStrategy::kLeftToRight});
  Result<MagicProgram> bf =
      MagicSetsTransform(p, query, MagicOptions{SipStrategy::kBoundFirst});
  ASSERT_TRUE(ltr.ok());
  ASSERT_TRUE(bf.ok());

  auto answers = [&](const MagicProgram& magic) {
    Database work(symbols);
    work.UnionWith(edb);
    EXPECT_TRUE(EvaluateSemiNaive(magic.program, &work).ok());
    std::set<Tuple> out;
    for (const Tuple& t : work.relation(magic.answer_predicate).rows()) {
      out.insert(t);
    }
    return out;
  };
  EXPECT_EQ(answers(*ltr), answers(*bf));
}

TEST(MagicSetsEdgeTest, BoundFirstSipReordersBadBodies) {
  // Body written backwards: the selective bound atom comes last. The
  // bound-first strategy visits it first, so the magic predicate for the
  // recursive atom is bound instead of free.
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- g(y, z), a(x, y).\n");
  Database edb = ParseDatabaseOrDie(symbols, "a(1, 2). a(2, 3). a(3, 4).");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");

  // Left-to-right: g(y, z) is visited with neither argument bound.
  Result<MagicProgram> ltr = MagicSetsTransform(
      p, query, MagicOptions{SipStrategy::kLeftToRight});
  ASSERT_TRUE(ltr.ok());
  // Bound-first: a(x, y) (x bound) first, then g(y, z) with y bound.
  Result<MagicProgram> bf =
      MagicSetsTransform(p, query, MagicOptions{SipStrategy::kBoundFirst});
  ASSERT_TRUE(bf.ok());

  // Left-to-right needs a second (all-free) adornment of g and its magic
  // rules; bound-first stays within g^bf, so its program is smaller.
  EXPECT_LT(bf->program.NumRules(), ltr->program.NumRules());

  // Both compute the same answers to the query (the answer tables may
  // additionally hold other demanded bindings; filter to the query's).
  auto answers = [&](const MagicProgram& magic) {
    Database work(symbols);
    work.UnionWith(edb);
    EXPECT_TRUE(EvaluateSemiNaive(magic.program, &work).ok());
    std::set<Tuple> out;
    for (const Tuple& t : work.relation(magic.answer_predicate).rows()) {
      if (t[0] == Value::Int(1)) out.insert(t);
    }
    return out;
  };
  EXPECT_EQ(answers(*ltr), answers(*bf));
  EXPECT_EQ(answers(*bf).size(), 3u);
}

TEST(MagicSetsEdgeTest, TransformedProgramIsValid) {
  auto symbols = MakeSymbols();
  Program p = ParseProgramOrDie(symbols,
                                "g(x, z) :- a(x, z).\n"
                                "g(x, z) :- a(x, y), g(y, z).\n");
  Atom query = ParseQueryOrDie(symbols, "?- g(1, x).");
  Result<MagicProgram> magic = MagicSetsTransform(p, query);
  ASSERT_TRUE(magic.ok());
  for (const Rule& rule : magic->program.rules()) {
    EXPECT_TRUE(rule.IsSafe()) << ToString(rule, *symbols);
  }
}

}  // namespace
}  // namespace datalog
